"""Serving data-plane load generator: asyncio + shm vs threaded + base64.

The PR-10 acceptance bar, enforced end-to-end over real sockets:

- **Mixed traffic at 64 connections** — hot/cold structural keys, Zipf
  operand sizes — through the new data plane (asyncio front end, shm
  operand transport, warm-arena replay) must beat the legacy plane
  (thread-per-connection server, base64 ``.npy`` strings) by >= 3x
  throughput, with no client errors and a no-worse p99 latency.
- **shm execute** must beat base64-npy execute by >= 5x end-to-end
  latency for an n=1024 operand on one connection.
- **Warm replay** on a memoized handle must allocate zero array-sized
  blocks (tracemalloc-checked, >= 16 KiB threshold).
"""

import json
import socket
import threading
import time
import tracemalloc

import numpy as np
import pytest

from repro.serve import (
    AsyncCompileServer,
    CompileService,
    encode_array,
    make_tcp_server,
)
from repro.serve import shm as shm_mod
from repro.serve.frontend import handle_request

from conftest import emit

CONNECTIONS = 64
REQUESTS_PER_CLIENT = 12
TRAIN = 20

HOT_SOURCE = (
    "Matrix A <General, Singular>; Matrix B <General, Singular>;"
    " R := A * B;"
)
# Cold structural keys: same shape of program, fresh matrix names, three
# operands — distinct session-cache keys and distinct dispatcher memos.
COLD_SOURCES = [
    (
        f"Matrix C{i}x <General, Singular>; Matrix C{i}y <General, Singular>;"
        f" Matrix C{i}z <General, Singular>; R := C{i}x * C{i}y * C{i}z;"
    )
    for i in range(3)
]

# Zipf-ish operand sizes: rank-weighted toward small, with a heavy tail
# of genuinely large operands that punish per-byte transport cost.
ZIPF_SIZES = [32, 64, 128, 256, 512]


def zipf_plan(rng: np.random.Generator, requests: int) -> list[tuple]:
    """One client's request plan over hot/cold keys and Zipf sizes."""
    weights = np.array([1.0 / rank for rank in range(1, 6)])
    weights /= weights.sum()
    plan = []
    for _ in range(requests):
        size = ZIPF_SIZES[int(rng.choice(len(ZIPF_SIZES), p=weights))]
        kind = rng.random()
        if kind < 0.70:
            plan.append(("hot", size))
        elif kind < 0.90:
            plan.append(("cold", int(rng.integers(len(COLD_SOURCES))), size))
        else:
            plan.append(("ping",))
    return plan


@pytest.fixture(scope="module")
def service():
    with CompileService(workers=4, warm=False) as service:
        yield service


@pytest.fixture(scope="module")
def handles(service):
    hot = handle_request(service, {"op": "compile", "source": HOT_SOURCE})
    cold = [
        handle_request(
            service,
            {
                "op": "compile",
                "source": source,
                "options": {"num_training_instances": TRAIN},
            },
        )
        for source in COLD_SOURCES
    ]
    assert hot["ok"] and all(response["ok"] for response in cold)
    return {
        "hot": hot["handle"],
        "cold": [response["handle"] for response in cold],
    }


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(2026)
    return {
        size: np.ascontiguousarray(rng.standard_normal((size, size)))
        for size in ZIPF_SIZES
    }


def request_arrays(item, operands):
    if item[0] == "hot":
        matrix = operands[item[1]]
        return [matrix, matrix]
    matrix = operands[item[2]]
    return [matrix, matrix, matrix]


def run_request_npy(stream, handle, arrays):
    line = json.dumps(
        {
            "op": "execute",
            "handle": handle,
            "arrays": [encode_array(array, "npy") for array in arrays],
        }
    )
    stream.write(line.encode() + b"\n")
    stream.flush()
    response = json.loads(stream.readline())
    assert response["ok"], response


def run_request_shm(stream, handle, arrays):
    payloads, segments = [], []
    try:
        for array in arrays:
            payload, segment = shm_mod.create_segment_payload(array)
            payloads.append(payload)
            segments.append(segment)
        line = json.dumps(
            {"op": "execute", "handle": handle, "arrays": payloads}
        )
        stream.write(line.encode() + b"\n")
        stream.flush()
        response = json.loads(stream.readline())
        assert response["ok"], response
        result = response["result"]
        if isinstance(result, dict) and result.get("encoding") == "shm":
            shm_mod.read_segment_payload(result)
            stream.write(
                json.dumps(
                    {"op": "release", "name": result["name"]}
                ).encode()
                + b"\n"
            )
            stream.flush()
            stream.readline()
    finally:
        for segment in segments:
            segment.close()
            segment.unlink()


def load_client(address, plan, handles, operands, transport, latencies, errors):
    """One client connection working through its request plan."""
    run_request = run_request_npy if transport == "npy" else run_request_shm
    try:
        with socket.create_connection(address) as connection:
            connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            stream = connection.makefile("rwb")
            for item in plan:
                start = time.perf_counter()
                if item[0] == "ping":
                    stream.write(b'{"op": "ping"}\n')
                    stream.flush()
                    assert json.loads(stream.readline())["ok"]
                else:
                    handle = (
                        handles["hot"]
                        if item[0] == "hot"
                        else handles["cold"][item[1]]
                    )
                    run_request(stream, handle, request_arrays(item, operands))
                latencies.append(time.perf_counter() - start)
    except Exception as exc:  # noqa: BLE001 - reported via the gate
        errors.append(exc)


def run_load(address, handles, operands, transport):
    """64 concurrent clients; returns (req/s, latency list, errors)."""
    rng = np.random.default_rng(7)
    plans = [zipf_plan(rng, REQUESTS_PER_CLIENT) for _ in range(CONNECTIONS)]
    latencies: list[float] = []
    errors: list[Exception] = []
    threads = [
        threading.Thread(
            target=load_client,
            args=(address, plan, handles, operands, transport, latencies, errors),
        )
        for plan in plans
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return CONNECTIONS * REQUESTS_PER_CLIENT / elapsed, latencies, errors


def percentile(samples, q):
    return float(np.percentile(np.asarray(samples), q))


def test_mixed_traffic_new_plane_3x_legacy(service, handles, operands):
    """The headline gate: new data plane >= 3x legacy at 64 connections.

    Legacy plane: thread-per-connection server, operands as base64
    ``.npy`` strings.  New plane: asyncio front end, operands in shared
    memory.  Same mixed workload (hot/cold structural keys, Zipf sizes,
    interleaved pings) on both; best of 3 rounds each, because a single
    round is at the mercy of scheduler noise.
    """
    if not shm_mod.shm_available():
        pytest.skip("shared memory unavailable on this platform")

    legacy_best = new_best = None
    server = make_tcp_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        for _ in range(3):
            rate, latencies, errors = run_load(
                server.address, handles, operands, "npy"
            )
            assert not errors, errors[:3]
            if legacy_best is None or rate > legacy_best[0]:
                legacy_best = (rate, latencies)
    finally:
        server.close()

    with AsyncCompileServer(service) as server:
        for _ in range(3):
            rate, latencies, errors = run_load(
                server.address, handles, operands, "shm"
            )
            assert not errors, errors[:3]
            if new_best is None or rate > new_best[0]:
                new_best = (rate, latencies)

    ratio = new_best[0] / legacy_best[0]
    legacy_p99 = percentile(legacy_best[1], 99)
    new_p99 = percentile(new_best[1], 99)
    emit(
        f"serving data plane ({CONNECTIONS} connections x "
        f"{REQUESTS_PER_CLIENT} requests, Zipf sizes {ZIPF_SIZES})",
        f"legacy (threaded + base64 npy): {legacy_best[0]:8.0f} req/s  "
        f"p50 {1e3 * percentile(legacy_best[1], 50):7.1f}ms  "
        f"p99 {1e3 * legacy_p99:7.1f}ms\n"
        f"new (asyncio + shm):            {new_best[0]:8.0f} req/s  "
        f"p50 {1e3 * percentile(new_best[1], 50):7.1f}ms  "
        f"p99 {1e3 * new_p99:7.1f}ms\n"
        f"throughput ratio: {ratio:.1f}x (best of 3 rounds)",
    )
    assert ratio >= 3.0, (
        f"new data plane only {ratio:.1f}x legacy "
        f"({new_best[0]:.0f} vs {legacy_best[0]:.0f} req/s)"
    )
    # The throughput win must not come out of the latency tail.
    assert new_p99 <= legacy_p99, (
        f"new-plane p99 {1e3 * new_p99:.1f}ms worse than "
        f"legacy {1e3 * legacy_p99:.1f}ms"
    )


def test_shm_execute_5x_base64_npy_at_n1024(service, handles):
    """Transport gate: one n=1024 operand, one connection, both encodings.

    The chain is rectangular (1024x1024 times 1024x64) so the measured
    gap is the transport's, not the kernel's: the base64 plane moves
    ~11 MB of text per request where the shm plane moves ~150 bytes of
    segment metadata.
    """
    if not shm_mod.shm_available():
        pytest.skip("shared memory unavailable on this platform")

    rng = np.random.default_rng(31)
    left = np.ascontiguousarray(rng.standard_normal((1024, 1024)))
    right = np.ascontiguousarray(rng.standard_normal((1024, 64)))

    def best_latency(transport):
        run_request = (
            run_request_npy if transport == "npy" else run_request_shm
        )
        best = float("inf")
        with socket.create_connection(server.address) as connection:
            stream = connection.makefile("rwb")
            for _ in range(5):
                start = time.perf_counter()
                run_request(stream, handles["hot"], [left, right])
                best = min(best, time.perf_counter() - start)
        return best

    with AsyncCompileServer(service) as server:
        npy_seconds = best_latency("npy")
        shm_seconds = best_latency("shm")

    speedup = npy_seconds / shm_seconds
    emit(
        "shm vs base64-npy execute latency (n=1024, best of 5)",
        f"base64 npy: {1e3 * npy_seconds:7.1f}ms\n"
        f"shm:        {1e3 * shm_seconds:7.1f}ms\n"
        f"speedup: {speedup:.1f}x",
    )
    assert speedup >= 5.0, (
        f"shm only {speedup:.1f}x base64-npy "
        f"({1e3 * shm_seconds:.1f}ms vs {1e3 * npy_seconds:.1f}ms)"
    )


def test_warm_replay_allocates_nothing(service, handles):
    """Arena gate: warm replays allocate zero array-sized blocks.

    The dispatcher memo owns a per-plan buffer arena; with a caller
    ``out=`` buffer, a warm same-size replay touches no allocator path
    big enough to matter (>= 16 KiB — small Python-object churn is
    unavoidable and irrelevant to the data plane).
    """
    dispatcher = service.lookup(handles["hot"]).dispatcher
    rng = np.random.default_rng(5)
    arrays = [
        np.ascontiguousarray(rng.standard_normal((512, 512)))
        for _ in range(2)
    ]
    dispatcher.run(arrays, reuse_buffers=True)  # cold: records shapes
    warm = dispatcher.run(arrays, reuse_buffers=True)  # builds the arena
    out = np.empty(warm.result.shape)

    tracemalloc.start()
    for _ in range(10):
        dispatcher.run(arrays, out=out, reuse_buffers=True)
    snapshot = tracemalloc.take_snapshot()
    tracemalloc.stop()

    big = [
        stat
        for stat in snapshot.statistics("lineno")
        if stat.size >= 16 * 1024
    ]
    emit(
        "warm replay allocations (10 replays, n=512, out= buffer)",
        f"blocks >= 16 KiB: {len(big)}\n"
        + ("\n".join(str(stat) for stat in big) or "(none)"),
    )
    assert big == [], [str(stat) for stat in big]
    assert np.allclose(out, arrays[0] @ arrays[1])


def test_async_warm_execute_latency(benchmark, service, handles, operands):
    """Tracked latency: one warm shm execute round trip, asyncio plane."""
    if not shm_mod.shm_available():
        pytest.skip("shared memory unavailable on this platform")

    with AsyncCompileServer(service) as server:
        with socket.create_connection(server.address) as connection:
            connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            stream = connection.makefile("rwb")
            arrays = [operands[256], operands[256]]
            run_request_shm(stream, handles["hot"], arrays)  # warm

            def run():
                run_request_shm(stream, handles["hot"], arrays)

            benchmark.pedantic(run, rounds=5, iterations=3)

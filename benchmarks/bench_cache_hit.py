"""Compilation-cache speedup: warm vs. cold `compile_chain` latency.

The content-addressed cache (PR 1) turns repeat compilations of a chain
structure into a parse + simplify + dispatcher rebuild; this benchmark
tracks the cold path, the warm in-memory path, the warm on-disk path, and
the batch API's dedup behaviour so the speedup stays visible in the perf
trajectory.
"""

import numpy as np
import pytest

from repro.compiler.session import CompilerSession
from repro.experiments.sampling import sample_shapes

from conftest import emit

TRAIN = 300


@pytest.fixture(scope="module")
def chain6():
    rng = np.random.default_rng(23)
    return sample_shapes(6, 1, rng, rectangular_probability=0.5)[0]


def test_compile_cold(benchmark, chain6):
    """Cold compilation: full enumerate/cost-matrix/select pipeline."""

    def cold():
        session = CompilerSession()
        return session.compile(chain6, num_training_instances=TRAIN)

    generated = benchmark(cold)
    assert len(generated) >= 1


def test_compile_warm_memory(benchmark, chain6):
    """Warm compilation: structural hit in the in-memory LRU."""
    session = CompilerSession()
    session.compile(chain6, num_training_instances=TRAIN)  # warm it

    generated = benchmark(
        session.compile, chain6, num_training_instances=TRAIN
    )
    assert session.cache_stats().hits >= 1
    assert "enumerate" in session.last_context.skipped
    emit(
        "cache speedup (n=6, train=300)",
        f"warm hit skips: {', '.join(session.last_context.skipped)}\n"
        f"stats: {session.cache_stats()}",
    )
    assert len(generated) >= 1


def test_compile_warm_disk(benchmark, chain6, tmp_path_factory):
    """Warm-from-disk: a fresh process-equivalent session, disk entry only."""
    cache_dir = tmp_path_factory.mktemp("gmc-cache")
    CompilerSession(cache_dir=cache_dir).compile(
        chain6, num_training_instances=TRAIN
    )

    def warm_from_disk():
        session = CompilerSession(cache_dir=cache_dir)
        return session.compile(chain6, num_training_instances=TRAIN)

    generated = benchmark(warm_from_disk)
    assert len(generated) >= 1


def test_compile_many_batch_dedup(benchmark):
    """Batch of 12 chains, 4 distinct structures: 3x dedup via the cache."""
    from repro.ir import simplify_chain, structural_key

    rng = np.random.default_rng(5)
    distinct = sample_shapes(5, 4, rng, rectangular_probability=0.5)
    unique = len({structural_key(simplify_chain(c)) for c in distinct})
    batch = list(distinct) * 3

    def run_batch():
        session = CompilerSession()
        results = session.compile_many(batch, num_training_instances=TRAIN)
        assert session.cache_stats().misses == unique
        return results

    results = benchmark(run_batch)
    assert len(results) == len(batch)

"""Regenerates Fig. 6 and the Section VII-B prose statistics.

Runs the execution-time experiment (n = 7) on the simulated machine with
grid-interpolation performance models, checks the paper's qualitative
claims, and times the per-shape pipeline.  Scale knobs:
REPRO_FIG6_SHAPES / REPRO_FIG6_TRAIN / REPRO_FIG6_VAL.
"""

import os

import numpy as np
import pytest

from repro.experiments.ecdf import ECDF
from repro.experiments.time_experiment import (
    evaluate_shape_time,
    run_time_experiment,
)
from repro.experiments.sampling import sample_shapes
from repro.perfmodel.machine import SimulatedMachine
from repro.perfmodel.models import PerformanceModelSet

from conftest import emit

SHAPES = int(os.environ.get("REPRO_FIG6_SHAPES", "20"))
TRAIN = int(os.environ.get("REPRO_FIG6_TRAIN", "1000"))
VAL = int(os.environ.get("REPRO_FIG6_VAL", "200"))


def test_fig6_reproduction(benchmark):
    fig6_result = benchmark.pedantic(
        lambda: run_time_experiment(
            num_shapes=SHAPES,
            train_instances=TRAIN,
            val_instances=VAL,
            seed=2026,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "Fig. 6 summary (ratio over optimal execution time)",
        fig6_result.summary_table(),
    )
    xs = (1.0, 1.1, 1.5, 2.0, 2.5, 3.0)
    curves = []
    for name, ratios in fig6_result.ratios.items():
        ecdf = ECDF.from_sample(ratios)
        points = " ".join(f"{x:g}:{100 * y:.0f}%" for x, y in ecdf.curve(xs))
        curves.append(f"{name:>6}: {points}  (max {ecdf.max:.1f})")
    emit("Fig. 6 eCDF series", "\n".join(curves))

    r = fig6_result.ratios
    # Ordering of the generated flavours vs the references (paper: the
    # percentage of instances below 1.1 was 96.7 / 91.9 / 88.8 / 21.6 / 7.0
    # for Es1,M / Es1,F / Es / L / Armadillo).
    below = {
        name: ECDF.from_sample(vals).fraction_at_or_below(1.1)
        for name, vals in r.items()
    }
    assert below["Es1,M"] >= below["Es"] - 0.02
    assert below["Es1,F"] >= below["Es"] - 0.02
    assert below["Es"] > below["L"] > below["Arma"]
    # Mean speedups over Armadillo around 2.3x in the paper.
    for name, speedup in fig6_result.speedup_over_armadillo.items():
        assert speedup > 1.5, (name, speedup)
    # Generated sets have bounded tails; L and Armadillo do not (paper:
    # 9.24 vs 128.74 / 46.34 worst-case).
    assert r["Es"].max() < r["L"].max()
    assert r["Es"].max() < r["Arma"].max()


def test_fig6_shape_pipeline_speed(benchmark):
    """Times the per-shape pipeline including model-based expansion."""
    machine = SimulatedMachine()
    models = PerformanceModelSet(machine)
    rng = np.random.default_rng(3)
    chain = sample_shapes(7, 1, rng, rectangular_probability=0.5)[0]

    def run():
        local = np.random.default_rng(3)
        return evaluate_shape_time(
            chain, local, machine, models, train_instances=400, val_instances=100
        )

    ratios = benchmark(run)
    assert set(ratios) == {"Es", "Es1,F", "Es1,M", "L", "Arma"}

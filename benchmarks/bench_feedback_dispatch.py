"""Feedback-directed dispatch on a skewed synthetic machine.

The analytic FLOP model assumes every kernel class runs at one uniform
effective rate.  This benchmark builds a machine where that is maximally
wrong — a backend that executes one kernel class (``TRTRMM``) ``SKEW``
times slower than the reference substrate — and checks that the feedback
loop recovers: traced traffic feeds per-kernel observed FLOP/s, the
:class:`~repro.perfmodel.feedback.CalibratedEstimator` learns the skew,
a re-selection checkpoint re-sweeps the pool under the calibrated model,
and the memo entry swaps to the parenthesization that avoids the slow
kernel.  End-to-end, the calibrated dispatcher must beat the FLOPs-only
one by at least ``MIN_SPEEDUP`` on the skewed machine (the chain is
built so the expected ratio is ~``(SKEW + 1) / 2``).

A second gate bounds the cost of the feature where it is *not* needed:
warm dispatch with calibration + re-selection enabled (tracing off) must
stay within ``OVERHEAD_BUDGET`` of the reconstructed pre-obs call path —
the same 15% budget ``bench_obs_overhead`` holds the fully-traced path
to.  Measurement discipline follows that benchmark: per-call interleaved
rounds, medians, GC paused.
"""

import gc
import statistics
import time

import numpy as np

from repro.compiler.selection import essential_set
from repro.experiments.sampling import sample_instances
from repro.ir.chain import Chain
from repro.ir.features import Property, Structure
from repro.ir.matrix import Matrix
from repro.ir.operand import Operand
from repro.obs import get_registry
from repro.obs import trace as obs_trace
from repro.perfmodel.feedback import CalibratedEstimator
from repro.runtime import Dispatcher, DispatchOutcome, random_instance_arrays
from repro.runtime.backends import Backend, LoweredKernel, ReferenceBackend

from conftest import emit

#: Slowdown the synthetic machine applies to the ``TRTRMM`` kernel class.
SKEW = 16

#: CI acceptance floor on the end-to-end calibrated-vs-FLOPs speedup.
MIN_SPEEDUP = 1.3

#: CI acceptance bound on warm dispatch with feedback enabled, tracing
#: off, as a ratio over the pre-obs baseline (bench_obs_overhead's gate).
OVERHEAD_BUDGET = 1.15

#: Interleaved calls per mode for the acceptance medians.
REPS = 300

#: Disagreement/advantage factor that triggers a re-selection sweep.
RESELECT_RATIO = 2.0


class SkewedBackend(Backend):
    """Reference lowering with one kernel class slowed by a factor.

    The slow kernel's lowered callable simply repeats the reference
    implementation ``factor`` times — real work, so traced timings (and
    therefore the learned rates) reflect the skew honestly.
    """

    name = "skewed"

    def __init__(self, slow_kernel: str, factor: int):
        self.slow_kernel = slow_kernel
        self.factor = factor
        self._reference = ReferenceBackend()

    def specialize(self, kernel_name, cfg):
        lowered = self._reference.specialize(kernel_name, cfg)
        if kernel_name != self.slow_kernel:
            return lowered
        impl, reps = lowered.impl, self.factor

        def slowed(left, right):
            for _ in range(reps - 1):
                impl(left, right)
            return impl(left, right)

        return LoweredKernel(slowed, lowered.routine)


def _triangular_chain() -> Chain:
    """T1 (lower-tri) * T2 (lower-tri) * G: the essential set is
    {[TRTRMM, TRMM], [TRMM, TRMM]}, and at m = k the TRTRMM variant is
    FLOP-optimal — exactly the pick the skewed machine punishes."""
    return Chain(
        (
            Operand(Matrix("T1", Structure.LOWER_TRIANGULAR, Property.NON_SINGULAR)),
            Operand(Matrix("T2", Structure.LOWER_TRIANGULAR, Property.NON_SINGULAR)),
            Operand(Matrix("G", Structure.GENERAL, Property.SINGULAR)),
        )
    )


def _general_chain(n: int) -> Chain:
    return Chain(
        tuple(
            Operand(Matrix(f"M{i}", Structure.GENERAL, Property.SINGULAR))
            for i in range(n)
        )
    )


def _uses(variant, kernel_name: str) -> bool:
    return any(step.kernel.name == kernel_name for step in variant.steps)


def _baseline_call(dispatcher, arrays):
    """One warm request exactly as the pre-obs ``run`` paid it (the PR-5
    body, verbatim — same reconstruction as bench_obs_overhead)."""
    values = [np.asarray(a, dtype=np.float64) for a in arrays]
    sizes = dispatcher._infer.infer(values)
    variant, cost, plan = dispatcher.plan_for(sizes, validate=False)
    start = time.perf_counter()
    result = plan.replay(values)
    elapsed = time.perf_counter() - start
    with dispatcher._memo_lock:
        dispatcher.backend_executions[plan.backend] = (
            dispatcher.backend_executions.get(plan.backend, 0) + 1
        )
        dispatcher.last_execute_seconds = elapsed
        dispatcher.last_execute_at = time.monotonic()
    return DispatchOutcome(sizes, variant, cost, result)


def _interleaved_medians(fns: dict[str, object]) -> dict[str, float]:
    """Per-function median call time over per-call interleaved rounds."""
    for fn in fns.values():
        fn()  # warm lazy state (plans, cached observers) untimed
    samples: dict[str, list[float]] = {name: [] for name in fns}
    gc.collect()
    gc.disable()
    try:
        for _ in range(REPS):
            for name, fn in fns.items():
                start = time.perf_counter()
                fn()
                samples[name].append(time.perf_counter() - start)
    finally:
        gc.enable()
    return {name: statistics.median(times) for name, times in samples.items()}


def test_calibrated_beats_flops_on_skewed_machine(benchmark):
    """CI floor: feedback-directed dispatch >= MIN_SPEEDUP over FLOPs-only
    on a machine whose kernel rates the analytic model gets wrong."""
    assert not obs_trace.enabled()
    get_registry().reset()  # fresh kernel-rate windows for this scenario
    rng = np.random.default_rng(2026)
    chain = _triangular_chain()
    variants = essential_set(
        chain, training_instances=sample_instances(chain, 300, rng)
    )
    slow_kernel = "TRTRMM"
    assert any(_uses(v, slow_kernel) for v in variants)
    assert any(not _uses(v, slow_kernel) for v in variants)
    sizes = (160, 160, 160, 160)
    arrays = random_instance_arrays(chain, sizes, rng)
    machine = SkewedBackend(slow_kernel, SKEW)

    flops_only = Dispatcher(chain, variants, backend=machine)
    trapped = flops_only.run(arrays)
    assert _uses(trapped.variant, slow_kernel), (
        "the FLOP model must fall into the trap: its pick uses the kernel "
        "the machine runs slowly"
    )

    estimator = CalibratedEstimator(refresh_interval=0.0)
    calibrated = Dispatcher(
        chain,
        variants,
        backend=machine,
        calibration=estimator,
        reselect_ratio=RESELECT_RATIO,
    )
    obs_trace.enable()
    try:
        for _ in range(12):  # past the first checkpoint (8 executions)
            calibrated.run(arrays)
    finally:
        obs_trace.disable()
        obs_trace.drain()
    assert calibrated.reselections >= 1, calibrated.memo_stats()
    recovered = calibrated.run(arrays)
    assert not _uses(recovered.variant, slow_kernel), (
        "re-selection must swap to the variant that avoids the slow kernel"
    )

    timed = _interleaved_medians(
        {
            "flops": lambda: flops_only.run(arrays),
            "calibrated": lambda: calibrated.run(arrays),
        }
    )
    speedup = timed["flops"] / timed["calibrated"]
    emit(
        f"Feedback-directed dispatch: skewed machine (TRTRMM {SKEW}x slow)",
        f"flops-only  {timed['flops'] * 1e6:8.1f} us/call "
        f"({trapped.variant.name})\n"
        f"calibrated  {timed['calibrated'] * 1e6:8.1f} us/call "
        f"({recovered.variant.name}, "
        f"reselections={calibrated.reselections})\n"
        f"speedup     {speedup:.2f}x (floor {MIN_SPEEDUP}x, "
        f"ideal ~{(SKEW + 1) / 2:.1f}x)",
    )
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["skew"] = SKEW
    benchmark.extra_info["reselections"] = calibrated.reselections
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert speedup >= MIN_SPEEDUP, (
        f"calibrated dispatch is only {speedup:.2f}x faster than FLOPs-only "
        f"on the skewed machine (floor {MIN_SPEEDUP}x)"
    )


def test_feedback_overhead_within_budget(benchmark):
    """CI bound: warm dispatch with calibration + re-selection enabled
    (tracing off) stays within 15% of the pre-obs baseline."""
    assert not obs_trace.enabled()
    rng = np.random.default_rng(8)
    chain = _general_chain(10)
    train = sample_instances(chain, 300, rng)
    variants = essential_set(chain, training_instances=train)
    sizes = tuple(
        int(x) for x in sample_instances(chain, 1, rng, low=64, high=160)[0]
    )
    arrays = random_instance_arrays(chain, sizes, rng)

    plain = Dispatcher(chain, variants)
    feedback = Dispatcher(
        chain,
        variants,
        cost_estimator=CalibratedEstimator(),
        reselect_ratio=RESELECT_RATIO,
    )
    plain(*arrays)
    feedback(*arrays)

    timed = _interleaved_medians(
        {
            "baseline": lambda: _baseline_call(plain, arrays),
            "feedback": lambda: feedback.run(arrays),
        }
    )
    ratio = timed["feedback"] / timed["baseline"]
    emit(
        "Feedback-directed dispatch: warm overhead, tracing off",
        f"baseline {timed['baseline'] * 1e6:7.1f} us/call, "
        f"feedback {ratio:.3f}x (budget {OVERHEAD_BUDGET}x)",
    )
    benchmark.extra_info["overhead_ratio"] = round(ratio, 4)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert ratio <= OVERHEAD_BUDGET, (
        f"feedback-enabled warm dispatch costs {ratio:.3f}x the pre-obs "
        f"baseline (budget {OVERHEAD_BUDGET}x)"
    )

"""Long-chain compilation through the DP-seeded variant space.

The acceptance bar of the variant-space layer: an n=16 chain —
Catalan(15) ≈ 9.7M parenthesizations, hopeless to enumerate eagerly — must
compile through :class:`~repro.compiler.variant_space.DPSeededSpace` (the
``auto`` resolution for long chains) in well under
:data:`CEILING_SECONDS`, and the selected dispatch set must stay within a
measured penalty bound of the per-instance DP optimum on held-out
instances.  CI runs this file and fails on either regression — a ceiling
breach is the signature of eager Catalan enumeration sneaking back into
the pipeline.
"""

import time

import numpy as np
import pytest

from repro.compiler.dp import dp_optimal_cost
from repro.compiler.parenthesization import catalan
from repro.compiler.session import CompilerSession
from repro.experiments.sampling import sample_instances, sample_shapes

from conftest import emit

TRAIN = 300
HELD_OUT = 25

#: Wall-clock ceiling for one cold n=16 compile.  Measured ~0.5 s on a CI
#: runner; the 20x headroom absorbs machine noise but not a Catalan blowup.
CEILING_SECONDS = 10.0

#: Bounds on dispatched-cost / DP-optimal-cost over held-out instances
#: (measured: avg ≈ 1.02, max ≈ 1.08 across n = 16..20).
AVG_RATIO_BOUND = 1.25
MAX_RATIO_BOUND = 1.75


def long_chain(n: int):
    """A reproducible feature-rich chain of ``n`` matrices."""
    rng = np.random.default_rng(2026 + n)
    return sample_shapes(n, 1, rng, rectangular_probability=0.3)[0]


def compile_cold(chain):
    """One cold compile: fresh session, auto space (DP-seeded for long n)."""
    return CompilerSession().compile(chain, num_training_instances=TRAIN)


def held_out_ratios(chain, generated, count: int = HELD_OUT) -> np.ndarray:
    """Dispatched cost over DP-optimal cost on fresh validation instances."""
    rng = np.random.default_rng(7 * chain.n + 1)
    instances = sample_instances(chain, count, rng)
    ratios = []
    for q in instances:
        sizes = [int(s) for s in q]
        _, cost = generated.select(sizes)
        ratios.append(cost / dp_optimal_cost(chain, sizes))
    return np.asarray(ratios)


@pytest.mark.parametrize("n", (16, 18, 20))
def test_long_chain_compile(benchmark, n):
    """Cold-compile latency for chains far past the Catalan wall."""
    chain = long_chain(n)
    generated = benchmark.pedantic(compile_cold, args=(chain,), rounds=3, iterations=1)
    benchmark.extra_info["catalan_variants"] = catalan(n - 1)
    benchmark.extra_info["selected_variants"] = len(generated.variants)
    assert len(generated.variants) >= 1


def test_n16_under_ceiling_with_quality_bound():
    """The acceptance assertion: n=16 compiles in seconds, near-optimally.

    Runs as a plain test (no --benchmark-only) so CI always enforces it.
    """
    chain = long_chain(16)
    start = time.perf_counter()
    generated = compile_cold(chain)
    elapsed = time.perf_counter() - start
    ratios = held_out_ratios(chain, generated)
    emit(
        "Long-chain compilation (n=16, DP-seeded variant space)",
        "\n".join(
            [
                f"parenthesizations (eager): {catalan(15)}",
                f"compile wall time:         {elapsed:.3f} s (ceiling {CEILING_SECONDS} s)",
                f"selected variants:         {len(generated.variants)}",
                f"held-out avg ratio vs DP:  {ratios.mean():.4f} (bound {AVG_RATIO_BOUND})",
                f"held-out max ratio vs DP:  {ratios.max():.4f} (bound {MAX_RATIO_BOUND})",
            ]
        ),
    )
    assert elapsed < CEILING_SECONDS, (
        f"n=16 compile took {elapsed:.1f}s (ceiling {CEILING_SECONDS}s) — "
        "did eager Catalan enumeration sneak back in?"
    )
    assert ratios.mean() <= AVG_RATIO_BOUND
    assert ratios.max() <= MAX_RATIO_BOUND


def test_n20_compiles_and_stays_near_optimal():
    """The previously-impossible regime: n=20, Catalan(19) ≈ 1.77e9."""
    chain = long_chain(20)
    start = time.perf_counter()
    generated = compile_cold(chain)
    elapsed = time.perf_counter() - start
    ratios = held_out_ratios(chain, generated)
    emit(
        "Long-chain compilation (n=20, DP-seeded variant space)",
        f"compile {elapsed:.3f} s, avg ratio {ratios.mean():.4f}, "
        f"max ratio {ratios.max():.4f}",
    )
    assert elapsed < 3 * CEILING_SECONDS
    assert ratios.mean() <= AVG_RATIO_BOUND

"""Ablation A8: workspace requirements across variants.

Parenthesizations differ not only in FLOPs but in peak temporary memory;
the buffer planner quantifies both the spread across variants and the
savings of greedy buffer reuse over naive one-buffer-per-step allocation.
Also checks whether the FLOP-optimal variant is workspace-optimal (it
often is not — another axis a production code generator could dispatch on).
"""

import numpy as np
import pytest

from repro.compiler.memory import plan_memory
from repro.compiler.selection import all_variants
from repro.experiments.sampling import sample_instances, sample_shapes

from conftest import emit


def test_workspace_spread(benchmark):
    def sweep():
        rng = np.random.default_rng(21)
        rows = []
        disagreements = 0
        total = 0
        savings = []
        for chain in sample_shapes(7, 8, rng, rectangular_probability=0.5):
            variants = all_variants(chain)
            for q in sample_instances(chain, 5, rng, low=50, high=1000):
                q = tuple(int(x) for x in q)
                plans = [plan_memory(v, q) for v in variants]
                peaks = np.asarray([p.peak_bytes for p in plans], dtype=float)
                flops = np.asarray([v.flop_cost(q) for v in variants])
                total += 1
                if peaks[flops.argmin()] > peaks.min():
                    disagreements += 1
                savings.extend(p.reuse_savings for p in plans)
                rows.append(float(peaks.max() / max(peaks.min(), 1.0)))
        return rows, disagreements, total, float(np.mean(savings))

    spread, disagreements, total, mean_savings = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    spread = np.asarray(spread)
    emit(
        "Ablation A8: workspace across variants",
        f"peak-workspace spread (max/min across variants): "
        f"median {np.median(spread):.1f}x, max {spread.max():.1f}x\n"
        f"FLOP-optimal variant is NOT workspace-optimal on "
        f"{disagreements}/{total} instances\n"
        f"mean buffer-reuse savings vs naive allocation: "
        f"{100 * mean_savings:.0f}%",
    )
    assert spread.max() >= 1.0
    assert 0.0 <= mean_savings <= 1.0


def test_plan_memory_speed(benchmark):
    rng = np.random.default_rng(3)
    chain = sample_shapes(7, 1, rng, rectangular_probability=0.5)[0]
    variant = all_variants(chain)[0]
    q = tuple(int(x) for x in sample_instances(chain, 1, rng)[0])
    plan = benchmark(plan_memory, variant, q)
    assert plan.num_buffers >= 1

"""Ablation A2: expansion budget K vs achieved penalty (Section VI knob).

The user-tunable trade-off of the paper: each extra variant admitted by
Algorithm 1 lowers the penalty but grows code size and dispatch overhead.
This benchmark sweeps K and reports the average/max penalty reached, and
times a single greedy expansion step over the full candidate set.
"""

import numpy as np
import pytest

from repro.compiler.expansion import AveragePenalty, expand_set
from repro.compiler.selection import CostMatrix, all_variants, essential_set
from repro.experiments.sampling import sample_instances, sample_shapes

from conftest import emit


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(99)
    chain = sample_shapes(7, 1, rng, rectangular_probability=0.5)[0]
    variants = all_variants(chain)
    instances = sample_instances(chain, 2000, rng)
    matrix = CostMatrix(variants, instances)
    base = essential_set(chain, cost_matrix=matrix)
    return chain, matrix, base


def test_penalty_vs_budget(benchmark, setup):
    chain, matrix, base = setup
    sig_to_idx = {v.signature(): i for i, v in enumerate(matrix.variants)}

    def sweep():
        rows = []
        values = []
        for extra in range(0, 5):
            expanded = expand_set(matrix, base, max_size=len(base) + extra)
            idx = [sig_to_idx[v.signature()] for v in expanded]
            avg = matrix.average_penalty(idx)
            worst = matrix.max_penalty(idx)
            rows.append(
                f"K = |E_s|+{extra} ({len(expanded):2d} variants): "
                f"avg penalty {100 * avg:6.2f}%  max penalty {100 * worst:7.2f}%"
            )
            values.append(avg)
        return rows, values

    rows, values = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for earlier, later in zip(values, values[1:]):
        assert later <= earlier + 1e-12
    emit("Ablation A2: expansion budget vs penalty", "\n".join(rows))


def test_expansion_step_speed(benchmark, setup):
    chain, matrix, base = setup
    result = benchmark(expand_set, matrix, base, len(base) + 1, AveragePenalty)
    assert len(result) <= len(base) + 1

"""Ablation A1: run-time dispatch overhead vs chain length and set size.

Multi-versioning's run-time overhead is the per-call cost-function
evaluation plus the argmin (Section V motivates keeping the variant count
small because this overhead grows linearly with it).  This benchmark
measures dispatch latency for the Theorem 2 sets and for the full variant
enumeration, across chain lengths.
"""

import numpy as np
import pytest

from repro.compiler.dispatch import Dispatcher
from repro.compiler.selection import all_variants, essential_set
from repro.experiments.sampling import sample_instances, sample_shapes

from conftest import emit


def _setup(n: int, full: bool):
    rng = np.random.default_rng(n)
    chain = sample_shapes(n, 1, rng, rectangular_probability=0.5)[0]
    if full:
        variants = all_variants(chain)
    else:
        train = sample_instances(chain, 300, rng)
        variants = essential_set(chain, training_instances=train)
    # memo_capacity=0: this ablation measures the *cost sweep* itself, so
    # the size-keyed dispatch memo (which would answer every repeat in
    # ~1 us regardless of set size) is disabled; bench_runtime_hot_path.py
    # covers the memoized steady state.
    dispatcher = Dispatcher(chain, variants, memo_capacity=0)
    sizes = tuple(int(x) for x in sample_instances(chain, 1, rng)[0])
    return dispatcher, sizes


@pytest.mark.parametrize("n", [3, 5, 7, 10])
def test_dispatch_essential_set(benchmark, n):
    dispatcher, sizes = _setup(n, full=False)
    benchmark(dispatcher.select, sizes)
    benchmark.extra_info["variants"] = len(dispatcher)


@pytest.mark.parametrize("n", [3, 5, 7])
def test_dispatch_full_enumeration(benchmark, n):
    dispatcher, sizes = _setup(n, full=True)
    benchmark(dispatcher.select, sizes)
    benchmark.extra_info["variants"] = len(dispatcher)


def test_overhead_grows_with_set_size(benchmark):
    """Sanity: selecting among C_{n-1} variants evaluates C_{n-1} costs."""
    import time

    def sweep():
        rows = []
        for n in (4, 6, 8):
            dispatcher, sizes = _setup(n, full=True)
            start = time.perf_counter()
            reps = 200
            for _ in range(reps):
                dispatcher.select(sizes)
            elapsed = (time.perf_counter() - start) / reps
            rows.append(
                f"n={n}: {len(dispatcher):4d} variants, "
                f"{elapsed * 1e6:8.1f} us/dispatch"
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Ablation A1: dispatch overhead", "\n".join(rows))

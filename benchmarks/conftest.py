"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (or an
ablation declared in DESIGN.md).  Reproduced rows are attached to the
pytest-benchmark ``extra_info`` and printed, so running::

    pytest benchmarks/ --benchmark-only -s

shows the regenerated artifacts alongside the timings.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(2026)


def emit(title: str, body: str) -> None:
    """Print a reproduced artifact block (visible with -s)."""
    print()
    print(f"==== {title} ====")
    print(body)

"""Ablation A5: compile-time and code-size scaling vs chain length.

Regenerates the motivation table for multi-versioning with small sets:
Catalan-many candidate variants vs the linear fanning-out set vs the
class-bounded essential set, with measured compile times and emitted C++
sizes.
"""

import pytest

from repro.experiments.scaling import format_scaling_table, run_scaling_study

from conftest import emit


def test_scaling_study(benchmark):
    rows = benchmark.pedantic(
        lambda: run_scaling_study(n_values=(3, 4, 5, 6, 7), shapes_per_n=2),
        rounds=1,
        iterations=1,
    )
    emit("Ablation A5: compile-time/code-size scaling", format_scaling_table(rows))

    by_n = {row.n: row for row in rows}
    # Catalan growth vs linear fanning-out growth.
    assert by_n[7].parenthesizations == 132
    assert by_n[7].fanning_out == 8
    for row in rows:
        assert row.avg_essential <= row.fanning_out
        assert row.essential_cpp_lines <= row.full_cpp_lines
    # Full-enumeration code size explodes relative to the essential set.
    assert by_n[7].full_cpp_lines > 5 * by_n[7].essential_cpp_lines

"""Ablation A3: run-time DP search vs compile-time enumeration.

The paper's alternative to multi-versioning is searching for the optimal
sequence at run time (the Linnea approach), which it rejects for latency
reasons.  This benchmark quantifies that: the per-instance cost of the
generalized-chain dynamic program vs the (amortized, compile-time)
enumeration, and vs a single dispatch.
"""

import numpy as np
import pytest

from repro.compiler.dispatch import Dispatcher
from repro.compiler.dp import dp_optimal_cost
from repro.compiler.selection import all_variants, essential_set, optimal_cost
from repro.experiments.sampling import sample_instances, sample_shapes

from conftest import emit


@pytest.fixture(scope="module", params=[4, 6, 8])
def chain_and_instance(request):
    n = request.param
    rng = np.random.default_rng(n)
    chain = sample_shapes(n, 1, rng, rectangular_probability=0.5)[0]
    sizes = tuple(int(x) for x in sample_instances(chain, 1, rng)[0])
    return n, chain, sizes


def test_dp_search_latency(benchmark, chain_and_instance):
    n, chain, sizes = chain_and_instance
    cost = benchmark(dp_optimal_cost, chain, sizes)
    assert cost > 0
    benchmark.extra_info["n"] = n


def test_enumeration_latency(benchmark, chain_and_instance):
    n, chain, sizes = chain_and_instance
    cost = benchmark(optimal_cost, chain, sizes)
    assert cost > 0
    benchmark.extra_info["n"] = n


def test_dispatch_latency(benchmark, chain_and_instance):
    """The multi-versioning alternative: amortized compile, cheap dispatch."""
    n, chain, sizes = chain_and_instance
    rng = np.random.default_rng(0)
    train = sample_instances(chain, 300, rng)
    dispatcher = Dispatcher(chain, essential_set(chain, training_instances=train))
    benchmark(dispatcher.select, sizes)
    benchmark.extra_info["n"] = n


def test_dp_agrees_with_enumeration(benchmark):
    def sweep():
        rows = []
        for n in (4, 5, 6, 7):
            rng = np.random.default_rng(n * 13)
            chain = sample_shapes(n, 1, rng, rectangular_probability=0.5)[0]
            agree = 0
            total = 10
            for q in sample_instances(chain, total, rng, low=2, high=500):
                dp = dp_optimal_cost(chain, tuple(q))
                enum = optimal_cost(chain, tuple(q))
                assert dp <= enum * (1 + 1e-9) + 1e-9
                if abs(dp - enum) <= 1e-9 * max(1.0, enum):
                    agree += 1
            rows.append(f"n={n}: DP == enumeration on {agree}/{total} instances")
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Ablation A3: DP vs enumeration agreement", "\n".join(rows))

"""Runtime hot path: memoized dispatch+execute vs the pre-refactor path.

PR 5 turned the per-request path into a real runtime (`repro.runtime`):
an `ExecutionPlan` compiled once per `(variant, sizes)` — kernel impls
resolved, call configs baked in, buffer refs flattened to slots — behind
a size-keyed dispatch memo, with sizes inferred (and shapes validated)
exactly once per call.

The **pre-refactor path**, reconstructed faithfully here, paid per call:
a full cost-matrix sweep with per-row instance validation, a second
``infer_sizes`` inside ``execute_variant(check_shapes=True)``, per-step
kernel dict lookups and ``KernelCallConfig`` construction, and
``("step", i)`` dict buffer addressing.

The acceptance test asserts the memoized runtime answers repeated
same-size dispatch+execute requests >= 5x faster (bit-identical results);
CI runs it on every push alongside the timed benchmarks.
"""

import time

import numpy as np
import pytest

from repro.compiler.selection import essential_set
from repro.experiments.sampling import sample_instances, sample_shapes
from repro.ir.chain import Chain
from repro.ir.features import Property, Structure
from repro.ir.matrix import Matrix
from repro.ir.operand import Operand
from repro.runtime import (
    Dispatcher,
    execute_variant,
    infer_sizes,
    random_instance_arrays,
)

from conftest import emit

#: The CI acceptance bound on repeated same-size dispatch+execute.
REQUIRED_SPEEDUP = 5.0


def _general_chain(n: int) -> Chain:
    return Chain(
        tuple(
            Operand(Matrix(f"M{i}", Structure.GENERAL, Property.SINGULAR))
            for i in range(n)
        )
    )


def _setup(chain, rng, low=4, high=16):
    train = sample_instances(chain, 300, rng)
    variants = essential_set(chain, training_instances=train)
    sizes = tuple(int(x) for x in sample_instances(chain, 1, rng, low=low, high=high)[0])
    arrays = random_instance_arrays(chain, sizes, rng)
    return variants, sizes, arrays


def _pre_refactor_call(chain, dispatcher, arrays):
    """One request exactly as the pre-runtime Dispatcher.__call__ paid it.

    ``dispatcher`` must have ``memo_capacity=0`` so ``select`` performs the
    historical full sweep (with per-row validation); ``execute_variant``
    with ``check_shapes=True`` then re-infers and re-validates, which is
    the double size inference PR 5 removed.
    """
    sizes = infer_sizes(chain, [np.asarray(a) for a in arrays])
    variant, _ = dispatcher.select(sizes)
    return execute_variant(variant, list(arrays), check_shapes=True)


def _measure(fn, reps: int) -> float:
    fn()  # warm any lazy state outside the timed window
    start = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - start) / reps


def test_repeated_dispatch_acceptance(benchmark):
    """CI bound: the warm runtime is >= 5x the pre-refactor per-call path."""
    rng = np.random.default_rng(2026)
    rows = []
    worst = float("inf")
    for n in (8, 10):
        chain = _general_chain(n)
        variants, sizes, arrays = _setup(chain, rng)
        runtime = Dispatcher(chain, variants)
        legacy = Dispatcher(chain, variants, memo_capacity=0)
        # Identical answers before timing anything.
        np.testing.assert_array_equal(
            runtime(*arrays), _pre_refactor_call(chain, legacy, arrays)
        )
        reps = 300
        t_old = _measure(
            lambda: _pre_refactor_call(chain, legacy, arrays), reps
        )
        t_new = _measure(lambda: runtime(*arrays), reps)
        speedup = t_old / t_new
        worst = min(worst, speedup)
        rows.append(
            f"n={n:2d}: {len(variants):2d} variants, "
            f"pre-refactor {t_old * 1e6:8.1f} us/call, "
            f"runtime {t_new * 1e6:8.1f} us/call, {speedup:5.1f}x"
        )
    emit("Runtime hot path: repeated same-size dispatch+execute", "\n".join(rows))
    benchmark.extra_info["worst_speedup"] = round(worst, 2)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert worst >= REQUIRED_SPEEDUP, (
        f"memoized runtime is only {worst:.1f}x the pre-refactor path "
        f"(required >= {REQUIRED_SPEEDUP}x):\n" + "\n".join(rows)
    )


@pytest.mark.parametrize("n", [5, 8, 10])
def test_warm_dispatch_execute(benchmark, n):
    """Timed: the steady-state per-call path (memo hit + plan replay)."""
    rng = np.random.default_rng(n)
    chain = _general_chain(n)
    variants, sizes, arrays = _setup(chain, rng)
    dispatcher = Dispatcher(chain, variants)
    dispatcher(*arrays)  # compile the plan
    benchmark(dispatcher, *arrays)
    benchmark.extra_info["variants"] = len(variants)
    benchmark.extra_info["memo"] = dispatcher.memo_stats()


@pytest.mark.parametrize("n", [5, 8, 10])
def test_pre_refactor_dispatch_execute(benchmark, n):
    """Timed: the reconstructed per-call path the refactor replaced."""
    rng = np.random.default_rng(n)
    chain = _general_chain(n)
    variants, sizes, arrays = _setup(chain, rng)
    dispatcher = Dispatcher(chain, variants, memo_capacity=0)
    benchmark(lambda: _pre_refactor_call(chain, dispatcher, arrays))
    benchmark.extra_info["variants"] = len(variants)


def test_execute_many_batched(benchmark):
    """Timed: batched execution shares one sweep across distinct sizes."""
    rng = np.random.default_rng(7)
    chain = sample_shapes(6, 1, rng, rectangular_probability=0.5)[0]
    train = sample_instances(chain, 300, rng)
    variants = essential_set(chain, training_instances=train)
    dispatcher = Dispatcher(chain, variants)
    batches = []
    for q in sample_instances(chain, 16, rng, low=4, high=16):
        batches.append(
            random_instance_arrays(chain, tuple(int(x) for x in q), rng)
        )
    benchmark(dispatcher.execute_many, batches)
    benchmark.extra_info["instances"] = len(batches)
    benchmark.extra_info["memo"] = dispatcher.memo_stats()

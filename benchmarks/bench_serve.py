"""Compilation-service throughput: coalesced vs. naive, client latency.

The serve subsystem's acceptance bar: on a 16-duplicate workload
(structurally identical chains under different matrix names), the
coalescing :class:`~repro.serve.service.CompileService` must beat naive
sequential compilation by >= 5x — N requests collapse into one pipeline
execution plus N cheap rebinds.  The concurrent-client benchmark records
the p50/p99 request latency under a mixed multi-client load, which CI
tracks alongside the cache-hit benchmark.
"""

import threading
import time

import numpy as np
import pytest

from repro.compiler.session import CompilerSession
from repro.experiments.sampling import sample_shapes
from repro.ir.chain import Chain
from repro.ir.matrix import Matrix
from repro.ir.operand import Operand
from repro.serve import CompileService

from conftest import emit

TRAIN = 300
DUPLICATES = 16


@pytest.fixture(scope="module")
def chain6():
    rng = np.random.default_rng(23)
    return sample_shapes(6, 1, rng, rectangular_probability=0.5)[0]


def renamed(chain: Chain, prefix: str) -> Chain:
    """A structurally identical chain under fresh matrix names.

    Repeated matrices keep their sharing pattern (same old name -> same new
    name), so the structural key — and therefore the coalescing behaviour —
    matches the original exactly.
    """
    mapping: dict[str, Matrix] = {}
    operands = []
    for operand in chain:
        matrix = operand.matrix
        if matrix.name not in mapping:
            mapping[matrix.name] = Matrix(
                f"{prefix}{len(mapping)}", matrix.structure, matrix.prop
            )
        operands.append(Operand(mapping[matrix.name], operand.op))
    return Chain(tuple(operands))


def duplicate_workload(chain6, tag: str) -> list[Chain]:
    return [renamed(chain6, f"{tag}{i}_") for i in range(DUPLICATES)]


def naive_sequential(chains) -> list:
    """The baseline a service replaces: one cold session per request."""
    return [
        CompilerSession().compile(chain, num_training_instances=TRAIN)
        for chain in chains
    ]


def serve_workload(chains) -> list:
    with CompileService(workers=4, warm=False) as service:
        futures = [
            service.submit(chain, num_training_instances=TRAIN)
            for chain in chains
        ]
        return [future.result(timeout=120) for future in futures]


def test_naive_sequential_16_duplicates(benchmark, chain6):
    """Baseline: 16 structurally identical chains, cold-compiled one by one."""
    counter = iter(range(10**6))

    def run():
        return naive_sequential(duplicate_workload(chain6, f"N{next(counter)}_"))

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(results) == DUPLICATES


def test_service_coalesced_16_duplicates(benchmark, chain6):
    """Coalesced: the same workload through one CompileService."""
    counter = iter(range(10**6))

    def run():
        return serve_workload(duplicate_workload(chain6, f"S{next(counter)}_"))

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(results) == DUPLICATES


def test_coalesced_throughput_at_least_5x_naive(chain6):
    """The acceptance criterion, asserted in-process on one machine.

    Three independent rounds, best speedup wins: a single round is at the
    mercy of scheduler noise (isolated runs measure 10-14x, but a noisy
    neighbour can squeeze one round toward the bar), while the *capability*
    the criterion checks — N duplicates collapse into one pipeline run —
    shows in the best round.
    """
    best = None
    for round_index in range(3):
        naive_chains = duplicate_workload(chain6, f"AN{round_index}_")
        served_chains = duplicate_workload(chain6, f"AS{round_index}_")

        start = time.perf_counter()
        naive_results = naive_sequential(naive_chains)
        naive_seconds = time.perf_counter() - start

        with CompileService(workers=4, warm=False) as service:
            start = time.perf_counter()
            futures = [
                service.submit(chain, num_training_instances=TRAIN)
                for chain in served_chains
            ]
            served_results = [future.result(timeout=120) for future in futures]
            served_seconds = time.perf_counter() - start
            snapshot = service.metrics.snapshot()

        # Correctness every round: each caller got the same compilation,
        # rebound to its own names.
        reference = [v.signature() for v in naive_results[0].variants]
        for generated in served_results:
            assert [v.signature() for v in generated.variants] == reference

        speedup = naive_seconds / served_seconds
        if best is None or speedup > best[0]:
            best = (speedup, naive_seconds, served_seconds, snapshot)

    speedup, naive_seconds, served_seconds, snapshot = best
    emit(
        f"serve throughput ({DUPLICATES}-duplicate workload, n=6, train={TRAIN})",
        f"naive sequential: {naive_seconds:.3f}s\n"
        f"coalesced service: {served_seconds:.3f}s\n"
        f"speedup: {speedup:.1f}x (best of 3 rounds)\n"
        f"coalesced {snapshot['coalesced']}/{snapshot['requests']} requests "
        f"(pipeline executions: {snapshot['compiled']})\n"
        f"p50 {snapshot['p50_ms']:.2f}ms  p99 {snapshot['p99_ms']:.2f}ms",
    )
    # Coalescing + caching collapse 16 compilations into very few pipeline
    # runs: the acceptance bar is a conservative 5x.
    assert speedup >= 5.0, (
        f"coalesced throughput only {speedup:.1f}x naive "
        f"(naive {naive_seconds:.3f}s vs served {served_seconds:.3f}s)"
    )


def test_concurrent_client_latency(benchmark, chain6):
    """8 client threads, mixed duplicate/distinct load, one shared service."""
    rng = np.random.default_rng(7)
    distinct = sample_shapes(5, 4, rng, rectangular_probability=0.5)

    def one_client(service, tag):
        # Each client sends 4 requests: 2 duplicates of the hot chain,
        # 2 of its own distinct structures.
        futures = [
            service.submit(renamed(chain6, f"{tag}a_"), num_training_instances=TRAIN),
            service.submit(renamed(chain6, f"{tag}b_"), num_training_instances=TRAIN),
            service.submit(distinct[hash(tag) % 4], num_training_instances=TRAIN),
            service.submit(distinct[(hash(tag) + 1) % 4], num_training_instances=TRAIN),
        ]
        for future in futures:
            future.result(timeout=120)

    counter = iter(range(10**6))

    def run():
        with CompileService(workers=4, warm=False) as service:
            tag = next(counter)
            threads = [
                threading.Thread(target=one_client, args=(service, f"C{tag}_{i}_"))
                for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            return service.metrics.snapshot()

    snapshot = benchmark.pedantic(run, rounds=3, iterations=1)
    emit(
        "serve concurrent-client latency (8 clients x 4 requests)",
        f"requests: {snapshot['requests']}  "
        f"coalesce_rate: {snapshot['coalesce_rate']:.1%}\n"
        f"p50 {snapshot['p50_ms']:.2f}ms  p99 {snapshot['p99_ms']:.2f}ms",
    )
    assert snapshot["requests"] == 32
    assert snapshot["errors"] == 0

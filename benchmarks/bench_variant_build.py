"""Compile-time costs: variant construction and full enumeration.

Multi-versioning shifts work to compile time; this benchmark quantifies it:
building one variant (the four-step procedure of Section IV), enumerating
all C_{n-1} variants, and emitting the C++ translation unit.
"""

import numpy as np
import pytest

from repro.codegen.cpp_emitter import emit_cpp
from repro.compiler.parenthesization import enumerate_trees, left_to_right_tree
from repro.compiler.selection import all_variants, essential_set
from repro.compiler.variant import build_variant
from repro.experiments.sampling import sample_instances, sample_shapes

from conftest import emit


@pytest.fixture(scope="module")
def chain7():
    rng = np.random.default_rng(17)
    return sample_shapes(7, 1, rng, rectangular_probability=0.5)[0]


def test_build_single_variant(benchmark, chain7):
    tree = left_to_right_tree(7)
    variant = benchmark(build_variant, chain7, tree)
    assert len(variant.steps) == 6


def test_enumerate_all_variants(benchmark, chain7):
    variants = benchmark(all_variants, chain7)
    assert len(variants) == 132


def test_emit_cpp_translation_unit(benchmark, chain7):
    rng = np.random.default_rng(1)
    train = sample_instances(chain7, 300, rng)
    selected = essential_set(chain7, training_instances=train)
    source = benchmark(emit_cpp, chain7, selected)
    assert "dispatch" in source.lower() or "best" in source


def test_code_size_scaling(benchmark):
    """Generated code size grows linearly with the variant count."""
    rng = np.random.default_rng(2)
    chain = sample_shapes(6, 1, rng, rectangular_probability=0.5)[0]
    variants = all_variants(chain)

    def sweep():
        rows, sizes = [], []
        for k in (1, 2, 4, 8):
            source = emit_cpp(chain, variants[:k])
            lines = len(source.splitlines())
            rows.append(f"{k:2d} variants -> {lines:5d} lines of C++")
            sizes.append(lines)
        return rows, sizes

    rows, sizes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert sizes == sorted(sizes) and len(set(sizes)) == len(sizes)
    emit("Code-size overhead vs variant count", "\n".join(rows))

"""Ablation A9: empirical kernel coverage (Table I "Associations" census).

Counts which kernels the compiler emits over the experiment shape space:
every Table I kernel family should appear somewhere (no dead table rows),
with GEMM and the triangular kernels dominating, and the expensive
GESYSV/GETRSV appearing only for singular-triangular neighbours.
"""

import pytest

from repro.experiments.coverage import census_of_option_space

from conftest import emit


def test_kernel_census(benchmark):
    census = benchmark.pedantic(
        lambda: census_of_option_space(3, sample=None),  # all 271 shapes
        rounds=1,
        iterations=1,
    )
    emit(
        "Ablation A9: kernel usage census (all n=3 shapes, all variants)",
        census.format_table(),
    )
    # Every shape yields n-1 = 2 calls per variant, 2 variants per shape,
    # plus occasional explicit-inversion fix-ups.
    assert census.shapes == 10**3 - 9**3
    assert census.variants == 2 * census.shapes
    assert census.total_calls >= 4 * census.shapes

    # The workhorse kernels all appear...
    for kernel in ("GEMM", "TRMM", "SYMM", "TRSM", "POGESV", "GEGESV"):
        assert census.counts[kernel] > 0, kernel
    # ...and TRMM dominates (six of the ten options are triangular),
    # with GEMM among the top three.
    ranked = [name for name, _ in census.counts.most_common(3)]
    assert ranked[0] == "TRMM"
    assert "GEMM" in ranked

    # Kernels that require symmetric non-SPD coefficients/RHS cannot appear
    # in the 10-option space (it has no plain-symmetric option).
    unused = set(census.unused_kernels())
    assert "SYGESV" in unused and "SYSYSV" in unused

    # Diagonal extension kernels cannot appear either.
    assert "DIMM" in unused


def test_census_larger_sample(benchmark):
    census = benchmark.pedantic(
        lambda: census_of_option_space(6, sample=40, seed=1),
        rounds=1,
        iterations=1,
    )
    emit(
        "Ablation A9b: kernel census, sampled n=6 shapes",
        census.format_table(top=12),
    )
    assert census.total_calls > 0
    assert 0.0 <= census.frequency("GEMM") <= 1.0

"""Ablation A6: distribution shift between tuning and deployment sizes.

Theorem 2's penalty bound is distribution-free; the greedy expansion's
extra edge is tuned to the training distribution.  This ablation selects on
small sizes and validates far outside the training range, checking that the
base set's worst case stays bounded everywhere.
"""

import pytest

from repro.experiments.robustness import run_shift_study

from conftest import emit


def test_distribution_shift(benchmark):
    results = benchmark.pedantic(
        lambda: run_shift_study(
            n=6,
            num_shapes=6,
            train_instances=600,
            val_instances=150,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "Ablation A6: training/validation distribution shift",
        "\n".join(result.summary() for result in results),
    )

    by_label = {result.label: result for result in results}
    # The theory bound holds on every range, trained or not.
    for result in results:
        assert result.ratios["Es"].max() <= 16.0
        assert result.ratios["Es1"].max() <= 16.0
    # Expansion helps in distribution (it was tuned there).
    in_dist = by_label["in-distribution"]
    assert (
        in_dist.ratios["Es1"].mean() <= in_dist.ratios["Es"].mean() + 1e-9
    )

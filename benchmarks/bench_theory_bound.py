"""Ablation A4: empirical check of the Section V theory bounds.

Lemma 2 guarantees ``T(E_m, q) < 2 alpha-hat T_opt`` with ``alpha-hat <= 8``
(so at most 16x), and Theorem 1 a total penalty of at most 15 for the
fanning-out set.  The paper observes the bound is "in general very
pessimistic": the base sets stay within ~2x in practice.  This benchmark
measures the worst observed factor across a seeded sweep and times the
essential-set construction.
"""

import numpy as np
import pytest

from repro.compiler.selection import (
    LEMMA2_FACTOR,
    all_variants,
    essential_set,
    fanning_out_variants,
)
from repro.experiments.sampling import sample_instances, sample_shapes

from conftest import emit


def test_lemma2_bound_sweep(benchmark):
    def sweep():
        rng = np.random.default_rng(0)
        worst_fanning = 0.0
        worst_es = 0.0
        shapes = sample_shapes(6, 15, rng, rectangular_probability=0.5)
        for chain in shapes:
            variants = all_variants(chain)
            instances = sample_instances(chain, 100, rng, low=2, high=1000)
            costs = np.stack([v.flop_cost_many(instances) for v in variants])
            opt = costs.min(axis=0)
            sig_to_idx = {v.signature(): i for i, v in enumerate(variants)}

            fanning_idx = [
                sig_to_idx[v.signature()]
                for v in fanning_out_variants(chain).values()
            ]
            ratio_f = (costs[fanning_idx].min(axis=0) / opt).max()
            worst_fanning = max(worst_fanning, float(ratio_f))

            train = sample_instances(chain, 300, rng, low=2, high=1000)
            selected = essential_set(chain, training_instances=train)
            es_idx = [sig_to_idx[v.signature()] for v in selected]
            ratio_s = (costs[es_idx].min(axis=0) / opt).max()
            worst_es = max(worst_es, float(ratio_s))
        return worst_fanning, worst_es

    worst_fanning, worst_es = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert worst_fanning <= LEMMA2_FACTOR
    assert worst_es <= LEMMA2_FACTOR
    emit(
        "Ablation A4: Lemma 2 / Theorem 2 bound check",
        f"worst observed fanning-out factor: {worst_fanning:.3f} (bound 16)\n"
        f"worst observed E_s factor        : {worst_es:.3f} (bound 16)\n"
        f"paper's observation: E_s below 2.1 on all tested instances",
    )
    # The paper's empirical observation at benchmark scale (generous slack).
    assert worst_es <= 4.0


def test_essential_set_construction_speed(benchmark):
    rng = np.random.default_rng(5)
    chain = sample_shapes(7, 1, rng, rectangular_probability=0.5)[0]
    train = sample_instances(chain, 1000, rng)

    def build():
        return essential_set(chain, training_instances=train)

    selected = benchmark(build)
    assert 1 <= len(selected) <= chain.n + 1

"""C-emitter backend: native step loops vs per-step BLAS dispatch.

PR 9 adds the ``c`` execution backend (``repro.runtime.backends.cemit``):
each frozen execution plan is code-generated as a CPython extension whose
single native function walks the step list through cython_blas/lapack
function pointers, with every transpose/side/triangularity flag and
leading dimension resolved to a constant at emit time.  The win is zero
Python interpretation per step — exactly where long chains of *small*
operands spend their time.  Shared objects live in a bounded on-disk
codegen cache, so a warm deployment never re-invokes the compiler.

CI gates (skipped when no C toolchain or capsules are available):

* warm dispatch+execute with ``c`` >= 1.5x over ``blas`` on a 10-matrix
  chain of small operands (sizes <= 64, Python-overhead dominated);
* no regression (>= 0.95x of ``blas``) at n=1024 where BLAS time
  dominates and the native loop can only win on call overhead;
* a second invocation in a fresh process hits the codegen disk cache:
  zero compiler invocations, asserted via the obs counters.
"""

import functools
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import compile_chain
from repro.runtime import cemit_available, random_instance_arrays

from conftest import emit

#: CI acceptance bounds: c vs blas warm dispatch+execute.
REQUIRED_SMALL_SPEEDUP = 1.5
REQUIRED_LARGE_RATIO = 0.95

needs_cemit = pytest.mark.skipif(
    not cemit_available(),
    reason="C toolchain or scipy cython capsules unavailable",
)

#: The gate chain: 10 general matrices — 9 GEMM steps, so the per-step
#: Python overhead of the blas backend is paid nine times per replay
#: while the native loop pays one function call total.
N_MATRICES = 10
GATE_SOURCE = (
    "; ".join(f"Matrix A{i} <General, Singular>" for i in range(N_MATRICES))
    + "; R := "
    + " * ".join(f"A{i}" for i in range(N_MATRICES))
    + ";"
)

#: Right-hand-side width at n=1024 (keeps each step ~1024^2 x RHS_COLS).
RHS_COLS = 64


@functools.lru_cache(maxsize=None)
def _compiled():
    return compile_chain(GATE_SOURCE, num_training_instances=20, use_cache=False)


def _instance(n: int, rhs: int):
    gen = _compiled()
    sizes = (n,) * (gen.chain.n) + (rhs,)
    arrays = random_instance_arrays(gen.chain, sizes, np.random.default_rng(n))
    return gen, sizes, arrays


def _measure_pair(fn_a, fn_b, reps: int) -> tuple[float, float]:
    """Best-of-``reps`` for both callables, interleaved.

    Alternating the two timed calls keeps slow drift (thermal throttling,
    another process waking up) from landing entirely on one side — the
    failure mode of timing all of A before any of B.
    """
    fn_a()  # warm: memoized plan, loaded shared object, page-warm buffers
    fn_b()
    best_a = best_b = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def _runtimes(gen, sizes, arrays):
    """Warm (c, blas) dispatchers with verified plans and matching answers."""
    c_runtime = gen.program.runtime(backend="c")
    blas_runtime = gen.program.runtime(backend="blas")
    _, _, c_plan = c_runtime.plan_for(sizes)
    assert c_plan.backend == "c", "gate chain did not lower natively"
    np.testing.assert_allclose(
        c_runtime(*arrays), blas_runtime(*arrays), rtol=1e-9, atol=1e-9
    )
    return c_runtime, blas_runtime


@needs_cemit
def test_c_backend_small_operand_acceptance(benchmark):
    """CI bound: c >= 1.5x blas warm dispatch+execute at sizes <= 64."""
    gen, sizes, arrays = _instance(16, 16)
    c_runtime, blas_runtime = _runtimes(gen, sizes, arrays)
    t_blas, t_c = _measure_pair(
        lambda: blas_runtime(*arrays), lambda: c_runtime(*arrays), reps=200
    )
    speedup = t_blas / t_c
    emit(
        f"C backend: {N_MATRICES}-matrix chain, small operands (n=16)",
        f"blas {t_blas * 1e6:8.1f} us/call, c {t_c * 1e6:8.1f} us/call, "
        f"{speedup:5.2f}x",
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert speedup >= REQUIRED_SMALL_SPEEDUP, (
        f"c backend is only {speedup:.2f}x blas on the small-operand chain "
        f"(required >= {REQUIRED_SMALL_SPEEDUP}x)"
    )


@needs_cemit
def test_c_backend_large_operand_no_regression(benchmark):
    """CI bound: c >= 0.95x blas at n=1024 (BLAS time dominates)."""
    gen, sizes, arrays = _instance(1024, RHS_COLS)
    c_runtime, blas_runtime = _runtimes(gen, sizes, arrays)
    t_blas, t_c = _measure_pair(
        lambda: blas_runtime(*arrays), lambda: c_runtime(*arrays), reps=5
    )
    ratio = t_blas / t_c
    emit(
        f"C backend: {N_MATRICES}-matrix chain at n=1024, rhs={RHS_COLS}",
        f"blas {t_blas * 1e3:8.2f} ms/call, c {t_c * 1e3:8.2f} ms/call, "
        f"{ratio:5.2f}x",
    )
    benchmark.extra_info["ratio"] = round(ratio, 2)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert ratio >= REQUIRED_LARGE_RATIO, (
        f"c backend regressed to {ratio:.2f}x blas at n=1024 "
        f"(required >= {REQUIRED_LARGE_RATIO}x)"
    )


#: Run in a fresh interpreter: build a native plan for a fixed chain and
#: report the process's codegen counters as JSON.
_CHILD = r"""
import json, sys
from repro.api import compile_chain
from repro.obs import get_registry
from repro.runtime import cemit_available
from repro.runtime.codegen_cache import get_codegen_cache

if not cemit_available():
    print(json.dumps({"skip": True}))
    sys.exit(0)
source = (
    "Matrix A <General, Singular>; Matrix B <General, Singular>; "
    "Matrix C <General, Singular>; R := A * B * C;"
)
gen = compile_chain(source, num_training_instances=10, use_cache=False)
_, _, plan = gen.program.runtime(backend="c").plan_for([24, 24, 24, 24])
stats = get_codegen_cache().stats()
print(json.dumps({
    "backend": plan.backend,
    "compiles_counter": get_registry().counter(
        "runtime.codegen_compiles").value,
    "cache_compiles": stats["compiles"],
    "cache_hits": stats["hits"],
    "cache_misses": stats["misses"],
}))
"""


@needs_cemit
def test_fresh_process_hits_codegen_disk_cache(tmp_path, benchmark):
    """CI bound: the second process never invokes the compiler."""
    env = dict(os.environ)
    env["REPRO_CODEGEN_CACHE_DIR"] = str(tmp_path / "codegen")
    src_dir = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH")) if p
    )

    def run_child():
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        return json.loads(proc.stdout.strip().splitlines()[-1])

    first = run_child()
    assert first["backend"] == "c"
    assert first["compiles_counter"] == 1, first
    assert first["cache_misses"] == 1, first
    second = run_child()
    assert second["backend"] == "c"
    # The whole point of the disk tier: zero compiler invocations.
    assert second["compiles_counter"] == 0, second
    assert second["cache_compiles"] == 0, second
    assert second["cache_hits"] == 1, second
    emit(
        "C backend: codegen disk cache across processes",
        f"first process compiles={first['compiles_counter']}, "
        f"second process compiles={second['compiles_counter']} "
        f"hits={second['cache_hits']}",
    )
    benchmark.extra_info["second_process_compiles"] = second["compiles_counter"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

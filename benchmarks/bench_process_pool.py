"""Thread vs process worker pools on CPU-bound compile fan-out.

The serving layer's thread pool overlaps I/O and coalescing, but the
compile pipeline is CPU-bound Python: on a workload of *distinct*
structures (no coalescing, no cache hits) the GIL serializes thread-mode
workers.  ``workers_mode="process"`` fans the pipeline out to worker
processes and ships :class:`~repro.compiler.program.CompiledProgram`
artifacts back over pipes.

Acceptance bar (ISSUE 4, asserted in CI on multi-core runners): process
mode reaches >= 2x thread-mode throughput on >= 8 distinct n >= 12
structures.  Single-core machines skip the assertion — there is no
parallel speedup to measure without a second core.
"""

import os
import time

import numpy as np
import pytest

from repro.experiments.sampling import sample_shapes
from repro.serve import CompileService

from conftest import emit

CHAINS = 8
N = 12
TRAIN = 300
WORKERS = max(2, min(4, os.cpu_count() or 1))


def distinct_workload(seed: int):
    rng = np.random.default_rng(seed)
    chains = sample_shapes(N, CHAINS, rng, rectangular_probability=0.5)
    assert len(chains) == CHAINS
    return chains


def run_mode(mode: str, chains, workers: int = WORKERS) -> float:
    """Wall seconds to compile the workload through a warmed service.

    ``use_cache=False`` keeps every request a real pipeline execution
    (worker-process caches included), so repeated rounds measure compile
    throughput, not cache hits.  Pool startup is excluded via prestart():
    the comparison is steady-state serving throughput.
    """
    service = CompileService(workers=workers, workers_mode=mode, warm=False)
    try:
        service.prestart()
        start = time.perf_counter()
        results = service.compile_many(
            chains,
            num_training_instances=TRAIN,
            use_cache=False,
            timeout=600,
        )
        elapsed = time.perf_counter() - start
        assert len(results) == CHAINS
        assert all(len(generated.variants) >= 1 for generated in results)
        return elapsed
    finally:
        service.close()


def test_thread_pool_distinct_structures(benchmark):
    chains = distinct_workload(seed=1)
    benchmark.pedantic(
        lambda: run_mode("thread", chains), rounds=2, iterations=1
    )


def test_process_pool_distinct_structures(benchmark):
    chains = distinct_workload(seed=1)
    benchmark.pedantic(
        lambda: run_mode("process", chains), rounds=2, iterations=1
    )


def test_process_pool_at_least_2x_thread_on_multicore():
    """The acceptance criterion: >= 2x throughput over thread mode.

    Best of three rounds, as in bench_serve.py: the capability under test
    (GIL-free fan-out) shows in the best round; a single round is at the
    mercy of scheduler noise.
    """
    cores = os.cpu_count() or 1
    if cores < 4:
        # 2x needs >= 2 cores of pure speedup *after* wire-serialization
        # and rebind overhead; on 2-3 cores the margin is noise-bound, so
        # the assertion only arms where the hardware can actually show it
        # (the hosted CI runners are 4-core).
        pytest.skip(
            f"only {cores} CPU core(s): the 2x bar needs >= 4 cores to "
            "clear wire overhead deterministically"
        )
    best = None
    for round_index in range(3):
        chains = distinct_workload(seed=10 + round_index)
        thread_seconds = run_mode("thread", chains)
        process_seconds = run_mode("process", chains)
        speedup = thread_seconds / process_seconds
        if best is None or speedup > best[0]:
            best = (speedup, thread_seconds, process_seconds)

    speedup, thread_seconds, process_seconds = best
    emit(
        f"process-pool throughput ({CHAINS} distinct n={N} structures, "
        f"train={TRAIN}, {WORKERS} workers, {cores} cores)",
        f"thread mode:  {thread_seconds:.3f}s\n"
        f"process mode: {process_seconds:.3f}s\n"
        f"speedup: {speedup:.2f}x (best of 3 rounds)",
    )
    assert speedup >= 2.0, (
        f"process pool only {speedup:.2f}x thread mode "
        f"(thread {thread_seconds:.3f}s vs process {process_seconds:.3f}s)"
    )


def test_process_and_thread_results_agree():
    """Both modes produce identical dispatch sets for the same chains."""
    chains = distinct_workload(seed=99)[:2]
    with CompileService(workers=2, workers_mode="thread", warm=False) as threaded:
        thread_results = threaded.compile_many(
            chains, num_training_instances=TRAIN, use_cache=False, timeout=600
        )
    with CompileService(workers=2, workers_mode="process", warm=False) as procs:
        procs.prestart()
        process_results = procs.compile_many(
            chains, num_training_instances=TRAIN, use_cache=False, timeout=600
        )
    for a, b in zip(thread_results, process_results):
        assert [v.signature() for v in a.variants] == [
            v.signature() for v in b.variants
        ]

"""Extension ablation: the diagonal option space (beyond the paper).

Re-runs a small Experiment-A-style sweep over shapes drawn from the
*extended* 13-option space (the paper's ten plus diagonal: plain, singular,
and inverted).  Two claims are checked:

* the Theorem 2 machinery keeps working — the selected sets remain within a
  small factor of optimal even though diagonal kernels have sub-cubic
  (Type-"extension") costs outside the Section V analysis;
* diagonal awareness matters — for chains containing diagonal matrices,
  treating diagonals as merely triangular inflates the optimal cost.
"""

import numpy as np
import pytest

from repro.ir.chain import Chain
from repro.ir.features import Property, Structure
from repro.ir.matrix import Matrix
from repro.ir.operand import Operand
from repro.compiler.selection import all_variants
from repro.experiments.flops_experiment import evaluate_shape
from repro.experiments.sampling import (
    EXTENDED_MATRIX_OPTIONS,
    sample_instances,
    sample_shapes,
)

from conftest import emit


def _retype_diagonals_as_triangular(chain: Chain) -> Chain:
    operands = []
    for op in chain:
        if op.matrix.structure is Structure.DIAGONAL:
            matrix = Matrix(
                op.matrix.name, Structure.LOWER_TRIANGULAR, op.matrix.prop
            )
            operands.append(Operand(matrix, op.op))
        else:
            operands.append(op)
    return Chain(tuple(operands))


def test_extended_option_space_sweep(benchmark):
    def sweep():
        rng = np.random.default_rng(11)
        shapes = sample_shapes(
            6, 10, rng, rectangular_probability=0.4,
            option_space=EXTENDED_MATRIX_OPTIONS,
        )
        worst = 0.0
        samples = []
        for chain in shapes:
            ratios = evaluate_shape(
                chain, rng, train_instances=500, val_instances=100,
                expansions=(1,),
            )
            worst = max(worst, float(ratios["Es"].max()))
            samples.append(float(ratios["Es"].mean()))
        return worst, float(np.mean(samples))

    worst, mean = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Extension ablation: E_s on the 13-option (diagonal) space",
        f"worst E_s ratio over optimum: {worst:.3f}\n"
        f"mean E_s ratio over optimum : {mean:.3f}",
    )
    # The Section V guarantee is not proven for sub-cubic kernels, but the
    # construction should remain well-behaved in practice.
    assert worst <= 16.0


def test_diagonal_awareness_gain(benchmark):
    def sweep():
        rng = np.random.default_rng(5)
        gains = []
        attempts = 0
        while len(gains) < 8 and attempts < 200:
            attempts += 1
            chain = sample_shapes(
                5, 1, rng, rectangular_probability=0.3,
                option_space=EXTENDED_MATRIX_OPTIONS,
            )[0]
            has_diagonal = any(
                op.matrix.structure is Structure.DIAGONAL for op in chain
            )
            if not has_diagonal:
                continue
            blunt = _retype_diagonals_as_triangular(chain)
            aware_variants = all_variants(chain)
            blunt_variants = all_variants(blunt)
            for q in sample_instances(chain, 5, rng, low=50, high=800):
                q = tuple(int(x) for x in q)
                aware = min(v.flop_cost(q) for v in aware_variants)
                blunt_cost = min(v.flop_cost(q) for v in blunt_variants)
                gains.append(blunt_cost / aware)
        return gains

    gains = benchmark.pedantic(sweep, rounds=1, iterations=1)
    gains = np.asarray(gains)
    emit(
        "Extension ablation: diagonal awareness vs triangular typing",
        f"optimal-cost inflation when diagonals are typed as triangular:\n"
        f"  mean {gains.mean():.2f}x, max {gains.max():.2f}x over "
        f"{gains.size} instances",
    )
    # Diagonal awareness can never lose and must win somewhere.
    assert (gains >= 1.0 - 1e-9).all()
    assert gains.max() > 1.05

"""Execution backends: BLAS-lowered plans vs the reference kernels.

PR 6 adds a pluggable execution-backend layer (``repro.runtime.backends``).
The ``blas`` backend maps each frozen ``KernelCallConfig`` to a direct
``scipy.linalg.blas``/``lapack`` call (dtrmm/dsymm/dtrsm/dgemm/dsyrk, plus
LAPACK solvers) with the transpose/side/triangularity algebra resolved into
routine flags at plan-compile time, so structured operands stop paying
dense-matmul prices.  The ``auto`` strategy micro-benchmarks both lowered
plans once per ``(variant, sizes)`` memo entry and caches the winner.

The acceptance test asserts the blas backend replays a
triangular/symmetric-heavy chain at n=1024 >= 2x faster than the reference
backend, with matching results; CI runs it on every push alongside the
timed benchmarks.  It skips itself only when scipy's BLAS/LAPACK routines
are unavailable.
"""

import functools
import time

import numpy as np
import pytest

from repro.api import compile_chain
from repro.runtime import (
    FALLBACK_ROUTINE,
    blas_available,
    random_instance_arrays,
)

from conftest import emit

#: The CI acceptance bound: blas vs reference replay at n=1024.
REQUIRED_SPEEDUP = 2.0

needs_blas = pytest.mark.skipif(
    not blas_available(), reason="scipy BLAS/LAPACK routines unavailable"
)

#: Triangular/symmetric-heavy chains in the Fig. 2 input language.  The
#: gate chain is an LDL^T-style product applied to a narrow block: every
#: step is structured (TRMM/DIMM), which is exactly where the reference
#: backend's dense matmuls leave the most on the table.
GATE_SOURCE = (
    "Matrix L <LowerTri, NonSingular>; "
    "Matrix D <Diagonal, NonSingular>; "
    "Matrix B <General, Singular>; "
    "R := L * D * L^T * B;"
)
SYMM_SOURCE = (
    "Matrix S <Symmetric, NonSingular>; "
    "Matrix U <UpperTri, NonSingular>; "
    "Matrix B <General, Singular>; "
    "R := S * U^T * B;"
)
CHAINS = {"ldlt": GATE_SOURCE, "symm": SYMM_SOURCE}

#: Right-hand-side width for every instance (keeps a 2048^2 operand's
#: products affordable while the structured operands dominate the cost).
RHS_COLS = 64


@functools.lru_cache(maxsize=None)
def _compiled(source: str):
    return compile_chain(source, num_training_instances=50, use_cache=False)


def _instance(gen, n: int):
    sizes = (n,) * gen.chain.n + (RHS_COLS,)
    arrays = random_instance_arrays(
        gen.chain, sizes, np.random.default_rng(n)
    )
    return sizes, arrays


def _plan(gen, sizes, backend: str):
    _, _, plan = gen.program.runtime(backend=backend).plan_for(sizes)
    return plan


def _measure(fn, reps: int) -> float:
    fn()  # warm any lazy state outside the timed window
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@needs_blas
def test_blas_backend_acceptance(benchmark):
    """CI bound: blas replay >= 2x reference on the gate chain at n=1024."""
    gen = _compiled(GATE_SOURCE)
    sizes, arrays = _instance(gen, 1024)
    ref_plan = _plan(gen, sizes, "reference")
    blas_plan = _plan(gen, sizes, "blas")
    # The gate chain must genuinely lower — an all-fallback plan would
    # "pass" by timing the reference path against itself.
    assert any(r != FALLBACK_ROUTINE for r in blas_plan.step_routines), (
        f"gate chain did not lower: {blas_plan.step_routines}"
    )
    # Matching answers before timing anything.
    np.testing.assert_allclose(
        blas_plan.execute(arrays), ref_plan.execute(arrays),
        rtol=1e-9, atol=1e-9,
    )
    reps = 5
    t_ref = _measure(lambda: ref_plan.execute(arrays), reps)
    t_blas = _measure(lambda: blas_plan.execute(arrays), reps)
    speedup = t_ref / t_blas
    emit(
        "BLAS backend: gate chain L * D * L^T * B at n=1024",
        "\n".join(
            [
                f"routines: {', '.join(blas_plan.step_routines)}",
                f"reference {t_ref * 1e3:8.2f} ms/replay, "
                f"blas {t_blas * 1e3:8.2f} ms/replay, {speedup:5.1f}x",
            ]
        ),
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["routines"] = list(blas_plan.step_routines)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert speedup >= REQUIRED_SPEEDUP, (
        f"blas backend is only {speedup:.2f}x the reference backend at "
        f"n=1024 (required >= {REQUIRED_SPEEDUP}x); "
        f"routines: {blas_plan.step_routines}"
    )


@needs_blas
def test_auto_strategy_picks_blas(benchmark):
    """Timed: the auto dispatcher after its one-off micro-benchmark.

    ``auto`` measures both lowered plans once per ``(variant, sizes)``
    memo entry; on a structured chain the blas lowering must win, and the
    verdict must be cached (no re-measurement on the warm path).
    """
    gen = _compiled(GATE_SOURCE)
    sizes, arrays = _instance(gen, 512)
    runtime = gen.program.runtime(backend="auto")
    out = runtime(*arrays)
    np.testing.assert_allclose(
        out, _plan(gen, sizes, "reference").execute(arrays),
        rtol=1e-9, atol=1e-9,
    )
    stats = runtime.memo_stats()
    assert stats["backend"] == "auto"
    assert stats["executions"].get("blas", 0) >= 1, stats
    benchmark(runtime, *arrays)
    benchmark.extra_info["memo"] = runtime.memo_stats()


@pytest.mark.parametrize("n", [256, 512, 1024, 2048])
@pytest.mark.parametrize("chain_name", sorted(CHAINS))
@pytest.mark.parametrize("backend", ["reference", "blas"])
def test_backend_replay(benchmark, chain_name, backend, n):
    """Timed: warm plan replay per backend across sizes 256-2048."""
    if backend == "blas" and not blas_available():
        pytest.skip("scipy BLAS/LAPACK routines unavailable")
    gen = _compiled(CHAINS[chain_name])
    sizes, arrays = _instance(gen, n)
    plan = _plan(gen, sizes, backend)
    benchmark(plan.execute, arrays)
    benchmark.extra_info["routines"] = list(plan.step_routines)

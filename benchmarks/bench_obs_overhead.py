"""Observability overhead on the runtime hot path.

The ``repro.obs`` layer instruments ``Dispatcher.run``: disabled, the
only additions over the pre-obs path are one module-flag read and one
cached histogram observe of the already-measured elapsed time; enabled,
every kernel call is individually timed into per-``(kernel, routine)``
histograms and the call is stamped with a ``runtime.run`` leaf span.

The **pre-obs baseline**, reconstructed faithfully here from the PR-5
``run`` body, is the same memoized dispatch + plan replay with no flag
check and no histogram feed.  The acceptance test bounds the overhead
ratios: disabled tracing within ``DISABLED_BUDGET`` of the baseline, a
fully enabled run within ``ENABLED_BUDGET``.

Measurement notes, learned the hard way: the three modes are interleaved
*per call* (frequency/thermal drift hits all three equally), compared on
per-call **medians** (one interrupt cannot poison a mean), with the GC
paused (collection pauses land on random calls).  The workload uses
serving-realistic instance sizes — on toy 4x4 operands the kernel work
is a few µs and any ratio measures the bookkeeping against itself.
"""

import gc
import statistics
import time

import numpy as np
import pytest

from repro.compiler.selection import essential_set
from repro.experiments.sampling import sample_instances
from repro.ir.chain import Chain
from repro.ir.features import Property, Structure
from repro.ir.matrix import Matrix
from repro.ir.operand import Operand
from repro.obs import trace as obs_trace
from repro.runtime import Dispatcher, DispatchOutcome, random_instance_arrays

from conftest import emit

#: CI acceptance bounds on warm dispatch+execute, as overhead ratios.
DISABLED_BUDGET = 1.03  # tracing off: within 3% of the pre-obs baseline
ENABLED_BUDGET = 1.15  # tracing fully on: within 15%

#: Interleaved calls per mode for the acceptance medians.
REPS = 300


def _general_chain(n: int) -> Chain:
    return Chain(
        tuple(
            Operand(Matrix(f"M{i}", Structure.GENERAL, Property.SINGULAR))
            for i in range(n)
        )
    )


def _setup(n: int, rng, low=64, high=160):
    """A warm dispatcher on a serving-realistic instance."""
    chain = _general_chain(n)
    train = sample_instances(chain, 300, rng)
    variants = essential_set(chain, training_instances=train)
    sizes = tuple(
        int(x) for x in sample_instances(chain, 1, rng, low=low, high=high)[0]
    )
    arrays = random_instance_arrays(chain, sizes, rng)
    dispatcher = Dispatcher(chain, variants)
    dispatcher(*arrays)  # compile + memoize the plan outside any timing
    return dispatcher, arrays


def _baseline_call(dispatcher, arrays):
    """One warm request exactly as the pre-obs ``run`` paid it (the PR-5
    body, verbatim): memoized dispatch through ``plan_for``, plan replay,
    outcome counters — no flag read, no histogram feed."""
    values = [np.asarray(a, dtype=np.float64) for a in arrays]
    sizes = dispatcher._infer.infer(values)
    variant, cost, plan = dispatcher.plan_for(sizes, validate=False)
    start = time.perf_counter()
    result = plan.replay(values)
    elapsed = time.perf_counter() - start
    with dispatcher._memo_lock:
        dispatcher.backend_executions[plan.backend] = (
            dispatcher.backend_executions.get(plan.backend, 0) + 1
        )
        dispatcher.last_execute_seconds = elapsed
        dispatcher.last_execute_at = time.monotonic()
    return DispatchOutcome(sizes, variant, cost, result)


def _interleaved_medians(fns: dict[str, object]) -> dict[str, float]:
    """Per-function median call time over per-call interleaved rounds."""
    for fn in fns.values():
        fn()  # warm lazy state (plans, cached observers) untimed
    samples: dict[str, list[float]] = {name: [] for name in fns}
    gc.collect()
    gc.disable()
    try:
        for _ in range(REPS):
            for name, fn in fns.items():
                start = time.perf_counter()
                fn()
                samples[name].append(time.perf_counter() - start)
    finally:
        gc.enable()
    return {name: statistics.median(times) for name, times in samples.items()}


def test_obs_overhead_acceptance(benchmark):
    """CI bound: disabled tracing <= 3% over the pre-obs path, enabled <= 15%."""
    assert not obs_trace.enabled()
    rng = np.random.default_rng(2026)
    rows = []
    worst_disabled = worst_enabled = 0.0
    for n in (10, 12):
        dispatcher, arrays = _setup(n, rng)

        def baseline():
            return _baseline_call(dispatcher, arrays)

        def disabled():
            return dispatcher.run(arrays)

        def enabled():
            obs_trace.enable()
            try:
                return dispatcher.run(arrays)
            finally:
                obs_trace.disable()

        timed = _interleaved_medians(
            {"baseline": baseline, "disabled": disabled, "enabled": enabled}
        )
        obs_trace.drain()  # drop the spans the enabled calls buffered
        ratio_disabled = timed["disabled"] / timed["baseline"]
        ratio_enabled = timed["enabled"] / timed["baseline"]
        worst_disabled = max(worst_disabled, ratio_disabled)
        worst_enabled = max(worst_enabled, ratio_enabled)
        rows.append(
            f"n={n}: baseline {timed['baseline'] * 1e6:7.1f} us/call, "
            f"disabled {ratio_disabled:.3f}x, enabled {ratio_enabled:.3f}x"
        )
    emit("Observability overhead: warm dispatch+execute", "\n".join(rows))
    benchmark.extra_info["worst_disabled_ratio"] = round(worst_disabled, 4)
    benchmark.extra_info["worst_enabled_ratio"] = round(worst_enabled, 4)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert worst_disabled <= DISABLED_BUDGET, (
        f"disabled tracing costs {worst_disabled:.3f}x the pre-obs baseline "
        f"(budget {DISABLED_BUDGET}x):\n" + "\n".join(rows)
    )
    assert worst_enabled <= ENABLED_BUDGET, (
        f"enabled tracing costs {worst_enabled:.3f}x the pre-obs baseline "
        f"(budget {ENABLED_BUDGET}x):\n" + "\n".join(rows)
    )


@pytest.mark.parametrize("mode", ["baseline", "disabled", "enabled"])
def test_dispatch_execute_by_mode(benchmark, mode):
    """Timed: the warm per-call path under each observability mode."""
    rng = np.random.default_rng(8)
    dispatcher, arrays = _setup(10, rng)
    if mode == "baseline":
        benchmark(lambda: _baseline_call(dispatcher, arrays))
    elif mode == "disabled":
        benchmark(lambda: dispatcher.run(arrays))
    else:
        obs_trace.enable()
        try:
            dispatcher.run(arrays)  # build cached kernel observers untimed
            benchmark(lambda: dispatcher.run(arrays))
        finally:
            obs_trace.disable()
            obs_trace.drain()
    benchmark.extra_info["mode"] = mode

"""Regenerates Table I: the kernel set, cost functions, and classifications.

Also times the NumPy reference implementation of each kernel family at a
fixed size, establishing the substrate's measured efficiency ordering
(GEMM-class products faster than factorization-based solves) that the
simulated machine encodes analytically.
"""

import numpy as np
import pytest

from repro.kernels import reference as ref
from repro.kernels.cost import CostType
from repro.kernels.spec import KERNELS, PRODUCT_KERNELS, SOLVE_KERNELS

from conftest import emit

N = 256
RNG = np.random.default_rng(0)


def _table1_rows() -> str:
    lines = [f"{'kernel':<10} {'kind':<8} {'cost (left/cheap)':<22} type"]
    for kernel in KERNELS.values():
        cost = kernel.cost(side="left", cheap=True)
        lines.append(
            f"{kernel.name:<10} {kernel.kind:<8} {str(cost):<22} "
            f"{cost.cost_type.value}"
        )
    return "\n".join(lines)


def test_table1_reproduction(benchmark):
    """The kernel database matches Table I's classification exactly."""
    benchmark.pedantic(_table1_rows, rounds=1, iterations=1)
    type_ii = {
        name
        for name, kernel in KERNELS.items()
        if kernel.kind == "solve"
        and kernel.cost(side="left").cost_type is CostType.TYPE_IIA
    }
    assert type_ii == {"GEGESV", "SYGESV", "POGESV"}
    assert len(PRODUCT_KERNELS) == 6
    assert len(SOLVE_KERNELS) == 12
    emit("Table I (kernels, cost functions, types)", _table1_rows())


@pytest.fixture(scope="module")
def operands():
    a = RNG.standard_normal((N, N))
    spd = a @ a.T / np.sqrt(N) + np.eye(N)
    low = np.tril(RNG.standard_normal((N, N)))
    low[np.diag_indices(N)] = np.abs(np.diag(low)) + 1
    sym = (a + a.T) / 2 + np.eye(N) * N
    g = RNG.standard_normal((N, N)) + np.eye(N) * np.sqrt(N)
    return {"general": g, "spd": spd, "lower": low, "sym": sym}


def test_gemm_throughput(benchmark, operands):
    benchmark(ref.gemm, operands["general"], operands["sym"])


def test_symm_throughput(benchmark, operands):
    benchmark(ref.symm, operands["sym"], operands["general"])


def test_trmm_throughput(benchmark, operands):
    benchmark(ref.trmm, operands["lower"], operands["general"])


def test_trsm_throughput(benchmark, operands):
    benchmark(ref.trsm, operands["lower"], operands["general"])


def test_gegesv_throughput(benchmark, operands):
    benchmark(ref.gegesv, operands["general"], operands["general"])


def test_pogesv_throughput(benchmark, operands):
    benchmark(ref.pogesv, operands["spd"], operands["general"])


def test_sygesv_throughput(benchmark, operands):
    benchmark(ref.sygesv, operands["sym"], operands["general"])


def test_poinv_throughput(benchmark, operands):
    benchmark(ref.poinv, operands["spd"])


def test_trinv_throughput(benchmark, operands):
    benchmark(ref.trinv, operands["lower"])

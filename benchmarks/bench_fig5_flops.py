"""Regenerates Fig. 5 and the Section VII-A prose statistics.

The full paper configuration enumerates all 10^n - 9^n shapes per n with
10^5 training / 10^3 validation instances; this benchmark runs a seeded
sample (override via environment variables REPRO_FIG5_SHAPES /
REPRO_FIG5_TRAIN / REPRO_FIG5_VAL for larger runs) and checks the paper's
qualitative claims:

* the base set E_s stays within a small constant of optimal everywhere
  while the left-to-right singleton L has a heavy tail;
* one and two expansion steps (E_s1, E_s2) shrink the gap to a few percent;
* the eCDF ordering E_s2 >= E_s1 >= E_s >> L holds pointwise.
"""

import os

import numpy as np
import pytest

from repro.experiments.ecdf import ECDF
from repro.experiments.flops_experiment import (
    evaluate_shape,
    run_flops_experiment,
)
from repro.experiments.sampling import sample_shapes

from conftest import emit

SHAPES = int(os.environ.get("REPRO_FIG5_SHAPES", "12"))
TRAIN = int(os.environ.get("REPRO_FIG5_TRAIN", "1000"))
VAL = int(os.environ.get("REPRO_FIG5_VAL", "200"))


def test_fig5_reproduction(benchmark):
    fig5_result = benchmark.pedantic(
        lambda: run_flops_experiment(
            n_values=(5, 6, 7),
            shapes_per_n=SHAPES,
            train_instances=TRAIN,
            val_instances=VAL,
            seed=2026,
        ),
        rounds=1,
        iterations=1,
    )
    emit("Fig. 5 summary (ratio over optimal FLOPs)", fig5_result.summary_table())
    xs = (1.0, 1.05, 1.1, 1.2, 1.3, 1.4, 1.5)
    curves = []
    for n in (5, 6, 7):
        for name in ("Es", "Es1", "Es2", "L"):
            ecdf = fig5_result.ecdf(n, name)
            points = " ".join(f"{x:g}:{100 * y:.0f}%" for x, y in ecdf.curve(xs))
            curves.append(f"n={n} {name:>4}: {points}")
    emit("Fig. 5 eCDF series", "\n".join(curves))

    for n in (5, 6, 7):
        ratios = fig5_result.ratios[n]
        # Paper: E_s below 2.1 everywhere, <= 1.2 on ~96% of instances.
        assert ratios["Es"].max() <= 4.0  # generous at benchmark scale
        assert ECDF.from_sample(ratios["Es"]).fraction_at_or_below(1.2) > 0.80
        # Expansions dominate the base set.
        assert ratios["Es1"].mean() <= ratios["Es"].mean() + 1e-9
        assert ratios["Es2"].mean() <= ratios["Es1"].mean() + 1e-9
        # The left-to-right singleton has a heavy tail (paper: > 465 worst,
        # ratio > 1.5 on more than 23% of instances).
        assert ratios["L"].max() > 2.0
        frac_above_15 = 1.0 - ECDF.from_sample(ratios["L"]).fraction_at_or_below(1.5)
        assert frac_above_15 > 0.10


def test_fig5_shape_pipeline_speed(benchmark):
    """Times the per-shape pipeline (variant build + E_s + 2 expansions)."""
    rng = np.random.default_rng(7)
    chain = sample_shapes(7, 1, rng, rectangular_probability=0.5)[0]

    def run():
        local = np.random.default_rng(7)
        return evaluate_shape(chain, local, train_instances=400, val_instances=100)

    ratios = benchmark(run)
    assert set(ratios) == {"Es", "Es1", "Es2", "L"}

"""JSON-lines front end: request handling, streams, and the TCP server."""

import io
import json
import socket
import threading

import pytest

import numpy as np

from repro.serve import CompileService, make_tcp_server
from repro.serve.frontend import (
    PROTOCOL_VERSION,
    array_to_npy_bytes,
    as_wire_array,
    decode_array,
    encode_array,
    handle_line,
    handle_request,
    npy_bytes_to_array,
    serve_stream,
)

SOURCE_AB = (
    "Matrix A <General, Singular>; Matrix B <General, Singular>; R := A * B;"
)
SOURCE_ABC = (
    "Matrix A <General, Singular>; Matrix B <General, Singular>; "
    "Matrix C <General, Singular>; R := A * B * C;"
)


@pytest.fixture
def service():
    service = CompileService(workers=2, warm=False)
    yield service
    service.close()


class TestHandleRequest:
    def test_compile_round_trip(self, service):
        response = handle_request(
            service,
            {
                "op": "compile",
                "source": SOURCE_ABC,
                "options": {"num_training_instances": 25},
                "id": 7,
            },
        )
        assert response["ok"] is True
        assert response["id"] == 7
        assert response["num_variants"] >= 1
        assert response["handle"]
        assert response["elapsed_ms"] >= 0

    def test_compile_options_are_honoured(self, service):
        base = handle_request(
            service,
            {"op": "compile", "source": SOURCE_ABC,
             "options": {"num_training_instances": 25}},
        )
        expanded = handle_request(
            service,
            {"op": "compile", "source": SOURCE_ABC,
             "options": {"num_training_instances": 25, "expand_by": 1}},
        )
        # Different options -> different content address (and no false
        # cache hit); the variant set can only grow under expansion.
        assert expanded["handle"] != base["handle"]
        assert expanded["num_variants"] >= base["num_variants"]
        assert service.session.cache_stats().misses == 2

    def test_dispatch_by_handle(self, service):
        compiled = handle_request(
            service,
            {"op": "compile", "source": SOURCE_ABC,
             "options": {"num_training_instances": 25}},
        )
        response = handle_request(
            service,
            {"op": "dispatch", "handle": compiled["handle"],
             "sizes": [10, 200, 5, 100], "id": "d1"},
        )
        assert response["ok"] is True
        assert response["id"] == "d1"
        assert response["variant"] in compiled["variants"]
        assert response["cost"] > 0

    def test_dispatch_compile_if_needed(self, service):
        response = handle_request(
            service,
            {"op": "dispatch", "source": SOURCE_AB, "sizes": [4, 5, 6]},
        )
        assert response["ok"] is True
        assert response["handle"]
        assert service.metrics.compiled == 1

    def test_dispatch_unknown_handle(self, service):
        response = handle_request(
            service, {"op": "dispatch", "handle": "nope", "sizes": [2, 3, 4]}
        )
        assert response["ok"] is False
        assert "unknown compilation handle" in response["error"]

    def test_compile_can_ship_the_artifact(self, service):
        from repro.compiler.program import CompiledProgram

        response = handle_request(
            service,
            {"op": "compile", "source": SOURCE_AB, "artifact": True,
             "options": {"num_training_instances": 20}},
        )
        assert response["ok"] is True
        program = CompiledProgram.loads(json.dumps(response["artifact"]))
        assert program.key == response["handle"]
        assert [v.name for v in program.variants] == response["variants"]

    def test_execute_npy_arrays_match_in_process_execution(self, service):
        import numpy as np

        from repro.compiler.executor import (
            naive_evaluate,
            random_instance_arrays,
        )
        from repro.serve.frontend import decode_array, encode_array

        compiled = handle_request(
            service,
            {"op": "compile", "source": SOURCE_ABC,
             "options": {"num_training_instances": 25}},
        )
        generated = service.lookup(compiled["handle"])
        rng = np.random.default_rng(5)
        arrays = random_instance_arrays(generated.chain, (7, 4, 9, 3), rng)
        response = handle_request(
            service,
            {
                "op": "execute",
                "handle": compiled["handle"],
                "arrays": [encode_array(a) for a in arrays],
                "id": "x1",
            },
        )
        assert response["ok"] is True, response
        assert response["id"] == "x1"
        assert response["variant"] in compiled["variants"]
        assert response["sizes"] == [7, 4, 9, 3]
        result = decode_array(response["result"])
        # The wire result equals both the in-process dispatcher execution
        # and the dense-numpy oracle.
        np.testing.assert_allclose(result, generated(*arrays))
        np.testing.assert_allclose(
            result, naive_evaluate(generated.chain, arrays), atol=1e-8
        )

    def test_execute_list_arrays_and_json_round_trip(self, service):
        import numpy as np

        from repro.compiler.executor import random_instance_arrays

        compiled = handle_request(
            service,
            {"op": "compile", "source": SOURCE_AB,
             "options": {"num_training_instances": 20}},
        )
        generated = service.lookup(compiled["handle"])
        rng = np.random.default_rng(6)
        arrays = random_instance_arrays(generated.chain, (5, 3, 4), rng)
        # Whole round goes through the text protocol, like a real client.
        line = json.dumps(
            {"op": "execute", "handle": compiled["handle"],
             "arrays": [a.tolist() for a in arrays]}
        )
        response = json.loads(handle_line(service, line))
        assert response["ok"] is True, response
        # List input -> list-encoded result.
        assert isinstance(response["result"], list)
        np.testing.assert_allclose(
            np.asarray(response["result"]), generated(*arrays)
        )
        # Dict-wrapped list arrays also answer in lists (the declared
        # encoding wins, not the payload's JSON type).
        wrapped = handle_request(
            service,
            {"op": "execute", "handle": compiled["handle"],
             "arrays": [
                 {"encoding": "list", "data": a.tolist()} for a in arrays
             ]},
        )
        assert wrapped["ok"] is True
        assert isinstance(wrapped["result"], list)

    def test_execute_compile_if_needed_and_errors(self, service):
        import numpy as np

        from repro.compiler.executor import random_instance_arrays
        from repro.ir.parser import parse_program

        chain = parse_program(SOURCE_AB).chain
        rng = np.random.default_rng(7)
        arrays = random_instance_arrays(chain, (4, 5, 6), rng)
        response = handle_request(
            service,
            {"op": "execute", "source": SOURCE_AB,
             "arrays": [a.tolist() for a in arrays]},
        )
        assert response["ok"] is True
        assert response["handle"]

        assert handle_request(
            service, {"op": "execute", "handle": "nope", "arrays": [[1.0]]}
        )["ok"] is False
        assert handle_request(
            service, {"op": "execute", "handle": response["handle"]}
        )["ok"] is False  # missing arrays
        bad = handle_request(
            service,
            {"op": "execute", "handle": response["handle"],
             "arrays": [{"encoding": "npy", "data": "!!!notbase64"}] * 2},
        )
        assert bad["ok"] is False and "npy" in bad["error"]

    def test_stats_include_last_compile_diagnostics(self, service):
        handle_request(
            service,
            {"op": "compile", "source": SOURCE_ABC,
             "options": {"num_training_instances": 20}},
        )
        stats = handle_request(service, {"op": "stats"})
        assert stats["workers_mode"] == "thread"
        last = stats["last_compile"]
        assert "enumerate" in last["timings_ms"]
        pool = last["variant_pool"]
        assert pool["strategy"] == "exhaustive"
        assert pool["requested"] == "auto"
        assert pool["pool_size"] >= 1

    def test_stats_and_ping_and_warm(self, service):
        handle_request(
            service,
            {"op": "compile", "source": SOURCE_AB,
             "options": {"num_training_instances": 20}},
        )
        stats = handle_request(service, {"op": "stats", "id": 3})
        assert stats["ok"] is True
        assert stats["protocol_version"] == PROTOCOL_VERSION
        assert stats["service"]["requests"] == 1
        assert stats["cache"]["misses"] == 1
        assert handle_request(service, {"op": "ping"})["pong"] is True
        warmed = handle_request(service, {"op": "warm"})
        assert warmed["ok"] is True and warmed["warmed"] == 0

    def test_parse_error_is_reported_in_band(self, service):
        response = handle_request(
            service, {"op": "compile", "source": "this is not a program", "id": 1}
        )
        assert response["ok"] is False
        assert response["id"] == 1
        assert response["error_type"] == "ParseError"

    def test_unknown_option_is_reported_in_band(self, service):
        response = handle_request(
            service,
            {"op": "compile", "source": SOURCE_AB,
             "options": {"exapnd_by": 1}},
        )
        assert response["ok"] is False
        assert "unknown compile option" in response["error"]

    def test_multi_term_expression_rejected(self, service):
        source = "Matrix A <General, Singular>; R := A + 2 * A;"
        response = handle_request(service, {"op": "compile", "source": source})
        assert response["ok"] is False
        assert "one chain per request" in response["error"]

    def test_unknown_op_and_malformed_shapes(self, service):
        assert handle_request(service, {"op": "frobnicate"})["ok"] is False
        assert handle_request(service, {"op": "compile"})["ok"] is False
        assert (
            handle_request(service, {"op": "compile", "source": SOURCE_AB,
                                     "options": [1, 2]})["ok"] is False
        )
        assert handle_request(service, {"op": "dispatch", "sizes": []})["ok"] is False
        assert handle_request(service, {"op": "dispatch", "sizes": [2, 3]})["ok"] is False


class TestStream:
    def test_serve_stream_end_to_end(self, service):
        requests = [
            {"op": "compile", "source": SOURCE_ABC,
             "options": {"num_training_instances": 25}, "id": 1},
            {"op": "stats", "id": 2},
        ]
        infile = io.StringIO(
            "\n".join(json.dumps(r) for r in requests) + "\n\n"
        )
        outfile = io.StringIO()
        served = serve_stream(service, infile, outfile)
        assert served == 2
        lines = [json.loads(l) for l in outfile.getvalue().splitlines()]
        assert [l["id"] for l in lines] == [1, 2]
        assert lines[0]["ok"] and lines[1]["ok"]

    def test_serve_stream_max_requests(self, service):
        infile = io.StringIO('{"op": "ping"}\n' * 5)
        outfile = io.StringIO()
        assert serve_stream(service, infile, outfile, max_requests=2) == 2
        assert len(outfile.getvalue().splitlines()) == 2

    def test_malformed_json_answered_in_band(self, service):
        assert handle_line(service, "   ") is None
        response = json.loads(handle_line(service, "{broken"))
        assert response["ok"] is False
        assert "malformed JSON" in response["error"]

    def test_non_object_request(self, service):
        response = json.loads(handle_line(service, "[1, 2, 3]"))
        assert response["ok"] is False
        assert "JSON object" in response["error"]


class TestArrayCodec:
    """The npy wire codec's no-copy fast paths (PR 10 satellite)."""

    def test_as_wire_array_contiguous_is_no_copy(self):
        array = np.random.default_rng(0).standard_normal((64, 64))
        assert np.shares_memory(as_wire_array(array), array)

    def test_as_wire_array_fortran_is_no_copy(self):
        array = np.asfortranarray(np.ones((16, 24)))
        assert np.shares_memory(as_wire_array(array), array)

    def test_as_wire_array_strided_copies(self):
        array = np.ones((32, 32))[::2, ::2]
        wired = as_wire_array(array)
        assert not np.shares_memory(wired, array)
        assert wired.flags.c_contiguous

    def test_npy_bytes_round_trip_all_layouts(self):
        rng = np.random.default_rng(1)
        base = rng.standard_normal((12, 18))
        for array in (base, np.asfortranarray(base), base[::2, 1::3]):
            back = npy_bytes_to_array(array_to_npy_bytes(array))
            assert np.array_equal(back, array)
            assert back.dtype == array.dtype

    def test_npy_bytes_match_np_save(self):
        """The header+join fast path emits byte-identical .npy streams."""
        array = np.random.default_rng(2).standard_normal((7, 5))
        buffer = io.BytesIO()
        np.save(buffer, array)
        assert array_to_npy_bytes(array) == buffer.getvalue()

    def test_npy_decode_is_zero_copy_view(self):
        array = np.arange(20, dtype=np.float64).reshape(4, 5)
        raw = array_to_npy_bytes(array)
        back = npy_bytes_to_array(raw)
        assert not back.flags.writeable  # aliases the immutable bytes
        assert np.array_equal(back, array)

    def test_encode_decode_round_trip(self):
        array = np.random.default_rng(3).standard_normal((6, 9))
        payload = encode_array(array)
        assert payload["encoding"] == "npy"
        assert np.array_equal(decode_array(payload), array)

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ValueError, match="unknown array encoding"):
            encode_array(np.ones((2, 2)), "protobuf")


class TestTcpServer:
    def test_two_clients_share_one_service(self, service):
        server = make_tcp_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.address

            def roundtrip(payloads):
                with socket.create_connection((host, port), timeout=10) as conn:
                    handle = conn.makefile("rw", encoding="utf-8")
                    responses = []
                    for payload in payloads:
                        handle.write(json.dumps(payload) + "\n")
                        handle.flush()
                        responses.append(json.loads(handle.readline()))
                    return responses

            first = roundtrip([
                {"op": "compile", "source": SOURCE_ABC,
                 "options": {"num_training_instances": 25}, "id": 1},
            ])
            second = roundtrip([
                {"op": "compile", "source": SOURCE_ABC.replace("A", "X"),
                 "options": {"num_training_instances": 25}, "id": 2},
                {"op": "stats", "id": 3},
            ])
            assert first[0]["ok"] and second[0]["ok"]
            # Same structure from a different connection: same handle
            # (content address), served by the shared session cache.
            assert second[0]["handle"] == first[0]["handle"]
            assert second[1]["cache"]["hits"] >= 1
        finally:
            server.close()
            thread.join(timeout=10)

    def test_oversize_line_answered_in_band_then_eof(self, service):
        server = make_tcp_server(service, "127.0.0.1", 0, max_line_bytes=4096)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with socket.create_connection(server.address, timeout=10) as conn:
                conn.sendall(b"y" * 10_000 + b"\n")
                stream = conn.makefile("r", encoding="utf-8")
                response = json.loads(stream.readline())
                assert response["ok"] is False
                assert "exceeds 4096 bytes" in response["error"]
                assert stream.readline() == ""  # stream unrecoverable: EOF
        finally:
            server.close()
            thread.join(timeout=10)

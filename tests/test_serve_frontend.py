"""JSON-lines front end: request handling, streams, and the TCP server."""

import io
import json
import socket
import threading

import pytest

from repro.serve import CompileService, make_tcp_server
from repro.serve.frontend import handle_line, handle_request, serve_stream

SOURCE_AB = (
    "Matrix A <General, Singular>; Matrix B <General, Singular>; R := A * B;"
)
SOURCE_ABC = (
    "Matrix A <General, Singular>; Matrix B <General, Singular>; "
    "Matrix C <General, Singular>; R := A * B * C;"
)


@pytest.fixture
def service():
    service = CompileService(workers=2, warm=False)
    yield service
    service.close()


class TestHandleRequest:
    def test_compile_round_trip(self, service):
        response = handle_request(
            service,
            {
                "op": "compile",
                "source": SOURCE_ABC,
                "options": {"num_training_instances": 25},
                "id": 7,
            },
        )
        assert response["ok"] is True
        assert response["id"] == 7
        assert response["num_variants"] >= 1
        assert response["handle"]
        assert response["elapsed_ms"] >= 0

    def test_compile_options_are_honoured(self, service):
        base = handle_request(
            service,
            {"op": "compile", "source": SOURCE_ABC,
             "options": {"num_training_instances": 25}},
        )
        expanded = handle_request(
            service,
            {"op": "compile", "source": SOURCE_ABC,
             "options": {"num_training_instances": 25, "expand_by": 1}},
        )
        # Different options -> different content address (and no false
        # cache hit); the variant set can only grow under expansion.
        assert expanded["handle"] != base["handle"]
        assert expanded["num_variants"] >= base["num_variants"]
        assert service.session.cache_stats().misses == 2

    def test_dispatch_by_handle(self, service):
        compiled = handle_request(
            service,
            {"op": "compile", "source": SOURCE_ABC,
             "options": {"num_training_instances": 25}},
        )
        response = handle_request(
            service,
            {"op": "dispatch", "handle": compiled["handle"],
             "sizes": [10, 200, 5, 100], "id": "d1"},
        )
        assert response["ok"] is True
        assert response["id"] == "d1"
        assert response["variant"] in compiled["variants"]
        assert response["cost"] > 0

    def test_dispatch_compile_if_needed(self, service):
        response = handle_request(
            service,
            {"op": "dispatch", "source": SOURCE_AB, "sizes": [4, 5, 6]},
        )
        assert response["ok"] is True
        assert response["handle"]
        assert service.metrics.compiled == 1

    def test_dispatch_unknown_handle(self, service):
        response = handle_request(
            service, {"op": "dispatch", "handle": "nope", "sizes": [2, 3, 4]}
        )
        assert response["ok"] is False
        assert "unknown compilation handle" in response["error"]

    def test_stats_and_ping_and_warm(self, service):
        handle_request(
            service,
            {"op": "compile", "source": SOURCE_AB,
             "options": {"num_training_instances": 20}},
        )
        stats = handle_request(service, {"op": "stats", "id": 3})
        assert stats["ok"] is True
        assert stats["protocol_version"] == 1
        assert stats["service"]["requests"] == 1
        assert stats["cache"]["misses"] == 1
        assert handle_request(service, {"op": "ping"})["pong"] is True
        warmed = handle_request(service, {"op": "warm"})
        assert warmed["ok"] is True and warmed["warmed"] == 0

    def test_parse_error_is_reported_in_band(self, service):
        response = handle_request(
            service, {"op": "compile", "source": "this is not a program", "id": 1}
        )
        assert response["ok"] is False
        assert response["id"] == 1
        assert response["error_type"] == "ParseError"

    def test_unknown_option_is_reported_in_band(self, service):
        response = handle_request(
            service,
            {"op": "compile", "source": SOURCE_AB,
             "options": {"exapnd_by": 1}},
        )
        assert response["ok"] is False
        assert "unknown compile option" in response["error"]

    def test_multi_term_expression_rejected(self, service):
        source = "Matrix A <General, Singular>; R := A + 2 * A;"
        response = handle_request(service, {"op": "compile", "source": source})
        assert response["ok"] is False
        assert "one chain per request" in response["error"]

    def test_unknown_op_and_malformed_shapes(self, service):
        assert handle_request(service, {"op": "frobnicate"})["ok"] is False
        assert handle_request(service, {"op": "compile"})["ok"] is False
        assert (
            handle_request(service, {"op": "compile", "source": SOURCE_AB,
                                     "options": [1, 2]})["ok"] is False
        )
        assert handle_request(service, {"op": "dispatch", "sizes": []})["ok"] is False
        assert handle_request(service, {"op": "dispatch", "sizes": [2, 3]})["ok"] is False


class TestStream:
    def test_serve_stream_end_to_end(self, service):
        requests = [
            {"op": "compile", "source": SOURCE_ABC,
             "options": {"num_training_instances": 25}, "id": 1},
            {"op": "stats", "id": 2},
        ]
        infile = io.StringIO(
            "\n".join(json.dumps(r) for r in requests) + "\n\n"
        )
        outfile = io.StringIO()
        served = serve_stream(service, infile, outfile)
        assert served == 2
        lines = [json.loads(l) for l in outfile.getvalue().splitlines()]
        assert [l["id"] for l in lines] == [1, 2]
        assert lines[0]["ok"] and lines[1]["ok"]

    def test_serve_stream_max_requests(self, service):
        infile = io.StringIO('{"op": "ping"}\n' * 5)
        outfile = io.StringIO()
        assert serve_stream(service, infile, outfile, max_requests=2) == 2
        assert len(outfile.getvalue().splitlines()) == 2

    def test_malformed_json_answered_in_band(self, service):
        assert handle_line(service, "   ") is None
        response = json.loads(handle_line(service, "{broken"))
        assert response["ok"] is False
        assert "malformed JSON" in response["error"]

    def test_non_object_request(self, service):
        response = json.loads(handle_line(service, "[1, 2, 3]"))
        assert response["ok"] is False
        assert "JSON object" in response["error"]


class TestTcpServer:
    def test_two_clients_share_one_service(self, service):
        server = make_tcp_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.address

            def roundtrip(payloads):
                with socket.create_connection((host, port), timeout=10) as conn:
                    handle = conn.makefile("rw", encoding="utf-8")
                    responses = []
                    for payload in payloads:
                        handle.write(json.dumps(payload) + "\n")
                        handle.flush()
                        responses.append(json.loads(handle.readline()))
                    return responses

            first = roundtrip([
                {"op": "compile", "source": SOURCE_ABC,
                 "options": {"num_training_instances": 25}, "id": 1},
            ])
            second = roundtrip([
                {"op": "compile", "source": SOURCE_ABC.replace("A", "X"),
                 "options": {"num_training_instances": 25}, "id": 2},
                {"op": "stats", "id": 3},
            ])
            assert first[0]["ok"] and second[0]["ok"]
            # Same structure from a different connection: same handle
            # (content address), served by the shared session cache.
            assert second[0]["handle"] == first[0]["handle"]
            assert second[1]["cache"]["hits"] >= 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

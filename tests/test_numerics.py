"""Numerical-stability checks motivating the compiler's rewrites.

The paper's Section IV justifies avoiding explicit inversions "due to
numerical stability and performance".  These tests exercise the stability
half on the executable substrate: solving ``L^-1 G`` through TRSM (what the
compiler emits) is consistently at least as accurate as explicitly
inverting ``L`` and multiplying (what naive user code does), and the
propagated-inversion rewrites keep results accurate on ill-conditioned
chains.
"""

import numpy as np
import pytest

from repro.ir.chain import Chain
from repro.compiler.executor import execute_variant
from repro.compiler.parenthesization import left_to_right_tree
from repro.compiler.selection import all_variants
from repro.compiler.variant import build_variant

from conftest import make_general, make_lower


def _ill_conditioned_lower(n: int, rng: np.random.Generator, decay: float = 0.75):
    """Lower-triangular matrix with cond in the 1e6..1e9 range for n=16..20.

    The diagonal decays geometrically and the strictly-lower part is kept
    small so the conditioning is driven by the diagonal spread rather than
    exploding exponentially.
    """
    t = np.tril(rng.standard_normal((n, n)), k=-1) * 0.25
    t[np.diag_indices(n)] = decay ** np.arange(n)
    return t


class TestSolveVsExplicitInversion:
    def test_trsm_beats_explicit_inverse_on_average(self):
        solve_errors, explicit_errors = [], []
        for seed in range(20):
            rng = np.random.default_rng(seed)
            n, k = 16, 6
            low = _ill_conditioned_lower(n, rng)
            x_true = rng.standard_normal((n, k))
            g = low @ x_true  # so that L^-1 G == x_true exactly

            import scipy.linalg

            solved = scipy.linalg.solve_triangular(low, g, lower=True)
            explicit = np.linalg.inv(low) @ g
            denominator = np.abs(x_true).max()
            solve_errors.append(np.abs(solved - x_true).max() / denominator)
            explicit_errors.append(np.abs(explicit - x_true).max() / denominator)
        assert np.median(solve_errors) <= np.median(explicit_errors) * 1.5
        assert np.mean(solve_errors) <= np.mean(explicit_errors) * 1.5

    def test_compiled_chain_accuracy_on_ill_conditioned_solve(self):
        # L^-1 G compiled through the library stays close to the exactly
        # constructed solution even when cond(L) is large.
        chain = Chain((make_lower("L").inv, make_general("G").as_operand()))
        variant = build_variant(chain, left_to_right_tree(2))
        assert variant.kernel_names == ("TRSM",)
        rng = np.random.default_rng(0)
        n, k = 16, 4
        low = _ill_conditioned_lower(n, rng)
        x_true = rng.standard_normal((n, k))
        g = low @ x_true
        result = execute_variant(variant, [low, g])
        err = np.abs(result - x_true).max() / np.abs(x_true).max()
        assert err < 1e-8

    def test_inversion_propagation_rewrite_is_accurate(self):
        # (L G^-1) H evaluates through the rewritten TRSM + GEGESV path;
        # verify against a solution constructed to be exactly representable.
        chain = Chain(
            (
                make_lower("L").as_operand(),
                make_general("G", invertible=True).inv,
                make_general("H").as_operand(),
            )
        )
        rng = np.random.default_rng(1)
        n, k = 20, 5
        low = _ill_conditioned_lower(n, rng, decay=0.85)
        g = rng.standard_normal((n, n)) + np.eye(n) * np.sqrt(n)
        h = rng.standard_normal((n, k))
        reference = low @ np.linalg.solve(g, h)
        # The rewritten path solves with the product G L^-1, whose condition
        # number is roughly cond(G) * cond(L) ~ 1e8, so allow for the
        # corresponding round-off amplification.
        for variant in all_variants(chain):
            result = execute_variant(variant, [low, g, h])
            err = np.abs(result - reference).max() / np.abs(reference).max()
            assert err < 1e-5, variant.kernel_names


class TestConditioningOfVariants:
    def test_variants_agree_within_conditioning_limits(self):
        # All variants of a moderately conditioned chain agree to ~1e-9
        # relative accuracy; gross disagreement would indicate a wrong
        # rewrite rather than round-off.
        chain = Chain(
            (
                make_general("A").as_operand(),
                make_lower("L").inv,
                make_general("B").as_operand(),
            )
        )
        rng = np.random.default_rng(2)
        n, m, k = 10, 12, 8
        a = rng.standard_normal((m, n))
        low = _ill_conditioned_lower(n, rng)
        b = rng.standard_normal((n, k))
        results = [
            execute_variant(variant, [a, low, b])
            for variant in all_variants(chain)
        ]
        scale = max(np.abs(results[0]).max(), 1.0)
        for other in results[1:]:
            assert np.abs(other - results[0]).max() / scale < 1e-9

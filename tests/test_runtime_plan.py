"""Tests for compiled execution plans (repro.runtime.plan)."""

import numpy as np
import pytest

from repro.errors import ExecutionError, ShapeError
from repro.ir.chain import Chain
from repro.compiler.selection import all_variants
from repro.runtime import (
    compile_plan,
    execute_variant,
    naive_evaluate,
    random_instance_arrays,
)

from conftest import (
    general_chain,
    make_general,
    random_option_chain,
    small_sizes_for,
)


class TestPlanExecution:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_interpretive_executor_and_oracle(self, seed):
        """A plan replays exactly what execute_variant computes."""
        rng = np.random.default_rng(seed)
        chain = random_option_chain(int(rng.integers(2, 6)), rng)
        sizes = small_sizes_for(chain, rng)
        arrays = random_instance_arrays(chain, sizes, rng)
        expected = naive_evaluate(chain, arrays)
        scale = max(1.0, float(np.abs(expected).max()))
        for variant in all_variants(chain):
            plan = compile_plan(variant, sizes)
            got = plan.execute(arrays)
            # Bit-identical to the interpretive path: same kernels, same
            # order, same arrays.
            np.testing.assert_array_equal(
                got, execute_variant(variant, arrays)
            )
            np.testing.assert_allclose(
                got / scale, expected / scale, atol=1e-7
            )

    def test_replay_is_deterministic(self):
        rng = np.random.default_rng(42)
        chain = general_chain(4)
        sizes = (5, 6, 7, 8, 9)
        plan = compile_plan(all_variants(chain)[0], sizes)
        arrays = random_instance_arrays(chain, sizes, rng)
        first = plan.execute(arrays)
        for _ in range(3):
            np.testing.assert_array_equal(plan.execute(arrays), first)

    def test_single_matrix_chain(self):
        chain = Chain((make_general("A", invertible=True).inv,))
        [variant] = all_variants(chain)
        plan = compile_plan(variant, (4, 4))
        rng = np.random.default_rng(0)
        [a] = random_instance_arrays(chain, (4, 4), rng)
        np.testing.assert_allclose(plan.execute([a]) @ a, np.eye(4), atol=1e-8)

    def test_single_matrix_chain_never_aliases_input(self):
        """Regression: a no-op plan must return a copy, not the caller's
        array — mutating the result used to corrupt the operand."""
        chain = Chain((make_general("A").as_operand(),))
        [variant] = all_variants(chain)
        plan = compile_plan(variant, (3, 3))
        a = np.arange(9, dtype=np.float64).reshape(3, 3)
        original = a.copy()
        result = plan.execute([a])
        assert result is not a
        np.testing.assert_array_equal(result, original)
        result[0, 0] = 1e9
        np.testing.assert_array_equal(a, original)
        # Same contract for the interpretive executor.
        result = execute_variant(variant, [a])
        assert result is not a
        result[0, 0] = -1e9
        np.testing.assert_array_equal(a, original)

    def test_plan_records_instance_metadata(self):
        chain = general_chain(3)
        variant = all_variants(chain)[0]
        plan = compile_plan(variant, (3, 4, 5, 6))
        assert plan.sizes == (3, 4, 5, 6)
        assert plan.expected_shapes == ((3, 4), (4, 5), (5, 6))
        assert plan.variant is variant
        assert "execution plan" in plan.describe()


class TestPlanValidation:
    def test_compile_rejects_invalid_sizes(self):
        chain = general_chain(3)
        with pytest.raises(ShapeError):
            compile_plan(all_variants(chain)[0], (3, 4))  # wrong length

    def test_execute_rejects_wrong_operand_count(self):
        chain = general_chain(3)
        plan = compile_plan(all_variants(chain)[0], (3, 4, 5, 6))
        with pytest.raises(ExecutionError, match="expected 3 arrays"):
            plan.execute([np.zeros((3, 4))])

    def test_check_shapes_catches_mismatch(self):
        chain = general_chain(2)
        plan = compile_plan(all_variants(chain)[0], (3, 4, 5))
        bad = [np.zeros((3, 4)), np.zeros((9, 5))]
        with pytest.raises(ExecutionError, match="stored shape"):
            plan.execute(bad, check_shapes=True)
        plan.validate([np.zeros((3, 4)), np.zeros((4, 5))])  # passes

    def test_callable_alias(self):
        rng = np.random.default_rng(1)
        chain = general_chain(2)
        sizes = (3, 4, 5)
        plan = compile_plan(all_variants(chain)[0], sizes)
        arrays = random_instance_arrays(chain, sizes, rng)
        np.testing.assert_array_equal(plan(arrays), plan.execute(arrays))

"""Asyncio front end: JSON-lines, HTTP mapping, concurrency, shutdown."""

import json
import socket
import threading

import numpy as np
import pytest

from repro.serve import (
    AsyncCompileServer,
    CompileService,
    decode_array,
    encode_array,
    make_tcp_server,
)

SOURCE_AB = (
    "Matrix A <General, Singular>; Matrix B <General, Singular>; R := A * B;"
)


@pytest.fixture(scope="module")
def service():
    service = CompileService(workers=2, warm=False)
    yield service
    service.close()


@pytest.fixture
def server(service):
    server = AsyncCompileServer(service, http_port=0).start()
    yield server
    server.close()


def request_line(sock_file, payload):
    sock_file.write(json.dumps(payload) + "\n")
    sock_file.flush()
    return json.loads(sock_file.readline())


class TestJsonLines:
    def test_ping_and_transports(self, server):
        with socket.create_connection(server.address) as conn:
            stream = conn.makefile("rw")
            response = request_line(stream, {"op": "ping", "id": 7})
            assert response["ok"] is True
            assert response["id"] == 7
            assert "npy" in response["transports"]

    def test_compile_and_execute(self, server, service):
        with socket.create_connection(server.address) as conn:
            stream = conn.makefile("rw")
            compiled = request_line(
                stream, {"op": "compile", "source": SOURCE_AB, "id": 1}
            )
            assert compiled["ok"], compiled
            a, b = np.ones((4, 5)), np.ones((5, 6))
            executed = request_line(
                stream,
                {
                    "op": "execute",
                    "handle": compiled["handle"],
                    "arrays": [encode_array(a), encode_array(b)],
                    "id": 2,
                },
            )
            assert executed["ok"], executed
            assert np.allclose(decode_array(executed["result"]), a @ b)

    def test_malformed_json_answered_in_band(self, server):
        with socket.create_connection(server.address) as conn:
            stream = conn.makefile("rw")
            stream.write("{nope\n")
            stream.flush()
            response = json.loads(stream.readline())
            assert response["ok"] is False
            assert "malformed JSON" in response["error"]
            # The connection survives a malformed request.
            assert request_line(stream, {"op": "ping"})["ok"] is True

    def test_interleaved_partial_lines(self, server):
        """A request split across many writes is one request, not several."""
        payload = json.dumps({"op": "ping", "id": 42}) + "\n"
        with socket.create_connection(server.address) as conn:
            for i in range(0, len(payload), 5):
                conn.sendall(payload[i : i + 5].encode())
            stream = conn.makefile("r")
            response = json.loads(stream.readline())
            assert response == {"ok": True, "pong": True,
                                "transports": response["transports"],
                                "id": 42}

    def test_oversize_line_rejected_in_band(self, service):
        server = AsyncCompileServer(service, max_line_bytes=4096).start()
        try:
            with socket.create_connection(server.address) as conn:
                conn.sendall(b"x" * 10_000 + b"\n")
                stream = conn.makefile("r")
                response = json.loads(stream.readline())
                assert response["ok"] is False
                assert "exceeds 4096 bytes" in response["error"]
                # The stream cannot be resynced: server closes cleanly.
                assert stream.readline() == ""
        finally:
            server.close()

    def test_abrupt_disconnect_mid_execute(self, server, service):
        """A client that dies mid-request must not poison the server."""
        compiled = None
        with socket.create_connection(server.address) as conn:
            stream = conn.makefile("rw")
            compiled = request_line(
                stream, {"op": "compile", "source": SOURCE_AB}
            )
        a, b = np.ones((32, 32)), np.ones((32, 32))
        request = json.dumps(
            {
                "op": "execute",
                "handle": compiled["handle"],
                "arrays": [encode_array(a), encode_array(b)],
            }
        )
        conn = socket.create_connection(server.address)
        conn.sendall(request.encode() + b"\n")
        conn.close()  # gone before the response
        # The server still answers the next client.
        with socket.create_connection(server.address) as conn2:
            stream = conn2.makefile("rw")
            assert request_line(stream, {"op": "ping"})["ok"] is True

    def test_32_simultaneous_connections(self, server):
        """Every one of 32 concurrent clients gets its own answer in-band."""
        results: dict[int, dict] = {}
        errors: list[Exception] = []

        def client(i: int) -> None:
            try:
                with socket.create_connection(server.address) as conn:
                    stream = conn.makefile("rw")
                    for round_no in range(3):
                        response = request_line(
                            stream, {"op": "ping", "id": i * 100 + round_no}
                        )
                        assert response["id"] == i * 100 + round_no
                    results[i] = response
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(32)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(results) == 32
        assert all(response["ok"] for response in results.values())


class TestHttp:
    def post(self, address, body, headers=None):
        import http.client

        conn = http.client.HTTPConnection(*address, timeout=10)
        try:
            conn.request(
                "POST", "/", body, headers or {"Content-Type": "application/json"}
            )
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def test_post_stats(self, server):
        status, body = self.post(
            server.http_address, json.dumps({"op": "stats", "id": 1})
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["ok"] is True
        assert payload["protocol_version"] >= 4

    def test_post_execute(self, server, service):
        compiled = json.loads(
            self.post(
                server.http_address,
                json.dumps({"op": "compile", "source": SOURCE_AB}),
            )[1]
        )
        a, b = np.ones((3, 4)), np.ones((4, 2))
        status, body = self.post(
            server.http_address,
            json.dumps(
                {
                    "op": "execute",
                    "handle": compiled["handle"],
                    "arrays": [encode_array(a), encode_array(b)],
                }
            ),
        )
        assert status == 200
        executed = json.loads(body)
        assert executed["ok"], executed
        assert np.allclose(decode_array(executed["result"]), a @ b)

    def test_get_rejected_405(self, server):
        import http.client

        conn = http.client.HTTPConnection(*server.http_address, timeout=10)
        try:
            conn.request("GET", "/")
            response = conn.getresponse()
            assert response.status == 405
        finally:
            conn.close()

    def test_bad_request_line_400(self, server):
        with socket.create_connection(server.http_address) as conn:
            conn.sendall(b"garbage\r\n\r\n")
            reply = conn.makefile("rb").readline()
            assert b"400" in reply

    def test_keep_alive_two_requests_one_connection(self, server):
        import http.client

        conn = http.client.HTTPConnection(*server.http_address, timeout=10)
        try:
            for i in range(2):
                conn.request(
                    "POST",
                    "/",
                    json.dumps({"op": "ping", "id": i}),
                    {"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["id"] == i
        finally:
            conn.close()


class TestLifecycle:
    def test_close_is_idempotent_and_deterministic(self, service):
        server = AsyncCompileServer(service).start()
        address = server.address
        server.close()
        server.close()
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=0.5)

    def test_client_mid_connection_gets_eof_on_close(self, service):
        server = AsyncCompileServer(service).start()
        conn = socket.create_connection(server.address)
        stream = conn.makefile("rw")
        assert request_line(stream, {"op": "ping"})["ok"] is True
        server.close()
        # A blocked reader observes a clean EOF, not a hang or a reset.
        conn.settimeout(5)
        assert stream.readline() == ""
        conn.close()


class TestThreadedServerShutdown:
    def test_threaded_close_joins_connections_and_sends_eof(self, service):
        server = make_tcp_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        conn = socket.create_connection(server.address)
        stream = conn.makefile("rw")
        stream.write(json.dumps({"op": "ping"}) + "\n")
        stream.flush()
        assert json.loads(stream.readline())["ok"] is True
        assert server.connection_count() == 1
        server.close(timeout=5.0)
        # Deterministic: no live handler threads after close() returns.
        assert server.connection_count() == 0
        conn.settimeout(5)
        assert stream.readline() == ""  # mid-request client: clean EOF
        conn.close()
        thread.join(timeout=5)
        assert not thread.is_alive()

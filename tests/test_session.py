"""CompilerSession: cached compilation, batch API, wrapper equivalence."""

import numpy as np
import pytest

from repro.api import compile_chain, compile_many
from repro.compiler import pipeline as pipeline_mod
from repro.compiler import variant_space as variant_space_mod
from repro.compiler.session import (
    CompilerSession,
    get_default_session,
    set_default_session,
)
from repro.experiments.sampling import sample_instances, sample_shapes

from conftest import general_chain, make_general, make_lower, make_symmetric


def same_generated(a, b) -> bool:
    """Whether two GeneratedCode results are equivalent compilations."""
    if [v.signature() for v in a.variants] != [v.signature() for v in b.variants]:
        return False
    if [v.name for v in a.variants] != [v.name for v in b.variants]:
        return False
    return np.array_equal(a.training_instances, b.training_instances)


@pytest.fixture
def session():
    return CompilerSession()


class TestCachedCompile:
    def test_second_compile_skips_enumeration_and_selection(self, session):
        chain = general_chain(4)
        first = session.compile(chain, num_training_instances=40)
        assert session.last_context.executed == [
            "parse", "simplify", "sample", "enumerate", "cost-matrix",
            "select", "expand", "dispatch",
        ]
        second = session.compile(chain, num_training_instances=40)
        assert session.last_context.executed == ["parse", "simplify", "dispatch"]
        assert set(session.last_context.skipped) == {
            "sample", "enumerate", "cost-matrix", "select", "expand",
        }
        assert same_generated(first, second)
        stats = session.cache_stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_cache_hit_performs_no_enumeration_work(self, session, monkeypatch):
        chain = make_general("A") * make_lower("L").inv * make_general("B")
        expected = session.compile(chain, num_training_instances=40)

        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("enumeration/selection ran on a cache hit")

        monkeypatch.setattr(variant_space_mod, "all_variants", explode)
        monkeypatch.setattr(variant_space_mod, "resolve_space", explode)
        monkeypatch.setattr(pipeline_mod, "essential_set", explode)
        monkeypatch.setattr(pipeline_mod, "expand_set", explode)
        hit = session.compile(chain, num_training_instances=40)
        assert same_generated(expected, hit)

    def test_renamed_chain_hits_and_rebinds(self, session):
        chain = make_general("A") * make_general("B") * make_general("C")
        renamed = make_general("X") * make_general("Y") * make_general("Z")
        first = session.compile(chain, num_training_instances=40)
        second = session.compile(renamed, num_training_instances=40)
        assert session.cache_stats().hits == 1
        assert [m.name for m in second.chain.matrices] == ["X", "Y", "Z"]
        assert [v.signature() for v in first.variants] == [
            v.signature() for v in second.variants
        ]
        # The rebound code executes correctly under the new names.
        a, b, c = np.ones((2, 3)), np.ones((3, 4)), np.ones((4, 5))
        np.testing.assert_allclose(second(a, b, c), (a @ b) @ c)

    def test_option_changes_miss(self, session):
        chain = general_chain(3)
        session.compile(chain, num_training_instances=30)
        session.compile(chain, num_training_instances=30, expand_by=1)
        session.compile(chain, num_training_instances=30, seed=5)
        assert session.cache_stats().hits == 0
        assert session.cache_stats().misses == 3

    def test_explicit_training_instances_fingerprinted(self, session):
        chain = general_chain(3)
        rng = np.random.default_rng(3)
        train_a = sample_instances(chain, 20, rng)
        train_b = sample_instances(chain, 20, rng)
        session.compile(chain, training_instances=train_a)
        session.compile(chain, training_instances=train_b)
        assert session.cache_stats().hits == 0  # different data, no false hit
        session.compile(chain, training_instances=train_a)
        assert session.cache_stats().hits == 1

    def test_none_knobs_mean_session_default(self, session):
        chain = general_chain(3)
        explicit = session.compile(chain, num_training_instances=20)
        via_none = session.compile(
            chain,
            num_training_instances=20,
            expand_by=None,
            simplify=None,  # must NOT disable simplification
            objective=None,
            seed=None,
        )
        assert same_generated(explicit, via_none)
        assert session.cache_stats().hits == 1  # same resolved options
        batch = session.compile_many(
            [chain], num_training_instances=20, expand_by=None
        )
        assert same_generated(batch[0], explicit)

    def test_use_cache_false_bypasses(self, session):
        chain = general_chain(3)
        session.compile(chain, num_training_instances=20, use_cache=False)
        session.compile(chain, num_training_instances=20, use_cache=False)
        assert session.cache_stats().lookups == 0

    def test_single_matrix_chain_cached(self, session):
        from repro.ir import Chain

        chain = Chain((make_symmetric("S", spd=True).inv,))
        first = session.compile(chain)
        second = session.compile(chain)
        assert len(first) == len(second) == 1
        assert session.cache_stats().hits == 1

    def test_simplification_feeds_the_cache_key(self, session):
        # S^T rewrites to S (symmetric transpose is a no-op), so the two
        # spellings land on the same post-simplification cache entry.
        s = make_symmetric("S")
        g = make_general("G")
        session.compile(s * g, num_training_instances=20)
        session.compile(s.T * g, num_training_instances=20)
        assert session.cache_stats().hits == 1

    def test_unknown_compile_option_raises_named_error(self, session):
        from repro.errors import CompilationError

        with pytest.raises(CompilationError, match="unknown compile option"):
            session.compile(general_chain(3), objectvie="avg")  # typo
        with pytest.raises(CompilationError, match="objective"):
            session.compile_many([general_chain(3)], exapnd_by=1)  # typo

    def test_custom_pipeline_does_not_share_cache_entries(self, tmp_path):
        from repro.compiler.pipeline import CompilerPass, default_pipeline

        class SelectAll(CompilerPass):
            """A swapped selection strategy: keep every variant."""

            name = "select"
            cacheable = True

            def run(self, ctx):
                ctx.selected = list(ctx.require("variants"))

        chain = general_chain(5)
        default_session = CompilerSession(cache_dir=tmp_path)
        base = default_session.compile(chain, num_training_instances=20)

        custom = CompilerSession(
            pipeline=default_pipeline().replaced("select", SelectAll()),
            cache_dir=tmp_path,
        )
        everything = custom.compile(chain, num_training_instances=20)
        # The custom pipeline must compile for itself (14 = Catalan(4)
        # variants), not be served the default pipeline's Theorem 2 set.
        assert custom.cache_stats().misses == 1
        assert len(everything) == 14
        assert len(base) < len(everything)

    def test_spliced_pass_can_guard_on_cache_hit(self, session):
        from repro.compiler.pipeline import CompilerPass, default_pipeline
        from repro.errors import CompilationError

        counts = []

        class CountVariants(CompilerPass):
            name = "count"

            def run(self, ctx):
                if ctx.cache_hit:
                    counts.append(None)  # intermediates absent on a hit
                else:
                    counts.append(len(ctx.require("variants")))

        session.pipeline = session.pipeline.extended(
            CountVariants(), after="enumerate"
        )
        chain = general_chain(3)
        session.compile(chain, num_training_instances=20)
        session.compile(chain, num_training_instances=20)
        assert counts == [2, None]

        # An unguarded require on a hit fails with a message naming the cause.
        class Unguarded(CompilerPass):
            name = "unguarded"

            def run(self, ctx):
                ctx.require("variants")

        fresh = CompilerSession(
            pipeline=default_pipeline().extended(Unguarded(), after="enumerate")
        )
        fresh.compile(chain, num_training_instances=20)
        with pytest.raises(CompilationError, match="cache_hit"):
            fresh.compile(chain, num_training_instances=20)

    def test_pass_cache_token_distinguishes_configurations(self):
        from repro.compiler.pipeline import CompilerPass, default_pipeline

        class TopK(CompilerPass):
            name = "select"
            cacheable = True

            def __init__(self, k):
                self.k = k

            def cache_token(self):
                return (self.k,)

            def run(self, ctx):
                ctx.selected = list(ctx.require("variants"))[: self.k]

        p2 = default_pipeline().replaced("select", TopK(2))
        p8 = default_pipeline().replaced("select", TopK(8))
        assert p2.fingerprint() != p8.fingerprint()
        assert p2.fingerprint() == default_pipeline().replaced(
            "select", TopK(2)
        ).fingerprint()

    def test_same_training_data_different_seed_still_hits(self, session):
        chain = general_chain(3)
        rng = np.random.default_rng(9)
        train = sample_instances(chain, 20, rng)
        session.compile(chain, training_instances=train, seed=0)
        session.compile(chain, training_instances=train.copy(), seed=99)
        # The sampling knobs never ran; identical data must hit.
        assert session.cache_stats().hits == 1

    def test_disk_backed_session_survives_restart(self, tmp_path):
        chain = general_chain(4)
        first_session = CompilerSession(cache_dir=tmp_path)
        first = first_session.compile(chain, num_training_instances=30)
        fresh = CompilerSession(cache_dir=tmp_path)
        second = fresh.compile(chain, num_training_instances=30)
        assert fresh.cache_stats().disk_hits == 1
        assert "enumerate" in fresh.last_context.skipped
        assert same_generated(first, second)


class TestCompileMany:
    def _distinct_chains(self, count=8):
        rng = np.random.default_rng(11)
        chains = []
        for n in (3, 4, 5):
            chains.extend(sample_shapes(n, 3, rng, rectangular_probability=0.5))
        return chains[:count]

    def test_matches_sequential_compilation(self):
        chains = self._distinct_chains(8)
        assert len(chains) == 8
        batch_session = CompilerSession()
        batch = batch_session.compile_many(chains, num_training_instances=40)
        sequential_session = CompilerSession()
        sequential = [
            sequential_session.compile(c, num_training_instances=40)
            for c in chains
        ]
        assert len(batch) == len(sequential) == 8
        for got, want in zip(batch, sequential):
            assert same_generated(got, want)
            assert got.chain == want.chain

    def test_structural_duplicates_compile_once(self):
        session = CompilerSession()
        base = make_general("A") * make_general("B") * make_general("C")
        clones = [base]
        for prefix in ("X", "Y", "Z"):
            clones.append(
                make_general(f"{prefix}1")
                * make_general(f"{prefix}2")
                * make_general(f"{prefix}3")
            )
        results = session.compile_many(clones, num_training_instances=30)
        assert session.cache_stats().misses == 1  # one structure, one compile
        names = [[m.name for m in r.chain.matrices] for r in results]
        assert names[1] == ["X1", "X2", "X3"]
        sigs = {tuple(v.signature() for v in r.variants) for r in results}
        assert len(sigs) == 1

    def test_empty_batch(self):
        assert CompilerSession().compile_many([]) == []

    def test_duplicates_survive_lru_eviction(self):
        # More distinct structures than cache slots: duplicates must still
        # be served from their representative's in-memory result, not
        # recompiled after eviction.
        session = CompilerSession(cache_capacity=1)
        distinct = [general_chain(n) for n in (3, 4, 5)]
        batch = distinct + [
            make_general("X") * make_general("Y") * make_general("Z"),  # dup of n=3
        ]
        results = session.compile_many(batch, num_training_instances=20)
        stats = session.cache_stats()
        assert stats.misses == 3  # one per distinct structure, none for the dup
        assert [v.signature() for v in results[3].variants] == [
            v.signature() for v in results[0].variants
        ]
        assert [m.name for m in results[3].chain.matrices] == ["X", "Y", "Z"]

    def test_batch_without_cache(self):
        session = CompilerSession()
        chains = self._distinct_chains(4)
        results = session.compile_many(
            chains, num_training_instances=20, use_cache=False
        )
        assert len(results) == 4
        assert session.cache_stats().lookups == 0

    def test_api_level_compile_many_matches_compile_chain(self):
        chains = self._distinct_chains(8)
        session = CompilerSession()
        batch = compile_many(chains, session=session, num_training_instances=30)
        for chain, got in zip(chains, batch):
            want = compile_chain(
                chain,
                num_training_instances=30,
                session=CompilerSession(),
            )
            assert same_generated(got, want)


class TestExpressionAndWrappers:
    def test_compile_expression_shares_cache_across_terms(self, session):
        source = "Matrix A <General, Singular>; R := A + 2 * A;"
        generated = session.compile_expression(source, num_training_instances=20)
        assert len(generated) == 2
        assert session.cache_stats().hits == 1  # second term is the same shape

    def test_compile_expression_merges_term_contexts(self, session):
        source = "Matrix A <General, Singular>; R := A + 2 * A;"
        session.compile_expression(source, num_training_instances=20)
        ctx = session.last_context
        # Timings cover both terms: dispatch ran twice, so the executed
        # trace lists it twice, and the cache-hit skips of term 2 are there.
        assert ctx.executed.count("dispatch") == 2
        assert "enumerate" in ctx.skipped
        assert ctx.timings["dispatch"] > 0.0

    def test_package_level_exports(self):
        import repro

        assert repro.compile_many is compile_many
        assert repro.CompilerSession is CompilerSession

    def test_last_context_is_slim(self, session):
        session.compile(general_chain(4), num_training_instances=20)
        ctx = session.last_context
        # Instrumentation survives; the heavy artifacts are not pinned.
        assert ctx.timings and ctx.executed
        assert ctx.variants is None
        assert ctx.cost_matrix is None
        assert ctx.training_instances is None

    def test_default_session_creation_is_thread_safe(self, monkeypatch):
        """Concurrent first calls build exactly one shared session.

        Without the lock in ``get_default_session``, N threads racing the
        lazy initialisation could each build (and partially use) their own
        session, splitting the cache.
        """
        import threading

        from repro.compiler import session as session_mod

        created = []
        real_init = CompilerSession.__init__

        def counting_init(self, **kwargs):
            created.append(self)
            real_init(self, **kwargs)

        monkeypatch.setattr(CompilerSession, "__init__", counting_init)
        set_default_session(None)
        try:
            barrier = threading.Barrier(16)
            observed = []

            def first_call():
                barrier.wait()
                observed.append(session_mod.get_default_session())

            threads = [threading.Thread(target=first_call) for _ in range(16)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(observed) == 16
            assert len({id(s) for s in observed}) == 1
            assert len(created) == 1
        finally:
            set_default_session(None)

    def test_concurrent_compile_chain_shares_one_cache(self):
        """compile_chain from many threads: one session, one compilation."""
        import threading

        set_default_session(None)
        try:
            chain = general_chain(3)
            barrier = threading.Barrier(8)
            results = []

            def compile_one():
                barrier.wait()
                results.append(compile_chain(chain, num_training_instances=20))

            threads = [threading.Thread(target=compile_one) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(results) == 8
            stats = get_default_session().cache_stats()
            # All eight went through one shared cache (the racing threads
            # may each miss before the first put lands, but the session —
            # and therefore the counter totals — is shared).
            assert stats.lookups == 8
            signatures = {
                tuple(v.signature() for v in r.variants) for r in results
            }
            assert len(signatures) == 1
        finally:
            set_default_session(None)

    def test_api_reexports_default_session_accessors(self):
        import repro
        from repro import api

        assert api.get_default_session is get_default_session
        assert repro.get_default_session is get_default_session
        assert repro.set_default_session is set_default_session

    def test_compile_chain_uses_default_session(self):
        set_default_session(None)
        try:
            chain = general_chain(4)
            compile_chain(chain, num_training_instances=25)
            compile_chain(chain, num_training_instances=25)
            assert get_default_session().cache_stats().hits >= 1
        finally:
            set_default_session(None)

    def test_pipeline_reassignment_refreshes_derived_state(self):
        session = CompilerSession()
        chain = general_chain(4)
        session.compile(chain, expand_by=1, num_training_instances=20)
        session.pipeline = session.pipeline.without("expand")
        # New fingerprint -> no stale hit; removed pass -> no crash.
        trimmed = session.compile(chain, expand_by=1, num_training_instances=20)
        assert session.cache_stats().hits == 0
        assert "expand" not in session.last_context.executed
        assert len(trimmed) >= 1

    def test_compile_chain_respects_session_options(self):
        from repro.compiler.pipeline import CompileOptions

        session = CompilerSession(
            options=CompileOptions(expand_by=2, num_training_instances=40)
        )
        chain = general_chain(5)
        via_wrapper = compile_chain(chain, session=session)
        direct = session.compile(chain)
        assert same_generated(via_wrapper, direct)
        # An explicit knob still wins over the session default.
        overridden = compile_chain(chain, expand_by=0, session=session)
        assert len(overridden) <= len(direct)

    def test_compile_many_accepts_training_instances(self):
        session = CompilerSession()
        chains = [general_chain(3), make_general("A") * make_general("B") * make_general("C")]
        rng = np.random.default_rng(2)
        train = sample_instances(chains[0], 25, rng)
        batch = session.compile_many(chains, training_instances=train)
        reference = CompilerSession()
        for chain, got in zip(chains, batch):
            want = reference.compile(chain, training_instances=train)
            assert same_generated(got, want)

    def test_wrapper_results_unchanged_by_caching(self):
        chain = make_general("A") * make_symmetric("S", spd=True).inv
        cached = compile_chain(
            chain, num_training_instances=30, session=CompilerSession()
        )
        uncached_session = CompilerSession()
        uncached = uncached_session.compile(
            chain, num_training_instances=30, use_cache=False
        )
        assert same_generated(cached, uncached)

"""Unit tests for the kernel usage census."""

import numpy as np
import pytest

from repro.ir.chain import Chain
from repro.experiments.coverage import (
    KernelCensus,
    census_of_option_space,
    kernel_census,
)

from conftest import general_chain, make_general, make_lower


class TestKernelCensus:
    def test_standard_chain_counts(self):
        census = kernel_census([general_chain(4)])
        # 5 parenthesizations x 3 GEMMs each.
        assert census.shapes == 1
        assert census.variants == 5
        assert census.counts["GEMM"] == 15
        assert census.total_calls == 15
        assert census.frequency("GEMM") == 1.0

    def test_structured_chain_uses_solves(self):
        chain = Chain(
            (make_lower("L").inv, make_general("G").as_operand())
        )
        census = kernel_census([chain])
        assert census.counts["TRSM"] == 1
        assert census.frequency("TRSM") == 1.0

    def test_per_shape_variant_cap(self):
        census = kernel_census([general_chain(5)], per_shape_variants=3)
        assert census.variants == 3

    def test_unused_kernels_lists_missing(self):
        census = kernel_census([general_chain(3)])
        unused = census.unused_kernels()
        assert "GEMM" not in unused
        assert "POTRSV" in unused

    def test_empty_census(self):
        census = kernel_census([])
        assert census.total_calls == 0
        assert census.frequency("GEMM") == 0.0

    def test_format_table(self):
        census = kernel_census([general_chain(3)])
        text = census.format_table()
        assert "GEMM" in text and "share" in text

    def test_option_space_sampled(self):
        census = census_of_option_space(4, sample=5, seed=2)
        assert census.shapes == 5
        assert census.total_calls > 0

"""Tests for the variant-selection theory (Section V)."""

import numpy as np
import pytest

from repro.ir.chain import Chain
from repro.compiler.selection import (
    CostMatrix,
    LEMMA2_FACTOR,
    all_variants,
    essential_set,
    fanning_out_variants,
    left_to_right_variant,
    optimal_cost,
    penalty,
)
from repro.experiments.sampling import sample_instances, sample_shapes

from conftest import general_chain, make_general, make_lower, make_symmetric


class TestAllVariants:
    def test_one_variant_per_parenthesization(self):
        chain = general_chain(5)
        variants = all_variants(chain)
        assert len(variants) == 14
        assert len({v.signature() for v in variants}) == 14

    def test_optimal_cost_is_min(self):
        chain = general_chain(4)
        q = (3, 30, 2, 40, 5)
        costs = [v.flop_cost(q) for v in all_variants(chain)]
        assert optimal_cost(chain, q) == min(costs)


class TestFanningOut:
    @pytest.mark.parametrize("n,expected", [(2, 1), (3, 2), (4, 5), (5, 6), (7, 8)])
    def test_count(self, n, expected):
        assert len(fanning_out_variants(general_chain(n))) == expected

    def test_left_to_right_is_e0(self):
        chain = general_chain(5)
        fanning = fanning_out_variants(chain)
        assert fanning[0].signature() == left_to_right_variant(chain).signature()

    def test_unbounded_ratio_of_single_parenthesization(self):
        # G1 G2 G3 on q = (1, s, 1, s): the ratio of the two
        # parenthesizations grows without bound with s (paper Section V).
        chain = general_chain(3)
        variants = {v.name: v for v in all_variants(chain)}
        ratios = []
        for s in (10, 100, 1000):
            q = (1, s, 1, s)
            costs = sorted(v.flop_cost(q) for v in variants.values())
            ratios.append(costs[-1] / costs[0])
        assert ratios[0] < ratios[1] < ratios[2]
        assert ratios[2] > 400


class TestLemma2Bound:
    """min over fanning-out variants is within 16x of the optimum."""

    @pytest.mark.parametrize("seed", range(5))
    def test_bound_on_random_shapes(self, seed):
        rng = np.random.default_rng(seed)
        for chain in sample_shapes(6, 4, rng, rectangular_probability=0.4):
            fanning = list(fanning_out_variants(chain).values())
            for q in sample_instances(chain, 25, rng, low=2, high=500):
                opt = optimal_cost(chain, tuple(q))
                best_fanning = min(v.flop_cost(tuple(q)) for v in fanning)
                assert best_fanning <= LEMMA2_FACTOR * opt

    def test_standard_chain_factor_two(self):
        # For standard chains alpha-hat = 1, so T(E_m) < 2 T_opt.
        rng = np.random.default_rng(3)
        chain = general_chain(6)
        fanning = fanning_out_variants(chain)
        for q in sample_instances(chain, 50, rng, low=1, high=1000):
            m = int(np.argmin(q))
            opt = optimal_cost(chain, tuple(q))
            assert fanning[m].flop_cost(tuple(q)) < 2 * opt


class TestPenalty:
    def test_empty_set_infinite(self):
        chain = general_chain(3)
        assert penalty([], chain, (2, 3, 4, 5)) == float("inf")

    def test_full_set_zero(self):
        chain = general_chain(4)
        variants = all_variants(chain)
        assert penalty(variants, chain, (9, 2, 8, 3, 7)) == pytest.approx(0.0)

    def test_cost_matrix_consistency(self):
        chain = general_chain(4)
        variants = all_variants(chain)
        rng = np.random.default_rng(0)
        instances = sample_instances(chain, 30, rng, low=2, high=100)
        matrix = CostMatrix(variants, instances)
        for i in (0, 7, 29):
            q = tuple(instances[i])
            sub = [0, 2, 4]
            expected = penalty([variants[j] for j in sub], chain, q)
            assert matrix.penalties(sub)[i] == pytest.approx(expected)

    def test_ratios_of_full_set_are_one(self):
        chain = general_chain(5)
        variants = all_variants(chain)
        rng = np.random.default_rng(1)
        instances = sample_instances(chain, 20, rng)
        matrix = CostMatrix(variants, instances)
        np.testing.assert_allclose(matrix.ratios(range(len(variants))), 1.0)


class TestEssentialSet:
    def _make(self, chain, seed=0, count=200):
        rng = np.random.default_rng(seed)
        instances = sample_instances(chain, count, rng, low=2, high=1000)
        return essential_set(chain, training_instances=instances)

    def test_size_bounded_by_classes(self):
        # S1 G2 S3 L4 G5: 3 equivalence classes -> at most 3 variants.
        chain = Chain(
            (
                make_symmetric("S1").as_operand(),
                make_general("G2").as_operand(),
                make_symmetric("S3").as_operand(),
                make_lower("L4").as_operand(),
                make_general("G5").as_operand(),
            )
        )
        selected = self._make(chain)
        assert 1 <= len(selected) <= len(chain.equivalence_classes())

    def test_standard_chain_gets_full_fanning_set(self):
        chain = general_chain(5)
        selected = self._make(chain)
        # All classes are singletons: n + 1 = 6 candidate variants, and the
        # distinct trees among them must all be picked.
        assert len(selected) == 6

    def test_penalty_bounded_on_validation(self):
        rng = np.random.default_rng(42)
        for chain in sample_shapes(5, 5, rng, rectangular_probability=0.4):
            selected = self._make(chain, seed=7)
            val = sample_instances(chain, 50, rng, low=2, high=1000)
            matrix = CostMatrix(all_variants(chain), val)
            sig_to_idx = {v.signature(): i for i, v in enumerate(matrix.variants)}
            indices = [sig_to_idx[v.signature()] for v in selected]
            assert matrix.max_penalty(indices) <= LEMMA2_FACTOR - 1.0

    def test_members_are_fanning_out_variants(self):
        chain = general_chain(6)
        selected = self._make(chain)
        fanning_sigs = {
            v.signature() for v in fanning_out_variants(chain).values()
        }
        for variant in selected:
            assert variant.signature() in fanning_sigs

    def test_requires_instances_or_matrix(self):
        with pytest.raises(ValueError):
            essential_set(general_chain(4))

"""repro.obs.registry: metrics primitives, the registry, and percentile()."""

import gc
import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    metric_key,
    percentile,
)


class TestPercentile:
    def test_empty_and_single(self):
        assert percentile([], 99) == 0.0
        assert percentile([5.0], 50) == 5.0
        assert percentile([5.0], 0) == 5.0
        assert percentile([5.0], 100) == 5.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    def test_nearest_rank_small_even_windows(self):
        # The regression the ceil() formula fixes: round() uses banker's
        # rounding (round(2.5) == 2), which shifted the nearest-rank index
        # down on half-way boundaries.  p50 of [1..4] sits exactly on one:
        # ceil(0.5 * 4) = rank 2 -> value 2 (the old code happened to agree
        # here via its -1 shift, but disagreed one level up).
        assert percentile([1, 2, 3, 4], 50) == 2.0
        assert percentile([1, 2, 3, 4], 100) == 4.0
        assert percentile([1, 2], 50) == 1
        assert percentile([1, 2], 99) == 2
        # p25 of [1..10]: ceil(2.5) = 3 -> value 3.  round(2.5) - 1 = 1
        # -> value 1: two full ranks off.
        assert percentile(list(range(1, 11)), 25) == 3
        # p50 of [1..5] must be the median, not the second-smallest
        # (round(2.5) - 1 = 1 gave 2).
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_p99_close_to_max_on_small_windows(self):
        assert percentile(list(range(1, 101)), 99) == 99
        assert percentile(list(range(1, 9)), 99) == 8

    def test_order_independent(self):
        assert percentile([4, 1, 3, 2], 50) == 2.0


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("x", {}) == "x"

    def test_labels_sorted(self):
        assert (
            metric_key("cache.lookups", {"tier": "memory", "outcome": "hit"})
            == "cache.lookups{outcome=hit,tier=memory}"
        )


class TestCounter:
    def test_inc(self):
        c = Counter("n")
        c.inc()
        c.inc(3)
        assert c.value == 4
        assert c.snapshot() == 4

    def test_threaded_increments_do_not_lose_updates(self):
        c = Counter("n")

        def spin():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestGauge:
    def test_set(self):
        g = Gauge("depth")
        assert g.value == 0.0
        g.set(7)
        assert g.value == 7

    def test_probe_wins_over_set(self):
        g = Gauge("depth")
        g.set(1)
        g.set_probe(lambda: 42)
        assert g.value == 42.0

    def test_probe_failure_degrades_to_last_set(self):
        g = Gauge("depth")
        g.set(3)

        def boom():
            raise RuntimeError("probe died")

        g.set_probe(boom)
        assert g.value == 3


class TestHistogram:
    def test_snapshot_shape(self):
        h = Histogram("lat", window=8)
        for v in [1, 2, 3, 4, 5]:
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == 15.0
        assert snap["min"] == 1.0
        assert snap["max"] == 5.0
        assert snap["window_count"] == 5
        assert snap["p50"] == 3.0
        assert snap["p90"] == 5.0
        assert snap["p99"] == 5.0

    def test_window_bounds_percentiles_but_not_totals(self):
        h = Histogram("lat", window=4)
        for v in range(1, 11):  # 1..10; window keeps 7..10
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 10
        assert snap["sum"] == 55.0
        assert snap["window_count"] == 4
        assert snap["p50"] == 8.0
        assert snap["min"] == 1.0 and snap["max"] == 10.0

    def test_empty_snapshot(self):
        snap = Histogram("lat").snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0 and snap["max"] == 0.0
        assert snap["p50"] == 0.0

    def test_rejects_degenerate_window(self):
        with pytest.raises(ValueError):
            Histogram("lat", window=0)

    def test_empty_window_percentile_default_is_distinguishable(self):
        # Regression (feedback-directed dispatch): the calibrated cost
        # model reads windowed medians as rate denominators, so "no data"
        # must be distinguishable from a measured 0.0 sample.
        h = Histogram("lat")
        assert h.percentile(50) == 0.0  # stats endpoints keep answering
        assert h.percentile(50, default=None) is None
        assert h.percentile(99, default=-1.0) == -1.0
        assert h.median() is None  # median defaults to None, not 0.0
        assert h.median(default=7.0) == 7.0
        h.observe(0.0)
        assert h.median() == 0.0  # a genuine zero is a zero, not "no data"
        assert percentile([], 50, default=None) is None

    def test_empty_window_snapshot_still_reports_zeros(self):
        snap = Histogram("lat").snapshot()
        assert snap["p50"] == 0.0 and snap["p90"] == 0.0 and snap["p99"] == 0.0


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        r = MetricsRegistry()
        assert r.counter("a", x="1") is r.counter("a", x="1")
        assert r.counter("a", x="1") is not r.counter("a", x="2")
        assert len(r) == 2

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(ValueError, match="counter"):
            r.gauge("a")
        with pytest.raises(ValueError, match="counter"):
            r.histogram("a")

    def test_snapshot_sections(self):
        r = MetricsRegistry()
        r.counter("c").inc(2)
        r.gauge("g").set(1.5)
        r.histogram("h").observe(4.0)
        snap = r.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["scopes"] == {}

    def test_collector_scope_and_suffixing(self):
        r = MetricsRegistry()
        first = r.register_collector("serve", lambda: {"requests": 1})
        second = r.register_collector("serve", lambda: {"requests": 2})
        assert first == "serve"
        assert second == "serve#2"
        scopes = r.snapshot()["scopes"]
        assert scopes["serve"] == {"requests": 1}
        assert scopes["serve#2"] == {"requests": 2}

    def test_bound_method_collector_is_weak(self):
        class Owner:
            def snap(self):
                return {"alive": True}

        r = MetricsRegistry()
        owner = Owner()
        r.register_collector("owner", owner.snap)
        assert r.snapshot()["scopes"] == {"owner": {"alive": True}}
        del owner
        gc.collect()
        assert r.snapshot()["scopes"] == {}

    def test_collector_error_is_contained(self):
        r = MetricsRegistry()

        def boom():
            raise RuntimeError("collector died")

        r.register_collector("bad", boom)
        scopes = r.snapshot()["scopes"]
        assert "RuntimeError" in scopes["bad"]["error"]

    def test_reset_drops_metrics_keeps_collectors(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        r.register_collector("s", lambda: {"x": 1})
        r.reset()
        assert len(r) == 0
        assert r.snapshot()["scopes"] == {"s": {"x": 1}}

    def test_unregister_collector(self):
        r = MetricsRegistry()
        scope = r.register_collector("s", lambda: {})
        r.unregister_collector(scope)
        assert r.snapshot()["scopes"] == {}

    def test_global_registry_is_a_singleton(self):
        assert get_registry() is get_registry()
        assert isinstance(get_registry(), MetricsRegistry)

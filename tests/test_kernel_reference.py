"""Numeric correctness of the kernel reference implementations."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.kernels import reference as ref

RNG = np.random.default_rng(7)


def _sym(n):
    a = RNG.standard_normal((n, n))
    return (a + a.T) / 2 + np.eye(n) * n


def _spd(n):
    a = RNG.standard_normal((n, n))
    return a @ a.T / np.sqrt(n) + np.eye(n)


def _lower(n):
    t = np.tril(RNG.standard_normal((n, n)))
    t[np.diag_indices(n)] = np.abs(np.diag(t)) + 1
    return t


def _upper(n):
    return _lower(n).T.copy()


def assert_close(a, b):
    np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-9)


class TestProducts:
    def test_gemm_plain(self):
        a, b = RNG.standard_normal((4, 6)), RNG.standard_normal((6, 3))
        assert_close(ref.gemm(a, b), a @ b)

    def test_gemm_transposes(self):
        a, b = RNG.standard_normal((6, 4)), RNG.standard_normal((3, 6))
        assert_close(ref.gemm(a, b, trans_a=True, trans_b=True), a.T @ b.T)

    def test_gemm_alpha(self):
        a, b = RNG.standard_normal((4, 6)), RNG.standard_normal((6, 3))
        assert_close(ref.gemm(a, b, alpha=2.5), 2.5 * (a @ b))

    def test_gemm_dim_mismatch(self):
        with pytest.raises(ExecutionError):
            ref.gemm(RNG.standard_normal((3, 4)), RNG.standard_normal((5, 3)))

    def test_symm_sides(self):
        s, g = _sym(5), RNG.standard_normal((5, 3))
        assert_close(ref.symm(s, g, side="left"), s @ g)
        g2 = RNG.standard_normal((3, 5))
        assert_close(ref.symm(s, g2, side="right"), g2 @ s)

    def test_trmm_sides_and_transpose(self):
        t, g = _lower(5), RNG.standard_normal((5, 3))
        assert_close(ref.trmm(t, g, side="left"), t @ g)
        assert_close(ref.trmm(t, g, side="left", trans_t=True), t.T @ g)
        g2 = RNG.standard_normal((3, 5))
        assert_close(ref.trmm(t, g2, side="right"), g2 @ t)

    def test_structured_products(self):
        s1, s2 = _sym(4), _sym(4)
        assert_close(ref.sysymm(s1, s2), s1 @ s2)
        t = _lower(4)
        assert_close(ref.trsymm(t, s1, side="left"), t @ s1)
        assert_close(ref.trsymm(t, s1, side="right"), s1 @ t)
        u = _upper(4)
        assert_close(ref.trtrmm(t, u), t @ u)
        assert_close(ref.trtrmm(t, u, trans_a=True), t.T @ u)


class TestSolves:
    def test_gegesv_left_right(self):
        a, b = RNG.standard_normal((5, 5)) + 5 * np.eye(5), RNG.standard_normal((5, 3))
        assert_close(a @ ref.gegesv(a, b, side="left"), b)
        b2 = RNG.standard_normal((3, 5))
        assert_close(ref.gegesv(a, b2, side="right") @ a, b2)

    def test_gegesv_transposed_coefficient(self):
        a, b = RNG.standard_normal((5, 5)) + 5 * np.eye(5), RNG.standard_normal((5, 3))
        assert_close(a.T @ ref.gegesv(a, b, side="left", trans_coeff=True), b)

    def test_symmetric_family(self):
        s = _sym(5)
        b = RNG.standard_normal((5, 4))
        assert_close(s @ ref.sygesv(s, b, side="left"), b)
        b2 = _sym(5)
        assert_close(s @ ref.sysysv(s, b2, side="left"), b2)
        t = _lower(5)
        assert_close(ref.sytrsv(s, t, side="right") @ s, t)

    def test_spd_family(self):
        p = _spd(5)
        b = RNG.standard_normal((5, 4))
        assert_close(p @ ref.pogesv(p, b, side="left"), b)
        assert_close(ref.pogesv(p, b.T, side="right") @ p, b.T)
        s = _sym(5)
        assert_close(p @ ref.posysv(p, s, side="left"), s)
        t = _upper(5)
        assert_close(p @ ref.potrsv(p, t, side="left"), t)

    def test_triangular_family(self):
        low = _lower(5)
        b = RNG.standard_normal((5, 4))
        assert_close(low @ ref.trsm(low, b, side="left", lower=True), b)
        b2 = RNG.standard_normal((4, 5))
        assert_close(ref.trsm(low, b2, side="right", lower=True) @ low, b2)
        up = _upper(5)
        assert_close(up @ ref.trsm(up, b, side="left", lower=False), b)
        # Transposed coefficient: solving with L^T (upper-triangular data).
        assert_close(
            low.T @ ref.trsm(low, b, side="left", trans_coeff=True, lower=True), b
        )
        s = _sym(5)
        assert_close(low @ ref.trsysv(low, s, side="left"), s)
        assert_close(low @ ref.trtrsv(low, up, side="left", lower=True), up)

    def test_singular_coefficient_raises(self):
        singular = np.zeros((4, 4))
        with pytest.raises(ExecutionError):
            ref.gegesv(singular, np.eye(4), side="left")


class TestUnary:
    def test_geinv(self):
        a = RNG.standard_normal((5, 5)) + 5 * np.eye(5)
        assert_close(ref.geinv(a) @ a, np.eye(5))

    def test_poinv(self):
        p = _spd(5)
        assert_close(ref.poinv(p) @ p, np.eye(5))

    def test_trinv(self):
        low = _lower(5)
        inv = ref.trinv(low, lower=True)
        assert_close(inv @ low, np.eye(5))
        # Inverse of lower-triangular stays lower-triangular.
        assert np.allclose(np.triu(inv, 1), 0.0)

    def test_transpose_and_copy(self):
        a = RNG.standard_normal((3, 5))
        assert_close(ref.explicit_transpose(a), a.T)
        c = ref.copy(a)
        assert_close(c, a)
        c[0, 0] = 123.0
        assert a[0, 0] != 123.0

    def test_geinv_singular_raises(self):
        with pytest.raises(ExecutionError):
            ref.geinv(np.zeros((3, 3)))


class TestKernelImplRegistry:
    def test_every_binary_kernel_has_impl(self):
        from repro.kernels.spec import PRODUCT_KERNELS, SOLVE_KERNELS

        for kernel in (*PRODUCT_KERNELS, *SOLVE_KERNELS):
            assert kernel.name in ref.KERNEL_IMPLS

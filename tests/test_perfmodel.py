"""Tests for the simulated machine and the grid performance models."""

import numpy as np
import pytest

from repro.compiler.selection import all_variants
from repro.compiler.parenthesization import left_to_right_tree
from repro.compiler.variant import build_variant
from repro.experiments.sampling import sample_instances
from repro.perfmodel.machine import SimulatedMachine
from repro.perfmodel.models import GRID_POINTS, KERNEL_MODEL_DIMS, PerformanceModelSet
from repro.perfmodel.timing import time_callable, time_variant

from conftest import general_chain


class TestSimulatedMachine:
    def setup_method(self):
        self.machine = SimulatedMachine()

    def test_gemm_is_fastest_kernel(self):
        perf_gemm = self.machine.performance("GEMM", 500, 500, 500)
        for kernel in ("TRMM", "TRSM", "GEGESV", "SYGESV"):
            assert perf_gemm > self.machine.performance(kernel, 500, 500, 500)

    def test_performance_saturates_with_size(self):
        small = self.machine.performance("GEMM", 50, 50, 50)
        large = self.machine.performance("GEMM", 1000, 1000, 1000)
        assert large > small
        assert large < self.machine.peak_flops

    def test_time_scales_with_flops(self):
        t1 = self.machine.time_call("GEMM", 1e9, 500, 500, 500)
        t2 = self.machine.time_call("GEMM", 2e9, 500, 500, 500)
        assert t2 == pytest.approx(2 * t1)

    def test_transpose_charged_at_bandwidth(self):
        t = self.machine.time_call("TRANSPOSE", 0.0, 100, 1, 200)
        assert t == pytest.approx(16.0 * 100 * 200 / self.machine.memory_bandwidth)

    def test_variant_time_positive_and_additive(self):
        chain = general_chain(4)
        variant = build_variant(chain, left_to_right_tree(4))
        rng = np.random.default_rng(0)
        instances = sample_instances(chain, 10, rng, low=50, high=1000)
        times = self.machine.variant_time_many(variant, instances)
        assert (times > 0).all()
        per_step = sum(
            self.machine.step_time_many(step, instances) for step in variant.steps
        )
        np.testing.assert_allclose(times, per_step)

    def test_flop_optimal_not_always_time_optimal(self):
        # Different variants of structured chains use kernels with different
        # efficiencies, so the FLOP argmin and the time argmin must disagree
        # on some instances — the phenomenon Section VII-B exploits.
        from repro.experiments.sampling import sample_shapes

        rng = np.random.default_rng(1)
        disagreements = 0
        for chain in sample_shapes(6, 10, rng, rectangular_probability=0.5):
            variants = all_variants(chain)
            instances = sample_instances(chain, 100, rng, low=50, high=1000)
            flops = np.stack([v.flop_cost_many(instances) for v in variants])
            times = np.stack(
                [self.machine.variant_time_many(v, instances) for v in variants]
            )
            disagreements += int(
                (flops.argmin(axis=0) != times.argmin(axis=0)).sum()
            )
        assert disagreements > 0


class TestPerformanceModels:
    def setup_method(self):
        self.machine = SimulatedMachine()
        self.models = PerformanceModelSet(self.machine)

    def test_every_compute_kernel_has_a_model(self):
        from repro.kernels.spec import KERNELS

        for name, kernel in KERNELS.items():
            if name in ("TRANSPOSE", "COPY"):
                continue
            assert name in KERNEL_MODEL_DIMS
            assert name in self.models.models

    def test_exact_at_grid_points(self):
        model = self.models.models["GEMM"]
        for point in (50, 300, 1000):
            got = model.performance(point, point, point)[0]
            expected = self.machine.performance("GEMM", point, point, point)
            assert got == pytest.approx(expected, rel=1e-12)

    def test_interpolation_between_grid_points(self):
        model = self.models.models["GEMM"]
        got = model.performance(200, 200, 200)[0]
        lo = self.machine.performance("GEMM", 100, 100, 100)
        hi = self.machine.performance("GEMM", 300, 300, 300)
        assert lo < got < hi

    def test_clamping_outside_grid(self):
        model = self.models.models["TRSM"]
        below = model.performance(10, 10, 10)[0]
        at_edge = model.performance(50, 50, 50)[0]
        assert below == pytest.approx(at_edge)

    def test_model_time_close_to_machine_time(self):
        chain = general_chain(5)
        variant = build_variant(chain, left_to_right_tree(5))
        rng = np.random.default_rng(3)
        instances = sample_instances(chain, 50, rng, low=50, high=1000)
        true_t = self.machine.variant_time_many(variant, instances)
        model_t = self.models.variant_time_many(variant, instances)
        rel_err = np.abs(model_t - true_t) / true_t
        assert rel_err.max() < 0.25  # crude but sane
        assert rel_err.mean() < 0.10

    def test_variant_time_scalar_matches_vector(self):
        chain = general_chain(3)
        variant = build_variant(chain, left_to_right_tree(3))
        q = (100, 200, 300, 400)
        scalar = self.models.variant_time(variant, q)
        vector = self.models.variant_time_many(variant, np.asarray([q]))[0]
        assert scalar == pytest.approx(vector)


class TestWallClockTiming:
    def test_time_callable_positive(self):
        assert time_callable(lambda: sum(range(1000)), repeats=3) >= 0.0

    def test_time_callable_validates_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)

    def test_time_variant_runs(self):
        rng = np.random.default_rng(4)
        chain = general_chain(2)
        variant = build_variant(chain, left_to_right_tree(2))
        from repro.compiler.executor import random_instance_arrays

        arrays = random_instance_arrays(chain, (20, 20, 20), rng)
        assert time_variant(variant, arrays, repeats=2) > 0.0

"""Tests for the diagonal-structure extension (beyond the paper's Table I).

The paper's grammar leaves the structure list open; this extension adds
``Diagonal`` with sub-cubic scaling/solve kernels and threads it through
the whole pipeline: parser, rewrites, kernel tables, inference, variant
construction, execution, and both code emitters.
"""

import numpy as np
import pytest

from repro.ir.chain import Chain
from repro.ir.features import Property, Structure
from repro.ir.matrix import Matrix
from repro.ir.operand import UnaryOp
from repro.ir.parser import parse_chain
from repro.ir.rewrites import simplify_operand
from repro.api import compile_chain
from repro.compiler.executor import (
    execute_variant,
    naive_evaluate,
    random_instance_arrays,
)
from repro.compiler.parenthesization import left_to_right_tree
from repro.compiler.selection import all_variants
from repro.compiler.variant import build_variant
from repro.inference.rules import infer_product_structure
from repro.kernels import reference as ref
from repro.kernels.tables import (
    lookup_inversion_kernel,
    lookup_product_kernel,
    lookup_solve_kernel,
)

from conftest import make_general, make_lower, make_symmetric


def make_diagonal(name="D", invertible=True):
    prop = Property.NON_SINGULAR if invertible else Property.SINGULAR
    return Matrix(name, Structure.DIAGONAL, prop)


D = Structure.DIAGONAL
G = Structure.GENERAL
S = Structure.SYMMETRIC
L = Structure.LOWER_TRIANGULAR
U = Structure.UPPER_TRIANGULAR


class TestFeatureIntegration:
    def test_diagonal_implies_square(self):
        assert D.implies_square
        assert make_diagonal().is_square

    def test_transpose_is_noop(self):
        assert D.transposed is D
        op = simplify_operand(make_diagonal().T)
        assert op.op is UnaryOp.NONE

    def test_diagonal_orthogonal_is_not_identity(self):
        from repro.ir.features import is_identity

        assert not is_identity(D, Property.ORTHOGONAL)

    def test_parser_accepts_diagonal(self):
        chain = parse_chain("Matrix D <Diagonal, NonSingular>; R := D^-1;")
        assert chain[0].matrix.structure is D


class TestKernelTables:
    @pytest.mark.parametrize(
        "left,right,kernel",
        [
            (D, G, "DIMM"), (G, D, "DIMM"),
            (D, S, "DIMM"), (S, D, "DIMM"),
            (D, L, "DIMM"), (U, D, "DIMM"),
            (D, D, "DIDIMM"),
        ],
    )
    def test_product_table(self, left, right, kernel):
        assert lookup_product_kernel(left, right).name == kernel

    @pytest.mark.parametrize(
        "coeff,rhs,kernel",
        [
            (D, G, "DIGESV"), (D, S, "DISYSV"), (D, L, "DITRSV"),
            (D, D, "DIDISV"),
        ],
    )
    def test_solve_table_diagonal_coefficient(self, coeff, rhs, kernel):
        got = lookup_solve_kernel(coeff, Property.NON_SINGULAR, rhs)
        assert got.name == kernel

    def test_solve_table_diagonal_rhs(self):
        assert lookup_solve_kernel(G, Property.NON_SINGULAR, D).name == "GETRSV"
        assert lookup_solve_kernel(S, Property.SPD, D).name == "POTRSV"
        assert lookup_solve_kernel(L, Property.NON_SINGULAR, D).name == "TRTRSV"

    def test_inversion_kernel(self):
        assert lookup_inversion_kernel(D, Property.NON_SINGULAR).name == "DIINV"

    def test_costs_are_subcubic(self):
        from repro.kernels.spec import DIMM, DIDIMM, DIGESV

        assert DIMM.cost().evaluate(100, 100, 50) == 100 * 50
        assert DIDIMM.cost().evaluate(100, 100, 100) == 100
        assert DIGESV.cost().evaluate(100, 100, 50) == 100 * 50


class TestInference:
    @pytest.mark.parametrize(
        "left,right,result",
        [
            (D, D, D), (D, L, L), (L, D, L), (D, U, U), (U, D, U),
            (D, G, G), (G, D, G), (D, S, G), (S, D, G),
        ],
    )
    def test_structure_preservation(self, left, right, result):
        assert infer_product_structure(left, right) is result


class TestCompilation:
    def test_diagonal_scaling_cheaper_than_trmm(self):
        # D G via DIMM costs mn; the triangular analogue costs m^2 n.
        chain = Chain((make_diagonal("D").as_operand(), make_general("G").as_operand()))
        variant = build_variant(chain, left_to_right_tree(2))
        assert variant.kernel_names == ("DIMM",)
        assert variant.flop_cost((40, 40, 7)) == 40 * 7

    def test_inverse_diagonal_is_a_cheap_solve(self):
        chain = Chain((make_diagonal("D").inv, make_general("G").as_operand()))
        variant = build_variant(chain, left_to_right_tree(2))
        assert variant.kernel_names == ("DIGESV",)

    def test_inversion_propagation_prefers_diagonal_target(self):
        # G^-1 D = (D^-1 G)^-1: the general inverse is traded for a
        # diagonal solve plus a pending inversion.
        chain = Chain(
            (make_general("G", invertible=True).inv,
             make_diagonal("D").as_operand())
        )
        variant = build_variant(chain, left_to_right_tree(2))
        assert variant.kernel_names[0] == "DIGESV"
        assert "GEINV" in variant.kernel_names  # forced final inversion

    def test_diagonal_chain_structure_propagates(self):
        # D1 L D2: diagonal scaling preserves triangularity, so the chain
        # result stays lower-triangular.
        chain = Chain(
            (make_diagonal("D1").as_operand(),
             make_lower("L").as_operand(),
             make_diagonal("D2").as_operand())
        )
        variant = build_variant(chain, left_to_right_tree(3))
        assert variant.final_state.structure is L


class TestExecution:
    def _chain(self):
        return Chain(
            (
                make_general("G1").as_operand(),
                make_diagonal("D").inv,
                make_symmetric("S").as_operand(),
                make_general("G2").as_operand(),
            )
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_all_variants_match_oracle(self, seed):
        rng = np.random.default_rng(seed)
        chain = self._chain()
        sizes = (5, 7, 7, 7, 4)
        arrays = random_instance_arrays(chain, sizes, rng)
        expected = naive_evaluate(chain, arrays)
        scale = max(1.0, float(np.abs(expected).max()))
        for variant in all_variants(chain):
            got = execute_variant(variant, arrays)
            np.testing.assert_allclose(got / scale, expected / scale, atol=1e-8)

    def test_reference_kernels(self):
        rng = np.random.default_rng(1)
        d = np.diag(rng.standard_normal(5) + 2.0)
        b = rng.standard_normal((5, 3))
        np.testing.assert_allclose(ref.dimm(d, b, side="left"), d @ b)
        b2 = rng.standard_normal((3, 5))
        np.testing.assert_allclose(ref.dimm(d, b2, side="right"), b2 @ d)
        d2 = np.diag(rng.standard_normal(5) + 3.0)
        np.testing.assert_allclose(ref.didimm(d, d2), d @ d2)
        np.testing.assert_allclose(d @ ref.digesv(d, b, side="left"), b)
        np.testing.assert_allclose(ref.diinv(d) @ d, np.eye(5), atol=1e-12)

    def test_zero_diagonal_raises(self):
        from repro.errors import ExecutionError

        singular = np.diag([1.0, 0.0, 2.0])
        with pytest.raises(ExecutionError):
            ref.digesv(singular, np.eye(3))
        with pytest.raises(ExecutionError):
            ref.diinv(singular)

    def test_end_to_end_via_facade(self):
        chain = self._chain()
        generated = compile_chain(chain, num_training_instances=100, seed=0)
        rng = np.random.default_rng(3)
        sizes = (6, 5, 5, 5, 8)
        arrays = random_instance_arrays(generated.chain, sizes, rng)
        expected = naive_evaluate(generated.chain, arrays)
        got = generated(*arrays)
        scale = max(1.0, float(np.abs(expected).max()))
        np.testing.assert_allclose(got / scale, expected / scale, atol=1e-8)


class TestEmitters:
    def test_python_emitter_handles_diagonal(self):
        chain = Chain(
            (make_diagonal("D").inv, make_general("G").as_operand())
        )
        generated = compile_chain(chain, num_training_instances=20)
        source = generated.python_source()
        assert "_solve_diag" in source
        namespace: dict = {}
        exec(compile(source, "<generated>", "exec"), namespace)
        rng = np.random.default_rng(4)
        arrays = random_instance_arrays(generated.chain, (5, 5, 3), rng)
        expected = naive_evaluate(generated.chain, arrays)
        np.testing.assert_allclose(
            namespace["evaluate"](*arrays), expected, atol=1e-9
        )

    def test_cpp_emitter_references_diagonal_kernels(self):
        chain = Chain(
            (make_diagonal("D").as_operand(), make_general("G").as_operand())
        )
        generated = compile_chain(chain, num_training_instances=20)
        assert "kernels::dimm(" in generated.cpp_source()

    def test_header_declares_diagonal_kernels(self):
        from repro.codegen.cpp_emitter import emit_kernels_header

        header = emit_kernels_header()
        for name in ("dimm", "didimm", "digesv", "diinv"):
            assert f" {name}(" in header

    def test_serialization_roundtrip(self):
        from repro.codegen import serialize

        chain = Chain(
            (make_diagonal("D").inv, make_lower("L").as_operand())
        )
        variants = all_variants(chain)
        _, loaded = serialize.loads(serialize.dumps(chain, variants))
        q = (9, 9, 9)
        for original, restored in zip(variants, loaded):
            assert restored.flop_cost(q) == original.flop_cost(q)

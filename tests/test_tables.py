"""Tests for the association-to-kernel lookup tables (Fig. 3)."""

import pytest

from repro.errors import CompilationError
from repro.ir.features import Property, Structure
from repro.kernels.tables import (
    lookup_inversion_kernel,
    lookup_product_kernel,
    lookup_solve_kernel,
)

G = Structure.GENERAL
S = Structure.SYMMETRIC
L = Structure.LOWER_TRIANGULAR
U = Structure.UPPER_TRIANGULAR


class TestProductTable:
    @pytest.mark.parametrize(
        "left,right,kernel",
        [
            (G, G, "GEMM"),
            (S, G, "SYMM"),
            (G, S, "SYMM"),
            (L, G, "TRMM"),
            (U, G, "TRMM"),
            (G, L, "TRMM"),
            (G, U, "TRMM"),
            (S, S, "SYSYMM"),
            (L, S, "TRSYMM"),
            (S, U, "TRSYMM"),
            (L, L, "TRTRMM"),
            (L, U, "TRTRMM"),
            (U, U, "TRTRMM"),
        ],
    )
    def test_lookup(self, left, right, kernel):
        assert lookup_product_kernel(left, right).name == kernel


class TestSolveTable:
    @pytest.mark.parametrize(
        "coeff_structure,coeff_prop,rhs,kernel",
        [
            (G, Property.NON_SINGULAR, G, "GEGESV"),
            (G, Property.NON_SINGULAR, S, "GESYSV"),
            (G, Property.NON_SINGULAR, L, "GETRSV"),
            (G, Property.NON_SINGULAR, U, "GETRSV"),
            (S, Property.NON_SINGULAR, G, "SYGESV"),
            (S, Property.NON_SINGULAR, S, "SYSYSV"),
            (S, Property.NON_SINGULAR, L, "SYTRSV"),
            (S, Property.SPD, G, "POGESV"),
            (S, Property.SPD, S, "POSYSV"),
            (S, Property.SPD, U, "POTRSV"),
            (L, Property.NON_SINGULAR, G, "TRSM"),
            (U, Property.NON_SINGULAR, G, "TRSM"),
            (L, Property.NON_SINGULAR, S, "TRSYSV"),
            (L, Property.NON_SINGULAR, U, "TRTRSV"),
        ],
    )
    def test_lookup(self, coeff_structure, coeff_prop, rhs, kernel):
        assert lookup_solve_kernel(coeff_structure, coeff_prop, rhs).name == kernel

    def test_singular_coefficient_rejected(self):
        with pytest.raises(CompilationError):
            lookup_solve_kernel(G, Property.SINGULAR, G)

    def test_spd_coefficient_cheaper_than_indefinite(self):
        spd = lookup_solve_kernel(S, Property.SPD, G).cost(side="left")
        indef = lookup_solve_kernel(S, Property.NON_SINGULAR, G).cost(side="left")
        # Same asymptotic family (m^3/3 + 2m^2 n): POGESV uses Cholesky.
        assert spd.evaluate(10, 10, 5) == indef.evaluate(10, 10, 5)


class TestInversionTable:
    def test_lookup(self):
        assert lookup_inversion_kernel(G, Property.NON_SINGULAR).name == "GEINV"
        assert lookup_inversion_kernel(S, Property.NON_SINGULAR).name == "SYINV"
        assert lookup_inversion_kernel(S, Property.SPD).name == "POINV"
        assert lookup_inversion_kernel(L, Property.NON_SINGULAR).name == "TRINV"
        assert lookup_inversion_kernel(U, Property.NON_SINGULAR).name == "TRINV"

    def test_singular_rejected(self):
        with pytest.raises(CompilationError):
            lookup_inversion_kernel(G, Property.SINGULAR)

"""End-to-end tests for the compile_chain facade."""

import numpy as np
import pytest

from repro.errors import CompilationError
from repro.api import compile_chain
from repro.compiler.executor import naive_evaluate, random_instance_arrays
from repro.compiler.selection import LEMMA2_FACTOR, optimal_cost
from repro.experiments.sampling import sample_instances

from conftest import general_chain, make_general, make_lower, random_option_chain


class TestCompileChain:
    def test_from_chain_object(self):
        generated = compile_chain(general_chain(5), num_training_instances=100)
        assert len(generated) >= 2

    def test_from_program_source(self):
        source = (
            "Matrix L <LowerTri, NonSingular>;"
            "Matrix G <General, NonSingular>;"
            "Matrix H <General, Singular>;"
            "R := L * G^-1 * H;"
        )
        generated = compile_chain(source, num_training_instances=100)
        assert generated.chain.n == 3

    def test_rejects_other_types(self):
        with pytest.raises(CompilationError):
            compile_chain(42)

    def test_expand_by_grows_set(self):
        base = compile_chain(general_chain(6), num_training_instances=200, seed=3)
        grown = compile_chain(
            general_chain(6), expand_by=2, num_training_instances=200, seed=3
        )
        assert len(grown) >= len(base)

    def test_simplification_applied(self):
        from repro.ir.chain import Chain
        from repro.ir.features import Property, Structure
        from repro.ir.matrix import Matrix

        identity = Matrix("I", Structure.LOWER_TRIANGULAR, Property.ORTHOGONAL)
        chain = Chain(
            (make_general("A").as_operand(), identity.as_operand(),
             make_general("B").as_operand())
        )
        generated = compile_chain(chain, num_training_instances=10)
        assert generated.chain.n == 2

    def test_deterministic_given_seed(self):
        a = compile_chain(general_chain(5), num_training_instances=100, seed=9)
        b = compile_chain(general_chain(5), num_training_instances=100, seed=9)
        assert [v.signature() for v in a.variants] == [
            v.signature() for v in b.variants
        ]


class TestGeneratedCodeBehaviour:
    @pytest.mark.parametrize("seed", range(4))
    def test_execution_matches_oracle(self, seed):
        rng = np.random.default_rng(seed)
        chain = random_option_chain(4, rng)
        generated = compile_chain(chain, num_training_instances=100, seed=seed)
        sizes = tuple(int(x) for x in sample_instances(chain, 1, rng, 3, 10)[0])
        arrays = random_instance_arrays(generated.chain, sizes, rng)
        expected = naive_evaluate(generated.chain, arrays)
        got = generated(*arrays)
        scale = max(1.0, float(np.abs(expected).max()))
        np.testing.assert_allclose(got / scale, expected / scale, atol=1e-7)

    def test_selected_cost_within_theory_bound(self):
        rng = np.random.default_rng(17)
        chain = random_option_chain(5, rng)
        generated = compile_chain(chain, num_training_instances=300, seed=17)
        for q in sample_instances(chain, 30, rng, low=2, high=1000):
            _, cost = generated.select(tuple(q))
            assert cost <= LEMMA2_FACTOR * optimal_cost(generated.chain, tuple(q))

    def test_describe(self):
        generated = compile_chain(general_chain(3), num_training_instances=20)
        assert "generated code" in generated.describe()

    def test_single_matrix_chain(self):
        from repro.ir.chain import Chain

        chain = Chain((make_general("A", invertible=True).inv,))
        generated = compile_chain(chain, num_training_instances=5)
        rng = np.random.default_rng(0)
        arrays = random_instance_arrays(chain, (6, 6), rng)
        got = generated(*arrays)
        np.testing.assert_allclose(got @ arrays[0], np.eye(6), atol=1e-8)

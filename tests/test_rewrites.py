"""Tests for the simplification rewrites of Section III-A."""

import pytest

from repro.errors import ShapeError
from repro.ir.chain import Chain
from repro.ir.features import Property, Structure
from repro.ir.matrix import Matrix
from repro.ir.operand import Operand, UnaryOp
from repro.ir.rewrites import simplify_chain, simplify_operand

from conftest import make_general, make_lower, make_orthogonal, make_symmetric


class TestOperandRewrites:
    def test_transpose_on_symmetric_removed(self):
        s = make_symmetric()
        assert simplify_operand(s.T).op is UnaryOp.NONE

    def test_inverse_transpose_on_symmetric_keeps_inverse(self):
        s = make_symmetric()
        assert simplify_operand(s.invT).op is UnaryOp.INVERSE

    def test_inverse_on_orthogonal_becomes_transpose(self):
        q = make_orthogonal()
        assert simplify_operand(q.inv).op is UnaryOp.TRANSPOSE

    def test_inverse_transpose_on_orthogonal_vanishes(self):
        q = make_orthogonal()
        assert simplify_operand(q.invT).op is UnaryOp.NONE

    def test_symmetric_orthogonal_fully_simplifies(self):
        # A symmetric orthogonal matrix is involutory: all ops vanish.
        m = Matrix("H", Structure.SYMMETRIC, Property.ORTHOGONAL)
        for op in (m.T, m.inv, m.invT):
            assert simplify_operand(op).op is UnaryOp.NONE

    def test_plain_operands_unchanged(self):
        g = make_general(invertible=True)
        assert simplify_operand(g.inv).op is UnaryOp.INVERSE
        assert simplify_operand(g.T).op is UnaryOp.TRANSPOSE


class TestChainRewrites:
    def test_identity_matrices_removed(self):
        identity = Matrix("I", Structure.LOWER_TRIANGULAR, Property.ORTHOGONAL)
        g = make_general()
        chain = Chain((g.as_operand(), identity.as_operand(), g.T))
        simplified = simplify_chain(chain)
        assert simplified.n == 2
        assert [op.matrix.name for op in simplified] == ["G", "G"]

    def test_all_identity_chain_rejected(self):
        identity = Matrix("I", Structure.UPPER_TRIANGULAR, Property.ORTHOGONAL)
        with pytest.raises(ShapeError, match="identity"):
            simplify_chain(Chain((identity.as_operand(),)))

    def test_operator_rewrites_applied_throughout(self):
        s, q = make_symmetric(), make_orthogonal()
        chain = Chain((s.T, q.inv, make_lower().as_operand()))
        simplified = simplify_chain(chain)
        assert simplified[0].op is UnaryOp.NONE
        assert simplified[1].op is UnaryOp.TRANSPOSE

    def test_simplification_is_idempotent(self):
        s, q = make_symmetric(), make_orthogonal()
        chain = Chain((s.T, q.inv))
        once = simplify_chain(chain)
        twice = simplify_chain(once)
        assert once == twice

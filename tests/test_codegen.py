"""Tests for the C++ emission (generated variants + dispatch)."""

import numpy as np
import pytest

from repro.ir.chain import Chain
from repro.api import compile_chain
from repro.codegen.cpp_emitter import emit_cpp, emit_kernels_header
from repro.compiler.selection import all_variants

from conftest import general_chain, make_general, make_lower


class TestEmitCpp:
    def setup_method(self):
        self.chain = Chain(
            (
                make_lower("L").as_operand(),
                make_general("G", invertible=True).inv,
                make_general("H").as_operand(),
            )
        )
        self.variants = all_variants(self.chain)
        self.source = emit_cpp(self.chain, self.variants, function_name="eval_lgh")

    def test_contains_cost_function_per_variant(self):
        for i in range(len(self.variants)):
            assert f"cost_variant_{i}" in self.source

    def test_contains_variant_function_per_variant(self):
        for i in range(len(self.variants)):
            assert f"Matrix variant_{i}(const Matrix* A)" in self.source

    def test_contains_dispatch(self):
        assert "inline Matrix eval_lgh(const Matrix* A)" in self.source
        assert "best_cost" in self.source
        assert "switch (best)" in self.source

    def test_kernel_calls_present(self):
        used = {s.kernel.name.lower() for v in self.variants for s in v.steps}
        for name in used:
            assert f"kernels::{name}(" in self.source

    def test_size_inference_from_inputs(self):
        assert "A[0].rows()" in self.source
        assert "A[2].cols()" in self.source

    def test_transposed_operand_swaps_dims(self):
        chain = Chain((make_general("A").T, make_general("B").as_operand()))
        source = emit_cpp(chain, all_variants(chain))
        # For a transposed operand, q[0] comes from cols().
        assert "q[0] = static_cast<double>(A[0].cols());" in source

    def test_includes_header(self):
        assert '#include "gmc_kernels.hpp"' in self.source

    def test_cost_expression_matches_numeric_value(self):
        # Evaluate the emitted C++ cost expression with Python semantics.
        variant = self.variants[0]
        q = [7.0, 7.0, 7.0, 4.0]
        namespace = {f"q{i}": q[i] for i in range(4)}
        from repro.codegen.cpp_emitter import _cost_expression

        expr = _cost_expression(variant).replace(" * ", "*")
        assert eval(expr, {}, namespace) == pytest.approx(
            variant.flop_cost(tuple(int(x) for x in q))
        )


class TestEmitHeader:
    def test_header_declares_all_kernels(self):
        header = emit_kernels_header()
        from repro.kernels.spec import KERNELS

        for name in KERNELS:
            assert f" {name.lower()}(" in header

    def test_header_declares_types(self):
        header = emit_kernels_header()
        for needle in ("class Matrix", "enum class Side", "struct CallConfig"):
            assert needle in header


class TestGeneratedCodeFacade:
    def test_cpp_source_from_compile_chain(self):
        generated = compile_chain(general_chain(4), num_training_instances=50)
        source = generated.cpp_source(function_name="eval_g4")
        assert "eval_g4" in source
        assert source.count("Matrix variant_") >= len(generated.variants)

    def test_single_matrix_chain_emits_fixup_only(self):
        chain = Chain((make_general("A", invertible=True).inv,))
        generated = compile_chain(chain, num_training_instances=10)
        source = generated.cpp_source()
        assert "kernels::geinv" in source

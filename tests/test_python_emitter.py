"""Tests for the standalone Python code emitter.

The strongest possible check: execute the emitted source in a clean
namespace and compare its results against the library's dispatcher and the
dense oracle, across random shapes (including transposes and inverses).
"""

import numpy as np
import pytest

from repro.api import compile_chain
from repro.codegen.python_emitter import emit_python
from repro.compiler.executor import naive_evaluate, random_instance_arrays
from repro.compiler.selection import all_variants
from repro.experiments.sampling import sample_instances

from conftest import general_chain, random_option_chain, small_sizes_for


def _load_module(source: str) -> dict:
    namespace: dict = {}
    exec(compile(source, "<generated>", "exec"), namespace)
    return namespace


class TestEmittedSource:
    def test_structure(self):
        chain = general_chain(4)
        generated = compile_chain(chain, num_training_instances=50)
        source = generated.python_source()
        for i in range(len(generated.variants)):
            assert f"def cost_variant_{i}(q):" in source
            assert f"def variant_{i}(A):" in source
        assert "def evaluate(*A):" in source
        assert "def infer_sizes(A):" in source
        # Self-contained: only numpy/scipy imports.
        assert "import repro" not in source

    def test_cost_functions_match_library(self):
        chain = general_chain(5)
        generated = compile_chain(chain, num_training_instances=50)
        module = _load_module(generated.python_source())
        rng = np.random.default_rng(0)
        for q in sample_instances(chain, 20, rng, low=2, high=500):
            q = tuple(int(x) for x in q)
            for i, variant in enumerate(generated.variants):
                assert module[f"cost_variant_{i}"](q) == pytest.approx(
                    variant.flop_cost(q)
                )

    @pytest.mark.parametrize("seed", range(6))
    def test_emitted_evaluate_matches_oracle(self, seed):
        rng = np.random.default_rng(seed)
        chain = random_option_chain(4, rng, allow_transpose=(seed % 2 == 0))
        generated = compile_chain(chain, num_training_instances=100, seed=seed)
        module = _load_module(generated.python_source())
        sizes = small_sizes_for(generated.chain, rng)
        arrays = random_instance_arrays(generated.chain, sizes, rng)
        expected = naive_evaluate(generated.chain, arrays)
        got = module["evaluate"](*arrays)
        scale = max(1.0, float(np.abs(expected).max()))
        np.testing.assert_allclose(got / scale, expected / scale, atol=1e-7)

    def test_emitted_dispatch_agrees_with_library(self):
        chain = general_chain(4)
        generated = compile_chain(chain, num_training_instances=100, seed=5)
        module = _load_module(generated.python_source())
        rng = np.random.default_rng(1)
        for q in sample_instances(chain, 10, rng, low=2, high=200):
            q = tuple(int(x) for x in q)
            costs = [
                module[f"cost_variant_{i}"](q)
                for i in range(len(generated.variants))
            ]
            emitted_best = min(range(len(costs)), key=costs.__getitem__)
            library_best, _ = generated.select(q)
            assert generated.variants[emitted_best].signature() == (
                library_best.signature()
            )

    def test_infer_sizes_with_transposed_operand(self):
        from repro.ir.chain import Chain
        from conftest import make_general

        chain = Chain((make_general("A").T, make_general("B").as_operand()))
        generated = compile_chain(chain, num_training_instances=20)
        module = _load_module(generated.python_source())
        a = np.zeros((4, 3))  # stored transposed: logical 3 x 4
        b = np.zeros((4, 5))
        assert module["infer_sizes"]((a, b)) == (3, 4, 5)

    def test_all_variants_emittable_and_correct(self):
        """Emit EVERY parenthesization of a structured chain and run all."""
        rng = np.random.default_rng(9)
        chain = random_option_chain(4, rng)
        variants = all_variants(chain)
        source = emit_python(chain, variants)
        module = _load_module(source)
        sizes = small_sizes_for(chain, rng)
        arrays = random_instance_arrays(chain, sizes, rng)
        expected = naive_evaluate(chain, arrays)
        scale = max(1.0, float(np.abs(expected).max()))
        for i in range(len(variants)):
            got = module[f"variant_{i}"](arrays)
            np.testing.assert_allclose(got / scale, expected / scale, atol=1e-7)

    def test_single_matrix_chain(self):
        from repro.ir.chain import Chain
        from conftest import make_general

        chain = Chain((make_general("A", invertible=True).inv,))
        generated = compile_chain(chain, num_training_instances=5)
        module = _load_module(generated.python_source())
        rng = np.random.default_rng(2)
        arrays = random_instance_arrays(chain, (6, 6), rng)
        got = module["evaluate"](*arrays)
        np.testing.assert_allclose(got @ arrays[0], np.eye(6), atol=1e-8)

"""Tests for matrix features: structures, properties, validation (§III-A)."""

import pytest

from repro.errors import InvalidFeaturesError
from repro.ir.features import (
    Property,
    Structure,
    features_imply_square,
    is_identity,
    validate_features,
)


class TestStructure:
    def test_general_not_square(self):
        assert not Structure.GENERAL.implies_square

    @pytest.mark.parametrize(
        "structure",
        [Structure.SYMMETRIC, Structure.LOWER_TRIANGULAR, Structure.UPPER_TRIANGULAR],
    )
    def test_non_general_implies_square(self, structure):
        assert structure.implies_square

    def test_triangularity(self):
        assert Structure.LOWER_TRIANGULAR.is_triangular
        assert Structure.UPPER_TRIANGULAR.is_triangular
        assert not Structure.GENERAL.is_triangular
        assert not Structure.SYMMETRIC.is_triangular

    def test_transposed_flips_triangularity(self):
        assert Structure.LOWER_TRIANGULAR.transposed is Structure.UPPER_TRIANGULAR
        assert Structure.UPPER_TRIANGULAR.transposed is Structure.LOWER_TRIANGULAR

    def test_transposed_preserves_general_and_symmetric(self):
        assert Structure.GENERAL.transposed is Structure.GENERAL
        assert Structure.SYMMETRIC.transposed is Structure.SYMMETRIC

    def test_double_transpose_is_identity(self):
        for structure in Structure:
            assert structure.transposed.transposed is structure


class TestProperty:
    def test_singular_not_invertible(self):
        assert not Property.SINGULAR.is_invertible

    @pytest.mark.parametrize(
        "prop", [Property.NON_SINGULAR, Property.SPD, Property.ORTHOGONAL]
    )
    def test_invertible_properties(self, prop):
        assert prop.is_invertible
        assert prop.implies_square

    def test_singular_allows_rectangular(self):
        assert not Property.SINGULAR.implies_square


class TestValidation:
    def test_spd_requires_symmetric_structure(self):
        with pytest.raises(InvalidFeaturesError):
            validate_features(Structure.GENERAL, Property.SPD)
        with pytest.raises(InvalidFeaturesError):
            validate_features(Structure.LOWER_TRIANGULAR, Property.SPD)

    def test_spd_symmetric_is_valid(self):
        validate_features(Structure.SYMMETRIC, Property.SPD)

    def test_all_non_spd_combinations_valid(self):
        for structure in Structure:
            for prop in Property:
                if prop is Property.SPD:
                    continue
                validate_features(structure, prop)


class TestIdentity:
    def test_triangular_orthogonal_is_identity(self):
        assert is_identity(Structure.LOWER_TRIANGULAR, Property.ORTHOGONAL)
        assert is_identity(Structure.UPPER_TRIANGULAR, Property.ORTHOGONAL)

    def test_other_combinations_are_not_identity(self):
        assert not is_identity(Structure.GENERAL, Property.ORTHOGONAL)
        assert not is_identity(Structure.SYMMETRIC, Property.ORTHOGONAL)
        assert not is_identity(Structure.LOWER_TRIANGULAR, Property.NON_SINGULAR)


class TestSquareness:
    def test_general_singular_rectangular(self):
        assert not features_imply_square(Structure.GENERAL, Property.SINGULAR)

    def test_structure_forces_square(self):
        assert features_imply_square(Structure.SYMMETRIC, Property.SINGULAR)
        assert features_imply_square(Structure.LOWER_TRIANGULAR, Property.SINGULAR)

    def test_property_forces_square(self):
        assert features_imply_square(Structure.GENERAL, Property.NON_SINGULAR)
        assert features_imply_square(Structure.GENERAL, Property.ORTHOGONAL)

"""Tests for symbolic matrices, operands, and chain-building operators."""

import pytest

from repro.errors import InvalidFeaturesError
from repro.ir.chain import Chain
from repro.ir.features import Property, Structure
from repro.ir.matrix import Matrix
from repro.ir.operand import Operand, UnaryOp

from conftest import make_general, make_lower, make_symmetric


class TestMatrix:
    def test_defaults(self):
        m = Matrix("A")
        assert m.structure is Structure.GENERAL
        assert m.prop is Property.SINGULAR
        assert not m.is_square
        assert not m.is_invertible

    def test_invalid_name(self):
        with pytest.raises(InvalidFeaturesError):
            Matrix("1A")
        with pytest.raises(InvalidFeaturesError):
            Matrix("")

    def test_invalid_features_rejected(self):
        with pytest.raises(InvalidFeaturesError):
            Matrix("A", Structure.GENERAL, Property.SPD)

    def test_describe(self):
        m = make_lower("L")
        assert m.describe() == "L<LowerTri, NonSingular>"

    def test_frozen(self):
        m = Matrix("A")
        with pytest.raises(AttributeError):
            m.name = "B"  # type: ignore[misc]


class TestOperandConstruction:
    def test_transpose_accessor(self):
        op = make_general().T
        assert op.op is UnaryOp.TRANSPOSE
        assert op.transposed and not op.inverted

    def test_inverse_accessor(self):
        op = make_general(invertible=True).inv
        assert op.op is UnaryOp.INVERSE
        assert op.inverted and not op.transposed

    def test_inverse_transpose_accessor(self):
        op = make_general(invertible=True).invT
        assert op.inverted and op.transposed

    def test_cannot_invert_singular(self):
        with pytest.raises(InvalidFeaturesError):
            make_general(invertible=False).inv
        with pytest.raises(InvalidFeaturesError):
            make_general(invertible=False).invT

    def test_unary_op_from_flags_roundtrip(self):
        for op in UnaryOp:
            assert UnaryOp.from_flags(op.inverted, op.transposed) is op


class TestOperandStructure:
    def test_transposed_triangular_flips(self):
        low = make_lower()
        assert low.T.structure is Structure.UPPER_TRIANGULAR
        assert low.as_operand().structure is Structure.LOWER_TRIANGULAR

    def test_transposed_symmetric_unchanged(self):
        sym = make_symmetric()
        assert sym.T.structure is Structure.SYMMETRIC

    def test_inversion_forces_square(self):
        g = make_general(invertible=True)
        assert g.inv.is_square
        plain = make_general(invertible=False)
        assert not plain.as_operand().is_square


class TestChainBuilding:
    def test_matrix_times_matrix(self):
        chain = make_general("A") * make_general("B")
        assert isinstance(chain, Chain)
        assert chain.n == 2
        assert str(chain) == "A B"

    def test_mixed_operand_chain(self):
        a, l = make_general("A"), make_lower("L")
        chain = a * l.inv * a.T
        assert chain.n == 3
        assert str(chain) == "A L^-1 A^T"

    def test_chain_times_chain(self):
        left = make_general("A") * make_general("B")
        right = make_general("C") * make_general("D")
        combined = left * right
        assert combined.n == 4

    def test_operand_str(self):
        g = make_general("G", invertible=True)
        assert str(g.inv) == "G^-1"
        assert str(g.T) == "G^T"
        assert str(g.invT) == "G^-T"
        assert str(g.as_operand()) == "G"

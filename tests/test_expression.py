"""Tests for sums of chains (the future-work expression extension)."""

import numpy as np
import pytest

from repro.errors import ParseError, ShapeError
from repro.api import compile_expression
from repro.ir.chain import Chain
from repro.ir.expression import ChainSum, ChainTerm
from repro.ir.parser import parse_expression, parse_program
from repro.compiler.executor import naive_evaluate

from conftest import make_general, make_lower, make_symmetric


def _sum_source() -> str:
    return (
        "Matrix A <Symmetric, SPD>;"
        "Matrix B <General, Singular>;"
        "Matrix D <Symmetric, SPD>;"
        "Matrix C <General, Singular>;"
        "S := A - B * D^-1 * C;"
    )


class TestParsing:
    def test_two_term_expression(self):
        expression = parse_expression(_sum_source())
        assert len(expression) == 2
        assert expression.terms[0].coefficient == 1.0
        assert expression.terms[1].coefficient == -1.0
        assert expression.terms[1].chain.n == 3

    def test_scalar_coefficients(self):
        expression = parse_expression(
            "Matrix A <General, Singular>; Matrix B <General, Singular>;"
            " R := 2.5 * A * B + 3 * A * B - A * B;"
        )
        assert [t.coefficient for t in expression] == [2.5, 3.0, -1.0]

    def test_single_term_program_still_exposes_chain(self):
        program = parse_program(
            "Matrix A <General, Singular>; R := A;"
        )
        assert program.chain.n == 1

    def test_multi_term_program_chain_raises(self):
        program = parse_program(
            "Matrix A <General, Singular>; R := A + A;"
        )
        with pytest.raises(ParseError, match="sum of chains"):
            program.chain

    def test_scaled_single_term_chain_raises(self):
        program = parse_program(
            "Matrix A <General, Singular>; R := 2 * A;"
        )
        with pytest.raises(ParseError, match="scales"):
            program.chain

    def test_number_requires_star(self):
        with pytest.raises(ParseError):
            parse_expression(
                "Matrix A <General, Singular>; R := 2 A;"
            )

    def test_str_roundtrippable_rendering(self):
        expression = parse_expression(_sum_source())
        rendered = str(expression)
        assert rendered.startswith("A")
        assert "- " in rendered


class TestChainSumValidation:
    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            ChainSum(())

    def test_conflicting_features_rejected(self):
        a_general = Chain((make_general("A").as_operand(),))
        a_symmetric = Chain((make_symmetric("A").as_operand(),))
        with pytest.raises(ShapeError, match="conflicting"):
            ChainSum((ChainTerm(1.0, a_general), ChainTerm(1.0, a_symmetric)))

    def test_matrices_table(self):
        expression = parse_expression(_sum_source())
        assert set(expression.matrices) == {"A", "B", "C", "D"}

    def test_term_sizes_missing_array(self):
        expression = parse_expression(_sum_source())
        with pytest.raises(ShapeError, match="missing arrays"):
            expression.term_sizes({"A": np.eye(3)})

    def test_term_sizes_result_mismatch(self):
        expression = parse_expression(
            "Matrix A <General, Singular>; Matrix B <General, Singular>;"
            " R := A + B;"
        )
        with pytest.raises(ShapeError, match="earlier term"):
            expression.term_sizes({"A": np.eye(3), "B": np.zeros((3, 4))})

    def test_addition_flops(self):
        expression = parse_expression(
            "Matrix A <General, Singular>; R := 2 * A + A - A;"
        )
        # Two '+' accumulations plus one scalar scaling over a 4x5 result.
        assert expression.addition_flops(4, 5) == 4 * 5 * 3


class TestCompileExpression:
    def test_schur_complement(self):
        generated = compile_expression(_sum_source(), num_training_instances=100)
        assert len(generated) == 2
        rng = np.random.default_rng(0)
        p, m = 8, 5
        x = rng.standard_normal((p + m, p + m))
        full = x @ x.T / np.sqrt(p + m) + np.eye(p + m)
        a = full[:p, :p].copy()
        b = full[:p, p:].copy()
        c = full[p:, :p].copy()
        d = full[p:, p:].copy()
        result = generated(A=a, B=b, C=c, D=d)
        expected = a - b @ np.linalg.solve(d, c)
        np.testing.assert_allclose(result, expected, atol=1e-10)

    def test_repeated_matrix_across_terms(self):
        source = (
            "Matrix A <General, Singular>; Matrix B <General, Singular>;"
            " R := A * B + 2 * A * B;"
        )
        generated = compile_expression(source, num_training_instances=50)
        rng = np.random.default_rng(1)
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((4, 5))
        np.testing.assert_allclose(
            generated(A=a, B=b), 3 * (a @ b), atol=1e-12
        )

    def test_flop_cost_includes_additions(self):
        source = (
            "Matrix A <General, Singular>; Matrix B <General, Singular>;"
            " R := A * B + A * B;"
        )
        generated = compile_expression(source, num_training_instances=50)
        arrays = {"A": np.ones((3, 4)), "B": np.ones((4, 5))}
        # Two identical GEMM terms plus one elementwise accumulation.
        assert generated.flop_cost(arrays) == pytest.approx(
            2 * (2 * 3 * 4 * 5) + 3 * 5
        )

    def test_accepts_chain_and_chainsum_inputs(self):
        chain = Chain((make_general("A").as_operand(),))
        generated = compile_expression(chain, num_training_instances=5)
        assert len(generated) == 1
        generated2 = compile_expression(
            ChainSum((ChainTerm(1.0, chain),)), num_training_instances=5
        )
        assert len(generated2) == 1

    def test_rejects_other_inputs(self):
        from repro.errors import CompilationError

        with pytest.raises(CompilationError):
            compile_expression(42)

    def test_describe(self):
        generated = compile_expression(_sum_source(), num_training_instances=30)
        text = generated.describe()
        assert "term" in text
        assert "D^-1" in text

    def test_single_term_matches_compile_chain(self):
        from repro.api import compile_chain

        source = (
            "Matrix L <LowerTri, NonSingular>; Matrix G <General, Singular>;"
            " R := L^-1 * G;"
        )
        expr = compile_expression(source, num_training_instances=50, seed=2)
        chain = compile_chain(source, num_training_instances=50, seed=2)
        rng = np.random.default_rng(2)
        low = np.tril(rng.standard_normal((4, 4))) + 3 * np.eye(4)
        g = rng.standard_normal((4, 6))
        np.testing.assert_allclose(
            expr(L=low, G=g), chain(low, g), atol=1e-12
        )

"""Tests for JSON serialization of compiled chains."""

import numpy as np
import pytest

from repro.api import GeneratedCode, compile_chain
from repro.codegen import serialize
from repro.codegen.serialize import SerializationError
from repro.compiler.executor import naive_evaluate, random_instance_arrays
from repro.compiler.selection import all_variants
from repro.experiments.sampling import sample_instances

from conftest import (
    general_chain,
    make_general,
    make_lower,
    make_symmetric,
    make_upper,
    random_option_chain,
    small_sizes_for,
)


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(4))
    def test_chain_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        chain = random_option_chain(5, rng, allow_transpose=True)
        payload = serialize.chain_to_dict(chain)
        assert serialize.chain_from_dict(payload) == chain

    @pytest.mark.parametrize("seed", range(4))
    def test_costs_preserved(self, seed):
        rng = np.random.default_rng(seed)
        chain = random_option_chain(4, rng)
        variants = all_variants(chain)
        loaded_chain, loaded = serialize.loads(serialize.dumps(chain, variants))
        assert loaded_chain == chain
        assert len(loaded) == len(variants)
        for q in sample_instances(chain, 10, rng, low=2, high=300):
            q = tuple(int(x) for x in q)
            for original, restored in zip(variants, loaded):
                assert restored.flop_cost(q) == pytest.approx(
                    original.flop_cost(q)
                )

    @pytest.mark.parametrize("seed", range(4))
    def test_execution_preserved(self, seed):
        rng = np.random.default_rng(100 + seed)
        chain = random_option_chain(4, rng, allow_transpose=True)
        variants = all_variants(chain)
        _, loaded = serialize.loads(serialize.dumps(chain, variants))
        sizes = small_sizes_for(chain, rng)
        arrays = random_instance_arrays(chain, sizes, rng)
        expected = naive_evaluate(chain, arrays)
        scale = max(1.0, float(np.abs(expected).max()))
        from repro.compiler.executor import execute_variant

        for restored in loaded:
            got = execute_variant(restored, arrays)
            np.testing.assert_allclose(got / scale, expected / scale, atol=1e-7)

    def test_signatures_preserved(self):
        chain = general_chain(5)
        variants = all_variants(chain)
        _, loaded = serialize.loads(serialize.dumps(chain, variants))
        assert [v.signature() for v in loaded] == [
            v.signature() for v in variants
        ]


def _diag(name: str):
    from repro.ir.features import Property, Structure
    from repro.ir.matrix import Matrix

    return Matrix(name, Structure.DIAGONAL, Property.NON_SINGULAR)


def _spd(name: str):
    return make_symmetric(name, spd=True)


#: Operand feature combinations the wire format must carry losslessly —
#: the regression net under the CompiledProgram artifact format.
FEATURE_CHAINS = {
    "transposed": lambda: make_general("A") * make_general("B").T,
    "double_transposed": lambda: make_general("A").T
    * make_general("B")
    * make_general("C").T,
    "inverted_lower": lambda: make_general("A") * make_lower("L").inv,
    "inverted_upper": lambda: make_upper("U").inv * make_general("A"),
    "inv_transpose": lambda: make_general("A") * make_lower("L").invT,
    "triangular_pair": lambda: make_lower("L") * make_upper("U") * make_general("G"),
    "spd": lambda: _spd("S").as_operand() * make_general("A") * _spd("S").inv,
    "spd_inverse": lambda: _spd("P").inv * make_general("A"),
    "diagonal": lambda: _diag("D").as_operand()
    * make_general("A")
    * make_symmetric("S"),
    "diagonal_inverse": lambda: make_general("A") * _diag("D").inv,
    "symmetric_transpose": lambda: make_symmetric("S").T * make_general("A"),
}


class TestFeatureCombinationRoundTrips:
    @pytest.mark.parametrize("name", sorted(FEATURE_CHAINS))
    def test_identity_costs_and_execution_preserved(self, name):
        chain = FEATURE_CHAINS[name]()
        variants = all_variants(chain)
        loaded_chain, loaded = serialize.loads(serialize.dumps(chain, variants))

        # Identity: chain equality, per-variant kernel/step signatures, and
        # every operand's features/operators.
        assert loaded_chain == chain
        for original, restored in zip(chain, loaded_chain):
            assert restored.matrix.structure is original.matrix.structure
            assert restored.matrix.prop is original.matrix.prop
            assert restored.op is original.op
        assert [v.signature() for v in loaded] == [
            v.signature() for v in variants
        ]
        # Cost functions survive the round trip on sampled instances.
        rng = np.random.default_rng(hash(name) % 2**32)
        for q in sample_instances(chain, 8, rng, low=2, high=200):
            q = tuple(int(x) for x in q)
            for original, restored in zip(variants, loaded):
                assert restored.flop_cost(q) == pytest.approx(
                    original.flop_cost(q)
                )
        # Execution: restored variants compute the same product.
        sizes = small_sizes_for(chain, rng)
        arrays = random_instance_arrays(chain, sizes, rng)
        expected = naive_evaluate(chain, arrays)
        scale = max(1.0, float(np.abs(expected).max()))
        for restored in loaded:
            from repro.compiler.executor import execute_variant

            got = execute_variant(restored, arrays)
            np.testing.assert_allclose(
                got / scale, expected / scale, atol=1e-7
            )

    @pytest.mark.parametrize("name", sorted(FEATURE_CHAINS))
    def test_operand_states_preserved(self, name):
        """The executor flags (stored structure, trans/inv) survive the wire."""
        chain = FEATURE_CHAINS[name]()
        variants = all_variants(chain)
        _, loaded = serialize.loads(serialize.dumps(chain, variants))
        for original, restored in zip(variants, loaded):
            for step_a, step_b in zip(original.steps, restored.steps):
                assert step_b.left_state == step_a.left_state
                assert step_b.right_state == step_a.right_state
                assert step_b.result_state == step_a.result_state
                assert step_b.call_dims == step_a.call_dims
                assert step_b.cheap == step_a.cheap
            assert restored.final_state == original.final_state
            assert [f.kernel.name for f in restored.fixups] == [
                f.kernel.name for f in original.fixups
            ]


class TestFacade:
    def test_generated_code_json_roundtrip(self):
        rng = np.random.default_rng(7)
        chain = random_option_chain(4, rng)
        generated = compile_chain(chain, num_training_instances=100, seed=7)
        clone = GeneratedCode.from_json(generated.to_json(indent=2))
        sizes = small_sizes_for(generated.chain, rng)
        original_pick, original_cost = generated.select(sizes)
        clone_pick, clone_cost = clone.select(sizes)
        assert original_pick.signature() == clone_pick.signature()
        assert clone_cost == pytest.approx(original_cost)
        arrays = random_instance_arrays(generated.chain, sizes, rng)
        np.testing.assert_allclose(generated(*arrays), clone(*arrays))


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(SerializationError, match="invalid JSON"):
            serialize.loads("{not json")

    def test_wrong_top_level(self):
        with pytest.raises(SerializationError):
            serialize.loads("[1, 2, 3]")

    def test_wrong_version(self):
        with pytest.raises(SerializationError, match="format version"):
            serialize.loads('{"format_version": 999, "chain": {}, "variants": []}')

    def test_malformed_chain(self):
        with pytest.raises(SerializationError, match="malformed chain"):
            serialize.loads(
                '{"format_version": 1, "chain": {"operands": [{"name": "A"}]},'
                ' "variants": []}'
            )

    def test_malformed_variant(self):
        chain = general_chain(2)
        good = serialize.dumps(chain, all_variants(chain))
        import json

        data = json.loads(good)
        del data["variants"][0]["steps"][0]["kernel"]
        with pytest.raises(SerializationError, match="malformed variant"):
            serialize.loads(json.dumps(data))

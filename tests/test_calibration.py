"""Tests for measured (wall-clock calibrated) performance models."""

import numpy as np
import pytest

from repro.kernels.spec import KERNELS
from repro.perfmodel.calibration import (
    MeasuredPerformanceModelSet,
    build_call,
    measure_performance,
)
from repro.perfmodel.models import KERNEL_MODEL_DIMS
from repro.compiler.parenthesization import left_to_right_tree
from repro.compiler.variant import build_variant

from conftest import general_chain

SMALL_GRID = (16.0, 48.0)


class TestMeasurement:
    def test_every_modelled_kernel_has_a_recipe(self):
        rng = np.random.default_rng(0)
        for name in KERNEL_MODEL_DIMS:
            call = build_call(name, 8, 8, 6, rng)
            result = call()
            assert result is not None

    def test_unknown_kernel_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(KeyError, match="no measurement recipe"):
            build_call("NOPE", 4, 4, 4, rng)

    def test_measured_performance_positive(self):
        perf = measure_performance("GEMM", 32, 32, 32, repeats=2)
        assert perf > 0.0

    def test_median_of_repeats(self):
        # Just exercises the repeats path; values are hardware-dependent.
        perf = measure_performance("TRSM", 24, 24, 24, repeats=3)
        assert np.isfinite(perf) and perf > 0.0


class TestMeasuredModelSet:
    @pytest.fixture(scope="class")
    def models(self):
        # A tiny grid and a handful of kernels keep this test fast while
        # covering the 3-D, 2-D, and 1-D sampling paths.
        return MeasuredPerformanceModelSet(
            grid=SMALL_GRID,
            repeats=1,
            kernels=("GEMM", "TRSM", "TRTRMM", "GEGESV"),
        )

    def test_models_built(self, models):
        assert set(models.models) == {"GEMM", "TRSM", "TRTRMM", "GEGESV"}

    def test_performance_queries(self, models):
        perf = models.models["GEMM"].performance(32, 32, 32)[0]
        assert perf > 0.0
        # Clamping at the measured boundary.
        edge = models.models["TRSM"].performance(16, 16, 16)[0]
        below = models.models["TRSM"].performance(2, 2, 2)[0]
        assert below == pytest.approx(edge)

    def test_variant_time_estimation(self, models):
        chain = general_chain(3)
        variant = build_variant(chain, left_to_right_tree(3))
        instances = np.asarray([[16, 32, 16, 48], [48, 16, 32, 16]], float)
        times = models.variant_time_many(variant, instances)
        assert times.shape == (2,)
        assert (times > 0).all()

"""The pluggable variant-space layer: strategies, auto-selection, caching.

Covers the three contracts of :mod:`repro.compiler.variant_space`:

* every space emits a subset of the per-parenthesization family ``A`` that
  includes all distinct fanning-out variants (so Theorem 2 selection works);
* ``variant_space``/``max_variants`` are part of the compilation-cache key
  (sessions differing only there never share entries, in memory or on disk);
* on small chains, the DP-seeded space's selected dispatch set is penalty-
  equivalent to exhaustive enumeration (the equivalence guard).
"""

import numpy as np
import pytest

from repro.errors import CompilationError
from repro.compiler.cache import compilation_key
from repro.compiler.pipeline import CompileOptions, EnumeratePass, PassContext, default_pipeline
from repro.compiler.selection import CostMatrix, _tree_key, all_variants
from repro.compiler.session import CompilerSession
from repro.compiler.variant_space import (
    AUTO_EXHAUSTIVE_MAX_N,
    DPSeededSpace,
    ExhaustiveSpace,
    fanning_trees,
    make_space,
    resolve_space,
)
from repro.experiments.sampling import sample_instances
from repro.serve.backends import DiskBackend

from conftest import general_chain, random_option_chain


def tree_keys(variants):
    return {_tree_key(v.tree) for v in variants}


def fanning_keys(chain):
    return {_tree_key(t) for t in fanning_trees(chain)}


def training(chain, count=60, seed=0, low=2, high=1000):
    rng = np.random.default_rng(seed)
    return sample_instances(chain, count, rng, low=low, high=high)


class TestExhaustiveSpace:
    def test_matches_all_variants(self):
        chain = general_chain(5)
        pool = ExhaustiveSpace().generate(chain, None)
        assert tree_keys(pool) == tree_keys(all_variants(chain))

    def test_cap_keeps_fanning_variants(self):
        chain = general_chain(6)
        pool = ExhaustiveSpace(max_variants=5).generate(chain, None)
        assert len(pool) <= 5 + len(fanning_trees(chain))
        assert fanning_keys(chain) <= tree_keys(pool)

    def test_cap_deduplicates(self):
        chain = general_chain(5)
        pool = ExhaustiveSpace(max_variants=10).generate(chain, None)
        assert len(tree_keys(pool)) == len(pool)

    def test_refuses_eager_catalan_blowup(self):
        # n=16 has Catalan(15) ~ 9.7M parenthesizations; an uncapped
        # exhaustive space must refuse rather than hang.
        chain = general_chain(16)
        with pytest.raises(CompilationError, match="variant_space='dp'"):
            ExhaustiveSpace().generate(chain, None)

    def test_capped_long_chain_is_tractable(self):
        chain = general_chain(16)
        pool = ExhaustiveSpace(max_variants=20).generate(chain, None)
        assert len(pool) <= 20 + chain.n + 1
        assert fanning_keys(chain) <= tree_keys(pool)


class TestDPSeededSpace:
    def test_pool_contains_fanning_and_seeds(self):
        chain = general_chain(6)
        instances = training(chain)
        pool = DPSeededSpace().generate(chain, instances)
        assert fanning_keys(chain) <= tree_keys(pool)
        # The training-set DP optima are all seeded into the pool.
        from repro.compiler.dp import dp_seed_trees

        for tree in dp_seed_trees(chain, instances, DPSeededSpace.DEFAULT_NUM_SEEDS):
            assert _tree_key(tree) in tree_keys(pool)

    def test_pool_is_deduplicated_and_bounded(self):
        chain = general_chain(7)
        pool = DPSeededSpace(max_variants=25).generate(chain, training(chain))
        assert len(tree_keys(pool)) == len(pool)
        assert len(pool) <= max(25, len(fanning_trees(chain)))

    def test_requires_training_instances(self):
        with pytest.raises(CompilationError, match="training instances"):
            DPSeededSpace().generate(general_chain(5), None)

    def test_neighborhood_zero_is_seeds_only(self):
        chain = general_chain(6)
        instances = training(chain)
        bare = DPSeededSpace(neighborhood=0).generate(chain, instances)
        expanded = DPSeededSpace(neighborhood=1).generate(chain, instances)
        assert tree_keys(bare) <= tree_keys(expanded)

    def test_invalid_parameters(self):
        with pytest.raises(CompilationError):
            DPSeededSpace(max_variants=0)
        with pytest.raises(CompilationError):
            DPSeededSpace(num_seeds=0)
        with pytest.raises(CompilationError):
            DPSeededSpace(neighborhood=-1)


class TestResolution:
    def test_auto_picks_exhaustive_for_short_chains(self):
        options = CompileOptions()
        space = resolve_space(options, general_chain(AUTO_EXHAUSTIVE_MAX_N))
        assert isinstance(space, ExhaustiveSpace)

    def test_auto_picks_dp_beyond_threshold(self):
        options = CompileOptions()
        space = resolve_space(options, general_chain(AUTO_EXHAUSTIVE_MAX_N + 1))
        assert isinstance(space, DPSeededSpace)

    def test_explicit_names_win_over_length(self):
        options = CompileOptions(variant_space="dp")
        assert isinstance(resolve_space(options, general_chain(3)), DPSeededSpace)
        options = CompileOptions(variant_space="exhaustive")
        assert isinstance(
            resolve_space(options, general_chain(12)), ExhaustiveSpace
        )

    def test_max_variants_reaches_the_space(self):
        options = CompileOptions(variant_space="dp", max_variants=33)
        assert resolve_space(options, general_chain(4)).max_variants == 33

    def test_unknown_space_rejected(self):
        with pytest.raises(CompilationError, match="variant_space"):
            CompileOptions(variant_space="genetic")
        with pytest.raises(CompilationError, match="unknown variant space"):
            make_space("genetic")

    def test_invalid_max_variants_rejected(self):
        with pytest.raises(CompilationError, match="max_variants"):
            CompileOptions(max_variants=0)


class TestPipelineIntegration:
    def test_long_chain_compiles_through_auto(self):
        # n=12 could never compile eagerly in a test (Catalan(11) = 58786
        # variants x instances); through auto -> DP-seeded it is fast.
        session = CompilerSession()
        generated = session.compile(
            general_chain(12), num_training_instances=60
        )
        assert len(generated.variants) >= 1
        assert session.last_context.executed[:4] == [
            "parse", "simplify", "sample", "enumerate",
        ]
        variant, cost = generated.select(
            tuple(int(s) for s in training(general_chain(12), 1, seed=3)[0])
        )
        assert cost > 0

    def test_explicit_space_instance_on_the_pass(self):
        # A space pinned at pass construction wins over the options.
        space = DPSeededSpace(max_variants=40)
        pipeline = default_pipeline().replaced("enumerate", EnumeratePass(space))
        ctx = PassContext(
            source=general_chain(5),
            options=CompileOptions(num_training_instances=30),
        )
        pipeline.run(ctx)
        assert len(ctx.variants) <= 40
        assert fanning_keys(ctx.chain) <= tree_keys(ctx.variants)

    def test_pinned_space_changes_pipeline_fingerprint(self):
        base = default_pipeline()
        pinned = base.replaced("enumerate", EnumeratePass(DPSeededSpace()))
        other = base.replaced(
            "enumerate", EnumeratePass(DPSeededSpace(max_variants=7))
        )
        assert len({base.fingerprint(), pinned.fingerprint(), other.fingerprint()}) == 3


class TestCacheKeys:
    def test_options_token_separates_spaces(self):
        chain = general_chain(5)
        keys = {
            compilation_key(chain, CompileOptions(variant_space=name))
            for name in ("auto", "exhaustive", "dp")
        }
        assert len(keys) == 3

    def test_options_token_separates_max_variants(self):
        chain = general_chain(5)
        keys = {
            compilation_key(chain, CompileOptions(max_variants=mv))
            for mv in (None, 10, 20)
        }
        assert len(keys) == 3

    def test_sessions_with_different_spaces_do_not_share_memory_cache(self):
        cache_chain = general_chain(6)
        session = CompilerSession()
        session.compile(
            cache_chain, num_training_instances=40, variant_space="exhaustive"
        )
        session.compile(cache_chain, num_training_instances=40, variant_space="dp")
        stats = session.cache_stats()
        assert stats.hits == 0 and stats.misses == 2

    def test_sessions_with_different_spaces_do_not_share_disk_cache(self, tmp_path):
        cache_chain = general_chain(6)
        a = CompilerSession(cache_backend=DiskBackend(tmp_path))
        a.compile(
            cache_chain, num_training_instances=40, variant_space="exhaustive"
        )
        assert a.cache_stats().disk_writes == 1

        b = CompilerSession(cache_backend=DiskBackend(tmp_path))
        b.compile(cache_chain, num_training_instances=40, variant_space="dp")
        stats = b.cache_stats()
        assert stats.hits == 0 and stats.misses == 1 and stats.disk_hits == 0

        # Sanity: the *same* knobs do share the disk entry across sessions.
        c = CompilerSession(cache_backend=DiskBackend(tmp_path))
        c.compile(
            cache_chain, num_training_instances=40, variant_space="exhaustive"
        )
        assert c.cache_stats().disk_hits == 1

    def test_max_variants_does_not_share_disk_cache(self, tmp_path):
        cache_chain = general_chain(6)
        a = CompilerSession(cache_backend=DiskBackend(tmp_path))
        a.compile(cache_chain, num_training_instances=40, max_variants=50)
        b = CompilerSession(cache_backend=DiskBackend(tmp_path))
        b.compile(cache_chain, num_training_instances=40, max_variants=60)
        stats = b.cache_stats()
        assert stats.hits == 0 and stats.disk_hits == 0

    def test_essential_set_reproducible_across_exhaustive_reruns(self):
        # Same structure + options, cache off: the selection pass must be
        # deterministic run to run (the cache-soundness precondition).
        chain = random_option_chain(5, np.random.default_rng(17))
        session = CompilerSession()
        runs = [
            session.compile(
                chain,
                num_training_instances=50,
                variant_space="exhaustive",
                use_cache=False,
            )
            for _ in range(2)
        ]
        assert [v.signature() for v in runs[0].variants] == [
            v.signature() for v in runs[1].variants
        ]
        assert [v.name for v in runs[0].variants] == [
            v.name for v in runs[1].variants
        ]


class TestEquivalenceGuard:
    """DP-seeded selection matches exhaustive selection on small chains.

    The acceptance guard of the variant-space layer: across random
    feature/size scenarios (triangular, symmetric, transposed operands
    included), the dispatch set selected through :class:`DPSeededSpace`
    achieves an average penalty — measured per
    :meth:`CostMatrix.average_penalty` against the *exhaustive* optimum on
    held-out instances — within a small tolerance of the set selected
    through :class:`ExhaustiveSpace`.
    """

    TOLERANCE = 0.05

    def _held_out_penalty(self, chain, selected, matrix):
        sig_to_idx = {
            v.signature(): i for i, v in enumerate(matrix.variants)
        }
        indices = [sig_to_idx[v.signature()] for v in selected]
        return matrix.average_penalty(indices)

    @pytest.mark.parametrize("n,seed", [(4, 0), (5, 1), (6, 2), (7, 3), (8, 4)])
    def test_penalty_parity_on_small_chains(self, n, seed):
        rng = np.random.default_rng(seed)
        chain = random_option_chain(n, rng, allow_transpose=True)
        session = CompilerSession()
        by_space = {
            name: session.compile(
                chain,
                num_training_instances=80,
                variant_space=name,
                seed=7,
                use_cache=False,
            )
            for name in ("exhaustive", "dp")
        }
        held_out = sample_instances(chain, 60, rng, low=2, high=1000)
        matrix = CostMatrix(all_variants(chain), held_out)
        exhaustive_penalty = self._held_out_penalty(
            chain, by_space["exhaustive"].variants, matrix
        )
        dp_penalty = self._held_out_penalty(
            chain, by_space["dp"].variants, matrix
        )
        assert dp_penalty <= exhaustive_penalty + self.TOLERANCE

    def test_penalty_parity_with_expansion(self):
        rng = np.random.default_rng(9)
        chain = random_option_chain(6, rng, allow_transpose=True)
        session = CompilerSession()
        by_space = {
            name: session.compile(
                chain,
                num_training_instances=80,
                variant_space=name,
                expand_by=2,
                seed=7,
                use_cache=False,
            )
            for name in ("exhaustive", "dp")
        }
        held_out = sample_instances(chain, 60, rng, low=2, high=1000)
        matrix = CostMatrix(all_variants(chain), held_out)
        exhaustive_penalty = self._held_out_penalty(
            chain, by_space["exhaustive"].variants, matrix
        )
        dp_penalty = self._held_out_penalty(
            chain, by_space["dp"].variants, matrix
        )
        assert dp_penalty <= exhaustive_penalty + self.TOLERANCE


class TestReviewRegressions:
    def test_huge_cap_admits_the_guarded_size(self):
        # An explicit max_variants >= the Catalan total means the caller
        # sized the enumeration: the blowup guard must not fire.  n=7 with
        # an over-generous cap exercises the same branch cheaply.
        chain = general_chain(7)
        pool = ExhaustiveSpace(max_variants=10_000_000).generate(chain, None)
        assert tree_keys(pool) == tree_keys(all_variants(chain))

    def test_zero_training_instances_rejected_up_front(self):
        with pytest.raises(CompilationError, match="num_training_instances"):
            CompileOptions(num_training_instances=0)

    def test_empty_explicit_training_set_rejected(self):
        session = CompilerSession()
        with pytest.raises(CompilationError, match="at least one instance"):
            session.compile(
                general_chain(4), training_instances=np.empty((0, 5))
            )

    def test_fanning_trees_match_selection_collapse_rule(self):
        from repro.compiler.selection import distinct_fanning_trees

        for n in (2, 3, 4, 6):
            chain = general_chain(n)
            assert [_tree_key(t) for t in fanning_trees(chain)] == [
                _tree_key(t) for t in distinct_fanning_trees(chain).values()
            ]


class TestDiagnostics:
    def test_exhaustive_space_reports_pool(self):
        chain = general_chain(5)
        space = ExhaustiveSpace()
        pool = space.generate(chain, None)
        diag = space.diagnostics
        assert diag["strategy"] == "exhaustive"
        assert diag["pool_size"] == len(pool)
        assert diag["capped"] is False

    def test_capped_exhaustive_reports_forced_fanning(self):
        chain = general_chain(7)
        space = ExhaustiveSpace(max_variants=5)
        pool = space.generate(chain, None)
        diag = space.diagnostics
        assert diag["capped"] is True
        assert diag["pool_size"] == len(pool)
        assert diag["forced_fanning"] >= 1

    def test_dp_space_reports_seeds_and_dedup(self):
        chain = general_chain(12)
        space = DPSeededSpace(num_seeds=8, neighborhood=1)
        pool = space.generate(chain, training(chain))
        diag = space.diagnostics
        assert diag["strategy"] == "dp"
        assert diag["pool_size"] == len(pool)
        assert 1 <= diag["seed_count"] <= 8  # dp_seed_trees dedupes
        assert diag["fanning"] >= chain.n - 1
        assert diag["dedup_hits"] >= 0

    def test_enumerate_pass_publishes_variant_pool_diagnostics(self):
        session = CompilerSession()
        session.compile(general_chain(12), num_training_instances=40)
        pool = session.last_context.diagnostics["variant_pool"]
        assert pool["strategy"] == "dp"       # auto resolved by length
        assert pool["requested"] == "auto"    # the raw option, pre-resolution
        assert pool["pool_size"] >= 1
        assert pool["seed_count"] >= 1

    def test_single_matrix_chain_diagnostics(self):
        session = CompilerSession()
        session.compile(general_chain(1), num_training_instances=5)
        pool = session.last_context.diagnostics["variant_pool"]
        assert pool == {
            "strategy": "single", "requested": "auto", "pool_size": 1,
        }

    def test_cache_hit_skips_enumeration_diagnostics(self):
        session = CompilerSession()
        session.compile(general_chain(4), num_training_instances=20)
        session.compile(general_chain(4), num_training_instances=20)
        # The hit path never ran the enumerate pass: no stale pool report.
        assert "variant_pool" not in session.last_context.diagnostics


class TestAdaptiveDPSpace:
    """``dp-adaptive``: seeding effort sized by held-out penalty plateau."""

    def test_make_space_builds_adaptive(self):
        space = make_space("dp-adaptive", max_variants=64)
        assert isinstance(space, DPSeededSpace)
        assert space.adaptive is True
        assert space.name == "dp-adaptive"
        # The plain dp space is untouched by the instance-attr shadow.
        assert make_space("dp").name == "dp"

    def test_resolves_through_compile_options(self):
        from repro.compiler.variant_space import resolve_space

        options = CompileOptions(variant_space="dp-adaptive", max_variants=32)
        space = resolve_space(options, general_chain(12))
        assert isinstance(space, DPSeededSpace) and space.adaptive

    def test_generate_reports_adaptive_diagnostics(self):
        chain = general_chain(12)
        space = DPSeededSpace(max_variants=64, num_seeds=2, adaptive=True)
        pool = space.generate(chain, training(chain, count=80))
        diag = space.diagnostics
        assert diag["strategy"] == "dp-adaptive"
        assert diag["adaptive_rounds"] == len(diag["adaptive_history"]) >= 1
        assert diag["pool_size"] == len(pool)
        assert diag["holdout_penalty"] > 0
        assert diag["num_seeds"] >= 2
        assert fanning_keys(chain) <= tree_keys(pool)

    def test_growth_never_worsens_the_holdout_penalty(self):
        chain = general_chain(12)
        space = DPSeededSpace(max_variants=128, num_seeds=2, adaptive=True)
        space.generate(chain, training(chain, count=80))
        history = space.diagnostics["adaptive_history"]
        kept = space.diagnostics["holdout_penalty"]
        assert kept <= history[0]["holdout_penalty"]
        assert kept == min(round_["holdout_penalty"] for round_ in history)

    def test_rounds_grow_seeds_and_neighborhood(self):
        chain = general_chain(12)
        space = DPSeededSpace(
            max_variants=128, num_seeds=2, neighborhood=0, adaptive=True
        )
        space.generate(chain, training(chain, count=80))
        history = space.diagnostics["adaptive_history"]
        for earlier, later in zip(history, history[1:]):
            assert later["num_seeds"] == min(earlier["num_seeds"] * 2, 60)
            assert later["neighborhood"] == earlier["neighborhood"] + 1

    def test_max_rounds_zero_is_one_shot(self):
        chain = general_chain(10)
        space = DPSeededSpace(
            max_variants=64, num_seeds=4, adaptive=True, max_rounds=0
        )
        space.generate(chain, training(chain, count=40))
        assert space.diagnostics["adaptive_rounds"] == 1
        assert space.diagnostics["num_seeds"] == 4

    def test_total_plateau_tolerance_stops_after_first_probe(self):
        chain = general_chain(10)
        space = DPSeededSpace(
            max_variants=64, num_seeds=2, adaptive=True, plateau_rtol=0.99
        )
        space.generate(chain, training(chain, count=40))
        # Demanding a 99% improvement per round: the first grown candidate
        # cannot qualify, so growth stops after probing it once.
        assert space.diagnostics["adaptive_rounds"] <= 2

    def test_tiny_training_set_skips_the_split(self):
        chain = general_chain(8)
        space = DPSeededSpace(max_variants=32, num_seeds=2, adaptive=True)
        pool = space.generate(chain, training(chain, count=3))
        assert len(pool) >= 1
        assert space.diagnostics["holdout_penalty"] > 0

    def test_calibrated_estimator_scores_the_holdout(self):
        from repro.obs.registry import MetricsRegistry
        from repro.perfmodel.feedback import CalibratedEstimator

        chain = general_chain(10)
        estimator = CalibratedEstimator(registry=MetricsRegistry())
        space = DPSeededSpace(
            max_variants=64, num_seeds=2, adaptive=True, estimator=estimator
        )
        pool = space.generate(chain, training(chain, count=40))
        assert len(pool) >= 1
        # Seed-rate calibrated penalties are FLOPs scaled to seconds.
        assert 0 < space.diagnostics["holdout_penalty"] < 1e6

    def test_cache_token_separates_adaptive_from_plain_dp(self):
        plain = DPSeededSpace(max_variants=64)
        adaptive = DPSeededSpace(max_variants=64, adaptive=True)
        assert plain.cache_token() != adaptive.cache_token()
        assert (
            DPSeededSpace(max_variants=64, adaptive=True, plateau_rtol=0.05)
            .cache_token()
            != adaptive.cache_token()
        )

    def test_adaptive_compiles_through_the_session(self):
        session = CompilerSession()
        generated = session.compile(
            general_chain(12),
            num_training_instances=40,
            variant_space="dp-adaptive",
        )
        pool = session.last_context.diagnostics["variant_pool"]
        assert pool["strategy"] == "dp-adaptive"
        assert pool["requested"] == "dp-adaptive"
        assert pool["adaptive_rounds"] >= 1
        # The selected dispatch set is a subset of the candidate pool.
        assert 1 <= len(generated.variants) <= pool["pool_size"]

    def test_adaptive_parameter_validation(self):
        with pytest.raises(CompilationError):
            DPSeededSpace(adaptive=True, max_rounds=-1)
        with pytest.raises(CompilationError):
            DPSeededSpace(adaptive=True, plateau_rtol=-0.1)

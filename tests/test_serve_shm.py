"""Zero-copy shared-memory operand transport (repro.serve.shm)."""

import json
import socket

import numpy as np
import pytest

from repro.serve import CompileService, encode_array, handle_request
from repro.serve import shm
from repro.serve.frontend import decode_array, decode_operand

SOURCE_AB = (
    "Matrix A <General, Singular>; Matrix B <General, Singular>; R := A * B;"
)

pytestmark = pytest.mark.skipif(
    not shm.shm_available(), reason="shared memory unavailable on this host"
)


@pytest.fixture
def service():
    service = CompileService(workers=2, warm=False)
    yield service
    service.close()


@pytest.fixture
def reaper():
    reaper = shm.SegmentReaper(ttl=60.0)
    yield reaper
    reaper.close()


class TestSegmentRoundTrip:
    def test_payload_shape_and_copy(self):
        array = np.arange(12, dtype=np.float64).reshape(3, 4)
        payload, segment = shm.create_segment_payload(array)
        try:
            assert payload["encoding"] == "shm"
            assert payload["shape"] == [3, 4]
            assert payload["dtype"] == "<f8"
            back = shm.read_segment_payload(payload)
            assert np.array_equal(back, array)
            # read_segment_payload copies: the original segment may die.
            assert back.base is None or not isinstance(back.base, memoryview)
        finally:
            segment.close()
            segment.unlink()

    def test_open_segment_is_zero_copy_and_read_only(self):
        array = np.random.default_rng(0).standard_normal((8, 8))
        payload, segment = shm.create_segment_payload(array)
        try:
            view, mapped = shm.open_segment(payload)
            assert np.array_equal(view, array)
            assert not view.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                view[0, 0] = 1.0
            del view
            mapped.close()
        finally:
            segment.close()
            segment.unlink()

    def test_unknown_segment_rejected(self):
        with pytest.raises(ValueError, match="unknown shm segment"):
            shm.open_segment(
                {"encoding": "shm", "name": "psm_does_not_exist",
                 "shape": [2, 2], "dtype": "<f8"}
            )

    def test_oversize_header_rejected(self):
        with pytest.raises(ValueError, match="bound"):
            shm.open_segment(
                {"encoding": "shm", "name": "x",
                 "shape": [1 << 20, 1 << 20], "dtype": "<f8"}
            )

    def test_undersized_segment_rejected(self):
        payload, segment = shm.create_segment_payload(np.zeros((2, 2)))
        try:
            lying = dict(payload, shape=[64, 64])
            with pytest.raises(ValueError, match="claims"):
                shm.open_segment(lying)
        finally:
            segment.close()
            segment.unlink()


class TestReaper:
    def test_release_unlinks(self, reaper):
        payload, _ = shm.create_segment_payload(np.ones((2, 2)), reaper=reaper)
        assert len(reaper) == 1
        assert reaper.release(payload["name"]) is True
        assert len(reaper) == 0
        with pytest.raises(ValueError):
            shm.open_segment(payload)
        assert reaper.release(payload["name"]) is False

    def test_ttl_reaps_orphans(self, reaper):
        payload, _ = shm.create_segment_payload(np.ones((2, 2)), reaper=reaper)
        assert reaper.reap() == 0  # not expired yet
        import time

        assert reaper.reap(now=time.monotonic() + reaper.ttl + 1) == 1
        assert len(reaper) == 0
        with pytest.raises(ValueError):
            shm.open_segment(payload)

    def test_close_unlinks_everything(self, reaper):
        payloads = [
            shm.create_segment_payload(np.ones((2, 2)), reaper=reaper)[0]
            for _ in range(3)
        ]
        assert reaper.close() == 3
        for payload in payloads:
            with pytest.raises(ValueError):
                shm.open_segment(payload)


class TestWireCodec:
    def test_encode_array_shm(self, reaper):
        array = np.random.default_rng(1).standard_normal((4, 6))
        payload = encode_array(array, "shm", reaper=reaper)
        assert payload["encoding"] == "shm"
        assert np.array_equal(decode_array(payload), array)
        reaper.close()

    def test_encode_array_shm_falls_back_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(shm, "_AVAILABLE", False)
        payload = encode_array(np.ones((2, 2)), "shm")
        assert payload["encoding"] == "npy"
        assert np.array_equal(decode_array(payload), np.ones((2, 2)))

    def test_decode_operand_zero_copy(self):
        array = np.random.default_rng(2).standard_normal((5, 5))
        payload, segment = shm.create_segment_payload(array)
        try:
            view, closer = decode_operand(payload)
            assert closer is not None
            assert np.array_equal(view, array)
            assert not view.flags.writeable
            del view
            closer()
        finally:
            segment.close()
            segment.unlink()

    def test_decode_shm_unavailable_is_protocol_error(self, monkeypatch):
        payload, segment = shm.create_segment_payload(np.ones((2, 2)))
        try:
            monkeypatch.setattr(shm, "_AVAILABLE", False)
            with pytest.raises(ValueError, match="unavailable"):
                decode_operand(payload)
        finally:
            segment.close()
            segment.unlink()


class TestExecuteOverShm:
    def _compile(self, service):
        response = handle_request(
            service, {"op": "compile", "source": SOURCE_AB, "id": 1}
        )
        assert response["ok"], response
        return response["handle"]

    def test_bit_identical_round_trip(self, service):
        handle = self._compile(service)
        rng = np.random.default_rng(3)
        a = rng.standard_normal((16, 24))
        b = rng.standard_normal((24, 8))
        pa, sa = shm.create_segment_payload(a)
        pb, sb = shm.create_segment_payload(b)
        try:
            response = handle_request(
                service,
                {"op": "execute", "handle": handle, "arrays": [pa, pb]},
            )
            assert response["ok"], response
            assert response["result"]["encoding"] == "shm"
            result = decode_array(response["result"])
            # Same kernels, same bytes: shm transport must be bit-exact
            # with the in-process execution.
            expected = service.execute(handle, [a, b]).result
            assert np.array_equal(result, expected)
            released = handle_request(
                service, {"op": "release", "name": response["result"]["name"]}
            )
            assert released == {"ok": True, "released": True, "id": None}
        finally:
            for segment in (sa, sb):
                segment.close()
                segment.unlink()

    def test_result_falls_back_to_npy_when_shm_unavailable(
        self, service, monkeypatch
    ):
        handle = self._compile(service)
        a, b = np.ones((3, 4)), np.ones((4, 2))
        monkeypatch.setattr(shm, "_AVAILABLE", False)
        response = handle_request(
            service,
            {
                "op": "execute",
                "handle": handle,
                "arrays": [encode_array(a), encode_array(b)],
                "result_encoding": "shm",
            },
        )
        assert response["ok"], response
        assert response["result"]["encoding"] == "npy"
        assert np.array_equal(decode_array(response["result"]), a @ b)

    def test_stale_segment_is_in_band_error(self, service):
        handle = self._compile(service)
        payload, segment = shm.create_segment_payload(np.ones((3, 3)))
        segment.close()
        segment.unlink()
        response = handle_request(
            service, {"op": "execute", "handle": handle, "arrays": [payload]}
        )
        assert response["ok"] is False
        assert "unknown shm segment" in response["error"]

    def test_release_unknown_name(self, service):
        response = handle_request(
            service, {"op": "release", "name": "psm_never_created"}
        )
        assert response == {"ok": True, "released": False, "id": None}

    def test_transports_negotiation(self, service):
        response = handle_request(service, {"op": "ping"})
        assert "shm" in response["transports"]
        stats = handle_request(service, {"op": "stats"})
        assert stats["transports"] == response["transports"]
        assert "npy" in stats["transports"]

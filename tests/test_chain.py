"""Tests for symbolic chains, size symbols, equivalence classes, instances."""

import pytest

from repro.errors import ShapeError
from repro.ir.chain import Chain
from repro.ir.features import Property, Structure
from repro.ir.matrix import Matrix

from conftest import (
    general_chain,
    make_general,
    make_lower,
    make_symmetric,
    make_upper,
)


class TestBasics:
    def test_empty_chain_rejected(self):
        with pytest.raises(ShapeError):
            Chain(())

    def test_size_symbols(self):
        chain = general_chain(3)
        assert chain.size_symbols() == ("q0", "q1", "q2", "q3")

    def test_iteration_and_indexing(self):
        chain = general_chain(4)
        assert len(chain) == 4
        assert chain[0].matrix.name == "G1"
        assert [op.matrix.name for op in chain] == ["G1", "G2", "G3", "G4"]


class TestEquivalenceClasses:
    def test_all_general_chain_has_singleton_classes(self):
        chain = general_chain(4)
        classes = chain.equivalence_classes()
        assert classes == [(0,), (1,), (2,), (3,), (4,)]

    def test_paper_example(self):
        # S1 G2 S3 L4 G5 from Section V: classes {q0,q1}, {q2,q3,q4}, {q5}.
        chain = Chain(
            (
                make_symmetric("S1").as_operand(),
                make_general("G2").as_operand(),
                make_symmetric("S3").as_operand(),
                make_lower("L4").as_operand(),
                make_general("G5").as_operand(),
            )
        )
        assert chain.equivalence_classes() == [(0, 1), (2, 3, 4), (5,)]

    def test_class_count_formula(self):
        # n_c = n - n_sq + 1 where n_sq counts necessarily-square matrices.
        chain = Chain(
            (
                make_general("A").as_operand(),
                make_upper("U").as_operand(),
                make_general("B", invertible=True).inv,
                make_general("C").as_operand(),
            )
        )
        n_sq = sum(chain.square_flags())
        assert n_sq == 2
        assert len(chain.equivalence_classes()) == chain.n - n_sq + 1

    def test_class_of(self):
        chain = Chain(
            (make_lower("L").as_operand(), make_general("G").as_operand())
        )
        assert chain.class_of(0) == (0, 1)
        assert chain.class_of(2) == (2,)
        with pytest.raises(ShapeError):
            chain.class_of(5)


class TestInstances:
    def test_validate_ok(self):
        chain = general_chain(2)
        assert chain.validate_sizes([3, 4, 5]) == (3, 4, 5)

    def test_wrong_length(self):
        with pytest.raises(ShapeError):
            general_chain(2).validate_sizes([3, 4])

    def test_nonpositive_rejected(self):
        with pytest.raises(ShapeError):
            general_chain(2).validate_sizes([3, 0, 5])

    def test_square_constraint_enforced(self):
        chain = Chain(
            (make_lower("L").as_operand(), make_general("G").as_operand())
        )
        chain.validate_sizes([4, 4, 7])
        with pytest.raises(ShapeError):
            chain.validate_sizes([4, 5, 7])

    def test_instance_accessors(self):
        chain = general_chain(3)
        inst = chain.instance([2, 3, 4, 5])
        assert inst.n == 3
        assert inst.matrix_dims(1) == (3, 4)
        assert inst.result_dims() == (2, 5)


class TestSignatures:
    def test_signature_distinguishes_features(self):
        c1 = Chain((make_lower("L").as_operand(), make_general("G").as_operand()))
        c2 = Chain((make_upper("U").as_operand(), make_general("G").as_operand()))
        assert c1.shape_signature() != c2.shape_signature()

    def test_signature_ignores_names(self):
        c1 = Chain((make_general("A").as_operand(), make_general("B").as_operand()))
        c2 = Chain((make_general("X").as_operand(), make_general("Y").as_operand()))
        assert c1.shape_signature() == c2.shape_signature()

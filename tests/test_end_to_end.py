"""Whole-system integration tests.

Each scenario drives the complete flow a downstream user would:

    program text -> parse -> compile (selection + expansion) -> verify IR
    -> serialize/deserialize -> emit standalone Python -> execute through
    all three paths (library dispatcher, deserialized dispatcher, emitted
    module) -> compare against the dense oracle -> generate the report.

If any layer drifts out of sync with another (cost functions vs executor vs
emitters vs serializer), these tests fail even when each unit test passes.
"""

import numpy as np
import pytest

from repro.api import GeneratedCode, compile_chain
from repro.codegen import serialize
from repro.compiler.executor import naive_evaluate, random_instance_arrays
from repro.compiler.validation import verify_variant
from repro.experiments.sampling import sample_instances
from repro.ir.parser import parse_program

from conftest import random_option_chain, small_sizes_for

SCENARIOS = [
    # (name, program source)
    (
        "kalman",
        "Matrix X <General, Singular>; Matrix HX <General, Singular>;"
        " Matrix HXc <General, Singular>; Matrix M <Symmetric, SPD>;"
        " R := X * HX * HXc^T * M^-1;",
    ),
    (
        "blocked-inversion",
        "Matrix G1 <General, Singular>; Matrix L1 <LowerTri, NonSingular>;"
        " Matrix G2 <General, Singular>; Matrix L2 <LowerTri, NonSingular>;"
        " R := G1 * L1^-1 * G2 * L2^-1;",
    ),
    (
        "orthogonal-sandwich",
        "Matrix Q <General, Orthogonal>; Matrix S <Symmetric, SPD>;"
        " Matrix G <General, Singular>;"
        " R := Q^-1 * S^-1 * Q * G;",
    ),
    (
        "diagonal-mix",
        "Matrix D <Diagonal, NonSingular>; Matrix U <UpperTri, NonSingular>;"
        " Matrix G <General, Singular>;"
        " R := D^-1 * U * D * G;",
    ),
]


def _arrays_for(generated: GeneratedCode, rng) -> tuple[list, tuple]:
    sizes = tuple(
        int(x)
        for x in sample_instances(generated.chain, 1, rng, low=4, high=10)[0]
    )
    # Shared matrices (e.g. Q and Q^-1) must be bound to the same array.
    by_name: dict[str, np.ndarray] = {}
    arrays = []
    from repro.compiler.executor import random_matrix

    q = generated.chain.validate_sizes(sizes)
    for i, operand in enumerate(generated.chain):
        rows, cols = q[i], q[i + 1]
        if operand.transposed:
            rows, cols = cols, rows
        name = operand.matrix.name
        if name not in by_name:
            by_name[name] = random_matrix(
                operand.matrix.structure, operand.matrix.prop, rows, cols, rng
            )
        arrays.append(by_name[name])
    return arrays, sizes


@pytest.mark.parametrize("name,source", SCENARIOS)
def test_full_pipeline(name, source):
    rng = np.random.default_rng(hash(name) % 2**32)
    program = parse_program(source)
    generated = compile_chain(
        program.chain, expand_by=1, num_training_instances=200, seed=7
    )

    # 1. Every selected variant passes the IR verifier.
    for variant in generated.variants:
        verify_variant(variant)

    # 2. Execution agrees with the dense oracle.
    arrays, sizes = _arrays_for(generated, rng)
    expected = naive_evaluate(generated.chain, arrays)
    scale = max(1.0, float(np.abs(expected).max()))
    result = generated(*arrays)
    np.testing.assert_allclose(result / scale, expected / scale, atol=1e-7)

    # 3. Serialization round-trip picks and computes identically.
    clone = GeneratedCode.from_json(generated.to_json())
    assert [v.signature() for v in clone.variants] == [
        v.signature() for v in generated.variants
    ]
    np.testing.assert_allclose(clone(*arrays) / scale, result / scale, atol=1e-12)

    # 4. The emitted standalone Python module agrees too.
    namespace: dict = {}
    exec(compile(generated.python_source(), f"<{name}>", "exec"), namespace)
    emitted = namespace["evaluate"](*arrays)
    np.testing.assert_allclose(emitted / scale, result / scale, atol=1e-9)

    # 5. The emitted C++ mentions every kernel the variants use.
    cpp = generated.cpp_source()
    for variant in generated.variants:
        for step in variant.steps:
            assert f"kernels::{step.kernel.name.lower()}(" in cpp

    # 6. The report renders.
    report = generated.report(num_instances=50, seed=1)
    assert "Compilation report" in report


def test_pipeline_on_random_shapes():
    rng = np.random.default_rng(99)
    for _ in range(3):
        chain = random_option_chain(int(rng.integers(3, 6)), rng)
        generated = compile_chain(chain, num_training_instances=100, seed=3)
        for variant in generated.variants:
            verify_variant(variant)
        sizes = small_sizes_for(generated.chain, rng)
        arrays = random_instance_arrays(generated.chain, sizes, rng)
        expected = naive_evaluate(generated.chain, arrays)
        scale = max(1.0, float(np.abs(expected).max()))
        np.testing.assert_allclose(
            generated(*arrays) / scale, expected / scale, atol=1e-7
        )
        _, loaded = serialize.loads(generated.to_json())
        assert len(loaded) == len(generated.variants)

"""CompileService(workers_mode="process"): artifact fan-out over a pool.

One module-scoped service amortizes the spawn-mode worker startup (the
processes boot a fresh interpreter and import numpy + repro).
"""

import numpy as np
import pytest

from repro.compiler.program import CompiledProgram
from repro.compiler.session import CompilerSession
from repro.experiments.sampling import sample_instances, sample_shapes
from repro.serve import CompileService
from repro.serve import procpool

from conftest import general_chain, make_general, make_lower

TRAIN = 30


@pytest.fixture(scope="module")
def service():
    service = CompileService(workers=2, workers_mode="process", warm=False)
    service.prestart()
    yield service
    service.close()


class TestProcessMode:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="workers_mode"):
            CompileService(workers_mode="fibers")

    def test_stats_report_mode(self, service):
        assert service.stats()["workers_mode"] == "process"

    def test_compiles_match_in_process_compilation(self, service):
        chain = make_general("A") * make_lower("L").inv * make_general("B")
        generated = service.compile(
            chain, num_training_instances=TRAIN, seed=4, timeout=300
        )
        local = CompilerSession().compile(
            chain, num_training_instances=TRAIN, seed=4
        )
        assert [v.signature() for v in generated.variants] == [
            v.signature() for v in local.variants
        ]
        rng = np.random.default_rng(0)
        for q in sample_instances(chain, 10, rng, low=2, high=300):
            q = tuple(int(x) for x in q)
            a, cost_a = generated.select(q)
            b, cost_b = local.select(q)
            assert a.signature() == b.signature()
            assert cost_a == pytest.approx(cost_b)

    def test_artifact_lands_in_parent_cache(self, service):
        chain = general_chain(5)
        service.compile(chain, num_training_instances=TRAIN, timeout=300)
        # Same structure again: served from the parent session cache, no
        # second pool round-trip.
        before = service.metrics.snapshot()["compiled"]
        service.compile(general_chain(5), num_training_instances=TRAIN, timeout=300)
        after = service.metrics.snapshot()
        assert after["compiled"] == before
        assert after["cache_hits"] >= 1

    def test_coalescing_coexists_with_process_pool(self, service):
        chains = [
            make_general(f"X{i}") * make_general(f"Y{i}") * make_general(f"Z{i}")
            for i in range(6)
        ]
        before = service.metrics.snapshot()
        results = service.compile_many(
            chains, num_training_instances=TRAIN, use_cache=False, timeout=300
        )
        after = service.metrics.snapshot()
        assert len(results) == 6
        reference = [v.signature() for v in results[0].variants]
        for generated in results:
            assert [v.signature() for v in generated.variants] == reference
            assert [op.matrix.name for op in generated.chain] != None  # noqa: E711
        # One pipeline execution (in a worker process), five coalesced.
        assert after["compiled"] - before["compiled"] == 1
        assert after["coalesced"] - before["coalesced"] == 5

    def test_distinct_structures_fan_out(self, service):
        rng = np.random.default_rng(17)
        chains = sample_shapes(5, 4, rng, rectangular_probability=0.5)
        results = service.compile_many(
            chains, num_training_instances=TRAIN, use_cache=False, timeout=300
        )
        assert len(results) == 4
        for chain, generated in zip(chains, results):
            assert generated.chain == chain
            assert len(generated.variants) >= 1

    def test_errors_propagate_from_worker(self, service):
        from repro.errors import CompilationError

        # The back pipeline (which runs inside the worker process) refuses
        # unbounded exhaustive enumeration on a long chain; the failure
        # must surface through the future, not wedge the pool.
        with pytest.raises(CompilationError, match="parenthesizations"):
            service.compile(
                general_chain(16),
                variant_space="exhaustive",
                num_training_instances=TRAIN,
                use_cache=False,
                timeout=300,
            )
        # The pool is still healthy afterwards.
        generated = service.compile(
            general_chain(3), num_training_instances=TRAIN, timeout=300
        )
        assert len(generated.variants) >= 1


class TestProcessModeSafety:
    def test_custom_pipeline_session_compiles_in_parent(self):
        """A customized pipeline must never be offloaded to pool workers.

        The workers run the default pipeline; offloading a session whose
        pipeline drops the expansion pass would cache a wrong-pipeline
        artifact under the custom pipeline's key.
        """
        session = CompilerSession()
        session.pipeline = session.pipeline.without("expand")
        reference = session.compile(
            general_chain(5), num_training_instances=TRAIN, expand_by=3,
            use_cache=False,
        )
        with CompileService(
            session, workers=2, workers_mode="process", warm=False
        ) as service:
            assert service._offload_to_pool() is False
            generated = service.compile(
                general_chain(5), num_training_instances=TRAIN, expand_by=3,
                use_cache=False, timeout=300,
            )
        # Without the expansion pass, expand_by must have no effect — in
        # both the plain session and the process-mode service.
        assert [v.signature() for v in generated.variants] == [
            v.signature() for v in reference.variants
        ]

    def test_worker_diagnostics_surface_in_parent_stats(self, service):
        service.compile(
            general_chain(6), num_training_instances=TRAIN,
            use_cache=False, timeout=300,
        )
        stats = service.stats()
        last = stats["last_compile"]
        # The pipeline ran in a worker process, but its instrumentation
        # (enumerate timing, variant-pool diagnostics) still reaches the
        # parent's stats and the produced artifact.
        assert "enumerate" in last["timings_ms"]
        assert last["variant_pool"]["pool_size"] >= 1


class TestProcessModeClose:
    def test_close_without_wait_completes_queued_work(self):
        """close(wait=False) must not yank the pool from queued compiles."""
        service = CompileService(workers=2, workers_mode="process", warm=False)
        service.prestart()
        # Distinct structures: four separate queue records, each needing
        # its own pool round-trip after close() returns.
        chains = [general_chain(n) for n in (2, 3, 4, 5)]
        futures = service.submit_many(
            chains, num_training_instances=TRAIN, use_cache=False
        )
        service.close(wait=False)
        results = [future.result(timeout=300) for future in futures]
        assert all(len(generated.variants) >= 1 for generated in results)


class TestWireCodec:
    def test_encode_request_is_json_clean(self):
        import json

        session = CompilerSession()
        ctx, _ = session.prepare(
            general_chain(4), training_instances=None
        )
        request = procpool.encode_request(ctx, use_cache=False)
        json.dumps(request)  # must not raise
        assert request["options"]["simplify"] is False
        assert request["use_cache"] is False

    def test_compile_job_round_trip(self):
        """The worker entry point runs in-process too (same code path)."""
        session = CompilerSession()
        ctx, _ = session.prepare(general_chain(4))
        request = procpool.encode_request(ctx)
        request["options"]["num_training_instances"] = TRAIN
        wire = procpool.compile_job(request)
        program = CompiledProgram.loads(wire)
        assert program.chain.n == 4
        assert len(program.variants) >= 1

    def test_explicit_training_instances_ship_as_lists(self):
        chain = general_chain(3)
        rng = np.random.default_rng(1)
        train = sample_instances(chain, 12, rng)
        session = CompilerSession()
        ctx, _ = session.prepare(chain, training_instances=train)
        request = procpool.encode_request(ctx)
        assert isinstance(request["training_instances"], list)
        program = CompiledProgram.loads(procpool.compile_job(request))
        np.testing.assert_allclose(program.training_instances, train)

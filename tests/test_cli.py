"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "GEMM" in out and "TRTRSV" in out

    def test_header(self, capsys):
        assert main(["header"]) == 0
        out = capsys.readouterr().out
        assert "gmc_kernels.hpp" in out

    def test_compile_inline(self, capsys):
        source = (
            "Matrix A <General, Singular>; Matrix B <General, Singular>;"
            " Matrix C <General, Singular>; R := A * B * C;"
        )
        assert main(["compile", "--source", source, "--train", "50"]) == 0
        out = capsys.readouterr().out
        assert "variant" in out
        assert "cost[" in out

    def test_compile_cpp(self, capsys):
        source = "Matrix A <General, Singular>; Matrix B <General, Singular>; R := A * B;"
        assert main(
            ["compile", "--source", source, "--train", "20", "--cpp"]
        ) == 0
        assert "gmc" in capsys.readouterr().out

    def test_compile_from_file(self, tmp_path, capsys):
        path = tmp_path / "prog.gmc"
        path.write_text(
            "Matrix A <General, Singular>; Matrix B <General, Singular>; R := A * B;"
        )
        assert main(["compile", "--file", str(path), "--train", "20"]) == 0

    def test_compile_output_then_run_describe_and_dispatch(self, tmp_path, capsys):
        source = (
            "Matrix A <General, Singular>; Matrix B <General, Singular>;"
            " Matrix C <General, Singular>; R := A * B * C;"
        )
        artifact = tmp_path / "prog.json"
        assert main(
            ["compile", "--source", source, "--train", "40",
             "--output", str(artifact)]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote compiled artifact" in out
        assert artifact.exists()

        assert main(["run", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "compiled program for chain" in out

        assert main(["run", str(artifact), "--sizes", "10,200,5,100"]) == 0
        out = capsys.readouterr().out
        assert "dispatched to:" in out

    def test_run_executes_npz_arrays(self, tmp_path, capsys):
        import numpy as np

        from repro.api import load_program
        from repro.compiler.executor import naive_evaluate

        source = (
            "Matrix A <General, Singular>; Matrix B <General, Singular>;"
            " R := A * B;"
        )
        artifact = tmp_path / "prog.json"
        assert main(
            ["compile", "--source", source, "--train", "30",
             "--output", str(artifact)]
        ) == 0
        capsys.readouterr()
        rng = np.random.default_rng(4)
        a, b = rng.standard_normal((5, 3)), rng.standard_normal((3, 7))
        npz = tmp_path / "arrays.npz"
        np.savez(npz, A=a, B=b)
        out_file = tmp_path / "result.npy"
        assert main(
            ["run", str(artifact), "--npz", str(npz), "--out", str(out_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "dispatched to:" in out
        result = np.load(out_file)
        generated = load_program(artifact)
        np.testing.assert_allclose(result, naive_evaluate(generated.chain, [a, b]))

    def test_run_rejects_non_artifact(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["run", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_compile_output_rejects_expression(self, tmp_path, capsys):
        source = "Matrix A <General, Singular>; R := A + 2 * A;"
        assert main(
            ["compile", "--source", source, "--train", "20",
             "--output", str(tmp_path / "x.json")]
        ) == 2
        assert "one artifact per compiled chain" in capsys.readouterr().err

    def test_compile_timings_prints_variant_pool(self, capsys):
        source = (
            "Matrix A <General, Singular>; Matrix B <General, Singular>;"
            " Matrix C <General, Singular>; R := A * B * C;"
        )
        assert main(
            ["compile", "--source", source, "--train", "30", "--timings"]
        ) == 0
        out = capsys.readouterr().out
        assert "pass timings:" in out
        assert "variant pool:" in out
        assert "strategy=exhaustive" in out

    def test_compile_without_input_fails(self, capsys):
        assert main(["compile"]) == 2

    def test_fig5_small(self, capsys):
        assert main(
            ["fig5", "--n", "5", "--shapes", "2", "--train", "100", "--val", "30"]
        ) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out
        assert "eCDF" in out

    def test_fig6_small(self, capsys):
        assert main(
            ["fig6", "--shapes", "2", "--train", "100", "--val", "30"]
        ) == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out
        assert "Arma" in out

    def test_analyze(self, capsys):
        source = (
            "Matrix L <LowerTri, NonSingular>; Matrix G <General, Singular>;"
            " R := L^-1 * G;"
        )
        assert main(
            ["analyze", "--source", source, "--train", "50", "--instances", "50"]
        ) == 0
        out = capsys.readouterr().out
        assert "Compilation report" in out
        assert "equivalence classes" in out

    def test_analyze_without_input_fails(self):
        assert main(["analyze"]) == 2

    def test_pygen_emits_runnable_module(self, capsys):
        source = (
            "Matrix A <General, Singular>; Matrix B <General, Singular>;"
            " Matrix C <General, Singular>; R := A * B * C;"
        )
        assert main(["pygen", "--source", source, "--train", "50"]) == 0
        emitted = capsys.readouterr().out
        namespace: dict = {}
        exec(compile(emitted, "<pygen>", "exec"), namespace)
        import numpy as np

        a, b, c = (
            np.ones((2, 3)), np.ones((3, 4)), np.ones((4, 5))
        )
        result = namespace["evaluate"](a, b, c)
        np.testing.assert_allclose(result, (a @ b) @ c)

    def test_pygen_without_input_fails(self):
        assert main(["pygen"]) == 2

    def test_compile_expression_program(self, capsys):
        source = (
            "Matrix A <Symmetric, SPD>; Matrix B <General, Singular>;"
            " Matrix C <General, Singular>;"
            " S := A - B * A^-1 * C;"
        )
        assert main(["compile", "--source", source, "--train", "30"]) == 0
        out = capsys.readouterr().out
        assert "expression" in out
        assert "term" in out

    def test_compile_expression_cpp_per_term(self, capsys):
        source = (
            "Matrix A <General, Singular>; R := A + 2 * A;"
        )
        assert main(
            ["compile", "--source", source, "--train", "10", "--cpp"]
        ) == 0
        out = capsys.readouterr().out
        assert "evaluate_chain_term0" in out
        assert "evaluate_chain_term1" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

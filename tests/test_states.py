"""Tests for operand states and the four-step association procedure (§IV)."""

import pytest

from repro.ir.chain import Chain
from repro.ir.features import Property, Structure
from repro.compiler.states import (
    OperandState,
    associate,
    initial_states,
)

from conftest import (
    make_general,
    make_lower,
    make_orthogonal,
    make_symmetric,
    make_upper,
)


def same_class_all_equal(i, j):
    return True


def same_class_distinct(i, j):
    return i == j


def _states(chain: Chain):
    return initial_states(chain)


class TestInitialStates:
    def test_plain_general(self):
        chain = Chain((make_general("G").as_operand(),))
        (state,) = _states(chain)
        assert state.structure is Structure.GENERAL
        assert not state.inverted and not state.transposed
        assert (state.rows, state.cols) == (0, 1)
        assert state.source == ("matrix", 0)

    def test_transposed_lower_becomes_upper(self):
        chain = Chain((make_lower("L").T,))
        (state,) = _states(chain)
        assert state.structure is Structure.UPPER_TRIANGULAR
        assert state.transposed

    def test_inverted_orthogonal_simplifies_to_transpose(self):
        chain = Chain((make_orthogonal("Q").inv,))
        (state,) = _states(chain)
        assert not state.inverted
        assert state.transposed

    def test_transposed_symmetric_simplifies(self):
        chain = Chain((make_symmetric("S").T,))
        (state,) = _states(chain)
        assert not state.transposed

    def test_stored_structure_undoes_transpose(self):
        chain = Chain((make_lower("L").T,))
        (state,) = _states(chain)
        assert state.stored_structure is Structure.LOWER_TRIANGULAR


class TestInversionPropagation:
    def test_both_inverted_rewrites_to_product(self):
        chain = Chain(
            (make_general("A", invertible=True).inv,
             make_general("B", invertible=True).inv)
        )
        left, right = _states(chain)
        result = associate(left, right, same_class_all_equal, 0)
        # M1^-1 M2^-1 = (M2 M1)^-1: a GEMM with a pending inversion.
        assert result.kernel.name == "GEMM"
        assert result.pending_inverse
        assert result.result.inverted
        # Operands swapped: the kernel consumes (M2, M1).
        assert result.left.source == ("matrix", 1)
        assert result.right.source == ("matrix", 0)

    def test_general_inverse_next_to_triangular_rewrites(self):
        # L G^-1 = (G L^-1)^-1: TRSM with the triangular coefficient.
        chain = Chain(
            (make_lower("L").as_operand(),
             make_general("G", invertible=True).inv)
        )
        left, right = _states(chain)
        result = associate(left, right, same_class_all_equal, 0)
        assert result.kernel.name == "TRSM"
        assert result.side == "right"
        assert result.pending_inverse

    def test_general_inverse_next_to_orthogonal_becomes_gemm(self):
        # Q G^-1 = (G Q^-1)^-1 = (G Q^T)^-1: GEMM with pending inversion.
        chain = Chain(
            (make_orthogonal("Q").as_operand(),
             make_general("G", invertible=True).inv)
        )
        left, right = _states(chain)
        result = associate(left, right, same_class_all_equal, 0)
        assert result.kernel.name == "GEMM"
        assert result.pending_inverse
        # The orthogonal operand is consumed transposed.
        assert result.right.transposed

    def test_no_rewrite_for_general_general(self):
        chain = Chain(
            (make_general("A", invertible=True).inv,
             make_general("B").as_operand())
        )
        left, right = _states(chain)
        result = associate(left, right, same_class_distinct, 0)
        assert result.kernel.name == "GEGESV"
        assert result.side == "left"
        assert not result.pending_inverse

    def test_triangular_inverse_is_a_plain_trsm(self):
        chain = Chain(
            (make_lower("L").inv, make_general("G").as_operand())
        )
        left, right = _states(chain)
        result = associate(left, right, same_class_distinct, 0)
        assert result.kernel.name == "TRSM"
        assert result.side == "left"
        assert not result.pending_inverse

    def test_spd_inverse_uses_po_kernels(self):
        chain = Chain(
            (make_symmetric("P", spd=True).inv,
             make_general("G").as_operand())
        )
        left, right = _states(chain)
        result = associate(left, right, same_class_distinct, 0)
        assert result.kernel.name == "POGESV"

    def test_symmetric_inverse_next_to_triangular_rewrites(self):
        # S^-1 L = (L^-1 S)^-1: TRSYSV (triangular coefficient, sym rhs).
        chain = Chain(
            (make_symmetric("S").inv, make_lower("L").as_operand())
        )
        left, right = _states(chain)
        result = associate(left, right, same_class_all_equal, 0)
        assert result.kernel.name == "TRSYSV"
        assert result.pending_inverse


class TestTranspositionPropagation:
    def test_trmm_with_transposed_general_rewrites(self):
        # L G^T = (G L^T)^T: TRMM does not support a transposed general
        # operand, so the association is rewritten with a pending transpose.
        chain = Chain((make_lower("L").as_operand(), make_general("G").T))
        left, right = _states(chain)
        result = associate(left, right, same_class_distinct, 0)
        assert result.kernel.name == "TRMM"
        assert result.pending_transpose
        assert result.result.transposed
        # After the rewrite the general operand is untransposed and the
        # triangular coefficient picked up the transposition.
        assert not result.left.transposed
        assert result.right.transposed

    def test_gemm_supports_all_transposition_patterns(self):
        chain = Chain((make_general("A").T, make_general("B").T))
        left, right = _states(chain)
        result = associate(left, right, same_class_distinct, 0)
        assert result.kernel.name == "GEMM"
        assert not result.pending_transpose

    def test_trsm_with_transposed_rhs_rewrites(self):
        chain = Chain((make_lower("L").inv, make_general("G").T))
        left, right = _states(chain)
        result = associate(left, right, same_class_distinct, 0)
        assert result.kernel.name == "TRSM"
        assert result.pending_transpose
        # The coefficient moved to the right side.
        assert result.side == "right"


class TestInference:
    def test_result_features_flow_through(self):
        chain = Chain((make_lower("L1").as_operand(), make_lower("L2").as_operand()))
        left, right = _states(chain)
        result = associate(left, right, same_class_all_equal, 3)
        assert result.result.structure is Structure.LOWER_TRIANGULAR
        assert result.result.prop is Property.NON_SINGULAR
        assert result.result.source == ("step", 3)
        assert result.kernel.name == "TRTRMM"
        assert result.cheap  # same triangularity

    def test_mixed_triangularity_is_expensive(self):
        chain = Chain((make_lower("L").as_operand(), make_upper("U").as_operand()))
        left, right = _states(chain)
        result = associate(left, right, same_class_all_equal, 0)
        assert result.kernel.name == "TRTRMM"
        assert not result.cheap
        assert result.result.structure is Structure.GENERAL

    def test_getrsv_cheap_case_depends_on_rhs_triangularity(self):
        # The triangular right-hand sides must be *singular* here: a
        # non-singular triangular neighbour triggers the step 1 rewrite
        # (G^-1 L = (L^-1 G)^-1) and a TRSM instead.
        lower_rhs = Chain(
            (make_general("G", invertible=True).inv,
             make_lower("L", invertible=False).as_operand())
        )
        left, right = _states(lower_rhs)
        result = associate(left, right, same_class_all_equal, 0)
        assert result.kernel.name == "GETRSV"
        assert result.cheap  # coefficient left + lower rhs

        upper_rhs = Chain(
            (make_general("G", invertible=True).inv,
             make_upper("U", invertible=False).as_operand())
        )
        left, right = _states(upper_rhs)
        result = associate(left, right, same_class_all_equal, 0)
        assert result.kernel.name == "GETRSV"
        assert not result.cheap

    def test_nonsingular_triangular_rhs_triggers_rewrite_instead(self):
        chain = Chain(
            (make_general("G", invertible=True).inv,
             make_lower("L", invertible=True).as_operand())
        )
        left, right = _states(chain)
        result = associate(left, right, same_class_all_equal, 0)
        assert result.kernel.name == "TRSM"
        assert result.pending_inverse

"""Tests for variant construction (Section IV), including paper examples."""

import numpy as np
import pytest

import sympy

from repro.errors import CompilationError
from repro.ir.chain import Chain
from repro.compiler.parenthesization import (
    enumerate_trees,
    leaf,
    left_to_right_tree,
    linearize,
    right_to_left_tree,
)
from repro.compiler.variant import build_variant

from conftest import (
    general_chain,
    make_general,
    make_lower,
    make_orthogonal,
    make_symmetric,
    make_upper,
)


class TestPaperExampleSection4:
    """(L1 G2^-1) G3: the worked example of Section IV step 1."""

    def setup_method(self):
        self.chain = Chain(
            (
                make_lower("L1").as_operand(),
                make_general("G2", invertible=True).inv,
                make_general("G3").as_operand(),
            )
        )
        self.variant = build_variant(self.chain, left_to_right_tree(3))

    def test_kernel_sequence(self):
        assert self.variant.kernel_names == ("TRSM", "GEGESV")

    def test_cost_is_5_thirds_m3_plus_2m2n(self):
        m, n = 48, 31
        got = self.variant.flop_cost((m, m, m, n))
        assert got == pytest.approx(5 / 3 * m**3 + 2 * m * m * n)

    def test_symbolic_cost(self):
        q0, q2, q3 = sympy.symbols("q0 q2 q3", positive=True)
        expected = sympy.expand(
            sympy.Rational(2, 3) * q0**3 + q0**2 * q2 + 2 * q0**2 * q3
        )
        assert sympy.simplify(self.variant.symbolic_cost() - expected) == 0

    def test_no_fixups(self):
        # The pending inversion is consumed by the second association.
        assert self.variant.fixups == ()


class TestStandardChains:
    def test_gemm_only(self):
        chain = general_chain(4)
        variant = build_variant(chain, left_to_right_tree(4))
        assert variant.kernel_names == ("GEMM",) * 3
        q = (2, 3, 4, 5, 6)
        expected = 2 * (2 * 3 * 4 + 2 * 4 * 5 + 2 * 5 * 6)
        assert variant.flop_cost(q) == expected

    def test_triplets_match_tree(self):
        chain = general_chain(5)
        for tree in enumerate_trees(5):
            variant = build_variant(chain, tree)
            assert variant.triplets == tuple(
                node.triplet for node in linearize(tree)
            )

    def test_outer_product_vs_inner_product(self):
        # x^T (y z^T) costs ~m times more than (x^T y) z^T (paper intro).
        x, y, z = (make_general(k) for k in "xyz")
        chain = Chain((x.T, y.as_operand(), z.T))
        m = 100
        q = (1, m, 1, m)
        outer_first = build_variant(chain, right_to_left_tree(3)).flop_cost(q)
        inner_first = build_variant(chain, left_to_right_tree(3)).flop_cost(q)
        assert outer_first / inner_first == pytest.approx(m, rel=0.05)


class TestFixups:
    def test_final_pending_inversion_forces_explicit_inverse(self):
        # A^-1 B^-1 = (B A)^-1: the inversion propagates to the end result.
        chain = Chain(
            (make_general("A", invertible=True).inv,
             make_general("B", invertible=True).inv)
        )
        variant = build_variant(chain, left_to_right_tree(2))
        assert variant.kernel_names == ("GEMM", "GEINV")
        m = 10
        assert variant.flop_cost((m, m, m)) == 2 * m**3 + 2 * m**3

    def test_triangular_pending_inversion_uses_trinv(self):
        chain = Chain((make_lower("L1").inv, make_lower("L2").inv))
        variant = build_variant(chain, left_to_right_tree(2))
        # (L2 L1)^-1: TRTRMM (same triangularity) then TRINV.
        assert variant.kernel_names == ("TRTRMM", "TRINV")
        m = 6
        assert variant.flop_cost((m, m, m)) == pytest.approx(m**3 / 3 + m**3 / 3)

    def test_final_pending_transpose(self):
        chain = Chain((make_lower("L").as_operand(), make_general("G").T))
        variant = build_variant(chain, left_to_right_tree(2))
        assert variant.kernel_names == ("TRMM", "TRANSPOSE")
        # Explicit transposition adds no FLOPs.
        q = (4, 4, 7)
        assert variant.flop_cost(q) == 4 * 4 * 7


class TestSingleMatrixChains:
    def test_plain_copy(self):
        chain = Chain((make_general("A").as_operand(),))
        variant = build_variant(chain, leaf(0))
        assert variant.kernel_names == ("COPY",)
        assert variant.flop_cost((3, 4)) == 0.0

    def test_explicit_inverse(self):
        chain = Chain((make_general("A", invertible=True).inv,))
        variant = build_variant(chain, leaf(0))
        assert variant.kernel_names == ("GEINV",)
        assert variant.flop_cost((5, 5)) == 2 * 5**3

    def test_explicit_transpose(self):
        chain = Chain((make_general("A").T,))
        variant = build_variant(chain, leaf(0))
        assert variant.kernel_names == ("TRANSPOSE",)

    def test_inverse_transpose(self):
        chain = Chain((make_general("A", invertible=True).invT,))
        variant = build_variant(chain, leaf(0))
        assert variant.kernel_names == ("GEINV", "TRANSPOSE")


class TestErrorsAndMeta:
    def test_wrong_tree_span_rejected(self):
        chain = general_chain(3)
        with pytest.raises(CompilationError):
            build_variant(chain, left_to_right_tree(4))

    def test_signature_distinguishes_variants(self):
        chain = general_chain(4)
        signatures = {build_variant(chain, t).signature() for t in enumerate_trees(4)}
        assert len(signatures) == len(enumerate_trees(4))

    def test_describe_mentions_kernels(self):
        chain = Chain(
            (make_symmetric("S", spd=True).inv, make_general("G").as_operand())
        )
        variant = build_variant(chain, left_to_right_tree(2), name="demo")
        text = variant.describe()
        assert "POGESV" in text
        assert "demo" in text

    def test_vectorized_cost_matches_scalar(self):
        chain = general_chain(4)
        variant = build_variant(chain, left_to_right_tree(4))
        instances = np.array([[2, 3, 4, 5, 6], [7, 3, 9, 2, 4]])
        many = variant.flop_cost_many(instances)
        for row, expected in zip(instances, many):
            assert variant.flop_cost(tuple(row)) == pytest.approx(expected)

"""Feedback-directed dispatch: calibration, re-selection, shipped tables.

Covers the three layers of the feedback loop:

* :class:`~repro.perfmodel.feedback.CalibratedEstimator` — seeded to rank
  exactly like the analytic FLOP model, learning per-kernel rates from
  the ``runtime.kernel_rate`` histograms, batched estimation, snapshot
  round-trips;
* :class:`~repro.runtime.dispatcher.Dispatcher` re-selection — the
  exponentially-backed-off disagreement/advantage checkpoints that swap a
  memoized plan when the calibrated model exposes a wrong selection;
* the :class:`~repro.compiler.program.CompiledProgram` ``calibration``
  section — a warmed deployment ships its learned table and a fresh
  process dispatches with it (no warm-up), while v1 artifacts keep
  loading.
"""

import json

import numpy as np
import pytest

from repro.api import compile_chain
from repro.compiler.pipeline import COST_MODEL_NAMES, CompileOptions
from repro.compiler.program import (
    ARTIFACT_VERSION,
    SUPPORTED_ARTIFACT_VERSIONS,
    CompiledProgram,
)
from repro.compiler.selection import essential_set
from repro.errors import DispatchError
from repro.experiments.sampling import sample_instances
from repro.obs.registry import MetricsRegistry
from repro.perfmodel.feedback import (
    CALIBRATION_FORMAT_VERSION,
    KERNEL_RATE_METRIC,
    CalibratedEstimator,
    fixup_flops,
    step_flops,
)
from repro.runtime import Dispatcher, random_instance_arrays
from repro.runtime.dispatcher import flop_estimator, runtime_snapshot

from conftest import general_chain


def _pool(chain, seed=0, count=60):
    rng = np.random.default_rng(seed)
    return essential_set(
        chain, training_instances=sample_instances(chain, count, rng)
    )


def _feed(registry, kernel, routine, rates):
    hist = registry.histogram(KERNEL_RATE_METRIC, kernel=kernel, routine=routine)
    for rate in rates:
        hist.observe(rate)
    return hist


class TestStepFlops:
    def test_step_and_fixup_flops_sum_to_variant_flop_cost(self):
        chain = general_chain(5)
        sizes = (7, 19, 4, 31, 12, 9)
        for variant in _pool(chain):
            total = sum(step_flops(s, sizes) for s in variant.steps) + sum(
                fixup_flops(f, sizes) for f in variant.fixups
            )
            assert total == pytest.approx(variant.flop_cost(sizes))


class TestCalibratedEstimator:
    def test_seed_rates_rank_exactly_like_flops(self):
        chain = general_chain(6)
        pool = _pool(chain)
        estimator = CalibratedEstimator(registry=MetricsRegistry())
        rng = np.random.default_rng(1)
        for q in sample_instances(chain, 10, rng):
            q = tuple(int(x) for x in q)
            flops = [flop_estimator(v, q) for v in pool]
            seconds = [estimator(v, q) for v in pool]
            assert np.argsort(flops).tolist() == np.argsort(seconds).tolist()
            for f, s in zip(flops, seconds):
                assert s == pytest.approx(f / estimator.seed_flops_per_second)

    def test_refresh_learns_median_and_decays(self):
        registry = MetricsRegistry()
        estimator = CalibratedEstimator(
            registry=registry, decay=0.5, refresh_interval=0.0
        )
        hist = _feed(registry, "GEMM", "dgemm", [1e9, 2e9, 3e9])
        assert estimator.refresh() == 1
        assert estimator.rate_for("GEMM") == pytest.approx(2e9)
        # Second refresh with a shifted window: EMA moves halfway (decay .5).
        for rate in [6e9] * 5:
            hist.observe(rate)
        estimator.refresh()
        assert estimator.rate_for("GEMM") == pytest.approx((2e9 + 6e9) / 2)

    def test_empty_window_contributes_nothing(self):
        registry = MetricsRegistry()
        registry.histogram(KERNEL_RATE_METRIC, kernel="TRMM", routine="dtrmm")
        estimator = CalibratedEstimator(registry=registry, refresh_interval=0.0)
        assert estimator.refresh() == 0
        assert estimator.rate_for("TRMM") == estimator.seed_flops_per_second

    def test_rates_aggregate_across_routines_by_samples(self):
        registry = MetricsRegistry()
        _feed(registry, "GEMM", "dgemm", [4e9] * 3)
        _feed(registry, "GEMM", "reference fallback", [1e9] * 1)
        estimator = CalibratedEstimator(registry=registry, refresh_interval=0.0)
        estimator.refresh()
        assert estimator.rate_for("GEMM") == pytest.approx(
            (3 * 4e9 + 1 * 1e9) / 4
        )

    def test_cost_many_matches_scalar(self):
        chain = general_chain(5)
        pool = _pool(chain)
        registry = MetricsRegistry()
        _feed(registry, "GEMM", "dgemm", [5e9] * 4)
        estimator = CalibratedEstimator(registry=registry, refresh_interval=0.0)
        estimator.refresh()
        rng = np.random.default_rng(2)
        instances = np.asarray(sample_instances(chain, 8, rng), dtype=np.float64)
        for variant in pool:
            batched = estimator.cost_many(variant, instances)
            scalar = [
                estimator(variant, tuple(int(x) for x in row))
                for row in instances
            ]
            assert np.allclose(batched, scalar)

    def test_snapshot_round_trip(self):
        registry = MetricsRegistry()
        _feed(registry, "GEMM", "dgemm", [3e9] * 5)
        _feed(registry, "TRMM", "dtrmm", [1e9] * 2)
        estimator = CalibratedEstimator(registry=registry, refresh_interval=0.0)
        estimator.refresh()
        payload = estimator.snapshot()
        assert payload["format_version"] == CALIBRATION_FORMAT_VERSION
        assert set(payload["table"]) == {"GEMM|dgemm", "TRMM|dtrmm"}
        json.dumps(payload)  # wire-clean
        restored = CalibratedEstimator.from_snapshot(
            payload, registry=MetricsRegistry()
        )
        assert restored.rate_for("GEMM") == pytest.approx(
            estimator.rate_for("GEMM")
        )
        assert restored.rate_for("TRMM") == pytest.approx(
            estimator.rate_for("TRMM")
        )

    def test_unlearned_estimator_snapshots_empty(self):
        estimator = CalibratedEstimator(registry=MetricsRegistry())
        assert estimator.snapshot() == {}

    def test_from_snapshot_tolerates_junk(self):
        restored = CalibratedEstimator.from_snapshot(
            {
                "table": {
                    "GEMM|dgemm": {"flops_per_second": 2e9, "samples": 3},
                    "bad": "not a mapping",
                    "zero|rate": {"flops_per_second": 0.0},
                },
                "unknown_future_key": {"x": 1},
            },
            registry=MetricsRegistry(),
        )
        assert restored.rate_for("GEMM") == pytest.approx(2e9)
        assert restored.rate_for("zero") == restored.seed_flops_per_second

    def test_stats_shape(self):
        registry = MetricsRegistry()
        estimator = CalibratedEstimator(registry=registry, refresh_interval=0.0)
        fresh = estimator.stats()
        assert fresh["entries"] == 0 and fresh["age_seconds"] is None
        _feed(registry, "GEMM", "dgemm", [2e9] * 3)
        estimator.refresh()
        warmed = estimator.stats()
        assert warmed["entries"] == 1 and warmed["samples"] == 3
        assert warmed["refreshes"] == 1
        assert warmed["age_seconds"] >= 0.0
        json.dumps(warmed)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CalibratedEstimator(seed_flops_per_second=0.0)
        with pytest.raises(ValueError):
            CalibratedEstimator(decay=0.0)
        with pytest.raises(ValueError):
            CalibratedEstimator(decay=1.5)
        with pytest.raises(ValueError):
            CalibratedEstimator(refresh_interval=-1.0)


class _RiggedCalibration:
    """A calibration model that prices one chosen variant far cheaper."""

    def __init__(self, favorite):
        self.favorite = favorite

    def __call__(self, variant, sizes):
        return 1e-6 if variant is self.favorite else 10.0


class TestDispatcherReselection:
    def _arena(self, seed=3):
        chain = general_chain(4)
        pool = _pool(chain, seed=seed)
        assert len(pool) >= 2
        rng = np.random.default_rng(seed)
        sizes = tuple(
            int(x) for x in sample_instances(chain, 1, rng, low=8, high=24)[0]
        )
        arrays = random_instance_arrays(chain, sizes, rng)
        return chain, pool, sizes, arrays

    def test_advantage_trigger_swaps_the_memoized_plan(self):
        chain, pool, sizes, arrays = self._arena()
        flops_pick, _ = Dispatcher(chain, pool).select(sizes)
        loser = next(v for v in pool if v is not flops_pick)
        dispatcher = Dispatcher(
            chain,
            pool,
            calibration=_RiggedCalibration(loser),
            reselect_ratio=2.0,
            reselect_min_executions=4,
        )
        for _ in range(4):
            outcome = dispatcher.run(arrays)
            assert outcome.variant is flops_pick
        swapped = dispatcher.run(arrays)  # 5th run replays the 4th's swap
        assert dispatcher.reselections == 1
        assert dispatcher.reselect_checks >= 1
        assert swapped.variant is loser
        # The swapped decision is stable: its own checkpoints keep it.
        for _ in range(8):
            assert dispatcher.run(arrays).variant is loser
        assert dispatcher.reselections == 1

    def test_agreeing_calibration_keeps_the_selection(self):
        chain, pool, sizes, arrays = self._arena()
        flops_pick, _ = Dispatcher(chain, pool).select(sizes)
        dispatcher = Dispatcher(
            chain,
            pool,
            calibration=_RiggedCalibration(flops_pick),
            reselect_ratio=2.0,
            reselect_min_executions=2,
        )
        for _ in range(10):
            assert dispatcher.run(arrays).variant is flops_pick
        assert dispatcher.reselect_checks >= 1
        assert dispatcher.reselections == 0

    def test_checkpoints_back_off_exponentially(self):
        chain, pool, sizes, arrays = self._arena()
        flops_pick, _ = Dispatcher(chain, pool).select(sizes)
        dispatcher = Dispatcher(
            chain,
            pool,
            calibration=_RiggedCalibration(flops_pick),
            reselect_ratio=2.0,
            reselect_min_executions=2,
        )
        for _ in range(40):
            dispatcher.run(arrays)
        # Checks at executions 2, 4, 8, 16, 32 — not one per call.
        assert dispatcher.reselect_checks == 5

    def test_memo_stats_and_runtime_snapshot_carry_counters(self):
        chain, pool, sizes, arrays = self._arena()
        dispatcher = Dispatcher(chain, pool)
        stats = dispatcher.memo_stats()
        assert stats["reselect_checks"] == 0
        assert stats["reselections"] == 0
        agg = runtime_snapshot()
        assert "reselect_checks" in agg and "reselections" in agg

    def test_reselect_parameter_validation(self):
        chain, pool, _, _ = self._arena()
        with pytest.raises(DispatchError, match="reselect_ratio"):
            Dispatcher(chain, pool, reselect_ratio=1.0)
        with pytest.raises(DispatchError, match="reselect_min_executions"):
            Dispatcher(chain, pool, reselect_min_executions=0)

    def test_calibrated_cost_estimator_becomes_the_calibration(self):
        chain, pool, _, _ = self._arena()
        estimator = CalibratedEstimator(registry=MetricsRegistry())
        dispatcher = Dispatcher(
            chain, pool, cost_estimator=estimator, reselect_ratio=2.0
        )
        assert dispatcher.calibration is estimator


class TestCompileOptionsCostModel:
    def test_cost_model_validated(self):
        assert CompileOptions(cost_model="calibrated").cost_model == "calibrated"
        with pytest.raises(Exception, match="cost_model"):
            CompileOptions(cost_model="psychic")

    def test_cost_model_is_a_runtime_knob_not_a_cache_key(self):
        assert (
            CompileOptions(cost_model="flops").cache_token()
            == CompileOptions(cost_model="calibrated").cache_token()
        )

    def test_compile_chain_cost_model_builds_calibrated_runtime(self):
        generated = compile_chain(
            general_chain(4),
            num_training_instances=40,
            seed=7,
            use_cache=False,
            cost_model="calibrated",
        )
        assert getattr(generated.dispatcher.cost_estimator, "calibrated", False)

    def test_default_cost_model_keeps_flop_estimator(self):
        generated = compile_chain(
            general_chain(4), num_training_instances=40, seed=7, use_cache=False
        )
        assert generated.dispatcher.cost_estimator is flop_estimator


class TestArtifactCalibration:
    def _program(self, n=4, **overrides):
        return compile_chain(
            general_chain(n),
            num_training_instances=40,
            seed=11,
            use_cache=False,
            **overrides,
        ).to_program()

    def _warm_estimator(self, program):
        """A calibrated estimator warmed from a private registry."""
        registry = MetricsRegistry()
        kernels = {
            step.kernel.name for v in program.variants for step in v.steps
        }
        for i, kernel in enumerate(sorted(kernels)):
            _feed(registry, kernel, "reference", [float((i + 1) * 1e9)] * 4)
        estimator = CalibratedEstimator(registry=registry, refresh_interval=0.0)
        estimator.refresh()
        return estimator

    def test_untrafficked_artifact_has_no_calibration_section(self):
        program = self._program()
        payload = json.loads(program.dumps())
        assert payload["artifact_version"] == ARTIFACT_VERSION == 2
        assert "calibration" not in payload
        assert CompiledProgram.loads(program.dumps()).calibration == {}

    def test_calibration_survives_save_load_and_dispatches_warm(self, tmp_path):
        program = self._program()
        estimator = self._warm_estimator(program)
        runtime = program.runtime(cost_estimator=estimator)
        assert runtime.cost_estimator is estimator
        path = tmp_path / "warmed.json"
        program.save(path)
        payload = json.loads(path.read_text())
        assert payload["calibration"]["table"]  # live table was shipped

        fresh = CompiledProgram.load(path)
        assert fresh.calibration["table"] == payload["calibration"]["table"]
        revived = fresh.runtime()
        shipped = revived.cost_estimator
        assert getattr(shipped, "calibrated", False)
        # No warm-up: the fresh process prices kernels at the learned
        # rates immediately, and dispatch agrees with the warmed original.
        for kernel, entry in (
            (key.partition("|")[0], value)
            for key, value in payload["calibration"]["table"].items()
        ):
            assert shipped.rate_for(kernel) == pytest.approx(
                entry["flops_per_second"]
            )
        rng = np.random.default_rng(13)
        for q in sample_instances(program.chain, 10, rng):
            q = tuple(int(x) for x in q)
            picked_a, _ = runtime.select(q)
            picked_b, _ = revived.select(q)
            assert picked_a.signature() == picked_b.signature()

    def test_reserialized_artifact_keeps_shipped_table(self, tmp_path):
        program = self._program()
        estimator = self._warm_estimator(program)
        program.runtime(cost_estimator=estimator)
        restored = CompiledProgram.loads(program.dumps())
        # Load + immediate re-save without traffic: the table persists.
        again = CompiledProgram.loads(restored.dumps())
        assert again.calibration["table"] == restored.calibration["table"]

    def test_v1_artifact_still_loads(self):
        program = self._program()
        estimator = self._warm_estimator(program)
        program.runtime(cost_estimator=estimator)
        payload = json.loads(program.dumps())
        assert "calibration" in payload
        payload["artifact_version"] = 1
        del payload["calibration"]
        downgraded = CompiledProgram.loads(json.dumps(payload))
        assert downgraded.calibration == {}
        assert downgraded.runtime().cost_estimator is flop_estimator
        assert 1 in SUPPORTED_ARTIFACT_VERSIONS

    def test_calibration_tolerates_non_dict_section(self):
        program = self._program()
        payload = json.loads(program.dumps())
        payload["calibration"] = "garbage"
        assert CompiledProgram.loads(json.dumps(payload)).calibration == {}

    def test_options_cost_model_round_trips(self):
        program = self._program(cost_model="calibrated")
        restored = CompiledProgram.loads(program.dumps())
        assert restored.options.get("cost_model") == "calibrated"
        assert getattr(
            restored.runtime().cost_estimator, "calibrated", False
        )
        assert set(COST_MODEL_NAMES) == {"flops", "calibrated"}

"""repro.obs.export: JSON-lines files, Prometheus text, and the HTTP endpoint."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    JsonLinesExporter,
    MetricsRegistry,
    read_trace_file,
    render_prometheus,
    serve_metrics_http,
    tracing_to,
)
from repro.obs import trace as obs_trace


@pytest.fixture(autouse=True)
def clean_tracing():
    obs_trace.disable()
    obs_trace.drain()
    yield
    obs_trace.disable()
    obs_trace.drain()


class TestJsonLines:
    def test_span_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs_trace.enable()
        with JsonLinesExporter(path):
            with obs_trace.span("outer", size=3):
                with obs_trace.span("inner"):
                    pass
        records = read_trace_file(path)
        assert [r["kind"] for r in records] == ["span", "span"]
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[0]["trace_id"] == records[1]["trace_id"]
        assert records[0]["parent_id"] == records[1]["span_id"]
        assert records[1]["attributes"] == {"size": 3}
        # every line parses standalone — the file is valid JSON-lines
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_metrics_record(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        registry = MetricsRegistry()
        registry.counter("hits").inc(5)
        exporter = JsonLinesExporter(path)
        exporter.export_metrics(registry)
        exporter.close()
        (record,) = read_trace_file(path)
        assert record["kind"] == "metrics"
        assert record["snapshot"]["counters"] == {"hits": 5}
        assert record["time"] > 0

    def test_close_detaches_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs_trace.enable()
        exporter = JsonLinesExporter(path).install()
        exporter.close()
        with obs_trace.span("after-close"):
            pass
        assert read_trace_file(path) == []

    def test_tracing_to_enables_then_restores(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert not obs_trace.enabled()
        with tracing_to(path):
            assert obs_trace.enabled()
            with obs_trace.span("work"):
                pass
        assert not obs_trace.enabled()
        records = read_trace_file(path)
        kinds = [r["kind"] for r in records]
        assert kinds == ["span", "metrics"]  # final snapshot is stamped last

    def test_tracing_to_preserves_already_enabled(self, tmp_path):
        obs_trace.enable()
        with tracing_to(tmp_path / "trace.jsonl"):
            pass
        assert obs_trace.enabled()


class TestRenderPrometheus:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("cache.lookups", tier="memory", outcome="hit").inc(3)
        registry.gauge("queue.depth").set(2)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_cache_lookups counter" in text
        assert 'repro_cache_lookups{outcome="hit",tier="memory"} 3.0' in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 2.0" in text
        assert text.endswith("\n")

    def test_histogram_as_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency.seconds", backend="blas")
        for v in [1.0, 2.0, 3.0, 4.0]:
            hist.observe(v)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_latency_seconds summary" in text
        assert 'repro_latency_seconds{backend="blas",quantile="0.5"} 2.0' in text
        assert 'repro_latency_seconds{backend="blas",quantile="0.99"} 4.0' in text
        assert 'repro_latency_seconds_sum{backend="blas"} 10.0' in text
        assert 'repro_latency_seconds_count{backend="blas"} 4' in text

    def test_scope_numeric_leaves_become_gauges(self):
        registry = MetricsRegistry()
        registry.register_collector(
            "serve", lambda: {"requests": 7, "nested": {"depth": 2}, "name": "skip-me"}
        )
        text = render_prometheus(registry.snapshot())
        assert 'repro_requests{scope="serve"} 7.0' in text
        assert 'repro_nested_depth{scope="serve"} 2.0' in text
        assert "skip-me" not in text  # non-numeric leaves are not exported

    def test_type_line_emitted_once_per_metric(self):
        registry = MetricsRegistry()
        registry.counter("c", tier="a").inc()
        registry.counter("c", tier="b").inc()
        text = render_prometheus(registry.snapshot())
        assert text.count("# TYPE repro_c counter") == 1


class TestMetricsHttp:
    def test_scrape_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("scrapes").inc(9)
        server = serve_metrics_http(0, registry=registry)
        try:
            host, port = server.server_address[:2]
            with urllib.request.urlopen(f"http://{host}:{port}/metrics") as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith("text/plain")
                body = resp.read().decode("utf-8")
            assert "repro_scrapes 9.0" in body
        finally:
            server.shutdown()

    def test_unknown_path_is_404(self):
        server = serve_metrics_http(0, registry=MetricsRegistry())
        try:
            host, port = server.server_address[:2]
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"http://{host}:{port}/nope")
            assert excinfo.value.code == 404
        finally:
            server.shutdown()

"""The pass-based pipeline: staging, derivation, instrumentation."""

import numpy as np
import pytest

from repro.errors import CompilationError
from repro.compiler.pipeline import (
    CompileOptions,
    CompilerPass,
    PassContext,
    Pipeline,
    default_pipeline,
    fingerprint_instances,
)
from repro.compiler.selection import CostMatrix, all_variants, essential_set
from repro.experiments.sampling import sample_instances

from conftest import general_chain, make_general, make_lower


EXPECTED_ORDER = [
    "parse",
    "simplify",
    "sample",
    "enumerate",
    "cost-matrix",
    "select",
    "expand",
    "dispatch",
]


def run_pipeline(chain, **options):
    ctx = PassContext(source=chain, options=CompileOptions(**options))
    return default_pipeline().run(ctx)


class TestPipeline:
    def test_default_pass_order(self):
        assert [p.name for p in default_pipeline()] == EXPECTED_ORDER

    def test_full_run_produces_all_artifacts(self):
        ctx = run_pipeline(general_chain(4), num_training_instances=50)
        assert ctx.chain is not None
        assert ctx.training_instances.shape == (50, 5)
        assert len(ctx.variants) == 5  # Catalan(3)
        assert ctx.cost_matrix is not None
        assert ctx.selected and ctx.dispatcher is not None
        assert ctx.executed == EXPECTED_ORDER

    def test_matches_direct_theorem2_selection(self):
        chain = make_general("A") * make_lower("L").inv * make_general("B")
        ctx = run_pipeline(chain, num_training_instances=80)
        rng = np.random.default_rng(0)
        train = sample_instances(chain, 80, rng, low=2, high=1000)
        expected = essential_set(
            chain, cost_matrix=CostMatrix(all_variants(chain), train)
        )
        assert [v.signature() for v in ctx.selected] == [
            v.signature() for v in expected
        ]

    def test_parses_program_source(self):
        source = (
            "Matrix A <General, Singular>; Matrix B <General, Singular>;"
            " R := A * B;"
        )
        ctx = run_pipeline(source, num_training_instances=20)
        assert ctx.chain.n == 2

    def test_rejects_non_chain_input(self):
        with pytest.raises(CompilationError):
            run_pipeline(12345)

    def test_single_matrix_chain(self):
        from repro.ir import Chain

        ctx = run_pipeline(Chain((make_lower("L").inv,)))
        assert len(ctx.selected) == 1
        assert ctx.cost_matrix is None  # nothing to score

    def test_explicit_training_instances_skip_sampling(self):
        chain = general_chain(3)
        rng = np.random.default_rng(7)
        train = sample_instances(chain, 30, rng)
        ctx = PassContext(source=chain, options=CompileOptions())
        ctx.training_instances = train
        default_pipeline().run(ctx)
        np.testing.assert_array_equal(ctx.training_instances, train)

    def test_expand_by_grows_selected_set(self):
        chain = general_chain(5)
        base = run_pipeline(chain, num_training_instances=100)
        grown = run_pipeline(chain, num_training_instances=100, expand_by=2)
        assert len(grown.selected) >= len(base.selected)

    def test_skip_marks_passes(self):
        ctx = PassContext(source=general_chain(3), options=CompileOptions())
        pipeline = default_pipeline()
        # Pre-populate what the skipped passes would have produced.
        front = Pipeline([p for p in pipeline if p.name in ("parse", "simplify")])
        front.run(ctx)
        rng = np.random.default_rng(0)
        ctx.training_instances = sample_instances(ctx.chain, 10, rng)
        ctx.selected = essential_set(
            ctx.chain, training_instances=ctx.training_instances
        )
        pipeline.run(ctx, skip=("parse", "simplify", "sample", "enumerate",
                                "cost-matrix", "select", "expand"))
        assert ctx.dispatcher is not None
        assert "enumerate" in ctx.skipped and "enumerate" not in ctx.executed[2:]

    def test_timings_recorded(self):
        ctx = run_pipeline(general_chain(3), num_training_instances=10)
        assert set(ctx.timings) == set(EXPECTED_ORDER)
        assert all(t >= 0.0 for t in ctx.timings.values())

    def test_observer_sees_every_pass(self):
        seen = []
        pipeline = default_pipeline(
            observer=lambda p, ctx, elapsed: seen.append((p.name, elapsed))
        )
        ctx = PassContext(
            source=general_chain(3),
            options=CompileOptions(num_training_instances=10),
        )
        pipeline.run(ctx)
        assert [name for name, _ in seen] == EXPECTED_ORDER


class TestPipelineDerivation:
    def test_without(self):
        derived = default_pipeline().without("expand")
        assert "expand" not in [p.name for p in derived]
        assert len(derived) == len(EXPECTED_ORDER) - 1

    def test_without_unknown_raises(self):
        with pytest.raises(CompilationError):
            default_pipeline().without("nonexistent")

    def test_replaced(self):
        class NullExpand(CompilerPass):
            name = "expand"
            cacheable = True

            def run(self, ctx):
                pass

        derived = default_pipeline().replaced("expand", NullExpand())
        names = [p.name for p in derived]
        assert names == EXPECTED_ORDER
        assert isinstance(derived.passes[names.index("expand")], NullExpand)

    def test_extended_after(self):
        class Audit(CompilerPass):
            name = "audit"

            def run(self, ctx):
                ctx.timings.setdefault("audited", 1.0)

        derived = default_pipeline().extended(Audit(), after="select")
        names = [p.name for p in derived]
        assert names.index("audit") == names.index("select") + 1

    def test_duplicate_names_rejected(self):
        passes = list(default_pipeline().passes)
        with pytest.raises(CompilationError):
            Pipeline(passes + [passes[0]])

    def test_options_validation(self):
        with pytest.raises(CompilationError):
            CompileOptions(objective="median")


class TestFingerprint:
    def test_same_array_same_fingerprint(self):
        a = np.arange(12).reshape(3, 4)
        assert fingerprint_instances(a) == fingerprint_instances(a.copy())

    def test_different_values_differ(self):
        a = np.arange(12).reshape(3, 4)
        b = a.copy()
        b[0, 0] += 1
        assert fingerprint_instances(a) != fingerprint_instances(b)

    def test_shape_matters(self):
        a = np.arange(12).reshape(3, 4)
        assert fingerprint_instances(a) != fingerprint_instances(a.reshape(4, 3))

"""Tests for the Fig. 2 input-language parser."""

import pytest

from repro.errors import ParseError
from repro.ir.features import Property, Structure
from repro.ir.operand import UnaryOp
from repro.ir.parser import parse_chain, parse_program

PROGRAM = """
Matrix G1 <General, Singular>;
Matrix L  <LowerTri, NonSingular>;
Matrix U  <UpperTri, Singular>;
Matrix G2 <General, Singular>;
R := G1 * L^-1 * U * G2^T;
"""


class TestPrograms:
    def test_parse_paper_like_program(self):
        program = parse_program(PROGRAM)
        assert program.result_name == "R"
        chain = program.chain
        assert chain.n == 4
        assert chain[0].matrix.structure is Structure.GENERAL
        assert chain[1].op is UnaryOp.INVERSE
        assert chain[1].matrix.structure is Structure.LOWER_TRIANGULAR
        assert chain[2].matrix.structure is Structure.UPPER_TRIANGULAR
        assert chain[3].op is UnaryOp.TRANSPOSE

    def test_parse_chain_shortcut(self):
        chain = parse_chain("Matrix A <General, Singular>; R := A;")
        assert chain.n == 1

    def test_comments_and_whitespace(self):
        source = """
        # definitions
        Matrix A <General, Singular>;   # trailing comment
        R := A;  # the chain
        """
        assert parse_chain(source).n == 1

    def test_structure_aliases(self):
        chain = parse_chain(
            "Matrix A <LowerTriangular, Invertible>; R := A;"
        )
        assert chain[0].matrix.structure is Structure.LOWER_TRIANGULAR
        assert chain[0].matrix.prop is Property.NON_SINGULAR

    def test_spd_and_orthogonal(self):
        chain = parse_chain(
            "Matrix P <Symmetric, SPD>; Matrix Q <General, Orthogonal>;"
            " R := P^-1 * Q^T;"
        )
        assert chain[0].matrix.prop is Property.SPD
        assert chain[1].matrix.prop is Property.ORTHOGONAL

    def test_inverse_transpose_suffix(self):
        chain = parse_chain("Matrix A <General, Invertible>; R := A^-T;")
        assert chain[0].op is UnaryOp.INVERSE_TRANSPOSE

    def test_functional_operators(self):
        chain = parse_chain(
            "Matrix A <General, Invertible>; R := inv(A) * trans(A) * invtrans(A);"
        )
        assert chain[0].op is UnaryOp.INVERSE
        assert chain[1].op is UnaryOp.TRANSPOSE
        assert chain[2].op is UnaryOp.INVERSE_TRANSPOSE

    def test_nested_functional_operators_compose(self):
        chain = parse_chain("Matrix A <General, Invertible>; R := inv(trans(A));")
        assert chain[0].op is UnaryOp.INVERSE_TRANSPOSE
        # inv(inv(A)) cancels out.
        chain = parse_chain("Matrix A <General, Invertible>; R := inv(inv(A));")
        assert chain[0].op is UnaryOp.NONE


class TestErrors:
    def test_undefined_matrix(self):
        with pytest.raises(ParseError, match="never defined"):
            parse_chain("Matrix A <General, Singular>; R := B;")

    def test_duplicate_definition(self):
        with pytest.raises(ParseError, match="defined twice"):
            parse_chain(
                "Matrix A <General, Singular>; Matrix A <General, Singular>;"
                " R := A;"
            )

    def test_unknown_structure(self):
        with pytest.raises(ParseError, match="unknown structure"):
            parse_chain("Matrix A <Banded, Singular>; R := A;")

    def test_unknown_property(self):
        with pytest.raises(ParseError, match="unknown property"):
            parse_chain("Matrix A <General, Happy>; R := A;")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_chain("Matrix A <General, Singular> R := A;")

    def test_missing_definitions(self):
        with pytest.raises(ParseError, match="Matrix"):
            parse_chain("R := A;")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_chain("Matrix A <General, Singular>; R := A; extra")

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_chain("Matrix A <General, Singular>; R := A @ A;")

    def test_error_carries_location(self):
        try:
            parse_chain("Matrix A <General,\n Happy>; R := A;")
        except ParseError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected ParseError")

    def test_cannot_invert_singular_in_program(self):
        from repro.errors import InvalidFeaturesError

        with pytest.raises(InvalidFeaturesError):
            parse_chain("Matrix A <General, Singular>; R := A^-1;")

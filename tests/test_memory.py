"""Tests for the variant buffer planner."""

import numpy as np
import pytest

from repro.ir.chain import Chain
from repro.compiler.memory import (
    BYTES_PER_ELEMENT,
    last_uses,
    peak_workspace_bytes,
    plan_memory,
    step_result_dims,
)
from repro.compiler.parenthesization import (
    fanning_out_tree,
    leaf,
    left_to_right_tree,
)
from repro.compiler.selection import all_variants
from repro.compiler.variant import build_variant

from conftest import general_chain, make_general, make_lower


class TestLifetimes:
    def test_left_to_right_chain(self):
        chain = general_chain(4)
        variant = build_variant(chain, left_to_right_tree(4))
        # X0 is consumed by step 1, X1 by step 2, X2 survives to the end.
        assert last_uses(variant) == [1, 2, 3]

    def test_fanning_out_keeps_two_partials_live(self):
        chain = general_chain(5)
        variant = build_variant(chain, fanning_out_tree(5, 2))
        deaths = last_uses(variant)
        # The final association consumes both the prefix and suffix results.
        final = len(variant.steps) - 1
        consumed_at_final = [
            index
            for index, death in enumerate(deaths[:final])
            if death == final
        ]
        assert len(consumed_at_final) == 2

    def test_single_matrix_variant_has_no_plan_entries(self):
        chain = Chain((make_general("A").as_operand(),))
        variant = build_variant(chain, leaf(0))
        plan = plan_memory(variant, (3, 4))
        assert plan.assignments == ()
        assert plan.peak_bytes == 0
        assert plan.reuse_savings == 0.0


class TestDims:
    def test_result_dims_follow_triplets(self):
        chain = general_chain(3)
        variant = build_variant(chain, left_to_right_tree(3))
        dims = step_result_dims(variant, (2, 3, 4, 5))
        assert dims == [(2, 4), (2, 5)]

    def test_pending_transpose_swaps_stored_dims(self):
        chain = Chain((make_lower("L").as_operand(), make_general("G").T))
        variant = build_variant(chain, left_to_right_tree(2))
        assert variant.steps[0].result_state.transposed
        dims = step_result_dims(variant, (4, 4, 7))
        # Logical result is 4x7; the stored base (pre-transpose) is 7x4.
        assert dims == [(7, 4)]


class TestPlanning:
    def test_ping_pong_reuse_on_uniform_chain(self):
        chain = general_chain(5)
        variant = build_variant(chain, left_to_right_tree(5))
        m = 10
        plan = plan_memory(variant, (m,) * 6)
        # Four intermediates, but only two live at any time: two buffers.
        assert plan.num_buffers == 2
        assert plan.naive_bytes == 4 * m * m * BYTES_PER_ELEMENT
        assert plan.peak_bytes == 2 * m * m * BYTES_PER_ELEMENT
        assert plan.reuse_savings == pytest.approx(0.5)

    def test_best_fit_prefers_smallest_adequate_buffer(self):
        # Shrinking chain: early buffers are big and must be reusable for
        # later, smaller results.
        chain = general_chain(4)
        variant = build_variant(chain, left_to_right_tree(4))
        plan = plan_memory(variant, (100, 50, 20, 10, 5))
        assert plan.num_buffers == 2
        # Peak is the first two intermediates both live.
        expected_peak = (100 * 20 + 100 * 10) * BYTES_PER_ELEMENT
        assert plan.peak_bytes == expected_peak

    def test_peak_never_exceeds_naive(self):
        rng = np.random.default_rng(0)
        from repro.experiments.sampling import sample_instances, sample_shapes

        for chain in sample_shapes(6, 5, rng, rectangular_probability=0.5):
            for variant in all_variants(chain)[:10]:
                for q in sample_instances(chain, 3, rng, low=2, high=50):
                    plan = plan_memory(variant, tuple(q))
                    assert plan.peak_bytes <= plan.naive_bytes
                    assert sum(plan.buffer_sizes) <= plan.naive_bytes
                    assert 0.0 <= plan.reuse_savings <= 1.0

    def test_no_step_reuses_a_live_operand_buffer(self):
        rng = np.random.default_rng(1)
        from repro.experiments.sampling import sample_instances, sample_shapes

        chain = sample_shapes(6, 1, rng, rectangular_probability=0.5)[0]
        for variant in all_variants(chain)[:20]:
            q = tuple(sample_instances(chain, 1, rng, low=3, high=40)[0])
            plan = plan_memory(variant, q)
            by_step = {a.step_index: a for a in plan.assignments}
            for step in variant.steps:
                for ref in (step.left_ref, step.right_ref):
                    kind, index = ref
                    if kind != "step":
                        continue
                    operand = by_step[index]
                    result = by_step[step.index]
                    # An operand still being read may not share the result's
                    # buffer.
                    assert operand.buffer_id != result.buffer_id

    def test_variants_differ_in_workspace(self):
        # Parenthesizations of the same chain can need very different
        # workspace: compare left-to-right against the outer-product-first
        # order on the paper's (1, s, 1, s) family.
        chain = general_chain(3)
        s = 100
        q = (1, s, 1, s)
        workspaces = {
            str(v): peak_workspace_bytes(v, q) for v in all_variants(chain)
        }
        assert workspaces["((G1 G2) G3)"] < workspaces["(G1 (G2 G3))"]

    def test_describe(self):
        chain = general_chain(3)
        variant = build_variant(chain, left_to_right_tree(3))
        text = plan_memory(variant, (2, 3, 4, 5)).describe()
        assert "buffers" in text
        assert "X0 -> buffer 0" in text

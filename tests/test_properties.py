"""Property-based tests (hypothesis) for core invariants.

The strategies draw random shapes from the experiment option space (with
optional transpositions) and random instances, then check the invariants
that the paper's theory and the compiler's correctness rest on:

* every variant of every shape computes the same value (oracle equality);
* FLOP costs are positive and monotonically increasing in every size;
* the fanning-out set is within the Lemma 2 constant of the optimum;
* the essential set has bounded penalty (Theorem 1/2);
* parsing a printed program round-trips.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ir.chain import Chain
from repro.ir.operand import Operand, UnaryOp
from repro.ir.parser import parse_program
from repro.compiler.executor import (
    execute_variant,
    naive_evaluate,
    random_instance_arrays,
)
from repro.compiler.parenthesization import enumerate_trees
from repro.compiler.selection import (
    LEMMA2_FACTOR,
    all_variants,
    fanning_out_variants,
    optimal_cost,
)
from repro.compiler.variant import build_variant
from repro.experiments.sampling import MATRIX_OPTIONS, option_to_operand

# -- strategies --------------------------------------------------------------

option_indices = st.integers(min_value=0, max_value=len(MATRIX_OPTIONS) - 1)


@st.composite
def shapes(draw, min_n=2, max_n=5, allow_transpose=False):
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    options = draw(st.lists(option_indices, min_size=n, max_size=n))
    operands = []
    for i, opt in enumerate(options):
        operand = option_to_operand(opt, f"M{i + 1}")
        if (
            allow_transpose
            and operand.op is UnaryOp.NONE
            and draw(st.booleans())
        ):
            operand = Operand(operand.matrix, UnaryOp.TRANSPOSE)
        operands.append(operand)
    return Chain(tuple(operands))


@st.composite
def shape_and_sizes(draw, low=2, high=9, **kwargs):
    chain = draw(shapes(**kwargs))
    classes = chain.equivalence_classes()
    draws = {
        cls: draw(st.integers(min_value=low, max_value=high)) for cls in classes
    }
    sizes = [0] * (chain.n + 1)
    for cls, value in draws.items():
        for idx in cls:
            sizes[idx] = value
    return chain, tuple(sizes)


# -- invariants ----------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(data=shape_and_sizes(allow_transpose=True), seed=st.integers(0, 2**16))
def test_all_variants_compute_the_same_value(data, seed):
    chain, sizes = data
    rng = np.random.default_rng(seed)
    arrays = random_instance_arrays(chain, sizes, rng)
    expected = naive_evaluate(chain, arrays)
    scale = max(1.0, float(np.abs(expected).max()))
    for variant in all_variants(chain):
        got = execute_variant(variant, arrays)
        np.testing.assert_allclose(got / scale, expected / scale, atol=1e-6)


@settings(max_examples=40, deadline=None)
@given(data=shape_and_sizes(low=2, high=400, allow_transpose=True))
def test_costs_positive_and_monotone(data):
    chain, sizes = data
    for tree in enumerate_trees(chain.n)[:8]:
        variant = build_variant(chain, tree)
        base = variant.flop_cost(sizes)
        assert base >= 0.0
        # Grow one whole equivalence class at a time: cost cannot decrease.
        for cls in chain.equivalence_classes():
            grown = list(sizes)
            for idx in cls:
                grown[idx] += 7
            assert variant.flop_cost(tuple(grown)) >= base - 1e-9


@settings(max_examples=30, deadline=None)
@given(data=shape_and_sizes(low=2, high=1000))
def test_fanning_out_within_lemma2_factor(data):
    chain, sizes = data
    opt = optimal_cost(chain, sizes)
    best_fanning = min(
        v.flop_cost(sizes) for v in fanning_out_variants(chain).values()
    )
    if opt == 0.0:
        assert best_fanning == 0.0
    else:
        assert best_fanning <= LEMMA2_FACTOR * opt


@settings(max_examples=15, deadline=None)
@given(data=shape_and_sizes(low=2, high=1000), seed=st.integers(0, 2**16))
def test_essential_set_penalty_bounded(data, seed):
    from repro.compiler.selection import essential_set
    from repro.experiments.sampling import sample_instances

    chain, sizes = data
    rng = np.random.default_rng(seed)
    train = sample_instances(chain, 100, rng, low=2, high=1000)
    selected = essential_set(chain, training_instances=train)
    opt = optimal_cost(chain, sizes)
    best = min(v.flop_cost(sizes) for v in selected)
    if opt == 0.0:
        assert best == 0.0
    else:
        assert best / opt - 1.0 <= LEMMA2_FACTOR - 1.0


@settings(max_examples=30, deadline=None)
@given(chain=shapes(allow_transpose=True))
def test_parser_roundtrip(chain):
    definitions = []
    seen = set()
    for operand in chain:
        matrix = operand.matrix
        if matrix.name not in seen:
            seen.add(matrix.name)
            definitions.append(
                f"Matrix {matrix.name} <{matrix.structure.value}, "
                f"{matrix.prop.value}>;"
            )
    expression = "R := " + " * ".join(str(op) for op in chain) + ";"
    program = parse_program("\n".join(definitions) + "\n" + expression)
    assert program.chain == chain


@settings(max_examples=20, deadline=None)
@given(data=shape_and_sizes(low=2, high=50))
def test_dp_never_worse_than_enumeration(data):
    from repro.compiler.dp import dp_optimal_cost

    chain, sizes = data
    assert dp_optimal_cost(chain, sizes) <= optimal_cost(chain, sizes) * (1 + 1e-9) + 1e-9


@settings(max_examples=20, deadline=None)
@given(chain=shapes(allow_transpose=True))
def test_serialization_roundtrip_preserves_signatures(chain):
    from repro.codegen import serialize

    variants = all_variants(chain)
    loaded_chain, loaded = serialize.loads(serialize.dumps(chain, variants))
    assert loaded_chain == chain
    assert [v.signature() for v in loaded] == [v.signature() for v in variants]


@settings(max_examples=20, deadline=None)
@given(data=shape_and_sizes(low=2, high=80, allow_transpose=True))
def test_memory_plan_invariants(data):
    from repro.compiler.memory import plan_memory

    chain, sizes = data
    for tree in enumerate_trees(chain.n)[:6]:
        variant = build_variant(chain, tree)
        plan = plan_memory(variant, sizes)
        assert plan.peak_bytes <= plan.naive_bytes
        assert sum(plan.buffer_sizes) <= plan.naive_bytes
        assert len(plan.assignments) == len(variant.steps)
        # Buffers are large enough for every value they host.
        for assignment in plan.assignments:
            capacity = plan.buffer_sizes[assignment.buffer_id]
            assert assignment.bytes <= capacity


@settings(max_examples=25, deadline=None)
@given(chain=shapes(allow_transpose=True))
def test_every_variant_passes_the_verifier(chain):
    from repro.compiler.validation import verify_variant

    for variant in all_variants(chain):
        verify_variant(variant)

"""Unit tests for the scaling and distribution-shift study harnesses."""

import numpy as np
import pytest

from repro.experiments.robustness import run_shift_study
from repro.experiments.scaling import (
    ScalingRow,
    format_scaling_table,
    run_scaling_study,
)


class TestScalingStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_scaling_study(
            n_values=(3, 4, 5), shapes_per_n=2, train_instances=100
        )

    def test_row_per_n(self, rows):
        assert [row.n for row in rows] == [3, 4, 5]

    def test_catalan_column(self, rows):
        assert [row.parenthesizations for row in rows] == [2, 5, 14]

    def test_essential_bounded_by_fanning(self, rows):
        for row in rows:
            assert 1 <= row.avg_essential <= row.fanning_out

    def test_code_size_ordering(self, rows):
        for row in rows:
            assert 0 < row.essential_cpp_lines <= row.full_cpp_lines

    def test_compile_time_positive(self, rows):
        assert all(row.compile_seconds > 0 for row in rows)

    def test_formatting(self, rows):
        table = format_scaling_table(rows)
        assert table.count("\n") == len(rows) - 1
        assert "C++ lines" in table


class TestShiftStudy:
    @pytest.fixture(scope="class")
    def results(self):
        return run_shift_study(
            n=5,
            num_shapes=3,
            train_instances=300,
            val_instances=60,
            validation_ranges=(
                ("in", 2, 100),
                ("out", 500, 2000),
            ),
        )

    def test_one_result_per_range(self, results):
        assert [r.label for r in results] == ["in", "out"]

    def test_sets_present(self, results):
        for result in results:
            assert set(result.ratios) == {"Es", "Es1"}
            for values in result.ratios.values():
                assert (values >= 1.0 - 1e-12).all()

    def test_theory_bound_out_of_distribution(self, results):
        for result in results:
            assert result.ratios["Es"].max() <= 16.0

    def test_summary_format(self, results):
        text = results[0].summary()
        assert "mean" in text and "max" in text and "sizes" in text

"""Tests for the kernel cost functions: every entry of Table I."""

import pytest

from repro.kernels.cost import CostType
from repro.kernels.spec import KERNELS, PRODUCT_KERNELS, SOLVE_KERNELS, get_kernel

M, K, N = 8, 8, 5  # square structured operand 8x8, general dimension 5


def cost(name, side="left", cheap=True, m=M, k=K, n=N):
    return KERNELS[name].cost(side=side, cheap=cheap).evaluate(m, k, n)


class TestProductCosts:
    def test_gemm(self):
        assert cost("GEMM", m=3, k=4, n=5) == 2 * 3 * 4 * 5

    def test_symm_sides(self):
        assert cost("SYMM", side="left") == 2 * M * M * N
        assert cost("SYMM", side="right", m=N, n=M) == 2 * N * M * M

    def test_trmm_sides(self):
        assert cost("TRMM", side="left") == M * M * N
        assert cost("TRMM", side="right", m=N, n=M) == N * M * M

    def test_sysymm(self):
        assert cost("SYSYMM") == 2 * M**3

    def test_trsymm(self):
        assert cost("TRSYMM") == M**3

    def test_trtrmm_cases(self):
        assert cost("TRTRMM", cheap=True) == pytest.approx(M**3 / 3)
        assert cost("TRTRMM", cheap=False) == pytest.approx(2 * M**3 / 3)


class TestSolveCosts:
    def test_gegesv_sides(self):
        assert cost("GEGESV", side="left") == pytest.approx(
            2 / 3 * M**3 + 2 * M * M * N
        )
        assert cost("GEGESV", side="right", m=N, n=M) == pytest.approx(
            2 / 3 * M**3 + 2 * M * M * N
        )

    def test_gesysv(self):
        assert cost("GESYSV") == pytest.approx(8 / 3 * M**3)

    def test_getrsv_cases(self):
        assert cost("GETRSV", cheap=True) == 2 * M**3
        assert cost("GETRSV", cheap=False) == pytest.approx(8 / 3 * M**3)

    def test_sygesv_sides(self):
        assert cost("SYGESV", side="left") == pytest.approx(
            M**3 / 3 + 2 * M * M * N
        )
        assert cost("SYGESV", side="right", m=N, n=M) == pytest.approx(
            M**3 / 3 + 2 * M * M * N
        )

    def test_sysysv_and_sytrsv(self):
        assert cost("SYSYSV") == pytest.approx(7 / 3 * M**3)
        assert cost("SYTRSV") == pytest.approx(7 / 3 * M**3)

    def test_pogesv_matches_sygesv(self):
        assert cost("POGESV", side="left") == cost("SYGESV", side="left")

    def test_posysv(self):
        assert cost("POSYSV") == pytest.approx(7 / 3 * M**3)

    def test_potrsv_cases(self):
        assert cost("POTRSV", cheap=True) == pytest.approx(5 / 3 * M**3)
        assert cost("POTRSV", cheap=False) == pytest.approx(7 / 3 * M**3)

    def test_trsm_sides(self):
        assert cost("TRSM", side="left") == M * M * N
        assert cost("TRSM", side="right", m=N, n=M) == N * M * M

    def test_trsysv(self):
        assert cost("TRSYSV") == M**3

    def test_trtrsv_cases(self):
        assert cost("TRTRSV", cheap=True) == pytest.approx(M**3 / 3)
        assert cost("TRTRSV", cheap=False) == M**3


class TestUnaryCosts:
    def test_inversion_costs(self):
        assert cost("GEINV") == 2 * M**3
        assert cost("SYINV") == 2 * M**3
        assert cost("POINV") == M**3
        assert cost("TRINV") == pytest.approx(M**3 / 3)

    def test_zero_flop_kernels(self):
        assert cost("TRANSPOSE") == 0.0
        assert cost("COPY") == 0.0


class TestCostTypes:
    """Section V: only non-triangular solves with general RHS are Type II."""

    TYPE_II_LEFT = {"GEGESV", "SYGESV", "POGESV"}

    def test_type_ii_kernels(self):
        for name in self.TYPE_II_LEFT:
            assert KERNELS[name].cost(side="left").cost_type is CostType.TYPE_IIA
            assert KERNELS[name].cost(side="right").cost_type is CostType.TYPE_IIB

    def test_all_other_binary_kernels_are_type_i(self):
        for kernel in (*PRODUCT_KERNELS, *SOLVE_KERNELS):
            if kernel.name in self.TYPE_II_LEFT:
                continue
            for side in ("left", "right"):
                for cheap in (True, False):
                    assert kernel.cost(side=side, cheap=cheap).cost_type is (
                        CostType.TYPE_I
                    ), kernel.name

    def test_cost_degree_is_three(self):
        for kernel in (*PRODUCT_KERNELS, *SOLVE_KERNELS):
            assert kernel.cost().degree == 3


class TestSpecLookups:
    def test_get_kernel(self):
        assert get_kernel("GEMM").name == "GEMM"
        with pytest.raises(KeyError, match="unknown kernel"):
            get_kernel("NOPE")

    def test_invalid_side_rejected(self):
        with pytest.raises(ValueError):
            KERNELS["GEMM"].cost(side="middle")

    def test_blas_flags(self):
        blas = {k.name for k in KERNELS.values() if k.in_blas}
        assert blas == {"GEMM", "SYMM", "TRMM", "TRSM"}

    def test_monotonicity_in_each_argument(self):
        # Theory requirement: kernel costs monotonically increasing per arg.
        for kernel in (*PRODUCT_KERNELS, *SOLVE_KERNELS):
            for side in ("left", "right"):
                fn = kernel.cost(side=side)
                base = fn.evaluate(6, 6, 6)
                assert fn.evaluate(7, 6, 6) >= base
                assert fn.evaluate(6, 7, 6) >= base
                assert fn.evaluate(6, 6, 7) >= base

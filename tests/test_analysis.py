"""Tests for the analysis subpackage: crossovers, usefulness, reports."""

import numpy as np
import pytest
import sympy

from repro.errors import ShapeError
from repro.ir.chain import Chain
from repro.analysis.crossover import (
    SizeFamily,
    T,
    best_variant_regions,
    cost_along_family,
    crossover_points,
)
from repro.analysis.report import chain_report
from repro.analysis.usefulness import (
    dominated_variants,
    empirical_essential_subset,
    useful_variants,
    win_frequencies,
    empirical_essential_subset as essential_probe,
)
from repro.compiler.selection import (
    CostMatrix,
    all_variants,
    fanning_out_variants,
)
from repro.experiments.sampling import sample_instances

from conftest import general_chain, make_general, make_lower


class TestSizeFamily:
    def test_validates_length(self):
        with pytest.raises(ShapeError):
            SizeFamily(general_chain(3), (1, T))

    def test_validates_squareness(self):
        chain = Chain(
            (make_lower("L").as_operand(), make_general("G").as_operand())
        )
        with pytest.raises(ShapeError):
            SizeFamily(chain, (T, 2 * T, 5))
        SizeFamily(chain, (T, T, 5))  # bound symbols equal: fine

    def test_instance_evaluation(self):
        family = SizeFamily(general_chain(3), (1, T, 1, T))
        assert family.instance(10) == (1, 10, 1, 10)


class TestCrossovers:
    def test_paper_intro_example(self):
        # G1 G2 G3 on q = (1, t, 1, t): ((G1 G2) G3) costs 4t while
        # (G1 (G2 G3)) costs 4t^2 — the t-fold gap from the paper's intro
        # (x^T (y z^T) performs m times more multiplications).
        chain = general_chain(3)
        variants = all_variants(chain)
        family = SizeFamily(chain, (1, T, 1, T))
        by_str = {str(v): v for v in variants}
        ltr = by_str["((G1 G2) G3)"]
        rtl = by_str["(G1 (G2 G3))"]
        assert sympy.expand(cost_along_family(ltr, family)) == 4 * T
        assert sympy.expand(cost_along_family(rtl, family)) == 4 * T**2
        points = crossover_points(ltr, rtl, family, domain=(0.5, 1e6))
        assert points == [1.0]

    def test_no_crossover_for_identical_variants(self):
        chain = general_chain(3)
        variant = all_variants(chain)[0]
        family = SizeFamily(chain, (2, T, 3, T))
        assert crossover_points(variant, variant, family) == []

    def test_regions_partition_domain(self):
        chain = general_chain(4)
        variants = all_variants(chain)
        family = SizeFamily(chain, (10, T, 5, T, 20))
        regions = best_variant_regions(variants, family, domain=(1.0, 10000.0))
        assert regions[0][0] == 1.0
        assert regions[-1][1] == 10000.0
        for (a, b, _), (c, d, _) in zip(regions, regions[1:]):
            assert b == c
        # Winners in the region match brute-force evaluation at midpoints.
        for a, b, winner in regions:
            mid = (a + b) / 2
            q = family.instance(mid)
            best = min(variants, key=lambda v: v.flop_cost(q))
            assert best.flop_cost(q) == pytest.approx(winner.flop_cost(q))

    def test_regions_merge_adjacent_same_winner(self):
        chain = general_chain(3)
        variants = all_variants(chain)
        family = SizeFamily(chain, (1, T, 1, T))
        regions = best_variant_regions(variants, family, domain=(2.0, 1e5))
        # Left-to-right dominates everywhere above t = 1: a single region.
        assert len(regions) == 1
        assert str(regions[0][2]) == "((G1 G2) G3)"


class TestUsefulness:
    def _matrix(self, n=4, count=400, seed=0):
        chain = general_chain(n)
        rng = np.random.default_rng(seed)
        instances = sample_instances(chain, count, rng, low=2, high=1000)
        return chain, CostMatrix(all_variants(chain), instances)

    def test_win_frequencies_sum_at_least_one(self):
        chain, matrix = self._matrix()
        frequencies = win_frequencies(matrix)
        assert sum(frequencies.values()) >= 1.0 - 1e-9
        assert all(0.0 <= f <= 1.0 for f in frequencies.values())

    def test_useful_plus_dominated_is_everything(self):
        chain, matrix = self._matrix()
        useful = useful_variants(matrix)
        dominated = dominated_variants(matrix)
        assert len(useful) + len(dominated) == len(matrix.variants)

    def test_all_are_useful_on_dense_sample(self):
        # López et al.: every parenthesization of a standard chain is
        # strictly optimal somewhere.  On a reasonably dense sample most
        # (here: all 5 for n = 4) should win at least once.
        chain, matrix = self._matrix(n=4, count=2000, seed=3)
        assert len(useful_variants(matrix)) == 5

    def test_essential_probe_respects_bound(self):
        chain, matrix = self._matrix(n=5, count=800, seed=1)
        fanning = list(fanning_out_variants(chain).values())
        probe = empirical_essential_subset(matrix, fanning, penalty_bound=15.0)
        assert 1 <= len(probe) <= len(fanning)
        sig_to_idx = {v.signature(): i for i, v in enumerate(matrix.variants)}
        idx = [sig_to_idx[v.signature()] for v in probe]
        assert matrix.max_penalty(idx) <= 15.0

    def test_essential_probe_empty_initial(self):
        chain, matrix = self._matrix()
        assert essential_probe(matrix, [], penalty_bound=15.0) == []


class TestReport:
    def test_report_structure(self):
        chain = Chain(
            (make_lower("L").as_operand(),
             make_general("G", invertible=True).inv,
             make_general("H").as_operand())
        )
        report = chain_report(chain, num_instances=100, seed=0)
        assert "# Compilation report" in report
        assert "equivalence classes" in report
        assert "Theorem 2" in report
        assert "Dispatch preview" in report
        assert "| L |" in report or "LowerTri" in report

    def test_report_via_facade(self):
        from repro.api import compile_chain

        generated = compile_chain(general_chain(4), num_training_instances=50)
        report = generated.report(num_instances=80)
        assert "win frequencies" in report.lower()

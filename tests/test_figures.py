"""Tests for the ASCII eCDF figure renderer."""

import numpy as np
import pytest

from repro.experiments.figures import render_ecdf_chart, render_fig5, render_fig6


class TestRenderChart:
    def test_basic_structure(self):
        chart = render_ecdf_chart(
            {"A": np.array([1.0, 1.1, 1.2]), "B": np.array([1.4, 1.45])},
            width=40,
            height=10,
            title="demo",
        )
        lines = chart.splitlines()
        assert lines[0] == "demo"
        assert "legend: A = A, B = B" in lines[-1]
        assert any("100%" in line for line in lines)
        # Axis line present.
        assert any(set(line.strip()) == {"+", "-"} for line in lines)

    def test_step_at_one_reaches_top(self):
        # A set that is optimal everywhere plots at 100% across the chart.
        chart = render_ecdf_chart({"opt": np.ones(50)}, width=30, height=10)
        first_data_row = chart.splitlines()[0]
        assert "o" in first_data_row

    def test_heavy_tail_stays_low(self):
        chart = render_ecdf_chart(
            {"bad": np.full(50, 10.0)}, width=30, height=10, x_max=1.5
        )
        rows = chart.splitlines()
        # The curve never rises above the bottom row within the x-range.
        data_rows = [r for r in rows if "|" in r]
        assert all("b" not in r for r in data_rows[:-1])
        assert "b" in data_rows[-1]

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            render_ecdf_chart({})


class TestFigureWrappers:
    def test_render_fig5_panel(self):
        from repro.experiments.flops_experiment import run_flops_experiment

        result = run_flops_experiment(
            n_values=(5,), shapes_per_n=2, train_instances=100,
            val_instances=40, seed=1,
        )
        chart = render_fig5(result, 5, width=40, height=10)
        assert "Fig. 5 (n = 5)" in chart
        assert "Es" in chart.splitlines()[-1]

    def test_render_fig6(self):
        from repro.experiments.time_experiment import run_time_experiment

        result = run_time_experiment(
            num_shapes=2, train_instances=100, val_instances=40, seed=1
        )
        chart = render_fig6(result, width=40, height=10)
        assert "Fig. 6" in chart
        assert "Arma" in chart.splitlines()[-1]


class TestCliPlot:
    def test_fig5_plot_flag(self, capsys):
        from repro.cli import main

        assert main(
            ["fig5", "--n", "5", "--shapes", "2", "--train", "80",
             "--val", "30", "--plot"]
        ) == 0
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_fig6_plot_flag(self, capsys):
        from repro.cli import main

        assert main(
            ["fig6", "--shapes", "2", "--train", "80", "--val", "30", "--plot"]
        ) == 0
        out = capsys.readouterr().out
        assert "legend:" in out

"""CLI surface of the compiler session: compile --cache-dir, cache stats/clear."""

import pytest

from repro.cli import main

SOURCE = (
    "Matrix A <General, Singular>; Matrix B <General, Singular>;"
    " R := A * B;"
)


class TestCliCache:
    def test_compile_writes_disk_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(
            ["compile", "--source", SOURCE, "--train", "20",
             "--cache-dir", cache_dir, "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "variant" in out
        assert "misses=1" in out and "disk_writes=1" in out

    def test_second_compile_hits_disk_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["compile", "--source", SOURCE, "--train", "20",
              "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(
            ["compile", "--source", SOURCE, "--train", "20",
             "--cache-dir", cache_dir, "--stats", "--timings"]
        ) == 0
        out = capsys.readouterr().out
        assert "disk_hits=1" in out
        assert "skipped (cache hit)" in out
        assert "enumerate" in out  # listed among the skipped passes

    def test_timings_flag_prints_passes(self, tmp_path, capsys):
        assert main(
            ["compile", "--source", SOURCE, "--train", "20", "--timings",
             "--cache-dir", str(tmp_path / "cache")]
        ) == 0
        out = capsys.readouterr().out
        assert "pass timings:" in out
        assert "select" in out

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["compile", "--source", SOURCE, "--train", "20",
              "--cache-dir", cache_dir])
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", cache_dir, "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "entries:         1" in out

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "removed 1" in out

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries:         0" in capsys.readouterr().out

    def test_cache_stats_on_missing_dir(self, tmp_path, capsys):
        assert main(
            ["cache", "stats", "--cache-dir", str(tmp_path / "nonexistent")]
        ) == 0
        assert "entries:         0" in capsys.readouterr().out

    def test_env_var_sets_compile_cache_dir(self, tmp_path, capsys, monkeypatch):
        cache_dir = tmp_path / "envcache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        assert main(["compile", "--source", SOURCE, "--train", "20",
                     "--stats"]) == 0
        assert "disk_writes=1" in capsys.readouterr().out
        assert main(["cache", "stats"]) == 0
        assert "entries:         1" in capsys.readouterr().out

    def test_unwritable_cache_dir_degrades_gracefully(self, tmp_path, capsys):
        blocker = tmp_path / "file-not-dir"
        blocker.write_text("x")
        assert main(["compile", "--source", SOURCE, "--train", "20",
                     "--cache-dir", str(blocker), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "variant" in out  # compilation still succeeded
        assert "disk_errors=1" in out

    def test_expression_compile_with_cache_dir(self, tmp_path, capsys):
        source = "Matrix A <General, Singular>; R := A + 2 * A;"
        assert main(
            ["compile", "--source", source, "--train", "10",
             "--cache-dir", str(tmp_path / "cache"), "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "expression" in out
        assert "hits=1" in out  # the second term reuses the first's entry

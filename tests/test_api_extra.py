"""Additional facade-level tests: objectives, estimators, cost matrices."""

import numpy as np
import pytest

from repro.api import compile_chain
from repro.compiler.dispatch import Dispatcher
from repro.compiler.selection import CostMatrix, all_variants, essential_set
from repro.experiments.sampling import sample_instances
from repro.perfmodel.machine import SimulatedMachine
from repro.perfmodel.models import PerformanceModelSet

from conftest import general_chain, random_option_chain


class TestObjectives:
    def test_max_objective_selection(self):
        chain = general_chain(5)
        rng = np.random.default_rng(0)
        train = sample_instances(chain, 300, rng)
        matrix = CostMatrix(all_variants(chain), train)
        by_avg = essential_set(chain, cost_matrix=matrix, objective="avg")
        by_max = essential_set(chain, cost_matrix=matrix, objective="max")
        # Both are valid Theorem 2 sets (same candidate pool); sizes match.
        assert len(by_avg) == len(by_max)

    def test_compile_chain_max_objective(self):
        generated = compile_chain(
            general_chain(5),
            objective="max",
            expand_by=1,
            num_training_instances=200,
            seed=1,
        )
        assert len(generated) >= 2

    def test_expand_by_zero_is_base_set(self):
        base = compile_chain(general_chain(5), num_training_instances=200, seed=2)
        same = compile_chain(
            general_chain(5), expand_by=0, num_training_instances=200, seed=2
        )
        assert [v.signature() for v in base.variants] == [
            v.signature() for v in same.variants
        ]


class TestCustomEvaluators:
    def test_cost_matrix_with_time_evaluator(self):
        chain = general_chain(4)
        variants = all_variants(chain)
        rng = np.random.default_rng(3)
        instances = sample_instances(chain, 50, rng, low=50, high=500)
        machine = SimulatedMachine()
        matrix = CostMatrix(
            variants, instances, evaluator=machine.variant_time_many
        )
        assert matrix.costs.shape == (len(variants), 50)
        assert (matrix.costs > 0).all()
        # Ratios against the time-optimal variant are >= 1 everywhere.
        assert (matrix.ratios(range(len(variants))) >= 1.0 - 1e-12).all()

    def test_dispatcher_with_model_time_estimator(self):
        chain = general_chain(4)
        variants = all_variants(chain)
        machine = SimulatedMachine()
        models = PerformanceModelSet(machine)
        dispatcher = Dispatcher(
            chain,
            variants,
            cost_estimator=lambda v, q: models.variant_time(v, q),
        )
        q = (100, 700, 60, 900, 80)
        picked, cost = dispatcher.select(q)
        assert cost > 0
        # The pick minimizes the model time among the variants.
        best = min(variants, key=lambda v: models.variant_time(v, q))
        assert picked.signature() == best.signature()

    def test_compile_chain_with_time_estimator(self):
        machine = SimulatedMachine()
        generated = compile_chain(
            general_chain(4),
            cost_estimator=lambda v, q: machine.variant_time(v, q),
            num_training_instances=100,
            seed=4,
        )
        q = (30, 300, 30, 300, 30)
        _, cost = generated.select(q)
        assert cost > 0


class TestReportsAndDescribe:
    def test_dispatcher_costs_have_names(self):
        chain = general_chain(3)
        dispatcher = Dispatcher(chain, all_variants(chain))
        names = [name for name, _ in dispatcher.costs((3, 4, 5, 6))]
        assert len(set(names)) == 2

    def test_generated_len_and_training_instances(self):
        generated = compile_chain(
            general_chain(4), num_training_instances=64, seed=5
        )
        assert generated.training_instances.shape == (64, 5)
        assert len(generated) == len(generated.variants)

"""Tests for the Armadillo baseline model."""

import numpy as np
import pytest

from repro.ir.chain import Chain
from repro.baselines.armadillo import ArmadilloEvaluator
from repro.compiler.parenthesization import left_to_right_tree
from repro.compiler.variant import build_variant
from repro.experiments.sampling import sample_instances, sample_shapes
from repro.perfmodel.machine import SimulatedMachine

from conftest import general_chain, make_general, make_lower, make_symmetric


class TestPlan:
    def test_plain_chain_is_all_gemm(self):
        arma = ArmadilloEvaluator(general_chain(4))
        assert arma.kernel_names() == ("GEMM", "GEMM", "GEMM")

    def test_inverse_becomes_explicit_inversion(self):
        chain = Chain(
            (make_general("A", invertible=True).inv, make_general("B").as_operand())
        )
        arma = ArmadilloEvaluator(chain)
        assert arma.kernel_names() == ("GEINV", "GEMM")
        m, n = 10, 4
        assert arma.flop_cost((m, m, n)) == 2 * m**3 + 2 * m * m * n

    def test_inv_sympd_used_for_spd(self):
        chain = Chain(
            (make_symmetric("P", spd=True).inv, make_general("B").as_operand())
        )
        arma = ArmadilloEvaluator(chain)
        assert arma.kernel_names()[0] == "POINV"

    def test_trimatl_products_use_trmm(self):
        chain = Chain((make_lower("L").as_operand(), make_general("G").as_operand()))
        arma = ArmadilloEvaluator(chain)
        assert arma.kernel_names() == ("TRMM",)

    def test_intermediates_are_general(self):
        # L1 L2 L3: only the first product can exploit a triangular operand
        # on the left; afterwards the intermediate is a plain mat, and the
        # right operand is still trimatl, so TRMM applies from the right.
        chain = Chain(
            (make_lower("L1").as_operand(),
             make_lower("L2").as_operand(),
             make_lower("L3").as_operand())
        )
        arma = ArmadilloEvaluator(chain)
        assert arma.kernel_names() == ("TRMM", "TRMM")
        m = 8
        # Both products cost m^3 (no TRTRMM: 2x m^3/3 would be cheaper).
        assert arma.flop_cost((m, m, m, m)) == 2 * m**3


class TestAgainstCompiler:
    @pytest.mark.parametrize("seed", range(3))
    def test_never_cheaper_than_our_left_to_right(self, seed):
        # Our L infers features and propagates operators, so it can only be
        # at least as good FLOP-wise as the Armadillo model on every
        # instance of every shape.
        rng = np.random.default_rng(seed)
        for chain in sample_shapes(5, 4, rng, rectangular_probability=0.5):
            arma = ArmadilloEvaluator(chain)
            ours = build_variant(chain, left_to_right_tree(chain.n), name="L")
            instances = sample_instances(chain, 30, rng, low=2, high=500)
            arma_costs = arma.flop_cost_many(instances)
            our_costs = ours.flop_cost_many(instances)
            assert (arma_costs >= our_costs - 1e-9).all()

    def test_time_evaluation(self):
        machine = SimulatedMachine()
        chain = general_chain(3)
        arma = ArmadilloEvaluator(chain)
        rng = np.random.default_rng(0)
        instances = sample_instances(chain, 5, rng, low=50, high=500)
        times = arma.time_many(machine, instances)
        assert (times > 0).all()

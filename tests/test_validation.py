"""Tests for the variant IR verifier."""

import dataclasses

import numpy as np
import pytest

from repro.compiler.dp import dp_optimal_plan
from repro.compiler.selection import all_variants
from repro.compiler.validation import (
    VariantVerificationError,
    verify_or_report,
    verify_variant,
)
from repro.compiler.variant import Variant
from repro.experiments.sampling import (
    EXTENDED_MATRIX_OPTIONS,
    sample_instances,
    sample_shapes,
)

from conftest import general_chain, random_option_chain


class TestCleanVariants:
    @pytest.mark.parametrize("seed", range(5))
    def test_builder_variants_verify(self, seed):
        rng = np.random.default_rng(seed)
        chain = random_option_chain(int(rng.integers(2, 7)), rng,
                                    allow_transpose=True)
        for variant in all_variants(chain):
            verify_variant(variant)

    def test_extended_option_variants_verify(self):
        rng = np.random.default_rng(9)
        for chain in sample_shapes(
            5, 5, rng, rectangular_probability=0.4,
            option_space=EXTENDED_MATRIX_OPTIONS,
        ):
            for variant in all_variants(chain):
                assert verify_or_report(variant) == []

    def test_dp_plans_verify(self):
        rng = np.random.default_rng(3)
        chain = random_option_chain(6, rng)
        for q in sample_instances(chain, 5, rng, low=2, high=300):
            verify_variant(dp_optimal_plan(chain, tuple(q)))

    def test_deserialized_variants_verify(self):
        from repro.codegen import serialize

        rng = np.random.default_rng(4)
        chain = random_option_chain(5, rng)
        variants = all_variants(chain)
        _, loaded = serialize.loads(serialize.dumps(chain, variants))
        for variant in loaded:
            verify_variant(variant)

    def test_single_matrix_variant_verifies(self):
        from repro.compiler.parenthesization import leaf
        from repro.compiler.variant import build_variant
        from repro.ir.chain import Chain
        from conftest import make_general

        chain = Chain((make_general("A", invertible=True).inv,))
        verify_variant(build_variant(chain, leaf(0)))


class TestCorruptedVariants:
    def _variant(self):
        chain = general_chain(4)
        from repro.compiler.parenthesization import left_to_right_tree
        from repro.compiler.variant import build_variant

        return build_variant(chain, left_to_right_tree(4))

    def test_forward_reference_detected(self):
        variant = self._variant()
        bad_step = dataclasses.replace(
            variant.steps[0], left_ref=("step", 2)
        )
        corrupted = dataclasses.replace(
            variant, steps=(bad_step, *variant.steps[1:])
        )
        report = verify_or_report(corrupted)
        assert any("later/own result" in message for message in report)

    def test_out_of_range_matrix_detected(self):
        variant = self._variant()
        bad_step = dataclasses.replace(
            variant.steps[0], right_ref=("matrix", 99)
        )
        corrupted = dataclasses.replace(
            variant, steps=(bad_step, *variant.steps[1:])
        )
        assert any(
            "out of range" in message for message in verify_or_report(corrupted)
        )

    def test_bad_triplet_detected(self):
        variant = self._variant()
        bad_step = dataclasses.replace(variant.steps[1], triplet=(3, 2, 4))
        corrupted = dataclasses.replace(
            variant, steps=(variant.steps[0], bad_step, *variant.steps[2:])
        )
        assert any(
            "malformed triplet" in message
            for message in verify_or_report(corrupted)
        )

    def test_dims_mismatch_detected(self):
        variant = self._variant()
        bad_step = dataclasses.replace(
            variant.steps[0], call_dims=(0, 0, 0)
        )
        corrupted = dataclasses.replace(
            variant, steps=(bad_step, *variant.steps[1:])
        )
        assert any(
            "call dims" in message for message in verify_or_report(corrupted)
        )

    def test_wrong_step_count_detected(self):
        variant = self._variant()
        corrupted = dataclasses.replace(variant, steps=variant.steps[:-1])
        report = verify_or_report(corrupted)
        assert any("expected 3 steps" in message for message in report)

    def test_verify_variant_raises_with_details(self):
        variant = self._variant()
        bad_step = dataclasses.replace(variant.steps[0], triplet=(2, 1, 3))
        corrupted = dataclasses.replace(
            variant, steps=(bad_step, *variant.steps[1:])
        )
        with pytest.raises(VariantVerificationError, match="triplet"):
            verify_variant(corrupted)

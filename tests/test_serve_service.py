"""CompileService: coalescing, queue bounds, correctness, lifecycle."""

import threading
import time
from concurrent.futures import wait

import numpy as np
import pytest

from repro.compiler.pipeline import CompilerPass, default_pipeline
from repro.compiler.session import CompilerSession
from repro.errors import (
    CompilationError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.serve import CompileService
from repro.serve.metrics import ServiceMetrics, percentile

from conftest import general_chain, make_general


def renamed_clone(prefix: str, n: int = 3):
    """A chain structurally identical to ``general_chain(n)``, new names."""
    from repro.ir.chain import Chain

    return Chain(
        tuple(make_general(f"{prefix}{i}").as_operand() for i in range(n))
    )


class GatePass(CompilerPass):
    """A back-pipeline pass that blocks until the test opens the gate."""

    name = "gate"

    def __init__(self, gate: threading.Event):
        self.gate = gate

    def run(self, ctx):
        self.gate.wait(timeout=30)


def gated_session(gate: threading.Event, observer=None) -> CompilerSession:
    """A session whose back pipeline stalls on ``gate`` (after sampling)."""
    return CompilerSession(
        pipeline=default_pipeline(observer).extended(GatePass(gate), after="sample")
    )


class TestCoalescing:
    def test_concurrent_identical_requests_compile_once(self):
        """M threads, same structure: exactly 1 pipeline execution, M results.

        The acceptance criterion of the serve subsystem: enumeration runs
        once (asserted via pass instrumentation), every caller gets a
        correct result rebound to its own matrix names.
        """
        M = 12
        gate = threading.Event()
        enumerations = []

        def observer(compiler_pass, ctx, elapsed):
            if compiler_pass.name == "enumerate" and elapsed is not None:
                enumerations.append(ctx.chain)

        session = gated_session(gate, observer)
        service = CompileService(session, workers=4, warm=False)
        try:
            futures = [
                service.submit(renamed_clone(f"T{i}"), num_training_instances=25)
                for i in range(M)
            ]
            # Wait until every non-leader request has attached to the
            # in-flight leader (the leader is parked on the gate).
            deadline = time.time() + 10
            while service.metrics.coalesced < M - 1:
                assert time.time() < deadline, (
                    f"only {service.metrics.coalesced} of {M - 1} coalesced"
                )
                time.sleep(0.005)
            gate.set()
            results = [future.result(timeout=30) for future in futures]
        finally:
            gate.set()
            service.close()

        assert len(enumerations) == 1  # exactly one pipeline execution
        assert service.metrics.compiled == 1
        assert service.metrics.coalesced == M - 1
        # Every caller got code rebound to its own names, and it computes.
        a, b, c = np.ones((2, 3)), np.ones((3, 4)), np.ones((4, 5))
        for i, generated in enumerate(results):
            assert [m.name for m in generated.chain.matrices] == [
                f"T{i}0", f"T{i}1", f"T{i}2"
            ]
            np.testing.assert_allclose(generated(a, b, c), (a @ b) @ c)

    def test_distinct_structures_do_not_coalesce(self):
        service = CompileService(workers=2, warm=False)
        try:
            futures = [
                service.submit(general_chain(n), num_training_instances=25)
                for n in (3, 4, 5)
            ]
            results = [future.result(timeout=30) for future in futures]
        finally:
            service.close()
        assert [r.chain.n for r in results] == [3, 4, 5]
        assert service.metrics.coalesced == 0
        assert service.metrics.compiled == 3

    def test_sequential_repeat_hits_cache_not_coalescing(self):
        service = CompileService(workers=2, warm=False)
        try:
            first = service.compile(general_chain(3), num_training_instances=25)
            second = service.compile(general_chain(3), num_training_instances=25)
        finally:
            service.close()
        # Nothing in flight on the second call: it is a plain cache hit,
        # counted as such — not as a second pipeline execution.
        assert service.metrics.coalesced == 0
        assert service.metrics.compiled == 1
        assert service.metrics.cache_hits == 1
        assert service.session.cache_stats().hits == 1
        assert [v.signature() for v in first.variants] == [
            v.signature() for v in second.variants
        ]

    def test_results_match_direct_session_compile(self):
        service = CompileService(workers=2, warm=False)
        reference = CompilerSession()
        try:
            chain = general_chain(4)
            served = service.compile(
                chain, num_training_instances=30, expand_by=1
            )
        finally:
            service.close()
        direct = reference.compile(chain, num_training_instances=30, expand_by=1)
        assert [v.signature() for v in served.variants] == [
            v.signature() for v in direct.variants
        ]
        np.testing.assert_array_equal(
            served.training_instances, direct.training_instances
        )

    def test_use_cache_false_requests_are_private(self):
        service = CompileService(workers=2, warm=False)
        try:
            generated = service.compile(
                general_chain(3), num_training_instances=20, use_cache=False
            )
        finally:
            service.close()
        assert len(generated) >= 1
        assert service.session.cache_stats().lookups == 0
        assert service.metrics.compiled == 1


class TestBackpressure:
    def test_full_queue_rejects_with_overload_error(self):
        gate = threading.Event()
        service = CompileService(
            gated_session(gate), workers=1, max_queue=1, warm=False
        )
        try:
            # Leader occupies the worker (parked on the gate); the next
            # distinct structure fills the single queue slot; the third
            # distinct structure must be rejected, not buffered.
            running = service.submit(general_chain(3), num_training_instances=20)
            deadline = time.time() + 10
            while service.metrics.queue_depth() > 0:
                assert time.time() < deadline
                time.sleep(0.005)
            queued = service.submit(general_chain(4), num_training_instances=20)
            rejected = service.submit(general_chain(5), num_training_instances=20)
            with pytest.raises(ServiceOverloadedError, match="queue is full"):
                rejected.result(timeout=5)
            assert service.metrics.rejected == 1
            # Coalesced followers ride along without occupying a slot.
            follower = service.submit(
                renamed_clone("F"), num_training_instances=20
            )
            gate.set()
            assert len(running.result(timeout=30)) >= 1
            assert len(queued.result(timeout=30)) >= 1
            assert len(follower.result(timeout=30)) >= 1
        finally:
            gate.set()
            service.close()

    def test_rejected_leader_key_is_retryable(self):
        gate = threading.Event()
        service = CompileService(
            gated_session(gate), workers=1, max_queue=1, warm=False
        )
        try:
            service.submit(general_chain(3), num_training_instances=20)
            deadline = time.time() + 10
            while service.metrics.queue_depth() > 0:
                assert time.time() < deadline
                time.sleep(0.005)
            queued = service.submit(general_chain(4), num_training_instances=20)
            rejected = service.submit(general_chain(5), num_training_instances=20)
            with pytest.raises(ServiceOverloadedError):
                rejected.result(timeout=5)
            gate.set()
            queued.result(timeout=30)  # drain the queue before retrying
            # The rejected structure left no stale in-flight registration:
            # a retry compiles normally.
            retry = service.compile(
                general_chain(5), num_training_instances=20, timeout=30
            )
            assert len(retry) >= 1
        finally:
            gate.set()
            service.close()


class TestErrorsAndLifecycle:
    def test_parse_error_fails_the_future(self):
        service = CompileService(workers=1, warm=False)
        try:
            future = service.submit(object())
            with pytest.raises(CompilationError):
                future.result(timeout=5)
            assert service.metrics.errors == 1
        finally:
            service.close()

    def test_compile_error_propagates_to_all_coalesced_futures(self):
        gate = threading.Event()

        class ExplodingPass(CompilerPass):
            name = "explode"

            def run(self, ctx):
                gate.wait(timeout=30)
                raise RuntimeError("boom in the back pipeline")

        session = CompilerSession(
            pipeline=default_pipeline().extended(ExplodingPass(), after="sample")
        )
        service = CompileService(session, workers=1, warm=False)
        try:
            futures = [
                service.submit(renamed_clone(f"E{i}"), num_training_instances=20)
                for i in range(4)
            ]
            deadline = time.time() + 10
            while service.metrics.coalesced < 3:
                assert time.time() < deadline
                time.sleep(0.005)
            gate.set()
            done, not_done = wait(futures, timeout=30)
            assert not not_done
            for future in futures:
                with pytest.raises(RuntimeError, match="boom"):
                    future.result()
            assert service.metrics.errors == 4
        finally:
            gate.set()
            service.close()

    def test_close_drains_pending_work_then_rejects(self):
        service = CompileService(workers=2, warm=False)
        futures = [
            service.submit(general_chain(n), num_training_instances=20)
            for n in (3, 4)
        ]
        service.close()
        for future in futures:
            assert len(future.result(timeout=5)) >= 1
        late = service.submit(general_chain(5))
        with pytest.raises(ServiceClosedError):
            late.result(timeout=5)
        service.close()  # idempotent

    def test_submit_racing_close_never_hangs_a_future(self):
        """Every future resolves (result or error) even when submits race close.

        A submit that slips past the closed check must still be ordered
        ahead of the worker shutdown sentinels (both happen under the
        service lock), so no request can be parked on an unserviced queue.
        """
        service = CompileService(workers=2, warm=False)
        futures = []
        stop = threading.Event()

        def spam_submits():
            i = 0
            while not stop.is_set() and i < 200:
                futures.append(
                    service.submit(
                        renamed_clone(f"R{i}"), num_training_instances=15
                    )
                )
                i += 1

        submitter = threading.Thread(target=spam_submits)
        submitter.start()
        time.sleep(0.01)  # let some submissions through
        service.close()
        stop.set()
        submitter.join(timeout=30)
        assert not submitter.is_alive()
        done, not_done = wait(futures, timeout=30)
        assert not not_done  # nothing hangs
        outcomes = {"ok": 0, "closed": 0}
        for future in futures:
            if future.exception() is None:
                outcomes["ok"] += 1
            else:
                assert isinstance(future.exception(), ServiceClosedError)
                outcomes["closed"] += 1
        assert sum(outcomes.values()) == len(futures)

    def test_context_manager_closes(self):
        with CompileService(workers=1, warm=False) as service:
            generated = service.compile(
                general_chain(3), num_training_instances=20, timeout=30
            )
        assert len(generated) >= 1
        with pytest.raises(ServiceClosedError):
            service.submit(general_chain(3)).result(timeout=5)

    def test_map_preserves_order(self):
        with CompileService(workers=4, warm=False) as service:
            chains = [general_chain(n) for n in (5, 3, 4)]
            results = service.map(chains, num_training_instances=20, timeout=30)
        assert [r.chain.n for r in results] == [5, 3, 4]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            CompileService(max_queue=0, warm=False)
        with pytest.raises(ValueError):
            CompileService(workers=0, warm=False)
        with pytest.raises(ValueError):
            CompileService(registry_capacity=0, warm=False)


class TestDispatchRegistry:
    def test_dispatch_by_handle(self):
        with CompileService(workers=1, warm=False) as service:
            future = service.submit(general_chain(3), num_training_instances=20)
            future.result(timeout=30)
            handle = future.handle
            assert isinstance(handle, str) and handle
            variant, cost = service.dispatch(handle, [10, 20, 5, 30])
            direct, direct_cost = future.result().select([10, 20, 5, 30])
            assert variant.name == direct.name
            assert cost == direct_cost

    def test_unknown_handle_raises_keyerror(self):
        with CompileService(workers=1, warm=False) as service:
            with pytest.raises(KeyError, match="unknown compilation handle"):
                service.dispatch("no-such-handle", [2, 3, 4])

    def test_registry_is_lru_bounded(self):
        with CompileService(
            workers=1, warm=False, registry_capacity=2
        ) as service:
            handles = []
            for n in (3, 4, 5):
                future = service.submit(
                    general_chain(n), num_training_instances=20
                )
                future.result(timeout=30)
                handles.append(future.handle)
            assert service.lookup(handles[0]) is None  # evicted
            assert service.lookup(handles[1]) is not None
            assert service.lookup(handles[2]) is not None

    def test_uncached_compilations_not_registered(self):
        with CompileService(workers=1, warm=False) as service:
            future = service.submit(
                general_chain(3), num_training_instances=20, use_cache=False
            )
            future.result(timeout=30)
            assert future.handle is None


class TestMetrics:
    def test_percentile_edge_cases(self):
        assert percentile([], 99) == 0.0
        assert percentile([5.0], 50) == 5.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_snapshot_shape_and_rates(self):
        metrics = ServiceMetrics()
        for _ in range(4):
            metrics.record_request()
        metrics.record_compiled()
        metrics.record_coalesced()
        metrics.record_coalesced()
        metrics.record_rejected()
        metrics.record_latency(0.010)
        metrics.record_latency(0.020)
        snap = metrics.snapshot()
        assert snap["requests"] == 4
        assert snap["coalesced"] == 2
        assert snap["coalesce_rate"] == pytest.approx(2 / 3, abs=1e-3)
        assert snap["p50_ms"] == pytest.approx(10.0)
        assert snap["latency_samples"] == 2
        assert "queue_depth" in snap
        text = str(metrics)
        assert "coalesce_rate" in text and "p99" in text

    def test_service_stats_include_cache_and_registry(self):
        with CompileService(workers=1, warm=False) as service:
            service.compile(general_chain(3), num_training_instances=20, timeout=30)
            stats = service.stats()
        assert stats["service"]["requests"] == 1
        assert stats["cache"]["misses"] == 1
        assert stats["registry_entries"] == 1
        assert stats["workers"] == 1
        assert stats["inflight"] == 0


def counting_observer(enumerations):
    """Observer appending one entry per executed enumerate pass."""

    def observer(compiler_pass, ctx, elapsed):
        if compiler_pass.name == "enumerate" and elapsed is not None:
            enumerations.append(ctx.chain)

    return observer


class TestCompileMany:
    def test_duplicates_compile_once_in_order(self):
        enumerations = []
        session = CompilerSession(
            pipeline=default_pipeline(counting_observer(enumerations))
        )
        with CompileService(session, workers=2, warm=False) as service:
            chains = [renamed_clone(f"B{i}", 4) for i in range(8)]
            results = service.compile_many(
                chains, num_training_instances=25, timeout=60
            )
        assert len(enumerations) == 1
        assert [
            [m.name for m in generated.chain.matrices] for generated in results
        ] == [[f"B{i}{j}" for j in range(4)] for i in range(8)]
        sigs = {
            tuple(v.signature() for v in generated.variants)
            for generated in results
        }
        assert len(sigs) == 1  # every caller got the same compilation

    def test_batch_of_duplicates_needs_one_queue_slot(self):
        # max_queue=1: a naive per-request path could only hold one
        # compilation; the grouped batch admits 6 duplicates as one record.
        gate = threading.Event()
        session = gated_session(gate)
        service = CompileService(session, workers=1, max_queue=1, warm=False)
        try:
            futures = service.submit_many(
                [renamed_clone(f"Q{i}", 3) for i in range(6)],
                num_training_instances=20,
            )
            gate.set()
            results = [future.result(timeout=30) for future in futures]
            assert len(results) == 6
            assert service.metrics.coalesced == 5
        finally:
            gate.set()
            service.close()

    def test_private_batches_group_too(self):
        # use_cache=False per-request means N private pipeline runs; the
        # explicit batch is one caller's unit, so duplicates still group.
        enumerations = []
        session = CompilerSession(
            pipeline=default_pipeline(counting_observer(enumerations))
        )
        with CompileService(session, workers=2, warm=False) as service:
            results = service.compile_many(
                [renamed_clone(f"P{i}", 3) for i in range(5)],
                num_training_instances=20,
                use_cache=False,
                timeout=60,
            )
        assert len(enumerations) == 1
        assert len(results) == 5
        assert session.cache_stats().lookups == 0  # genuinely private

    def test_mixed_batch_compiles_each_structure_once(self):
        enumerations = []
        session = CompilerSession(
            pipeline=default_pipeline(counting_observer(enumerations))
        )
        with CompileService(session, workers=2, warm=False) as service:
            chains = [
                renamed_clone("A0", 3),
                renamed_clone("B0", 4),
                renamed_clone("A1", 3),
                renamed_clone("B1", 4),
                renamed_clone("A2", 3),
            ]
            results = service.compile_many(
                chains, num_training_instances=20, timeout=60
            )
        assert len(enumerations) == 2  # one per distinct structure
        assert [generated.chain.n for generated in results] == [3, 4, 3, 4, 3]

    def test_parse_error_fails_only_its_future(self):
        with CompileService(workers=1, warm=False) as service:
            futures = service.submit_many(
                [renamed_clone("G0", 3), "this is not a program", renamed_clone("G1", 3)],
                num_training_instances=20,
            )
            assert futures[0].result(timeout=30) is not None
            with pytest.raises(Exception):
                futures[1].result(timeout=30)
            assert futures[2].result(timeout=30) is not None
            assert service.metrics.errors == 1

    def test_batch_attaches_to_inflight_leader(self):
        # A batch whose structure is already compiling rides the in-flight
        # record: zero new queue slots, one total pipeline run.
        enumerations = []
        gate = threading.Event()
        session = gated_session(gate, counting_observer(enumerations))
        service = CompileService(session, workers=1, warm=False)
        try:
            leader = service.submit(
                renamed_clone("L0", 3), num_training_instances=20
            )
            assert service._inflight  # registered synchronously by submit
            futures = service.submit_many(
                [renamed_clone(f"F{i}", 3) for i in range(4)],
                num_training_instances=20,
            )
            gate.set()
            assert leader.result(timeout=30) is not None
            for future in futures:
                assert future.result(timeout=30) is not None
            assert len(enumerations) == 1
            assert service.metrics.coalesced == 4
        finally:
            gate.set()
            service.close()

    def test_closed_service_fails_batch(self):
        service = CompileService(workers=1, warm=False)
        service.close()
        futures = service.submit_many(
            [renamed_clone("C0", 3)], num_training_instances=20
        )
        with pytest.raises(ServiceClosedError):
            futures[0].result(timeout=5)

    def test_handles_registered_for_batch(self):
        with CompileService(workers=2, warm=False) as service:
            results = service.compile_many(
                [renamed_clone("H0", 3), renamed_clone("H1", 3)],
                num_training_instances=20,
                timeout=60,
            )
            futures = service.submit_many(
                [renamed_clone("H2", 3)], num_training_instances=20
            )
            futures[0].result(timeout=30)
            handle = futures[0].handle
            assert handle is not None
            assert service.lookup(handle) is not None

    def test_empty_batch(self):
        with CompileService(workers=1, warm=False) as service:
            assert service.compile_many([]) == []

    def test_closed_service_skips_batch_preparation(self):
        service = CompileService(workers=1, warm=False)
        service.close()
        # prepare() would raise on this junk source; the closed fast path
        # must fail the futures without ever parsing.
        futures = service.submit_many(["not a program at all"] * 3)
        for future in futures:
            with pytest.raises(ServiceClosedError):
                future.result(timeout=5)
        assert service.metrics.errors == 0  # closed, not parse-errored

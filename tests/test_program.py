"""The CompiledProgram artifact: wire format, fidelity, cross-process use."""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.api import GeneratedCode, compile_chain, load_program
from repro.compiler.program import (
    ARTIFACT_VERSION,
    ArtifactError,
    CompiledProgram,
)
from repro.compiler.cache import CacheEntry
from repro.compiler.executor import (
    execute_variant,
    naive_evaluate,
    random_instance_arrays,
)
from repro.compiler.session import CompilerSession
from repro.experiments.sampling import sample_instances
from repro.ir.chain import Chain
from repro.serve.backends import DiskBackend

from conftest import (
    general_chain,
    make_general,
    make_lower,
    make_symmetric,
    make_upper,
    random_option_chain,
    small_sizes_for,
)


def feature_chains() -> dict[str, Chain]:
    """Chains covering the operand feature combinations under test."""
    from repro.ir.features import Property, Structure
    from repro.ir.matrix import Matrix

    diag = Matrix("D", Structure.DIAGONAL, Property.NON_SINGULAR)
    spd = Matrix("S", Structure.SYMMETRIC, Property.SPD)
    return {
        "general": general_chain(4),
        "transposed": make_general("A") * make_general("B").T * make_general("C"),
        "inverted": make_general("A") * make_lower("L").inv * make_general("B"),
        "triangular": make_lower("L") * make_upper("U") * make_general("G"),
        "spd": spd.as_operand() * make_general("A") * spd.inv,
        "diagonal": diag.as_operand() * make_general("A") * make_symmetric("S2"),
        "mixed": make_upper("U").T * make_general("G") * make_lower("L").inv,
    }


def assert_same_dispatch(original, restored, chain, count=25, seed=3):
    """Both dispatchers agree on variant identity and cost, instance-wise."""
    rng = np.random.default_rng(seed)
    instances = sample_instances(chain, count, rng, low=2, high=400)
    for q in instances:
        q = tuple(int(x) for x in q)
        picked_a, cost_a = original.select(q)
        picked_b, cost_b = restored.select(q)
        assert picked_a.signature() == picked_b.signature()
        assert cost_b == pytest.approx(cost_a)


class TestWireFormat:
    @pytest.mark.parametrize("name", sorted(feature_chains()))
    def test_artifact_fidelity_per_feature_combination(self, name):
        """ISSUE acceptance: loads(dumps()) dispatches identically."""
        chain = feature_chains()[name]
        generated = compile_chain(
            chain, num_training_instances=60, seed=5, use_cache=False
        )
        program = generated.to_program()
        restored = CompiledProgram.loads(program.dumps())
        assert restored.chain == chain
        assert [v.signature() for v in restored.variants] == [
            v.signature() for v in program.variants
        ]
        assert_same_dispatch(
            generated.dispatcher, restored.to_dispatcher(), chain
        )

    @pytest.mark.parametrize("name", ["transposed", "inverted", "triangular"])
    def test_restored_execution_matches_oracle(self, name):
        chain = feature_chains()[name]
        generated = compile_chain(
            chain, num_training_instances=40, seed=2, use_cache=False
        )
        restored = CompiledProgram.loads(generated.to_program().dumps())
        rng = np.random.default_rng(11)
        sizes = small_sizes_for(chain, rng)
        arrays = random_instance_arrays(chain, sizes, rng)
        expected = naive_evaluate(chain, arrays)
        got = restored.execute(*arrays)
        scale = max(1.0, float(np.abs(expected).max()))
        np.testing.assert_allclose(got / scale, expected / scale, atol=1e-7)

    def test_provenance_round_trips(self):
        chain = general_chain(3)
        session = CompilerSession()
        generated = session.compile(chain, num_training_instances=30)
        program = generated.to_program()
        assert program.key  # stamped by the session
        assert program.created_unix > 0
        assert program.producer.get("pid") == os.getpid()
        assert program.options.get("num_training_instances") == 30
        assert "enumerate" in program.timings
        assert program.diagnostics["variant_pool"]["pool_size"] >= len(program)

        restored = CompiledProgram.loads(program.dumps())
        assert restored.key == program.key
        assert restored.options == dict(program.options)
        assert restored.diagnostics == dict(program.diagnostics)
        assert restored.producer == dict(program.producer)
        np.testing.assert_array_equal(
            restored.training_instances, program.training_instances
        )

    def test_save_and_load_file(self, tmp_path):
        chain = random_option_chain(4, np.random.default_rng(9))
        generated = compile_chain(chain, num_training_instances=40, use_cache=False)
        path = tmp_path / "prog.json"
        generated.save(path)
        clone = load_program(path)
        assert isinstance(clone, GeneratedCode)
        assert clone.chain == chain
        assert_same_dispatch(generated.dispatcher, clone.dispatcher, chain)
        # load_program round-trips the artifact object too.
        assert clone.program is not None and clone.program.chain == chain

    def test_top_level_exports(self):
        assert repro.CompiledProgram is CompiledProgram
        assert repro.load_program is load_program

    def test_cache_entry_is_the_artifact(self):
        assert CacheEntry is CompiledProgram


class TestVersioning:
    def test_rejects_wrong_artifact_version(self):
        chain = general_chain(2)
        program = compile_chain(
            chain, num_training_instances=10, use_cache=False
        ).to_program()
        payload = json.loads(program.dumps())
        payload["artifact_version"] = ARTIFACT_VERSION + 1
        with pytest.raises(ArtifactError, match="artifact version"):
            CompiledProgram.loads(json.dumps(payload))

    def test_rejects_bare_serialize_payload(self):
        chain = general_chain(2)
        generated = compile_chain(
            chain, num_training_instances=10, use_cache=False
        )
        with pytest.raises(ArtifactError, match="artifact version"):
            CompiledProgram.loads(generated.to_json())

    def test_rejects_garbage(self):
        with pytest.raises(ArtifactError, match="invalid JSON"):
            CompiledProgram.loads("{nope")
        with pytest.raises(ArtifactError, match="JSON object"):
            CompiledProgram.loads("[1, 2]")
        with pytest.raises(ArtifactError):
            CompiledProgram.loads(json.dumps({"artifact_version": 1}))

    def test_rejects_ragged_or_non_numeric_training(self, tmp_path):
        chain = general_chain(3)
        program = compile_chain(
            chain, num_training_instances=10, use_cache=False
        ).to_program()
        payload = json.loads(program.dumps())
        for bad in ([[1.0, 2.0], [3.0]], ["garbage"]):
            payload["training_instances"] = bad
            with pytest.raises(ArtifactError, match="training instances"):
                CompiledProgram.loads(json.dumps(payload))
        # ... and a disk cache treats such an entry as a miss, not a crash.
        payload["training_instances"] = [[1.0, 2.0], [3.0]]
        payload["meta"]["key"] = "r" * 64
        backend = DiskBackend(tmp_path)
        (tmp_path / ("r" * 64 + ".json")).write_text(json.dumps(payload))
        assert backend.load("r" * 64) is None

    def test_rejects_bad_training_shape(self):
        chain = general_chain(3)
        program = compile_chain(
            chain, num_training_instances=10, use_cache=False
        ).to_program()
        payload = json.loads(program.dumps())
        payload["training_instances"] = [[1.0, 2.0]]  # needs n+1 = 4 columns
        with pytest.raises(ArtifactError, match="training instances"):
            CompiledProgram.loads(json.dumps(payload))

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read"):
            CompiledProgram.load(tmp_path / "absent.json")


CHILD_SCRIPT = """
import sys
from repro.compiler.session import CompilerSession
from conftest_free import build_chain

session = CompilerSession(cache_dir=sys.argv[1])
generated = session.compile(build_chain(), num_training_instances=50, seed=7)
print(session.last_context.cache_key)
"""

CHILD_HELPER = """
from repro.ir.features import Property, Structure
from repro.ir.matrix import Matrix

def build_chain():
    a = Matrix("A", Structure.GENERAL, Property.SINGULAR)
    l = Matrix("L", Structure.LOWER_TRIANGULAR, Property.NON_SINGULAR)
    b = Matrix("B", Structure.GENERAL, Property.SINGULAR)
    return a * l.inv * b.T
"""


class TestCrossProcess:
    def test_disk_entry_written_by_another_process(self, tmp_path):
        """ISSUE acceptance: artifacts cross process boundaries via disk."""
        cache_dir = tmp_path / "cache"
        helper_dir = tmp_path / "helper"
        helper_dir.mkdir()
        (helper_dir / "conftest_free.py").write_text(CHILD_HELPER)
        (helper_dir / "child.py").write_text(CHILD_SCRIPT)
        src = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src), str(helper_dir)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.run(
            [sys.executable, str(helper_dir / "child.py"), str(cache_dir)],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        child_key = proc.stdout.strip().splitlines()[-1]

        # This process loads the child's artifact through a DiskBackend...
        backend = DiskBackend(cache_dir)
        program = backend.load(child_key)
        assert program is not None
        assert program.key == child_key
        assert program.producer.get("pid") != os.getpid()

        # ...and a session over the same directory serves the compilation
        # without running the pipeline.
        chain = (
            make_general("A") * make_lower("L").inv * make_general("B").T
        )
        session = CompilerSession(cache_dir=cache_dir)
        generated = session.compile(chain, num_training_instances=50, seed=7)
        stats = session.cache_stats()
        assert stats.disk_hits == 1 and stats.misses == 0

        # Fidelity: the restored dispatcher equals a from-scratch compile.
        local = CompilerSession().compile(
            chain, num_training_instances=50, seed=7
        )
        assert_same_dispatch(local.dispatcher, generated.dispatcher, chain)
        assert_same_dispatch(local.dispatcher, program.to_dispatcher(), chain)


class TestDispatchPassArtifact:
    def test_pipeline_context_carries_program(self):
        session = CompilerSession()
        generated = session.compile(
            general_chain(4), num_training_instances=25
        )
        assert generated.program is not None
        assert generated.program.key
        assert len(generated.program.variants) == len(generated.variants)

    def test_cache_hit_rebuilds_program_with_same_key(self):
        session = CompilerSession()
        first = session.compile(general_chain(4), num_training_instances=25)
        second = session.compile(general_chain(4), num_training_instances=25)
        assert session.cache_stats().hits == 1
        assert second.program is not None
        assert second.program.key == first.program.key

    def test_hand_assembled_generated_code_builds_bare_program(self):
        chain = general_chain(3)
        generated = compile_chain(chain, num_training_instances=20, use_cache=False)
        bare = GeneratedCode.from_json(generated.to_json())
        program = bare.to_program()
        assert program.key == ""
        assert program.chain == chain
        restored = CompiledProgram.loads(program.dumps())
        assert_same_dispatch(
            generated.dispatcher, restored.to_dispatcher(), chain
        )

    def test_describe_mentions_key_and_pool(self):
        session = CompilerSession()
        generated = session.compile(general_chain(3), num_training_instances=20)
        text = generated.to_program().describe()
        assert "key:" in text
        assert "variant pool" in text

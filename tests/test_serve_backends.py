"""Cache backends: protocol, shared memory, locked/bounded disk, tiering."""

import os
import time

import numpy as np
import pytest

from repro.compiler.cache import (
    CacheEntry,
    CompilationCache,
    compilation_key,
)
from repro.compiler.pipeline import CompileOptions
from repro.compiler.selection import essential_set
from repro.compiler.session import CompilerSession
from repro.experiments.sampling import sample_instances
from repro.serve.backends import (
    CacheBackend,
    DiskBackend,
    InMemoryBackend,
    TieredBackend,
    default_backend,
    keys_by_recency,
)

from conftest import general_chain


def compiled_entry(chain, count=20, seed=0):
    rng = np.random.default_rng(seed)
    train = sample_instances(chain, count, rng)
    variants = essential_set(chain, training_instances=train)
    return CacheEntry(
        chain=chain, variants=tuple(variants), training_instances=train
    )


def entry_and_key(n=3, **options):
    entry = compiled_entry(general_chain(n))
    return entry, compilation_key(entry.chain, CompileOptions(**options))


class TestProtocol:
    def test_bundled_backends_satisfy_protocol(self, tmp_path):
        assert isinstance(InMemoryBackend(), CacheBackend)
        assert isinstance(DiskBackend(tmp_path), CacheBackend)
        assert isinstance(
            TieredBackend(InMemoryBackend(), DiskBackend(tmp_path)), CacheBackend
        )

    def test_custom_object_backend_works_in_compilation_cache(self):
        class DictBackend:
            def __init__(self):
                self.data = {}

            def load(self, key):
                return self.data.get(key)

            def store(self, key, entry):
                self.data[key] = entry

            def keys(self):
                return list(self.data)

            def clear(self):
                removed = len(self.data)
                self.data.clear()
                return removed

            def stats(self):
                return {"kind": "dict", "entries": len(self.data)}

        backend = DictBackend()
        cache = CompilationCache(capacity=1, backend=backend)
        entry3, key3 = entry_and_key(3)
        entry4, key4 = entry_and_key(4)
        cache.put(key3, entry3)
        cache.put(key4, entry4)  # evicts key3 from memory, not from backend
        assert key3 not in cache
        assert cache.get(key3) is not None  # served by the backend
        assert cache.stats.disk_hits == 1


class TestInMemoryBackend:
    def test_lru_eviction_and_recency(self):
        backend = InMemoryBackend(capacity=2)
        entries = {n: entry_and_key(n) for n in (2, 3, 4)}
        backend.store(entries[2][1], entries[2][0])
        backend.store(entries[3][1], entries[3][0])
        backend.load(entries[2][1])  # refresh n=2
        backend.store(entries[4][1], entries[4][0])  # evicts n=3
        assert backend.load(entries[3][1]) is None
        assert backend.load(entries[2][1]) is not None
        assert backend.evictions == 1
        assert backend.stats()["entries"] == 2
        assert backend.keys_by_recency()[0] == entries[2][1]

    def test_shared_across_sessions(self):
        """Two sessions with one InMemoryBackend share compilations."""
        shared = InMemoryBackend(capacity=16)
        first = CompilerSession(cache_backend=shared)
        second = CompilerSession(cache_backend=shared)
        chain = general_chain(4)
        first.compile(chain, num_training_instances=20)
        second.compile(chain, num_training_instances=20)
        # The second session never ran the expensive passes: its *backend*
        # hit (counted like a disk hit) replaced them.
        assert second.cache_stats().disk_hits == 1
        assert "enumerate" in second.last_context.skipped

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            InMemoryBackend(capacity=0)


class TestDiskBackend:
    def test_round_trip_and_recency_refresh(self, tmp_path):
        backend = DiskBackend(tmp_path)
        entry, key = entry_and_key(3)
        backend.store(key, entry)
        loaded = backend.load(key)
        assert loaded is not None
        assert [v.signature() for v in loaded.variants] == [
            v.signature() for v in entry.variants
        ]

    def test_max_entries_prunes_oldest_by_mtime(self, tmp_path):
        backend = DiskBackend(tmp_path, max_entries=2)
        keys = []
        for n in (2, 3, 4):
            entry, key = entry_and_key(n)
            backend.store(key, entry)
            keys.append(key)
            now = time.time()
            # Deterministic mtime spacing (filesystem clocks are coarse).
            os.utime(backend.path_for(key), (now + n, now + n))
        assert backend.load(keys[0]) is None  # oldest pruned
        assert backend.load(keys[1]) is not None
        assert backend.load(keys[2]) is not None
        assert backend.pruned == 1
        assert backend.stats()["entries"] == 2
        assert backend.stats()["max_entries"] == 2

    def test_load_refreshes_mtime_for_lru(self, tmp_path):
        backend = DiskBackend(tmp_path, max_entries=2)
        keys = []
        base = time.time() - 1000
        for i, n in enumerate((2, 3)):
            entry, key = entry_and_key(n)
            backend.store(key, entry)
            os.utime(backend.path_for(key), (base + i, base + i))
            keys.append(key)
        assert backend.load(keys[0]) is not None  # refreshes to "now"
        entry4, key4 = entry_and_key(4)
        backend.store(key4, entry4)
        assert backend.load(keys[1]) is None  # n=3 was the LRU entry
        assert backend.load(keys[0]) is not None

    def test_max_bytes_prunes_but_protects_last_store(self, tmp_path):
        probe = DiskBackend(tmp_path / "probe")
        entry, key = entry_and_key(3)
        probe.store(key, entry)
        entry_bytes = probe.path_for(key).stat().st_size

        backend = DiskBackend(tmp_path / "real", max_bytes=entry_bytes)
        keys = []
        for n in (3, 4):
            e, k = entry_and_key(n)
            backend.store(k, e)
            now = time.time()
            os.utime(backend.path_for(k), (now + n, now + n))
            keys.append(k)
        # Budget fits ~one n=3 entry: storing n=4 (larger) pruned n=3, and
        # the just-stored entry survives even though it alone exceeds the
        # budget (protecting the freshest publish).
        assert backend.load(keys[0]) is None
        assert backend.load(keys[1]) is not None
        assert backend.pruned >= 1

    def test_bound_validation(self, tmp_path):
        with pytest.raises(ValueError):
            DiskBackend(tmp_path, max_entries=0)
        with pytest.raises(ValueError):
            DiskBackend(tmp_path, max_bytes=0)

    def test_lock_file_not_counted_as_entry(self, tmp_path):
        backend = DiskBackend(tmp_path)
        entry, key = entry_and_key(3)
        backend.store(key, entry)
        assert (tmp_path / DiskBackend.LOCK_FILENAME).exists()
        assert backend.stats()["entries"] == 1
        assert backend.keys() == [key]
        assert backend.clear() == 1

    def test_concurrent_writers_from_processes(self, tmp_path):
        """Two real processes storing + pruning concurrently stay consistent."""
        import subprocess
        import sys
        import textwrap

        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        script = textwrap.dedent(
            """
            import sys
            sys.path.insert(0, {src!r})
            from repro.compiler.cache import compilation_key
            from repro.compiler.pipeline import CompileOptions
            from repro.compiler.session import CompilerSession
            from repro.serve.backends import DiskBackend
            from repro.ir.chain import Chain
            from repro.ir.matrix import Matrix

            seed = int(sys.argv[1])
            backend = DiskBackend({cache_dir!r}, max_entries=3)
            session = CompilerSession(cache_backend=backend)
            for n in (2, 3, 4, 5):
                chain = Chain(tuple(
                    Matrix(f"P{{seed}}_{{n}}_{{i}}").as_operand()
                    for i in range(n)
                ))
                session.compile(chain, num_training_instances=15)
            print(session.cache_stats().disk_errors)
            """
        ).format(src=src_dir, cache_dir=str(tmp_path))
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(i)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for i in range(2)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert out.strip() == "0"  # no disk write errors in either process
        backend = DiskBackend(tmp_path, max_entries=3)
        assert backend.stats()["entries"] <= 3
        # Every surviving entry is loadable (no torn writes).
        for key in backend.keys():
            assert backend.load(key) is not None


class TestTieredBackend:
    def test_load_promotes_into_faster_tiers(self, tmp_path):
        memory = InMemoryBackend(capacity=8)
        disk = DiskBackend(tmp_path)
        tiered = TieredBackend(memory, disk)
        entry, key = entry_and_key(3)
        disk.store(key, entry)  # only on the slow tier
        assert key not in memory
        assert tiered.load(key) is not None
        assert key in memory  # promoted

    def test_store_writes_through_all_tiers(self, tmp_path):
        memory = InMemoryBackend(capacity=8)
        disk = DiskBackend(tmp_path)
        tiered = TieredBackend(memory, disk)
        entry, key = entry_and_key(3)
        tiered.store(key, entry)
        assert memory.load(key) is not None
        assert disk.load(key) is not None
        assert tiered.keys() == [key]
        assert tiered.stats()["tiers"][0]["kind"] == "memory"
        assert tiered.clear() == 1
        assert tiered.load(key) is None

    def test_session_with_tiered_backend_survives_memory_clear(self, tmp_path):
        backend = TieredBackend(InMemoryBackend(capacity=8), DiskBackend(tmp_path))
        session = CompilerSession(cache_backend=backend)
        chain = general_chain(4)
        session.compile(chain, num_training_instances=20)
        fresh = CompilerSession(
            cache_backend=TieredBackend(
                InMemoryBackend(capacity=8), DiskBackend(tmp_path)
            )
        )
        fresh.compile(chain, num_training_instances=20)
        assert fresh.cache_stats().disk_hits == 1
        assert "enumerate" in fresh.last_context.skipped

    def test_empty_tier_list_rejected(self):
        with pytest.raises(ValueError):
            TieredBackend()


class TestDefaultBackend:
    def test_arrangements(self, tmp_path):
        assert default_backend() is None
        disk_only = default_backend(tmp_path)
        assert isinstance(disk_only, DiskBackend)
        shared = InMemoryBackend()
        assert default_backend(shared_memory=shared) is shared
        tiered = default_backend(tmp_path, shared_memory=shared, max_entries=5)
        assert isinstance(tiered, TieredBackend)
        assert tiered.tiers[0] is shared
        assert tiered.tiers[1].max_entries == 5


class TestWarmup:
    def test_session_warm_preloads_memory_lru(self, tmp_path):
        chain = general_chain(4)
        CompilerSession(cache_dir=tmp_path).compile(
            chain, num_training_instances=20
        )
        fresh = CompilerSession(cache_dir=tmp_path)
        assert fresh.warm() == 1
        # The warmed entry is a *memory* hit: no disk access on the compile.
        fresh.compile(chain, num_training_instances=20)
        stats = fresh.cache_stats()
        assert stats.hits == 1 and stats.disk_hits == 0
        assert "enumerate" in fresh.last_context.skipped

    def test_warm_respects_limit_and_capacity(self, tmp_path):
        seeder = CompilerSession(cache_dir=tmp_path)
        for n in (2, 3, 4, 5):
            seeder.compile(general_chain(n), num_training_instances=15)
        assert CompilerSession(cache_dir=tmp_path).warm(limit=2) == 2
        tiny = CompilerSession(cache_dir=tmp_path, cache_capacity=3)
        assert tiny.warm() == 3  # capped by the LRU capacity
        assert CompilerSession(cache_dir=tmp_path).warm() == 4

    def test_warm_prefers_hottest_entries(self, tmp_path):
        backend = DiskBackend(tmp_path)
        seeder = CompilerSession(cache_backend=backend)
        keys = {}
        for n in (2, 3, 4):
            seeder.compile(general_chain(n), num_training_instances=15)
        base = time.time() - 100
        for age, key in enumerate(sorted(backend.keys())):
            os.utime(backend.path_for(key), (base + age, base + age))
            keys[age] = key
        hottest = keys_by_recency(backend)[0]
        warm_session = CompilerSession(cache_backend=backend, cache_capacity=1)
        assert warm_session.warm() == 1
        assert hottest in warm_session.cache

    def test_warm_without_backend_is_zero(self):
        assert CompilerSession().warm() == 0

    def test_warm_skips_corrupt_entries(self, tmp_path):
        session = CompilerSession(cache_dir=tmp_path)
        session.compile(general_chain(3), num_training_instances=15)
        (tmp_path / "corrupt.json").write_text("{not json")
        fresh = CompilerSession(cache_dir=tmp_path)
        assert fresh.warm() == 1
        assert fresh.cache_stats().disk_errors == 1

    def test_warm_never_evicts_the_live_working_set(self, tmp_path):
        """Re-warming a busy session must not displace hot memory entries."""
        seeder = CompilerSession(cache_dir=tmp_path)
        for n in (2, 3, 4, 5):
            seeder.compile(general_chain(n), num_training_instances=15)

        live = CompilerSession(cache_dir=tmp_path, cache_capacity=2)
        live.compile(general_chain(6), num_training_instances=15)  # hot entry
        assert live.warm() == 1  # only one free slot to fill
        # The hot entry survived, and the next compile of it is a pure
        # memory hit (warm inserted *below* it, not on top of it).
        live.compile(general_chain(6), num_training_instances=15)
        assert live.cache_stats().hits == 1
        assert live.cache_stats().evictions == 0
        # A full cache warms nothing at all.
        assert live.warm() == 0

    def test_warm_is_idempotent(self, tmp_path):
        session = CompilerSession(cache_dir=tmp_path)
        session.compile(general_chain(3), num_training_instances=15)
        fresh = CompilerSession(cache_dir=tmp_path)
        assert fresh.warm() == 1
        assert fresh.warm() == 0  # already in memory

"""Tests for the greedy ExpandSet procedure (Algorithm 1, Section VI)."""

import numpy as np
import pytest

from repro.compiler.expansion import AveragePenalty, MaxPenalty, expand_set
from repro.compiler.selection import CostMatrix, all_variants, essential_set
from repro.experiments.sampling import sample_instances

from conftest import general_chain


def _setup(n=5, count=300, seed=0):
    chain = general_chain(n)
    variants = all_variants(chain)
    rng = np.random.default_rng(seed)
    instances = sample_instances(chain, count, rng, low=2, high=1000)
    matrix = CostMatrix(variants, instances)
    base = essential_set(chain, cost_matrix=matrix)
    return chain, matrix, base


class TestExpandSet:
    def test_respects_max_size(self):
        chain, matrix, base = _setup()
        expanded = expand_set(matrix, base, max_size=len(base) + 2)
        assert len(expanded) <= len(base) + 2

    def test_contains_initial_set(self):
        chain, matrix, base = _setup()
        expanded = expand_set(matrix, base, max_size=len(base) + 2)
        base_sigs = {v.signature() for v in base}
        expanded_sigs = {v.signature() for v in expanded}
        assert base_sigs <= expanded_sigs

    def test_objective_never_increases(self):
        chain, matrix, base = _setup()
        sig_to_idx = {v.signature(): i for i, v in enumerate(matrix.variants)}

        def score(variants):
            return AveragePenalty(matrix, [sig_to_idx[v.signature()] for v in variants])

        previous = score(base)
        for extra in (1, 2, 3):
            expanded = expand_set(matrix, base, max_size=len(base) + extra)
            value = score(expanded)
            assert value <= previous + 1e-12
            previous = value

    def test_stops_when_no_improvement(self):
        chain, matrix, base = _setup(n=3)
        # With n = 3 there are only 2 variants; selecting both leaves no
        # improvement possible and the loop must stop early.
        expanded = expand_set(matrix, all_variants(chain), max_size=10)
        assert len(expanded) == 2

    def test_empty_initial_set(self):
        chain, matrix, _ = _setup(n=4)
        expanded = expand_set(matrix, [], max_size=1)
        assert len(expanded) == 1
        # The greedy pick from an empty set minimizes the objective alone.
        best_single = min(
            range(len(matrix.variants)),
            key=lambda i: AveragePenalty(matrix, [i]),
        )
        assert expanded[0].signature() == matrix.variants[best_single].signature()

    def test_max_objective(self):
        chain, matrix, base = _setup()
        expanded = expand_set(
            matrix, base, max_size=len(base) + 1, objective=MaxPenalty
        )
        sig_to_idx = {v.signature(): i for i, v in enumerate(matrix.variants)}
        idx = [sig_to_idx[v.signature()] for v in expanded]
        base_idx = [sig_to_idx[v.signature()] for v in base]
        assert matrix.max_penalty(idx) <= matrix.max_penalty(base_idx) + 1e-12

    def test_unknown_initial_variant_rejected(self):
        chain, matrix, base = _setup(n=4)
        other_chain, other_matrix, other_base = _setup(n=5)
        with pytest.raises(ValueError):
            expand_set(matrix, other_base, max_size=8)

    def test_full_set_reaches_zero_penalty(self):
        chain, matrix, base = _setup(n=4)
        expanded = expand_set(matrix, [], max_size=len(matrix.variants))
        idx = list(range(len(matrix.variants)))
        sig_to_idx = {v.signature(): i for i, v in enumerate(matrix.variants)}
        got = [sig_to_idx[v.signature()] for v in expanded]
        # Expansion stops once the penalty cannot improve; the final value
        # must equal the full-set optimum (zero penalty).
        assert matrix.average_penalty(got) == pytest.approx(
            matrix.average_penalty(idx)
        )

"""The C-emitter backend: native lowering, parity, fallback, codegen cache.

The ``c`` backend code-generates each frozen execution plan as a CPython
extension whose single native function walks the step list through BLAS/
LAPACK function pointers.  Three properties matter and are tested here:

* **Parity** — a natively lowered plan produces the same numbers as the
  per-step blas lowering (tight tolerance) and the reference backend
  (routine-level reassociation tolerance), across the kernel table.
* **Graceful degradation** — no compiler, no capsules, or an unsupported
  step must silently fall back to ``blas`` (the plan reports the backend
  it actually runs on) while counting the reason in
  ``runtime.codegen_fallbacks``.
* **Bounded codegen cache** — shared objects persist across processes in
  an LRU-by-bytes on-disk cache with hit/miss/eviction accounting.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.api import compile_chain
from repro.obs import get_registry
from repro.runtime import (
    blas_available,
    cemit_available,
    naive_evaluate,
    random_instance_arrays,
)
from repro.runtime.backends import cemit
from repro.runtime.backends.toolchain import (
    discover_toolchain,
    reset_toolchain_cache,
)
from repro.runtime.codegen_cache import CodegenCache

needs_blas = pytest.mark.skipif(
    not blas_available(), reason="scipy BLAS/LAPACK routines unavailable"
)
needs_cemit = pytest.mark.skipif(
    not cemit_available(),
    reason="C toolchain or scipy cython capsules unavailable",
)


def _fallback_count(reason: str) -> int:
    return get_registry().counter(
        "runtime.codegen_fallbacks", reason=reason
    ).value


# ---------------------------------------------------------------------------
# Numerical equivalence across the kernel table
# ---------------------------------------------------------------------------

#: (id, source) — one chain per emitter family, plus transposed/side
#: variants that exercise the flag algebra (trans/side/uplo resolved to
#: constants at emit time).
PARITY_CHAINS = [
    (
        "gemm",
        "Matrix A <General, Singular>; Matrix B <General, Singular>; "
        "Matrix C <General, Singular>; R := A * B * C;",
    ),
    (
        "gemm_trans",
        "Matrix A <General, Singular>; Matrix B <General, Singular>; "
        "Matrix C <General, Singular>; R := A^T * B * C^T;",
    ),
    (
        "symm_left",
        "Matrix S <Symmetric, NonSingular>; Matrix B <General, Singular>; "
        "R := S * B;",
    ),
    (
        "symm_right",
        "Matrix S <Symmetric, NonSingular>; Matrix B <General, Singular>; "
        "R := B * S;",
    ),
    (
        "trmm_upper",
        "Matrix U <UpperTri, NonSingular>; Matrix B <General, Singular>; "
        "R := U * B;",
    ),
    (
        "trmm_right_trans",
        "Matrix U <UpperTri, NonSingular>; Matrix B <General, Singular>; "
        "R := B * U^T;",
    ),
    (
        "ldlt",
        "Matrix L <LowerTri, NonSingular>; Matrix D <Diagonal, NonSingular>; "
        "Matrix B <General, Singular>; R := L * D * L^T * B;",
    ),
    (
        "dimm_right",
        "Matrix D <Diagonal, NonSingular>; Matrix B <General, Singular>; "
        "R := B * D;",
    ),
    (
        "diag_sym",
        "Matrix D <Diagonal, NonSingular>; Matrix S <Symmetric, NonSingular>; "
        "R := D * S;",
    ),
    (
        "sym_diag",
        "Matrix D <Diagonal, NonSingular>; Matrix S <Symmetric, NonSingular>; "
        "R := S * D;",
    ),
    (
        "didimm",
        "Matrix D <Diagonal, NonSingular>; Matrix E <Diagonal, NonSingular>; "
        "R := D * E;",
    ),
    (
        "spd_solve",
        "Matrix P <Symmetric, SPD>; Matrix B <General, Singular>; "
        "R := P^-1 * B;",
    ),
    (
        "spd_solve_right",
        "Matrix P <Symmetric, SPD>; Matrix B <General, Singular>; "
        "R := B * P^-1;",
    ),
    (
        "sym_solve",
        "Matrix S <Symmetric, NonSingular>; Matrix B <General, Singular>; "
        "R := S^-1 * B;",
    ),
    (
        "gen_solve",
        "Matrix A <General, NonSingular>; Matrix B <General, Singular>; "
        "R := A^-1 * B;",
    ),
    (
        "gen_solve_trans",
        "Matrix A <General, NonSingular>; Matrix B <General, Singular>; "
        "R := A^-T * B;",
    ),
    (
        "gen_solve_right",
        "Matrix A <General, NonSingular>; Matrix B <General, Singular>; "
        "R := B * A^-1;",
    ),
    (
        "tri_solve",
        "Matrix L <LowerTri, NonSingular>; Matrix B <General, Singular>; "
        "R := L^-1 * B;",
    ),
    (
        "tri_solve_right_trans",
        "Matrix L <LowerTri, NonSingular>; Matrix B <General, Singular>; "
        "R := B * L^-T;",
    ),
]


def _plan_for(source: str, backend: str, sizes=None):
    gen = compile_chain(source, num_training_instances=10, use_cache=False)
    chain = gen.program.chain
    q = sizes or [13] * (chain.n + 1)
    runtime = gen.program.runtime(backend=backend)
    _, _, plan = runtime.plan_for(q)
    return chain, q, plan


@needs_cemit
@pytest.mark.parametrize(
    "source", [src for _, src in PARITY_CHAINS], ids=[k for k, _ in PARITY_CHAINS]
)
def test_native_parity_across_kernel_table(source):
    chain, q, c_plan = _plan_for(source, "c")
    assert c_plan.backend == "c", "expected a native lowering, got a fallback"
    _, _, blas_plan = _plan_for(source, "blas")
    _, _, ref_plan = _plan_for(source, "reference")
    arrays = random_instance_arrays(chain, q, np.random.default_rng(0))
    pristine = [a.copy() for a in arrays]
    got = c_plan.execute(arrays)
    via_blas = blas_plan.execute([a.copy() for a in pristine])
    via_ref = ref_plan.execute([a.copy() for a in pristine])
    # Same routines, same flags, same arithmetic: near-bitwise vs blas.
    np.testing.assert_allclose(got, via_blas, rtol=1e-12, atol=1e-12)
    np.testing.assert_allclose(got, via_ref, rtol=1e-7, atol=1e-8)
    # Operands are never mutated (solves copy coefficients to scratch).
    for orig, after in zip(pristine, arrays):
        np.testing.assert_array_equal(orig, after)


@needs_cemit
def test_native_plan_accepts_noncontiguous_inputs():
    source = PARITY_CHAINS[0][1]
    chain, q, plan = _plan_for(source, "c")
    arrays = random_instance_arrays(chain, q, np.random.default_rng(3))
    strided = [np.asfortranarray(a) for a in arrays]
    got = plan.execute(strided)
    expected = naive_evaluate(chain, arrays)
    np.testing.assert_allclose(got, expected, rtol=1e-7, atol=1e-8)


@needs_cemit
def test_native_result_is_fresh_per_call():
    source = PARITY_CHAINS[0][1]
    chain, q, plan = _plan_for(source, "c")
    arrays = random_instance_arrays(chain, q, np.random.default_rng(4))
    first = plan.execute(arrays)
    second = plan.execute(arrays)
    assert first is not second
    np.testing.assert_array_equal(first, second)


@needs_cemit
def test_describe_reports_native_path():
    _, _, plan = _plan_for(PARITY_CHAINS[0][1], "c")
    assert "native: fused code-generated step loop" in plan.describe()


# ---------------------------------------------------------------------------
# Graceful degradation
# ---------------------------------------------------------------------------


@needs_blas
def test_no_toolchain_falls_back_to_blas(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_CC", "1")
    reset_toolchain_cache()
    try:
        assert discover_toolchain() is None
        assert not cemit_available()
        before = _fallback_count("no-toolchain")
        chain, q, plan = _plan_for(PARITY_CHAINS[0][1], "c")
        assert plan.backend == "blas"
        assert _fallback_count("no-toolchain") == before + 1
        arrays = random_instance_arrays(chain, q, np.random.default_rng(1))
        expected = naive_evaluate(chain, arrays)
        np.testing.assert_allclose(plan.execute(arrays), expected, rtol=1e-7)
    finally:
        monkeypatch.delenv("REPRO_DISABLE_CC")
        reset_toolchain_cache()


@needs_blas
def test_no_capsules_falls_back_to_blas(monkeypatch):
    monkeypatch.setattr(cemit, "_harvest_addresses", lambda: None)
    before = _fallback_count("no-capsules")
    _, _, plan = _plan_for(PARITY_CHAINS[0][1], "c")
    assert plan.backend == "blas"
    assert _fallback_count("no-capsules") == before + 1


@needs_cemit
def test_unsupported_step_falls_back_to_blas():
    # A diagonal coefficient solve has no emitter (DIGESV family).
    source = (
        "Matrix D <Diagonal, NonSingular>; Matrix B <General, Singular>; "
        "R := D^-1 * B;"
    )
    before = _fallback_count("unsupported-step")
    chain, q, plan = _plan_for(source, "c")
    assert plan.backend == "blas"
    assert _fallback_count("unsupported-step") == before + 1
    arrays = random_instance_arrays(chain, q, np.random.default_rng(2))
    expected = naive_evaluate(chain, arrays)
    np.testing.assert_allclose(plan.execute(arrays), expected, rtol=1e-7)


@needs_blas
def test_compile_error_falls_back_to_blas(tmp_path, monkeypatch):
    from repro.runtime.backends import toolchain as tc_mod

    toolchain = discover_toolchain()
    if toolchain is None:
        pytest.skip("no C toolchain")

    def broken(self, source, out_path):
        raise tc_mod.ToolchainError("simulated compiler failure")

    monkeypatch.setattr(tc_mod.Toolchain, "compile_shared", broken)
    cache = CodegenCache(directory=str(tmp_path))
    monkeypatch.setattr(cemit, "get_codegen_cache", lambda: cache)
    before = _fallback_count("compile-error")
    _, _, plan = _plan_for(PARITY_CHAINS[0][1], "c")
    assert plan.backend == "blas"
    assert _fallback_count("compile-error") == before + 1


# ---------------------------------------------------------------------------
# Bounded on-disk codegen cache
# ---------------------------------------------------------------------------


def _toolchain_or_skip():
    toolchain = discover_toolchain()
    if toolchain is None:
        pytest.skip("no C toolchain")
    return toolchain


def test_codegen_cache_miss_then_hit(tmp_path):
    toolchain = _toolchain_or_skip()
    cache = CodegenCache(directory=str(tmp_path))
    source = "double cg_probe_value = 42.0;\n"
    first = cache.shared_object("probe", source, toolchain)
    assert os.path.exists(first)
    second = cache.shared_object("probe", source, toolchain)
    assert second == first
    stats = cache.stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 1
    assert stats["compiles"] == 1
    assert stats["entries"] == 1
    assert stats["total_bytes"] > 0


def test_codegen_cache_lru_eviction_by_bytes(tmp_path):
    toolchain = _toolchain_or_skip()
    probe = CodegenCache(directory=str(tmp_path / "probe"))
    so = probe.shared_object("probe", "double cg_probe_size = 1.0;\n", toolchain)
    one = os.path.getsize(so)
    # Room for about two objects: inserting a third evicts the oldest.
    cache = CodegenCache(directory=str(tmp_path / "lru"), max_bytes=2 * one + one // 2)
    for i in range(3):
        cache.shared_object(f"obj{i}", f"double cg_v{i} = {i}.0;\n", toolchain)
    stats = cache.stats()
    assert stats["evictions"] >= 1
    assert stats["total_bytes"] <= cache.max_bytes
    # The just-inserted key is always protected from its own pruning.
    again = cache.shared_object("obj2", "double cg_v2 = 2.0;\n", toolchain)
    assert os.path.exists(again)
    assert cache.stats()["hits"] == 1


def test_codegen_cache_clear(tmp_path):
    toolchain = _toolchain_or_skip()
    cache = CodegenCache(directory=str(tmp_path))
    cache.shared_object("probe", "double cg_probe_clear = 7.0;\n", toolchain)
    assert cache.clear() == 1
    assert cache.stats()["entries"] == 0


@needs_cemit
def test_fresh_plan_hits_disk_cache_without_recompiling(tmp_path, monkeypatch):
    cache = CodegenCache(directory=str(tmp_path))
    monkeypatch.setattr(cemit, "get_codegen_cache", lambda: cache)
    source = (
        "Matrix A <General, Singular>; Matrix B <General, Singular>; "
        "R := A * B;"
    )
    _, _, first = _plan_for(source, "c", sizes=[9, 10, 11])
    assert first.backend == "c"
    assert cache.stats()["compiles"] == 1
    # A second plan build (fresh ExecutionPlan, same emitted module) must
    # come out of the disk cache: zero additional compiler invocations.
    _, _, again = _plan_for(source, "c", sizes=[9, 10, 11])
    assert again.backend == "c"
    stats = cache.stats()
    assert stats["compiles"] == 1
    assert stats["hits"] >= 1


# ---------------------------------------------------------------------------
# Plumbing: artifacts, auto tournament, CLI
# ---------------------------------------------------------------------------


@pytest.fixture
def restore_global_codegen_cache():
    """Undo ``configure_codegen_cache`` calls made through the CLI knobs."""
    from repro.runtime import codegen_cache as cc_mod

    with cc_mod._cache_lock:
        saved = cc_mod._cache
    yield
    with cc_mod._cache_lock:
        cc_mod._cache = saved


def test_artifact_roundtrip_records_c_backend(tmp_path):
    from repro.compiler.program import CompiledProgram

    source = (
        "Matrix A <General, Singular>; Matrix B <General, Singular>; "
        "Matrix C <General, Singular>; R := A * B * C;"
    )
    gen = compile_chain(
        source, num_training_instances=10, backend="c", use_cache=False
    )
    path = tmp_path / "prog.json"
    gen.save(path)
    program = CompiledProgram.load(path)
    assert program.options.get("backend") == "c"
    runtime = program.runtime()  # resolves to the recorded backend
    q = [7, 8, 9, 10]
    _, _, plan = runtime.plan_for(q)
    # Native when the host can emit, silently blas otherwise.
    assert plan.backend == ("c" if cemit_available() else "blas")
    arrays = random_instance_arrays(
        program.chain, q, np.random.default_rng(5)
    )
    expected = naive_evaluate(program.chain, arrays)
    np.testing.assert_allclose(plan.execute(arrays), expected, rtol=1e-7)


@needs_cemit
def test_auto_tournament_includes_c_and_records_wins():
    source = (
        "Matrix A <General, Singular>; Matrix B <General, Singular>; "
        "Matrix C <General, Singular>; R := A * B * C;"
    )
    gen = compile_chain(
        source, num_training_instances=10, backend="auto", use_cache=False
    )
    runtime = gen.program.runtime()
    q = [12, 12, 12, 12]
    arrays = random_instance_arrays(gen.program.chain, q, np.random.default_rng(6))
    runtime.run(arrays)
    entry = runtime._memo[tuple(q)]
    assert set(entry.bench) == {"reference", "blas", "c"}
    stats = runtime.memo_stats()
    assert stats["auto_wins"]
    assert sum(stats["auto_wins"].values()) == 1
    assert entry.backend in stats["auto_wins"]


def test_cli_accepts_c_backend(tmp_path, capsys, restore_global_codegen_cache):
    from repro.cli import main

    source = (
        "Matrix A <General, Singular>; Matrix B <General, Singular>; "
        "R := A * B;"
    )
    artifact = tmp_path / "prog.json"
    assert (
        main(
            [
                "compile",
                "--source",
                source,
                "--train",
                "10",
                "--backend",
                "c",
                "--output",
                str(artifact),
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert (
        main(
            [
                "run",
                str(artifact),
                "--sizes",
                "6,7,8",
                "--codegen-cache-dir",
                str(tmp_path / "cg"),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "backend=c" in out or "backend=blas" in out
    if cemit_available():
        assert "backend=c" in out


def test_cli_cache_stats_reports_codegen_tier(tmp_path, capsys, restore_global_codegen_cache):
    from repro.cli import main

    assert (
        main(
            [
                "cache",
                "stats",
                "--cache-dir",
                str(tmp_path / "compile-cache"),
                "--codegen-cache-dir",
                str(tmp_path / "cg"),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "codegen directory:" in out
    assert "codegen entries:   0" in out

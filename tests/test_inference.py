"""Tests for structure/property inference of intermediate results (Fig. 4)."""

import pytest

from repro.ir.features import Property, Structure
from repro.inference.rules import (
    infer_association_features,
    infer_product_structure,
    infer_property,
)

G = Structure.GENERAL
S = Structure.SYMMETRIC
L = Structure.LOWER_TRIANGULAR
U = Structure.UPPER_TRIANGULAR


class TestStructureInference:
    @pytest.mark.parametrize(
        "left,right,result",
        [
            (G, G, G),
            (G, S, G),
            (S, G, G),
            (S, S, G),  # symmetric x symmetric is NOT symmetric in general
            (L, L, L),
            (U, U, U),
            (L, U, G),
            (U, L, G),
            (L, S, G),
            (S, U, G),
            (L, G, G),
            (G, U, G),
        ],
    )
    def test_table(self, left, right, result):
        assert infer_product_structure(left, right) is result

    def test_paper_example_ut_times_l(self):
        # X := U^T L: U^T has lower-triangular effective structure, so the
        # product of two lower-triangular operands is lower-triangular.
        assert infer_product_structure(U.transposed, L) is L


class TestPropertyInference:
    def test_orthogonal_closed_under_product(self):
        assert (
            infer_property(Property.ORTHOGONAL, Property.ORTHOGONAL, True)
            is Property.ORTHOGONAL
        )

    def test_invertible_times_invertible(self):
        assert (
            infer_property(Property.NON_SINGULAR, Property.NON_SINGULAR, True)
            is Property.NON_SINGULAR
        )

    def test_spd_not_closed_under_product(self):
        # The product of two SPD matrices is invertible but not SPD.
        assert infer_property(Property.SPD, Property.SPD, True) is (
            Property.NON_SINGULAR
        )

    def test_singular_dominates(self):
        assert (
            infer_property(Property.SINGULAR, Property.NON_SINGULAR, True)
            is Property.SINGULAR
        )
        assert (
            infer_property(Property.ORTHOGONAL, Property.SINGULAR, True)
            is Property.SINGULAR
        )

    def test_rectangular_result_is_singular(self):
        assert (
            infer_property(Property.NON_SINGULAR, Property.NON_SINGULAR, False)
            is Property.SINGULAR
        )

    def test_orthogonal_times_invertible_is_just_invertible(self):
        assert (
            infer_property(Property.ORTHOGONAL, Property.NON_SINGULAR, True)
            is Property.NON_SINGULAR
        )


class TestCombinedInference:
    def test_qtg_is_general(self):
        # Paper example: Q^T G is inferred general even if Q comes from a QR
        # factorization of G (algebraic relations are ignored).
        structure, prop = infer_association_features(
            G, Property.ORTHOGONAL, G, Property.SINGULAR, result_square=False
        )
        assert structure is G
        assert prop is Property.SINGULAR

    def test_triangular_solve_keeps_triangularity(self):
        # L1^-1 L2 with matching triangularity: result lower-triangular.
        structure, prop = infer_association_features(
            L, Property.NON_SINGULAR, L, Property.NON_SINGULAR, result_square=True
        )
        assert structure is L
        assert prop is Property.NON_SINGULAR

    def test_never_infers_spd_on_non_symmetric(self):
        for left in (G, S, L, U):
            for right in (G, S, L, U):
                structure, prop = infer_association_features(
                    left, Property.SPD, right, Property.SPD, result_square=True
                )
                if structure is not S:
                    assert prop is not Property.SPD

"""Configuration-level tests for the executor's kernel dispatch layer.

``repro.kernels.reference.KERNEL_IMPLS`` is the uniform interface the
variant executor drives: every entry takes the *stored* left/right arrays
plus a resolved call configuration (side, transposition flags, stored
triangularity).  These tests sweep the configuration space per kernel
family and check each call against dense NumPy evaluation of the logical
operation.
"""

import numpy as np
import pytest

from repro.compiler.executor import KernelCallConfig
from repro.kernels.reference import KERNEL_IMPLS

RNG = np.random.default_rng(42)


def _cfg(side="left", lt=False, rt=False, ll=None, rl=None):
    return KernelCallConfig(
        side=side, left_trans=lt, right_trans=rt, left_lower=ll, right_lower=rl
    )


def _sym(n):
    a = RNG.standard_normal((n, n))
    return (a + a.T) / 2 + np.eye(n) * n


def _spd(n):
    a = RNG.standard_normal((n, n))
    return a @ a.T / np.sqrt(n) + np.eye(n)


def _low(n):
    t = np.tril(RNG.standard_normal((n, n)))
    t[np.diag_indices(n)] = np.abs(np.diag(t)) + 1
    return t


def _gen(m, n):
    return RNG.standard_normal((m, n))


def _gen_inv(n):
    return RNG.standard_normal((n, n)) + np.eye(n) * np.sqrt(n)


def _diag(n):
    return np.diag(np.abs(RNG.standard_normal(n)) + 1.0)


def _op(a, trans):
    return a.T if trans else a


class TestProductImpls:
    @pytest.mark.parametrize("kernel", ["GEMM", "SYMM", "TRMM", "SYSYMM",
                                        "TRSYMM", "TRTRMM", "DIMM", "DIDIMM"])
    @pytest.mark.parametrize("lt", [False, True])
    @pytest.mark.parametrize("rt", [False, True])
    def test_product_with_transpositions(self, kernel, lt, rt):
        # All product implementations reduce to op(A) @ op(B) on the full
        # dense storage, whatever the declared structures.
        a = _gen(4, 4)
        b = _gen(4, 4)
        impl = KERNEL_IMPLS[kernel]
        got = impl(a, b, _cfg(lt=lt, rt=rt))
        np.testing.assert_allclose(got, _op(a, lt) @ _op(b, rt))

    def test_rectangular_product(self):
        a, b = _gen(3, 5), _gen(5, 7)
        np.testing.assert_allclose(
            KERNEL_IMPLS["GEMM"](a, b, _cfg()), a @ b
        )


class TestGeneralSolveImpls:
    @pytest.mark.parametrize("kernel", ["GEGESV", "GESYSV", "GETRSV"])
    def test_coefficient_left(self, kernel):
        coeff, rhs = _gen_inv(5), _gen(5, 3)
        got = KERNEL_IMPLS[kernel](coeff, rhs, _cfg(side="left"))
        np.testing.assert_allclose(coeff @ got, rhs, atol=1e-9)

    @pytest.mark.parametrize("kernel", ["GEGESV"])
    def test_coefficient_right(self, kernel):
        rhs, coeff = _gen(3, 5), _gen_inv(5)
        got = KERNEL_IMPLS[kernel](rhs, coeff, _cfg(side="right"))
        np.testing.assert_allclose(got @ coeff, rhs, atol=1e-9)

    def test_transposed_coefficient_left(self):
        coeff, rhs = _gen_inv(5), _gen(5, 3)
        got = KERNEL_IMPLS["GEGESV"](coeff, rhs, _cfg(side="left", lt=True))
        np.testing.assert_allclose(coeff.T @ got, rhs, atol=1e-9)

    def test_transposed_coefficient_right(self):
        rhs, coeff = _gen(3, 5), _gen_inv(5)
        got = KERNEL_IMPLS["GEGESV"](rhs, coeff, _cfg(side="right", rt=True))
        np.testing.assert_allclose(got @ coeff.T, rhs, atol=1e-9)


class TestStructuredSolveImpls:
    def test_symmetric_left_and_right(self):
        s = _sym(5)
        rhs = _gen(5, 4)
        got = KERNEL_IMPLS["SYGESV"](s, rhs, _cfg(side="left"))
        np.testing.assert_allclose(s @ got, rhs, atol=1e-8)
        rhs_r = _gen(4, 5)
        got = KERNEL_IMPLS["SYGESV"](rhs_r, s, _cfg(side="right"))
        np.testing.assert_allclose(got @ s, rhs_r, atol=1e-8)

    def test_spd_left_and_right(self):
        p = _spd(5)
        rhs = _gen(5, 4)
        got = KERNEL_IMPLS["POGESV"](p, rhs, _cfg(side="left"))
        np.testing.assert_allclose(p @ got, rhs, atol=1e-8)
        rhs_r = _gen(4, 5)
        got = KERNEL_IMPLS["POGESV"](rhs_r, p, _cfg(side="right"))
        np.testing.assert_allclose(got @ p, rhs_r, atol=1e-8)

    @pytest.mark.parametrize("stored_lower", [True, False])
    def test_triangular_sides_and_storage(self, stored_lower):
        low = _low(5)
        stored = low if stored_lower else low.T.copy()
        rhs = _gen(5, 4)
        got = KERNEL_IMPLS["TRSM"](
            stored, rhs, _cfg(side="left", ll=stored_lower)
        )
        np.testing.assert_allclose(stored @ got, rhs, atol=1e-9)
        rhs_r = _gen(4, 5)
        got = KERNEL_IMPLS["TRSM"](
            rhs_r, stored, _cfg(side="right", rl=stored_lower)
        )
        np.testing.assert_allclose(got @ stored, rhs_r, atol=1e-9)

    def test_triangular_transposed_coefficient(self):
        # Stored lower, consumed transposed: solve with the upper L^T.
        low = _low(5)
        rhs = _gen(5, 4)
        got = KERNEL_IMPLS["TRSM"](
            low, rhs, _cfg(side="left", lt=True, ll=True)
        )
        np.testing.assert_allclose(low.T @ got, rhs, atol=1e-9)

    def test_diagonal_solves(self):
        d = _diag(5)
        rhs = _gen(5, 4)
        got = KERNEL_IMPLS["DIGESV"](d, rhs, _cfg(side="left"))
        np.testing.assert_allclose(d @ got, rhs, atol=1e-12)
        rhs_r = _gen(4, 5)
        got = KERNEL_IMPLS["DIGESV"](rhs_r, d, _cfg(side="right"))
        np.testing.assert_allclose(got @ d, rhs_r, atol=1e-12)

    def test_transposed_rhs_is_materialized(self):
        # RHS stored transposed (the executor's cfg carries the flag even
        # though compiled variants never produce this for solves).
        coeff = _gen_inv(5)
        rhs_stored = _gen(3, 5)  # logical RHS is its transpose: 5 x 3
        got = KERNEL_IMPLS["GEGESV"](
            coeff, rhs_stored, _cfg(side="left", rt=True)
        )
        np.testing.assert_allclose(coeff @ got, rhs_stored.T, atol=1e-9)


class TestCoverage:
    def test_every_binary_kernel_covered_by_impl_and_cfg_tests(self):
        from repro.kernels.spec import DIAGONAL_KERNELS, PRODUCT_KERNELS, SOLVE_KERNELS

        for kernel in (*PRODUCT_KERNELS, *SOLVE_KERNELS, *DIAGONAL_KERNELS):
            assert kernel.name in KERNEL_IMPLS

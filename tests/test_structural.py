"""Structural keys: the content-address identity of chain shapes."""

import pytest

from repro.ir import (
    Chain,
    Matrix,
    Property,
    Structure,
    parse_chain,
    structural_digest,
    structural_key,
    structurally_equal,
)

from conftest import general_chain, make_general, make_lower, make_symmetric


def rename(chain: Chain, prefix: str) -> Chain:
    """The same chain with every distinct matrix renamed consistently."""
    from repro.ir.operand import Operand

    mapping: dict[str, Matrix] = {}
    operands = []
    for op in chain:
        m = op.matrix
        renamed = mapping.setdefault(
            m.name, Matrix(f"{prefix}{len(mapping)}", m.structure, m.prop)
        )
        operands.append(Operand(renamed, op.op))
    return Chain(tuple(operands))


class TestStructuralKey:
    def test_renamed_chain_same_key(self):
        chain = make_general("A") * make_lower("L").inv * make_symmetric("S")
        assert structural_key(chain) == structural_key(rename(chain, "Z"))
        assert structurally_equal(chain, rename(chain, "Z"))

    def test_key_erases_names_not_features(self):
        a = make_general("A") * make_general("B")
        b = make_general("X") * make_general("Y")
        assert structural_key(a) == structural_key(b)

    def test_sharing_pattern_distinguishes(self):
        g, h = make_general("G"), make_general("H")
        shared = g * h * g  # G appears twice
        distinct = (
            make_general("A") * make_general("B") * make_general("C")
        )
        assert structural_key(shared) != structural_key(distinct)
        # ... but the same sharing pattern under other names matches.
        x, y = make_general("X"), make_general("Y")
        assert structural_key(shared) == structural_key(x * y * x)

    def test_unary_op_distinguishes(self):
        l1 = make_lower("L")
        plain = l1 * make_general("G")
        inverted = l1.inv * make_general("G")
        transposed = l1.T * make_general("G")
        keys = {
            structural_key(plain),
            structural_key(inverted),
            structural_key(transposed),
        }
        assert len(keys) == 3

    def test_features_distinguish(self):
        sing = Matrix("M", Structure.GENERAL, Property.SINGULAR)
        nonsing = Matrix("M", Structure.GENERAL, Property.NON_SINGULAR)
        assert structural_key(sing * sing) != structural_key(nonsing * nonsing)
        lower = Matrix("M", Structure.LOWER_TRIANGULAR, Property.NON_SINGULAR)
        assert structural_key(nonsing * nonsing) != structural_key(lower * lower)

    def test_length_distinguishes(self):
        assert structural_key(general_chain(3)) != structural_key(general_chain(4))

    def test_parsed_and_constructed_agree(self):
        source = (
            "Matrix A <General, Singular>; Matrix B <General, Singular>;"
            " R := A * B;"
        )
        assert structurally_equal(
            parse_chain(source), make_general("P") * make_general("Q")
        )

    def test_equal_keys_imply_equal_equivalence_classes(self):
        chain = make_general("A") * make_lower("L") * make_general("B")
        other = rename(chain, "W")
        assert chain.equivalence_classes() == other.equivalence_classes()

    def test_digest_is_stable_hex(self):
        chain = general_chain(4)
        digest = structural_digest(chain)
        assert len(digest) == 64
        assert digest == structural_digest(rename(chain, "K"))
        assert digest != structural_digest(general_chain(5))

"""Unit tests for the cost-function primitives (Monomial, CostFunction)."""

from fractions import Fraction

import pytest
import sympy

from repro.kernels.cost import (
    CostFunction,
    CostType,
    Monomial,
    ZERO_COST,
    cubed_left,
    evaluate_terms,
    linear,
    scaling,
    solve_left,
    solve_right,
    square_left_times_n,
    square_right_times_m,
    trilinear,
    unary_cubed,
)


class TestMonomial:
    def test_evaluate(self):
        mono = Monomial(Fraction(2, 3), 3, 0, 0)
        assert mono.evaluate(6, 1, 1) == pytest.approx(2 / 3 * 216)

    def test_to_sympy_exact_rational(self):
        m, k, n = sympy.symbols("m k n", positive=True)
        mono = Monomial(Fraction(7, 3), 1, 1, 1)
        expr = mono.to_sympy(m, k, n)
        assert expr == sympy.Rational(7, 3) * m * k * n

    def test_str(self):
        assert str(Monomial(Fraction(2), 1, 1, 1)) == "2*m*k*n"
        assert str(Monomial(Fraction(1, 3), 3, 0, 0)) == "1/3*m^3"
        assert str(Monomial(Fraction(5), 0, 0, 0)) == "5*1"


class TestCostFunction:
    def test_evaluate_sums_terms(self):
        fn = solve_left(Fraction(2, 3), 2)
        assert fn.evaluate(3, 1, 4) == pytest.approx(2 / 3 * 27 + 2 * 9 * 4)

    def test_degree(self):
        assert trilinear(2).degree == 3
        assert scaling(1).degree == 2
        assert linear(1).degree == 1

    def test_str(self):
        assert str(trilinear(2)) == "2*m*k*n"
        assert "+" in str(solve_right(Fraction(1, 3), 2))

    def test_zero_cost(self):
        assert ZERO_COST.evaluate(100, 100, 100) == 0.0
        assert ZERO_COST.terms == ()

    def test_sympy_matches_numeric(self):
        m, k, n = sympy.symbols("m k n", positive=True)
        for fn in (
            trilinear(2),
            cubed_left(Fraction(7, 3)),
            square_left_times_n(2),
            square_right_times_m(1),
            solve_left(Fraction(2, 3), 2),
            solve_right(Fraction(1, 3), 2),
            unary_cubed(2),
            scaling(1),
            linear(1),
        ):
            expr = fn.to_sympy(m, k, n)
            value = float(expr.subs({m: 5, k: 6, n: 7}))
            assert value == pytest.approx(fn.evaluate(5, 6, 7))

    def test_classification(self):
        assert trilinear(2).cost_type is CostType.TYPE_I
        assert solve_left(1, 2).cost_type is CostType.TYPE_IIA
        assert solve_right(1, 2).cost_type is CostType.TYPE_IIB
        assert unary_cubed(2).cost_type is CostType.UNARY
        assert scaling(1).cost_type is CostType.EXTENSION


class TestEvaluateTerms:
    def test_matches_cost_function(self):
        fn = solve_left(Fraction(2, 3), 2)
        assert evaluate_terms(fn.terms, 3, 1, 4) == fn.evaluate(3, 1, 4)

    def test_empty_terms(self):
        assert evaluate_terms((), 3, 3, 3) == 0.0

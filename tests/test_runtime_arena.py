"""Allocation-free warm replay: PlanArena, out= buffers, dispatcher pooling."""

import tracemalloc

import numpy as np
import pytest

from repro.compiler.selection import all_variants
from repro.runtime import Dispatcher, PlanArena, compile_plan
from repro.runtime.dispatcher import ARENA_POOL_CAP

from conftest import general_chain

SIZES = (32, 48, 24, 40)


@pytest.fixture(scope="module")
def chain():
    return general_chain(3)


@pytest.fixture(scope="module")
def variants(chain):
    return all_variants(chain)


def instance(rng, sizes=SIZES):
    return [
        rng.standard_normal((sizes[i], sizes[i + 1]))
        for i in range(len(sizes) - 1)
    ]


class TestPlanArena:
    def test_new_arena_requires_one_replay(self, variants):
        plan = compile_plan(variants[0], [8, 9, 10, 11], backend="reference")
        assert plan.new_arena() is None  # shapes unknown until a replay
        assert plan.result_shape is None
        values = [np.ones((8, 9)), np.ones((9, 10)), np.ones((10, 11))]
        result = plan.replay(values)
        plan.record_buffer_shapes(values, result)
        arena = plan.new_arena()
        assert isinstance(arena, PlanArena)
        assert plan.result_shape == (8, 11)

    def test_final_step_buffer_is_never_arena_backed(self, variants):
        plan = compile_plan(variants[0], [8, 9, 10, 11], backend="reference")
        values = list(instance(np.random.default_rng(0), (8, 9, 10, 11)))
        result = plan.replay(values)
        plan.record_buffer_shapes(values, result)
        arena = plan.new_arena()
        assert arena.buffers[-1] is None
        assert arena.nbytes > 0

    def test_arena_replay_matches_plain_replay(self, variants):
        rng = np.random.default_rng(1)
        arrays = instance(rng)
        for variant in variants:
            plan = compile_plan(variant, SIZES, backend="reference")
            plain_values = [np.asarray(a, dtype=np.float64) for a in arrays]
            plain = plan.replay(plain_values)
            plan.record_buffer_shapes(plain_values, plain)
            arena = plan.new_arena()
            if arena is None:
                continue
            warm = plan.replay(
                [np.asarray(a, dtype=np.float64) for a in arrays], arena
            )
            assert np.array_equal(warm, plain)
            # The arena is reusable: a second replay is still correct
            # (stale buffer contents must be fully overwritten).
            again = plan.replay(
                [np.asarray(a, dtype=np.float64) for a in arrays], arena
            )
            assert np.array_equal(again, plain)

    def test_result_never_aliases_arena(self, variants):
        plan = compile_plan(variants[0], SIZES, backend="reference")
        arrays = instance(np.random.default_rng(2))
        values = [np.asarray(a, dtype=np.float64) for a in arrays]
        result = plan.replay(values)
        plan.record_buffer_shapes(values, result)
        arena = plan.new_arena()
        first = plan.replay(
            [np.asarray(a, dtype=np.float64) for a in arrays], arena
        )
        snapshot = first.copy()
        plan.replay([np.asarray(a, dtype=np.float64) for a in arrays], arena)
        # A second replay on the same arena must not clobber the first
        # result the caller still holds.
        assert np.array_equal(first, snapshot)

    def test_out_buffer_receives_result(self, variants):
        plan = compile_plan(variants[0], SIZES, backend="reference")
        arrays = instance(np.random.default_rng(3))
        expected = plan.replay(
            [np.asarray(a, dtype=np.float64) for a in arrays]
        )
        out = np.empty_like(expected)
        got = plan.replay(
            [np.asarray(a, dtype=np.float64) for a in arrays], None, out
        )
        assert got is out
        assert np.array_equal(out, expected)


class TestDispatcherReuse:
    def test_run_reuse_buffers_matches_default(self, chain, variants):
        rng = np.random.default_rng(4)
        arrays = instance(rng)
        plain = Dispatcher(chain, variants, backend="reference")
        pooled = Dispatcher(chain, variants, backend="reference")
        expected = plain.run(arrays).result
        first = pooled.run(arrays, reuse_buffers=True).result  # cold
        warm = pooled.run(arrays, reuse_buffers=True).result  # arena-backed
        assert np.array_equal(first, expected)
        assert np.array_equal(warm, expected)
        stats = pooled.memo_stats()
        assert stats["idle_arenas"] >= 1
        assert stats["arena_bytes"] > 0

    def test_arena_pool_is_bounded(self, chain, variants):
        dispatcher = Dispatcher(chain, variants, backend="reference")
        arrays = instance(np.random.default_rng(5))
        for _ in range(ARENA_POOL_CAP + 4):
            dispatcher.run(arrays, reuse_buffers=True)
        assert dispatcher.memo_stats()["idle_arenas"] <= ARENA_POOL_CAP

    def test_backend_swap_invalidates_arenas(self, chain, variants):
        dispatcher = Dispatcher(chain, variants, backend="reference")
        arrays = instance(np.random.default_rng(6))
        dispatcher.run(arrays, reuse_buffers=True)
        dispatcher.run(arrays, reuse_buffers=True)
        assert dispatcher.memo_stats()["idle_arenas"] >= 1
        dispatcher.backend = "blas"
        assert dispatcher.memo_stats()["idle_arenas"] == 0
        # And the swapped backend still answers correctly.
        expected = np.linalg.multi_dot(arrays)
        outcome = dispatcher.run(arrays, reuse_buffers=True)
        assert np.allclose(outcome.result, expected)

    def test_out_parameter_via_dispatcher(self, chain, variants):
        dispatcher = Dispatcher(chain, variants, backend="reference")
        arrays = instance(np.random.default_rng(7))
        expected = dispatcher.run(arrays).result
        out = np.empty_like(expected)
        outcome = dispatcher.run(arrays, out=out, reuse_buffers=True)
        assert outcome.result is out
        assert np.array_equal(out, expected)

    def test_warm_replay_is_allocation_free(self, chain, variants):
        """The tentpole gate: warm replays allocate no array-sized blocks.

        Small Python-object churn (the values list, floats, the outcome
        tuple) is unavoidable and irrelevant; the gate is on blocks big
        enough to be matrix buffers (>= 16 KiB).
        """
        dispatcher = Dispatcher(chain, variants, backend="reference")
        sizes = (64, 96, 48, 80)
        arrays = [
            np.ascontiguousarray(a)
            for a in instance(np.random.default_rng(8), sizes)
        ]
        dispatcher.run(arrays, reuse_buffers=True)  # cold: records shapes
        warm = dispatcher.run(arrays, reuse_buffers=True)  # builds the arena
        out = np.empty(warm.result.shape)
        tracemalloc.start()
        for _ in range(5):
            dispatcher.run(arrays, out=out, reuse_buffers=True)
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        big = [
            stat
            for stat in snapshot.statistics("lineno")
            if stat.size >= 16 * 1024
        ]
        assert big == [], [str(stat) for stat in big]

    def test_traced_replay_skips_arena_but_stays_correct(self, chain, variants):
        from repro.obs import trace as obs_trace

        dispatcher = Dispatcher(chain, variants, backend="reference")
        arrays = instance(np.random.default_rng(9))
        expected = dispatcher.run(arrays).result
        obs_trace.enable()
        try:
            outcome = dispatcher.run(arrays, reuse_buffers=True)
            out = np.empty_like(expected)
            traced_out = dispatcher.run(arrays, out=out, reuse_buffers=True)
        finally:
            obs_trace.disable()
        assert np.array_equal(outcome.result, expected)
        assert traced_out.result is out
        assert np.array_equal(out, expected)

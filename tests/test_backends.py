"""The execution-backend layer: lowering, parity, auto strategy, plumbing.

The heart of this file is the bit-compatibility parity net: every kernel
in ``KERNEL_IMPLS``, swept over side x trans x stored-triangularity
configurations and both memory orders, must produce the same answer
through the blas backend as through the reference backend (tight
tolerance — same arithmetic up to routine-level reassociation).
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.errors import CompilationError, DispatchError, ExecutionError
from repro.ir.chain import Chain
from repro.kernels.reference import KERNEL_IMPLS
from repro.runtime import (
    BACKEND_NAMES,
    BLAS_LOWERED_KERNELS,
    Dispatcher,
    FALLBACK_ROUTINE,
    KernelCallConfig,
    REFERENCE_ROUTINE,
    BlasBackend,
    ReferenceBackend,
    blas_available,
    compile_plan,
    get_backend,
    naive_evaluate,
    random_instance_arrays,
)

from conftest import make_general, make_lower, make_symmetric, make_upper

RNG = np.random.default_rng(7)

needs_blas = pytest.mark.skipif(
    not blas_available(), reason="scipy BLAS/LAPACK routines unavailable"
)

#: Operand structure each kernel assumes: (structure at cfg.side, other).
#: Kernel names encode it — the first two letters name the structured /
#: coefficient operand (the one standing on ``cfg.side``), the middle two
#: the other operand (GE when unmarked).
KERNEL_STRUCTS = {
    "GEMM": ("general", "general"),
    "SYMM": ("sym", "general"),
    "SYSYMM": ("sym", "sym"),
    "TRMM": ("tri", "general"),
    "TRSYMM": ("tri", "sym"),
    "TRTRMM": ("tri", "tri"),
    "DIMM": ("diag", "general"),
    "DIDIMM": ("diag", "diag"),
    "GEGESV": ("geninv", "general"),
    "GESYSV": ("geninv", "sym"),
    "GETRSV": ("geninv", "tri"),
    "SYGESV": ("sym", "general"),
    "SYSYSV": ("sym", "sym"),
    "SYTRSV": ("sym", "tri"),
    "POGESV": ("spd", "general"),
    "POSYSV": ("spd", "sym"),
    "POTRSV": ("spd", "tri"),
    "TRSM": ("tri", "general"),
    "TRSYSV": ("tri", "sym"),
    "TRTRSV": ("tri", "tri"),
    "DIGESV": ("diag", "general"),
    "DISYSV": ("diag", "sym"),
    "DITRSV": ("diag", "tri"),
    "DIDISV": ("diag", "diag"),
}

def _stored_array(struct: str, rows: int, cols: int, lower: bool) -> np.ndarray:
    """A well-conditioned stored array honoring the declared structure."""
    a = RNG.standard_normal((rows, cols))
    if struct in ("general",):
        return a
    assert rows == cols, "structured operands are square"
    n = rows
    if struct == "geninv":
        return a + np.eye(n) * np.sqrt(n) * 2
    if struct == "sym":
        return (a + a.T) / 2 + np.eye(n) * n
    if struct == "spd":
        return a @ a.T / np.sqrt(n) + np.eye(n) * 2
    if struct == "tri":
        t = np.tril(a) if lower else np.triu(a)
        t[np.diag_indices(n)] = np.abs(np.diag(t)) + n
        return t
    if struct == "diag":
        return np.diag(np.abs(RNG.standard_normal(n)) + 1.0)
    raise AssertionError(struct)


def _parity_cases(kernel: str):
    """Every (cfg, left_struct, right_struct) combination worth sweeping."""
    side_struct, other_struct = KERNEL_STRUCTS[kernel]
    for side, lt, rt in itertools.product(
        ("left", "right"), (False, True), (False, True)
    ):
        structs = (
            (side_struct, other_struct)
            if side == "left"
            else (other_struct, side_struct)
        )
        lower_choices = [
            (True, False) if struct == "tri" else (None,) for struct in structs
        ]
        for ll, rl in itertools.product(*lower_choices):
            yield (
                KernelCallConfig(
                    side=side,
                    left_trans=lt,
                    right_trans=rt,
                    left_lower=ll,
                    right_lower=rl,
                ),
                structs,
            )


def _case_arrays(kernel: str, cfg: KernelCallConfig, structs, n=7, m=5):
    """Stored operand arrays for one parity case.

    Products allow one rectangular general operand; solves need the
    right-hand side conformable with the (square) coefficient.
    """
    shapes = [(n, n), (n, n)]
    ls, rs = structs
    # The general operand may be rectangular as long as the logical
    # product op(left) @ op(right) (for solves: with the coefficient
    # inverted) conforms with the square structured operand.
    if ls == "general":
        shapes[0] = (n, m) if cfg.left_trans else (m, n)
    elif rs == "general":
        shapes[1] = (m, n) if cfg.right_trans else (n, m)
    left = _stored_array(ls, *shapes[0], lower=bool(cfg.left_lower))
    right = _stored_array(rs, *shapes[1], lower=bool(cfg.right_lower))
    return left, right


class TestParityNet:
    """reference vs blas bit-compatibility over the whole kernel table."""

    @needs_blas
    @pytest.mark.parametrize("kernel", sorted(KERNEL_IMPLS))
    def test_blas_matches_reference(self, kernel):
        ref = ReferenceBackend()
        blas = BlasBackend()
        for cfg, structs in _parity_cases(kernel):
            left, right = _case_arrays(kernel, cfg, structs)
            expected = ref.specialize(kernel, cfg).impl(left, right)
            for order in ("C", "F"):
                lo = np.asarray(left, order=order)
                ro = np.asarray(right, order=order)
                got = blas.specialize(kernel, cfg).impl(lo, ro)
                np.testing.assert_allclose(
                    got,
                    expected,
                    rtol=1e-9,
                    atol=1e-9,
                    err_msg=f"{kernel} {cfg} order={order}",
                )

    @needs_blas
    @pytest.mark.parametrize("kernel", sorted(BLAS_LOWERED_KERNELS))
    def test_claimed_kernels_actually_lower(self, kernel):
        blas = BlasBackend()
        for cfg, _ in _parity_cases(kernel):
            lowered = blas.specialize(kernel, cfg)
            assert lowered.routine == BLAS_LOWERED_KERNELS[kernel], (
                f"{kernel} {cfg} lowered to {lowered.routine!r}"
            )

    def test_diagonal_solves_fall_back(self):
        blas = BlasBackend()
        for kernel in ("DIGESV", "DISYSV", "DITRSV", "DIDISV"):
            cfg = KernelCallConfig(
                side="left",
                left_trans=False,
                right_trans=False,
                left_lower=None,
                right_lower=None,
            )
            assert blas.specialize(kernel, cfg).routine == FALLBACK_ROUTINE

    def test_unknown_kernel_falls_back_not_raises(self):
        cfg = KernelCallConfig(
            side="left",
            left_trans=False,
            right_trans=False,
            left_lower=None,
            right_lower=None,
        )
        with pytest.raises(Exception):
            BlasBackend().specialize("NOPE", cfg)  # reference rejects too

    @needs_blas
    def test_gemm_syrk_path_on_aliased_operand(self):
        blas = BlasBackend()
        cfg = KernelCallConfig(
            side="left",
            left_trans=False,
            right_trans=True,
            left_lower=None,
            right_lower=None,
        )
        a = RNG.standard_normal((6, 4))
        got = blas.specialize("GEMM", cfg).impl(a, a)
        np.testing.assert_allclose(got, a @ a.T, rtol=1e-12, atol=1e-12)
        # And the transposed-first flavour (A^T A).
        cfg_t = KernelCallConfig(
            side="left",
            left_trans=True,
            right_trans=False,
            left_lower=None,
            right_lower=None,
        )
        got = blas.specialize("GEMM", cfg_t).impl(a, a)
        np.testing.assert_allclose(got, a.T @ a, rtol=1e-12, atol=1e-12)

    @needs_blas
    def test_singular_coefficient_raises_execution_error(self):
        cfg = KernelCallConfig(
            side="left",
            left_trans=False,
            right_trans=False,
            left_lower=None,
            right_lower=None,
        )
        singular = np.zeros((4, 4))
        rhs = RNG.standard_normal((4, 3))
        with pytest.raises(ExecutionError):
            BlasBackend().specialize("GEGESV", cfg).impl(singular, rhs)
        with pytest.raises(ExecutionError):
            BlasBackend().specialize("POGESV", cfg).impl(singular, rhs)


class TestBackendRegistry:
    def test_get_backend_resolves_names_and_instances(self):
        assert get_backend("reference").name == "reference"
        assert get_backend("blas").name == "blas"
        backend = BlasBackend()
        assert get_backend(backend) is backend

    def test_auto_is_not_a_plan_backend(self):
        with pytest.raises(ExecutionError):
            get_backend("auto")

    def test_unknown_name_rejected(self):
        with pytest.raises(ExecutionError):
            get_backend("cuda")


def _structured_chain() -> Chain:
    from repro.ir.operand import Operand, UnaryOp

    return Chain(
        (
            make_lower("L").as_operand(),
            make_symmetric("S").as_operand(),
            Operand(make_upper("U"), UnaryOp.TRANSPOSE),
            make_general("B").as_operand(),
        )
    )


def _plan_pool(chain: Chain):
    from repro.api import compile_chain

    return compile_chain(
        chain, num_training_instances=50, use_cache=False
    ).variants


class TestPlanBackends:
    @needs_blas
    def test_blas_plan_matches_reference_plan(self):
        chain = _structured_chain()
        variants = _plan_pool(chain)
        q = [9, 9, 9, 9, 6]
        arrays = random_instance_arrays(chain, q, np.random.default_rng(3))
        expected = naive_evaluate(chain, arrays)
        for variant in variants:
            ref = compile_plan(variant, q, backend="reference")
            blas = compile_plan(variant, q, backend="blas")
            out_ref = ref.execute(arrays)
            out_blas = blas.execute(arrays)
            np.testing.assert_allclose(out_blas, out_ref, rtol=1e-9, atol=1e-9)
            np.testing.assert_allclose(out_blas, expected, rtol=1e-7, atol=1e-7)

    def test_plan_records_backend_and_routines(self):
        chain = _structured_chain()
        variant = _plan_pool(chain)[0]
        q = [8, 8, 8, 8, 4]
        ref_plan = compile_plan(variant, q)
        assert ref_plan.backend == "reference"
        assert ref_plan.step_routines == (REFERENCE_ROUTINE,) * len(
            variant.steps
        )
        assert "backend=reference" in ref_plan.describe()
        assert f"-> {REFERENCE_ROUTINE}" in ref_plan.describe()

    @needs_blas
    def test_blas_plan_routines_in_describe(self):
        chain = _structured_chain()
        variant = _plan_pool(chain)[0]
        plan = compile_plan(variant, [8, 8, 8, 8, 4], backend="blas")
        assert plan.backend == "blas"
        assert len(plan.step_routines) == len(variant.steps)
        described = plan.describe()
        for routine in plan.step_routines:
            assert f"-> {routine}" in described

    def test_plan_rejects_auto(self):
        chain = _structured_chain()
        variant = _plan_pool(chain)[0]
        with pytest.raises(ExecutionError):
            compile_plan(variant, [8, 8, 8, 8, 4], backend="auto")


class TestDispatcherBackend:
    def _dispatcher(self, backend="reference", chain=None):
        chain = chain or _structured_chain()
        return chain, Dispatcher(
            chain, _plan_pool(chain), backend=backend
        )

    def test_rejects_unknown_backend(self):
        chain = _structured_chain()
        pool = _plan_pool(chain)
        with pytest.raises(DispatchError):
            Dispatcher(chain, pool, backend="cuda")

    def test_backend_names_constant(self):
        assert BACKEND_NAMES == ("reference", "blas", "c", "auto")

    def test_execution_counters_and_last_time(self):
        chain, dispatcher = self._dispatcher()
        arrays = random_instance_arrays(
            chain, [8, 8, 8, 8, 4], np.random.default_rng(0)
        )
        stats = dispatcher.memo_stats()
        assert stats["backend"] == "reference"
        assert stats["executions"] == {}
        assert stats["last_execute_seconds"] is None
        dispatcher.run(arrays)
        dispatcher.run(arrays)
        stats = dispatcher.memo_stats()
        assert stats["executions"] == {"reference": 2}
        assert stats["last_execute_seconds"] > 0
        assert dispatcher.last_execute_at is not None

    def test_execute_many_counts_per_backend(self):
        chain, dispatcher = self._dispatcher()
        rng = np.random.default_rng(1)
        batch = [
            random_instance_arrays(chain, [8, 8, 8, 8, 4], rng),
            random_instance_arrays(chain, [6, 6, 6, 6, 3], rng),
        ]
        dispatcher.execute_many(batch)
        stats = dispatcher.memo_stats()
        assert stats["executions"] == {"reference": 2}
        assert stats["last_execute_seconds"] > 0

    @needs_blas
    def test_auto_measures_and_caches_winner(self):
        chain, dispatcher = self._dispatcher(backend="auto")
        q = [16, 16, 16, 16, 8]
        arrays = random_instance_arrays(chain, q, np.random.default_rng(2))
        out = dispatcher.run(arrays)
        expected = naive_evaluate(chain, arrays)
        np.testing.assert_allclose(out.result, expected, rtol=1e-7, atol=1e-7)
        entry = dispatcher._memo[tuple(q)]
        assert entry.backend in ("reference", "blas", "c")
        assert entry.bench is not None
        # The c lowering joins the tournament only on hosts that can
        # emit native plans; reference and blas always compete.
        assert set(entry.bench) >= {"reference", "blas"}
        assert set(entry.bench) <= {"reference", "blas", "c"}
        assert all(t > 0 for t in entry.bench.values())
        # The cached winner serves later calls without re-benchmarking.
        bench = entry.bench
        dispatcher.run(arrays)
        assert dispatcher._memo[tuple(q)].bench is bench
        stats = dispatcher.memo_stats()
        assert stats["backend"] == "auto"
        assert sum(stats["executions"].values()) == 2
        assert set(stats["executions"]) == {entry.backend}

    @needs_blas
    def test_backend_setter_recompiles_plans_keeps_decisions(self):
        chain, dispatcher = self._dispatcher()
        q = [8, 8, 8, 8, 4]
        arrays = random_instance_arrays(chain, q, np.random.default_rng(4))
        first = dispatcher.run(arrays)
        assert dispatcher._memo[tuple(q)].plan.backend == "reference"
        dispatcher.backend = "blas"
        assert dispatcher._memo[tuple(q)].plan is None  # decision kept
        second = dispatcher.run(arrays)
        assert dispatcher._memo[tuple(q)].plan.backend == "blas"
        assert second.variant is first.variant
        np.testing.assert_allclose(
            second.result, first.result, rtol=1e-9, atol=1e-9
        )
        # Warm decision: the backend swap must not have cost the memo.
        stats = dispatcher.memo_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1


class TestOptionsPlumbing:
    def test_compile_options_validates_backend(self):
        from repro.compiler.pipeline import CompileOptions

        with pytest.raises(CompilationError):
            CompileOptions(backend="cuda")

    def test_backend_excluded_from_cache_token(self):
        from repro.compiler.pipeline import CompileOptions

        ref = CompileOptions(backend="reference")
        blas = CompileOptions(backend="blas")
        assert ref.cache_token() == blas.cache_token()

    @needs_blas
    def test_compile_chain_backend_flows_to_runtime(self):
        from repro.api import compile_chain
        from repro.compiler.session import CompilerSession

        session = CompilerSession()
        chain = _structured_chain()
        gen_ref = compile_chain(
            chain, num_training_instances=50, session=session
        )
        gen_blas = compile_chain(
            chain, num_training_instances=50, session=session, backend="blas"
        )
        assert gen_ref.dispatcher.backend == "reference"
        assert gen_blas.dispatcher.backend == "blas"
        # Same cache entry despite the different backend (runtime knob).
        assert session.cache_stats().hits >= 1
        assert gen_blas.program.options["backend"] == "blas"

    @needs_blas
    def test_artifact_roundtrip_preserves_backend(self, tmp_path):
        from repro.api import compile_chain, load_program
        from repro.compiler.program import CompiledProgram

        gen = compile_chain(
            _structured_chain(),
            num_training_instances=50,
            backend="blas",
            use_cache=False,
        )
        path = tmp_path / "prog.json"
        gen.save(path)
        loaded = CompiledProgram.load(path)
        assert loaded.options["backend"] == "blas"
        assert loaded.runtime().backend == "blas"
        # Explicit override beats the artifact snapshot.
        assert load_program(path, backend="reference").dispatcher.backend == (
            "reference"
        )

    def test_legacy_artifact_defaults_to_reference(self):
        from repro.compiler.program import CompiledProgram

        gen_chain = _structured_chain()
        program = CompiledProgram.from_artifacts(
            gen_chain, _plan_pool(gen_chain), None
        )
        assert program.runtime().backend == "reference"

    def test_runtime_cache_keyed_on_backend(self):
        from repro.compiler.program import CompiledProgram

        chain = _structured_chain()
        program = CompiledProgram.from_artifacts(chain, _plan_pool(chain), None)
        first = program.runtime()
        assert program.runtime() is first
        other = program.runtime(backend="blas")
        assert other is not first
        assert other.backend == "blas"


class TestServeStats:
    @needs_blas
    def test_stats_expose_backend_executions(self):
        from repro.compiler.pipeline import CompileOptions
        from repro.compiler.session import CompilerSession
        from repro.serve.service import CompileService

        session = CompilerSession(options=CompileOptions(backend="blas"))
        service = CompileService(session, workers=1)
        try:
            source = (
                "Matrix L <LowerTri, NonSingular>;"
                "Matrix B <General, Singular>;"
                "R := L * L^T * B;"
            )
            generated = service.submit(
                source, num_training_instances=50
            ).result(timeout=30)
            handle = generated.program.key
            chain = generated.chain
            arrays = random_instance_arrays(
                chain, [8, 8, 8, 8], np.random.default_rng(0)
            )
            service.execute(handle, arrays)
            stats = service.stats()
            execution = stats["execution"]
            assert execution["backend"] == "blas"
            assert execution["executions"] == {"blas": 1}
            assert execution["last_execute_seconds"] > 0
        finally:
            service.close()


class TestCliBackend:
    @needs_blas
    def test_run_backend_flag_and_routing_output(self, tmp_path, capsys):
        from repro.cli import main

        source = (
            "Matrix L <LowerTri, NonSingular>;"
            "Matrix B <General, Singular>;"
            "R := L * L^T * B;"
        )
        artifact = tmp_path / "prog.json"
        assert (
            main(
                [
                    "compile",
                    "--source",
                    source,
                    "--train",
                    "50",
                    "--backend",
                    "blas",
                    "--output",
                    str(artifact),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(["run", str(artifact), "--sizes", "16,16,16,8"]) == 0
        )
        out = capsys.readouterr().out
        assert "backend=blas" in out
        assert "dtrmm" in out
        # Override back to reference from the command line.
        assert (
            main(
                [
                    "run",
                    str(artifact),
                    "--sizes",
                    "16,16,16,8",
                    "--backend",
                    "reference",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "backend=reference" in out

"""CLI surface of the serving layer: `repro serve`, `repro cache warm`."""

import io
import json

import pytest

from repro.cli import main

SOURCE = (
    "Matrix A <General, Singular>; Matrix B <General, Singular>;"
    " R := A * B;"
)


def run_serve(monkeypatch, capsys, requests, extra_args=()):
    """Drive `repro serve` in stdin/stdout mode; returns (responses, err)."""
    stdin = io.StringIO(
        "".join(json.dumps(request) + "\n" for request in requests)
    )
    monkeypatch.setattr("sys.stdin", stdin)
    assert main(["serve", "--workers", "2", *extra_args]) == 0
    captured = capsys.readouterr()
    responses = [json.loads(line) for line in captured.out.splitlines()]
    return responses, captured.err


class TestServeCommand:
    def test_compile_dispatch_stats_round_trip(self, monkeypatch, capsys):
        responses, _ = run_serve(
            monkeypatch,
            capsys,
            [
                # Default options on both: the dispatch-by-source
                # re-submission must land on the same cache key.
                {"op": "compile", "source": SOURCE, "id": 1},
                {"op": "dispatch", "source": SOURCE, "sizes": [4, 5, 6],
                 "id": 2},
                {"op": "stats", "id": 3},
            ],
        )
        assert [r["id"] for r in responses] == [1, 2, 3]
        assert all(r["ok"] for r in responses)
        assert responses[1]["variant"] in responses[0]["variants"]
        # The dispatch-by-source re-submission was served by the session
        # cache (a hit), not by a second pipeline execution.
        assert responses[2]["service"]["requests"] == 2
        assert responses[2]["service"]["compiled"] == 1
        assert responses[2]["service"]["cache_hits"] == 1
        assert responses[2]["cache"]["misses"] == 1
        assert responses[2]["cache"]["hits"] == 1

    def test_stats_flag_prints_metrics_to_stderr(self, monkeypatch, capsys):
        _, err = run_serve(
            monkeypatch,
            capsys,
            [{"op": "compile", "source": SOURCE,
              "options": {"num_training_instances": 20}}],
            extra_args=["--stats"],
        )
        assert "service:" in err and "coalesce_rate" in err
        assert "cache:" in err

    def test_max_requests_limits_the_stream(self, monkeypatch, capsys):
        responses, _ = run_serve(
            monkeypatch,
            capsys,
            [{"op": "ping"} for _ in range(5)],
            extra_args=["--max-requests", "2"],
        )
        assert len(responses) == 2

    def test_serve_with_cache_dir_warms_on_start(
        self, monkeypatch, capsys, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        main(["compile", "--source", SOURCE, "--train", "20",
              "--cache-dir", cache_dir])
        capsys.readouterr()
        responses, err = run_serve(
            monkeypatch,
            capsys,
            [
                {"op": "compile", "source": SOURCE,
                 "options": {"num_training_instances": 20}, "id": 1},
                {"op": "stats", "id": 2},
            ],
            extra_args=["--cache-dir", cache_dir],
        )
        assert "warmed 1 cache entries" in err
        assert responses[0]["ok"]
        assert responses[1]["warmed"] == 1
        # Warmed into memory: the compile is a pure memory hit.
        assert responses[1]["cache"]["hits"] == 1
        assert responses[1]["cache"]["disk_hits"] == 0

    def test_serve_errors_stay_in_band(self, monkeypatch, capsys):
        responses, _ = run_serve(
            monkeypatch,
            capsys,
            [
                {"op": "compile", "source": "garbage", "id": 1},
                {"op": "nope", "id": 2},
            ],
        )
        assert [r["ok"] for r in responses] == [False, False]


class TestCacheWarmCommand:
    def test_cache_warm_reports_count(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["compile", "--source", SOURCE, "--train", "20",
              "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(["cache", "warm", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "warmed 1 cache entries" in out

    def test_cache_warm_limit(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        second = (
            "Matrix A <General, Singular>; Matrix B <General, Singular>;"
            " Matrix C <General, Singular>; R := A * B * C;"
        )
        main(["compile", "--source", SOURCE, "--train", "20",
              "--cache-dir", cache_dir])
        main(["compile", "--source", second, "--train", "20",
              "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(["cache", "warm", "--cache-dir", cache_dir,
                     "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "warmed 1 cache entries" in out

    def test_cache_warm_empty_dir(self, tmp_path, capsys):
        assert main(["cache", "warm", "--cache-dir",
                     str(tmp_path / "nothing")]) == 0
        out = capsys.readouterr().out
        assert "warmed 0 cache entries" in out


class TestStatsSummaryRendering:
    """`repro stats` human rendering across server protocol revisions."""

    V2_PAYLOAD = {
        # A pre-v3 server: no "obs" key at all (and no scopes/histograms).
        "ok": True,
        "protocol_version": 2,
        "workers": 2,
        "workers_mode": "thread",
        "inflight": 0,
        "registry_entries": 1,
        "service": {
            "requests": 4,
            "compiled": 2,
            "cache_hits": 1,
            "coalesced": 1,
            "rejected": 0,
            "errors": 0,
            "coalesce_rate": 0.25,
            "queue_depth": 0,
            "p50_ms": 1.5,
            "p99_ms": 3.0,
        },
    }

    V3_PAYLOAD = {
        **V2_PAYLOAD,
        "protocol_version": 3,
        "obs": {
            "counters": {"cache.memory.hits": 3},
            "gauges": {},
            "histograms": {
                'runtime.execute_seconds{backend="reference"}': {
                    "count": 7,
                    "p50": 0.0012,
                },
                "malformed.entry": "not a dict",  # must not crash rendering
            },
            "scopes": {
                "runtime": {
                    "dispatchers": 1,
                    "memo_hits": 6,
                    "memo_misses": 1,
                    "memo_evictions": 0,
                    "reselections": 2,
                    "executions": {"reference": 7},
                },
                "calibration": {
                    "entries": 3,
                    "samples": 21,
                    "refreshes": 2,
                    "age_seconds": 4.2,
                },
            },
        },
    }

    def test_v2_payload_renders_without_obs(self, capsys):
        from repro.cli import _print_stats_summary

        _print_stats_summary(self.V2_PAYLOAD)
        out = capsys.readouterr().out
        assert "protocol v2" in out
        assert "service: requests=4" in out
        # Degrades gracefully: no obs-derived sections, no crash.
        assert "runtime:" not in out
        assert "calibration:" not in out

    def test_v3_payload_renders_runtime_and_calibration(self, capsys):
        from repro.cli import _print_stats_summary

        _print_stats_summary(self.V3_PAYLOAD)
        out = capsys.readouterr().out
        assert "protocol v3" in out
        assert "cache:   cache.memory.hits=3" in out
        assert "reselections=2" in out
        assert "calibration: entries=3  samples=21  refreshes=2  age=4.2s" in out
        assert 'backend="reference"' in out

    def test_never_refreshed_calibration_renders_never(self, capsys):
        from repro.cli import _print_stats_summary

        payload = json.loads(json.dumps(self.V3_PAYLOAD))
        payload["obs"]["scopes"]["calibration"]["age_seconds"] = None
        _print_stats_summary(payload)
        out = capsys.readouterr().out
        assert "age=never" in out

    def test_v4_payload_renders_wire_and_connections(self, capsys):
        from repro.cli import _print_stats_summary

        payload = json.loads(json.dumps(self.V3_PAYLOAD))
        payload["protocol_version"] = 4
        payload["obs"]["counters"].update(
            {
                "serve.wire_bytes{direction=in,transport=async}": 2048,
                "serve.wire_bytes{direction=out,transport=async}": 4096,
            }
        )
        payload["obs"]["gauges"][
            "serve.connections{transport=async}"
        ] = 3.0
        _print_stats_summary(payload)
        out = capsys.readouterr().out
        assert (
            "wire:    serve.wire_bytes{direction=in,transport=async}=2048"
            in out
        )
        assert "serve.wire_bytes{direction=out,transport=async}=4096" in out
        assert "conns:   serve.connections{transport=async}=3" in out

    def test_live_stats_carry_wire_counters(self, monkeypatch, capsys):
        """End-to-end: serve traffic surfaces the serve.wire_bytes
        counters and serve.connections gauge in the stats op."""
        responses, _ = run_serve(
            monkeypatch,
            capsys,
            [{"op": "ping", "id": 1}, {"op": "stats", "id": 2}],
        )
        obs = responses[1]["obs"]
        wire_in = {
            key: value
            for key, value in obs["counters"].items()
            if key.startswith("serve.wire_bytes{direction=in")
        }
        assert wire_in and all(v > 0 for v in wire_in.values())
        assert any(
            key.startswith("serve.connections") for key in obs["gauges"]
        )


class TestServeProcessMode:
    def test_process_mode_serves_compile_and_execute(self, monkeypatch, capsys):
        responses, err = run_serve(
            monkeypatch,
            capsys,
            [
                {"op": "compile", "source": SOURCE,
                 "options": {"num_training_instances": 20}, "id": 1},
                {"op": "execute", "source": SOURCE,
                 "arrays": [[[1.0, 2.0], [3.0, 4.0]], [[5.0], [6.0]]],
                 "id": 2},
                {"op": "stats", "id": 3},
            ],
            extra_args=["--workers-mode", "process"],
        )
        assert "process pool ready" in err
        assert all(r["ok"] for r in responses), responses
        assert responses[2]["workers_mode"] == "process"
        # [[1,2],[3,4]] @ [[5],[6]] = [[17],[39]]
        assert responses[1]["result"] == [[17.0], [39.0]]

"""Integration tests: every variant computes the same value as the oracle."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.ir.chain import Chain
from repro.compiler.executor import (
    execute_variant,
    expected_stored_shapes,
    infer_sizes,
    naive_evaluate,
    random_instance_arrays,
    random_matrix,
)
from repro.compiler.selection import all_variants
from repro.compiler.parenthesization import left_to_right_tree
from repro.compiler.variant import build_variant
from repro.ir.features import Property, Structure

from conftest import (
    general_chain,
    make_general,
    make_lower,
    make_orthogonal,
    make_symmetric,
    random_option_chain,
    small_sizes_for,
)


def assert_matches_oracle(chain, sizes, rng, rtol=1e-7):
    arrays = random_instance_arrays(chain, sizes, rng)
    expected = naive_evaluate(chain, arrays)
    scale = max(1.0, float(np.abs(expected).max()))
    for variant in all_variants(chain):
        got = execute_variant(variant, arrays)
        assert got.shape == expected.shape
        np.testing.assert_allclose(got / scale, expected / scale, atol=rtol)


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_option_chains(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        chain = random_option_chain(n, rng)
        sizes = small_sizes_for(chain, rng)
        assert_matches_oracle(chain, sizes, rng)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_chains_with_transposes(self, seed):
        rng = np.random.default_rng(1000 + seed)
        n = int(rng.integers(2, 5))
        chain = random_option_chain(n, rng, allow_transpose=True)
        sizes = small_sizes_for(chain, rng)
        assert_matches_oracle(chain, sizes, rng)

    def test_orthogonal_rewrites(self):
        q_mat = make_orthogonal("Q")
        g = make_general("G")
        chain = Chain((q_mat.inv, g.as_operand(), q_mat.T))
        rng = np.random.default_rng(5)
        # Orthogonal matrices must share the same array for Q^-1 and Q^T to
        # be consistent; use one sample and duplicate it.
        n = 6
        q_arr = random_matrix(Structure.GENERAL, Property.ORTHOGONAL, n, n, rng)
        g_arr = rng.standard_normal((n, n))
        arrays = [q_arr, g_arr, q_arr]
        expected = naive_evaluate(chain, arrays)
        for variant in all_variants(chain):
            got = execute_variant(variant, arrays)
            np.testing.assert_allclose(got, expected, atol=1e-8)

    def test_pending_inverse_to_end(self):
        chain = Chain(
            (make_general("A", invertible=True).inv,
             make_general("B", invertible=True).inv)
        )
        rng = np.random.default_rng(6)
        arrays = random_instance_arrays(chain, (7, 7, 7), rng)
        expected = naive_evaluate(chain, arrays)
        variant = build_variant(chain, left_to_right_tree(2))
        np.testing.assert_allclose(
            execute_variant(variant, arrays), expected, atol=1e-8
        )

    def test_pending_transpose_to_end(self):
        chain = Chain((make_lower("L").as_operand(), make_general("G").T))
        rng = np.random.default_rng(7)
        arrays = random_instance_arrays(chain, (5, 5, 8), rng)
        expected = naive_evaluate(chain, arrays)
        variant = build_variant(chain, left_to_right_tree(2))
        assert "TRANSPOSE" in variant.kernel_names
        np.testing.assert_allclose(
            execute_variant(variant, arrays), expected, atol=1e-9
        )

    def test_single_matrix_chains(self):
        rng = np.random.default_rng(8)
        for operand, sizes in [
            (make_general("A").as_operand(), (4, 6)),
            (make_general("A").T, (4, 6)),
            (make_general("A", invertible=True).inv, (5, 5)),
            (make_lower("L").inv, (5, 5)),
            (make_symmetric("P", spd=True).inv, (5, 5)),
        ]:
            chain = Chain((operand,))
            arrays = random_instance_arrays(chain, sizes, rng)
            expected = naive_evaluate(chain, arrays)
            from repro.compiler.parenthesization import leaf

            variant = build_variant(chain, leaf(0))
            np.testing.assert_allclose(
                execute_variant(variant, arrays), expected, atol=1e-8
            )


class TestShapeHandling:
    def test_expected_stored_shapes_transposed(self):
        chain = Chain((make_general("A").T, make_general("B").as_operand()))
        shapes = expected_stored_shapes(chain, (3, 4, 5))
        assert shapes == [(4, 3), (4, 5)]

    def test_infer_sizes_roundtrip(self):
        rng = np.random.default_rng(9)
        chain = random_option_chain(4, rng)
        sizes = small_sizes_for(chain, rng)
        arrays = random_instance_arrays(chain, sizes, rng)
        assert infer_sizes(chain, arrays) == tuple(sizes)

    def test_infer_sizes_rejects_mismatch(self):
        chain = general_chain(2)
        a = np.zeros((3, 4))
        b = np.zeros((5, 6))  # inner dimension mismatch
        with pytest.raises(ExecutionError):
            infer_sizes(chain, [a, b])

    def test_infer_sizes_rejects_wrong_count(self):
        chain = general_chain(2)
        with pytest.raises(ExecutionError):
            infer_sizes(chain, [np.zeros((3, 4))])

    def test_execute_rejects_bad_stored_shape(self):
        chain = Chain((make_general("A").T, make_general("B").as_operand()))
        variant = build_variant(chain, left_to_right_tree(2))
        # Operand 0 is transposed: stored shape must be (q1, q0).
        bad = [np.zeros((3, 4)), np.zeros((4, 5))]
        with pytest.raises(ExecutionError):
            execute_variant(variant, bad)


class TestRandomMatrix:
    def test_features_respected(self, rng):
        n = 8
        sym = random_matrix(Structure.SYMMETRIC, Property.NON_SINGULAR, n, n, rng)
        np.testing.assert_allclose(sym, sym.T)
        spd = random_matrix(Structure.SYMMETRIC, Property.SPD, n, n, rng)
        assert np.linalg.eigvalsh(spd).min() > 0
        low = random_matrix(
            Structure.LOWER_TRIANGULAR, Property.NON_SINGULAR, n, n, rng
        )
        assert np.allclose(np.triu(low, 1), 0)
        assert np.abs(np.diag(low)).min() >= 1.0
        orth = random_matrix(Structure.GENERAL, Property.ORTHOGONAL, n, n, rng)
        np.testing.assert_allclose(orth @ orth.T, np.eye(n), atol=1e-10)
        sym_orth = random_matrix(Structure.SYMMETRIC, Property.ORTHOGONAL, n, n, rng)
        np.testing.assert_allclose(sym_orth, sym_orth.T)
        np.testing.assert_allclose(sym_orth @ sym_orth, np.eye(n), atol=1e-10)

    def test_rectangular_only_for_general_singular(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ExecutionError):
            random_matrix(Structure.SYMMETRIC, Property.NON_SINGULAR, 3, 4, rng)

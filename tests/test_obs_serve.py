"""The observability surface of the serve layer.

Covers the ServiceMetrics migration onto repro.obs (satellite: snapshot
keys unchanged), the unified ``stats`` snapshot and ``metrics`` op, and
trace-context propagation across ``workers_mode="process"`` (a worker
compile appears as a child span in the parent's trace and round-trips
through the JSON-lines exporter).
"""

import pytest

from conftest import general_chain

from repro.obs import get_registry, read_trace_file
from repro.obs import trace as obs_trace
from repro.serve.frontend import PROTOCOL_VERSION, handle_request
from repro.serve.metrics import ServiceMetrics, percentile
from repro.serve.service import CompileService


@pytest.fixture(autouse=True)
def clean_tracing():
    obs_trace.disable()
    obs_trace.drain()
    yield
    obs_trace.disable()
    obs_trace.drain()


class _ReferenceMetrics:
    """The pre-registry ServiceMetrics logic, inlined as the equivalence
    oracle: plain ints plus a list-backed latency window."""

    def __init__(self, window):
        self.requests = self.compiled = self.cache_hits = 0
        self.coalesced = self.rejected = self.errors = 0
        self.window = window
        self.latencies = []

    def record(self, outcome):
        setattr(self, outcome, getattr(self, outcome) + 1)

    def record_latency(self, seconds):
        self.latencies.append(seconds)
        del self.latencies[: -self.window]

    def snapshot(self):
        accepted = self.requests - self.rejected
        rate = self.coalesced / accepted if accepted else 0.0
        return {
            "requests": self.requests,
            "compiled": self.compiled,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "errors": self.errors,
            "coalesce_rate": round(rate, 4),
            "queue_depth": 0,
            "latency_samples": len(self.latencies),
            "p50_ms": round(1e3 * percentile(self.latencies, 50), 3),
            "p99_ms": round(1e3 * percentile(self.latencies, 99), 3),
        }


class TestServiceMetricsMigration:
    def test_snapshot_equivalent_to_reference(self):
        window = 8
        migrated = ServiceMetrics(window=window)
        reference = _ReferenceMetrics(window)
        script = (
            [("requests", None)] * 10
            + [("compiled", 0.004), ("compiled", 0.001), ("cache_hits", 0.0005)]
            + [("coalesced", 0.0002)] * 4
            + [("rejected", None), ("errors", 0.25)]
            + [("compiled", t / 1000) for t in range(1, 12)]  # overflow the window
        )
        for outcome, latency in script:
            record = {
                "requests": migrated.record_request,
                "compiled": migrated.record_compiled,
                "cache_hits": migrated.record_cache_hit,
                "coalesced": migrated.record_coalesced,
                "rejected": migrated.record_rejected,
                "errors": migrated.record_error,
            }[outcome]
            record()
            reference.record(outcome)
            if latency is not None:
                migrated.record_latency(latency)
                reference.record_latency(latency)
        assert migrated.snapshot() == reference.snapshot()

    def test_counters_readable_as_attributes(self):
        metrics = ServiceMetrics()
        metrics.record_request()
        metrics.record_coalesced()
        assert metrics.requests == 1
        assert metrics.coalesced == 1
        assert metrics.compiled == 0

    def test_queue_depth_probe(self):
        metrics = ServiceMetrics()
        assert metrics.queue_depth() == 0
        metrics.queue_depth_probe = lambda: 5
        assert metrics.snapshot()["queue_depth"] == 5

    def test_str_format_is_stable(self):
        metrics = ServiceMetrics()
        metrics.record_request()
        metrics.record_compiled()
        metrics.record_latency(0.002)
        text = str(metrics)
        assert "requests=1 compiled=1" in text
        assert "coalesce_rate=0.0%" in text
        assert "p50=2.00ms" in text

    def test_registered_in_global_scope(self):
        metrics = ServiceMetrics()
        metrics.record_request()
        scopes = get_registry().snapshot()["scopes"]
        assert metrics.scope in scopes
        assert scopes[metrics.scope]["requests"] == 1


@pytest.fixture(scope="module")
def thread_service():
    service = CompileService(workers=2, warm=False)
    yield service
    service.close()


class TestUnifiedStats:
    def test_stats_carries_obs_snapshot(self, thread_service):
        chain = general_chain(3)
        thread_service.compile(chain, size_range=(10, 40), timeout=120)
        stats = thread_service.stats()
        obs = stats["obs"]
        assert set(obs) == {"counters", "gauges", "histograms", "scopes"}
        # the service's own counters surface through its collector scope
        scope = thread_service.metrics.scope
        assert obs["scopes"][scope]["requests"] >= 1
        # pipeline pass timings recorded per stage
        stages = [
            key
            for key in obs["histograms"]
            if key.startswith("compiler.pass_seconds")
        ]
        assert stages, obs["histograms"].keys()
        # runtime collector scope is always registered
        assert "runtime" in obs["scopes"]
        assert "memo_evictions" in obs["scopes"]["runtime"]

    def test_metrics_op_renders_prometheus(self, thread_service):
        response = handle_request(thread_service, {"op": "metrics", "id": 1})
        assert response["ok"] is True
        assert response["id"] == 1
        assert "# TYPE" in response["text"]
        assert "repro_" in response["text"]

    def test_protocol_version_bumped(self, thread_service):
        response = handle_request(thread_service, {"op": "stats", "id": 2})
        assert response["protocol_version"] == PROTOCOL_VERSION
        assert PROTOCOL_VERSION >= 3
        assert "obs" in response

    def test_unknown_op_lists_metrics(self, thread_service):
        response = handle_request(thread_service, {"op": "bogus"})
        assert response["ok"] is False
        assert "metrics" in response["error"]


@pytest.fixture(scope="module")
def process_service():
    service = CompileService(workers=2, workers_mode="process", warm=False)
    service.prestart()
    yield service
    service.close()


class TestProcessTracePropagation:
    def test_worker_compile_is_a_child_span_of_the_parent_trace(
        self, process_service, tmp_path
    ):
        chain = general_chain(4)
        obs_trace.enable()
        trace_file = tmp_path / "trace.jsonl"
        from repro.obs import JsonLinesExporter

        with JsonLinesExporter(trace_file):
            with obs_trace.capture() as spans:
                process_service.compile(
                    chain, size_range=(10, 40), use_cache=False, timeout=300
                )
        obs_trace.disable()

        by_name = {}
        for item in spans:
            by_name.setdefault(item.name, []).append(item)
        assert "serve.request" in by_name
        assert "procpool.compile" in by_name
        request_span = by_name["serve.request"][0]
        worker_span = by_name["procpool.compile"][0]
        # one trace across the process boundary
        assert worker_span.trace_id == request_span.trace_id
        # ...and genuinely from another process
        assert worker_span.process != request_span.process
        assert worker_span.attributes["pid"] == worker_span.process
        # the worker span hangs off the parent's request span subtree:
        # walk parents within the captured set back to serve.request
        ids = {item.span_id: item for item in spans}
        node = worker_span
        seen = set()
        while node.parent_id in ids and node.span_id not in seen:
            seen.add(node.span_id)
            node = ids[node.parent_id]
        assert node.trace_id == request_span.trace_id

        # satellite: spans round-trip through the JSON-lines exporter.
        # (The file also holds front-pass spans rooted on the submitting
        # thread outside serve.request, so filter to this trace.)
        records = [r for r in read_trace_file(trace_file) if r["kind"] == "span"]
        in_trace = [r for r in records if r["trace_id"] == request_span.trace_id]
        names = {r["name"] for r in in_trace}
        assert {"serve.request", "procpool.compile"} <= names
        worker_record = next(r for r in in_trace if r["name"] == "procpool.compile")
        assert worker_record["span_id"] == worker_span.span_id
        assert worker_record["attributes"]["pid"] == worker_span.process

    def test_untraced_process_compile_stays_plain(self, process_service):
        chain = general_chain(3)
        assert not obs_trace.enabled()
        generated = process_service.compile(
            chain, size_range=(10, 40), use_cache=False, timeout=300
        )
        assert generated.to_program() is not None
        assert obs_trace.drain() == []


class TestRuntimeScope:
    def test_dispatcher_metrics_flow_into_runtime_scope(self):
        import numpy as np

        from repro.compiler.selection import all_variants
        from repro.runtime import Dispatcher, random_instance_arrays

        chain = general_chain(3)
        dispatcher = Dispatcher(chain, all_variants(chain))
        rng = np.random.default_rng(7)
        arrays = random_instance_arrays(chain, (10, 10, 10, 10), rng)
        dispatcher(*arrays)
        dispatcher(*arrays)
        snap = get_registry().snapshot()
        runtime = snap["scopes"]["runtime"]
        assert runtime["dispatchers"] >= 1
        assert runtime["memo_entries"] >= 1
        assert "memo_evictions" in runtime
        exec_keys = [
            key for key in snap["histograms"] if key.startswith("runtime.execute_seconds")
        ]
        assert exec_keys

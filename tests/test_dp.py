"""Tests for the generalized-matrix-chain dynamic program."""

import numpy as np
import pytest

from repro.ir.chain import Chain
from repro.compiler.dp import (
    dp_optimal_cost,
    dp_optimal_tree,
    dp_plan_variants,
    dp_seed_trees,
)
from repro.compiler.selection import all_variants, optimal_cost
from repro.compiler.variant import build_variant
from repro.experiments.sampling import sample_instances, sample_shapes

from conftest import general_chain, make_general, make_lower


class TestAgainstEnumeration:
    def test_standard_chain_matches_classic_mcp(self):
        # The classic CLRS example: dimensions 30x35, 35x15, 15x5, 5x10,
        # 10x20, 20x25 -> 15125 scalar multiplications (30250 FLOPs).
        chain = general_chain(6)
        q = (30, 35, 15, 5, 10, 20, 25)
        assert dp_optimal_cost(chain, q) == 2 * 15125
        assert optimal_cost(chain, q) == 2 * 15125

    @pytest.mark.parametrize("seed", range(4))
    def test_never_worse_than_enumeration(self, seed):
        rng = np.random.default_rng(seed)
        for chain in sample_shapes(5, 3, rng, rectangular_probability=0.5):
            for q in sample_instances(chain, 10, rng, low=2, high=200):
                dp = dp_optimal_cost(chain, tuple(q))
                enum = optimal_cost(chain, tuple(q))
                assert dp <= enum * (1 + 1e-9) + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_usually_equal_to_enumeration(self, seed):
        # The DP explores kernel choices beyond the per-parenthesization
        # heuristic, so it can only be equal or better; on standard and
        # mildly structured chains it coincides.
        rng = np.random.default_rng(100 + seed)
        chain = general_chain(5)
        for q in sample_instances(chain, 10, rng, low=2, high=300):
            assert dp_optimal_cost(chain, tuple(q)) == pytest.approx(
                optimal_cost(chain, tuple(q))
            )


class TestDegenerateChains:
    def test_single_matrix(self):
        chain = Chain((make_general("A").as_operand(),))
        assert dp_optimal_cost(chain, (3, 7)) == 0.0

    def test_single_inverted_matrix(self):
        chain = Chain((make_general("A", invertible=True).inv,))
        assert dp_optimal_cost(chain, (5, 5)) == 2 * 5**3

    def test_two_matrices(self):
        chain = general_chain(2)
        assert dp_optimal_cost(chain, (2, 3, 4)) == 2 * 2 * 3 * 4

    def test_validates_sizes(self):
        chain = Chain((make_lower("L").as_operand(),))
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            dp_optimal_cost(chain, (3, 4))


class TestStructuredChains:
    def test_triangular_chain_uses_cheap_kernels(self):
        # L1 L2 with equal triangularity costs m^3/3 via TRTRMM.
        chain = Chain((make_lower("L1").as_operand(), make_lower("L2").as_operand()))
        m = 9
        assert dp_optimal_cost(chain, (m, m, m)) == pytest.approx(m**3 / 3)

    def test_paper_example_cost(self):
        from conftest import make_general, make_lower

        chain = Chain(
            (
                make_lower("L1").as_operand(),
                make_general("G2", invertible=True).inv,
                make_general("G3").as_operand(),
            )
        )
        m, n = 12, 40
        # Optimum is min of the two parenthesizations' variants.
        expected = min(
            5 / 3 * m**3 + 2 * m * m * n,      # (L1 G2^-1) G3
            2 / 3 * m**3 + 2 * m * m * n + m * m * n,  # L1 (G2^-1 G3)
        )
        assert dp_optimal_cost(chain, (m, m, m, n)) == pytest.approx(expected)


class TestPlanExtraction:
    def test_optimal_tree_spans_the_chain(self):
        chain = general_chain(6)
        q = (30, 35, 15, 5, 10, 20, 25)
        tree = dp_optimal_tree(chain, q)
        assert (tree.lo, tree.hi) == (0, 5)
        assert len(list(tree.internal_nodes())) == 5

    def test_optimal_tree_variant_achieves_classic_optimum(self):
        # On a standard chain (no features) the Section IV construction on
        # the DP-optimal tree reproduces the DP cost exactly.
        chain = general_chain(6)
        q = (30, 35, 15, 5, 10, 20, 25)
        variant = build_variant(chain, dp_optimal_tree(chain, q))
        assert variant.flop_cost(q) == pytest.approx(dp_optimal_cost(chain, q))

    def test_optimal_tree_variant_never_beats_dp(self):
        rng = np.random.default_rng(3)
        for chain in sample_shapes(5, 4, rng, rectangular_probability=0.5):
            for q in sample_instances(chain, 5, rng, low=2, high=200):
                q = tuple(q)
                variant = build_variant(chain, dp_optimal_tree(chain, q))
                assert variant.flop_cost(q) >= dp_optimal_cost(chain, q) - 1e-9

    def test_single_matrix_tree_is_a_leaf(self):
        chain = Chain((make_general("A").as_operand(),))
        tree = dp_optimal_tree(chain, (7, 9))
        assert tree.is_leaf and (tree.lo, tree.hi) == (0, 0)

    def test_seed_trees_dedupe_and_bound(self):
        chain = general_chain(5)
        rng = np.random.default_rng(11)
        instances = sample_instances(chain, 40, rng, low=2, high=1000)
        trees = dp_seed_trees(chain, instances)
        keys = {str(t) for t in trees}
        assert len(keys) == len(trees) >= 1
        capped = dp_seed_trees(chain, instances, max_seeds=4)
        assert len(capped) <= 4
        # Capped seeds are a subset of the full run's distinct trees.
        assert {str(t) for t in capped} <= keys | {
            str(dp_optimal_tree(chain, tuple(q))) for q in instances
        }

    def test_seed_trees_empty_instances(self):
        chain = general_chain(4)
        assert dp_seed_trees(chain, np.empty((0, 5))) == []

    def test_plan_variants_are_named_and_distinct(self):
        chain = general_chain(5)
        rng = np.random.default_rng(5)
        instances = sample_instances(chain, 30, rng, low=2, high=1000)
        variants = dp_plan_variants(chain, instances)
        assert [v.name for v in variants] == [
            f"D{i}" for i in range(len(variants))
        ]
        signatures = {v.signature() for v in variants}
        assert len(signatures) == len(variants)
        for variant in variants:
            assert variant.tree is not None

"""Tests for the generalized-matrix-chain dynamic program."""

import numpy as np
import pytest

from repro.ir.chain import Chain
from repro.compiler.dp import dp_optimal_cost
from repro.compiler.selection import all_variants, optimal_cost
from repro.experiments.sampling import sample_instances, sample_shapes

from conftest import general_chain, make_general, make_lower


class TestAgainstEnumeration:
    def test_standard_chain_matches_classic_mcp(self):
        # The classic CLRS example: dimensions 30x35, 35x15, 15x5, 5x10,
        # 10x20, 20x25 -> 15125 scalar multiplications (30250 FLOPs).
        chain = general_chain(6)
        q = (30, 35, 15, 5, 10, 20, 25)
        assert dp_optimal_cost(chain, q) == 2 * 15125
        assert optimal_cost(chain, q) == 2 * 15125

    @pytest.mark.parametrize("seed", range(4))
    def test_never_worse_than_enumeration(self, seed):
        rng = np.random.default_rng(seed)
        for chain in sample_shapes(5, 3, rng, rectangular_probability=0.5):
            for q in sample_instances(chain, 10, rng, low=2, high=200):
                dp = dp_optimal_cost(chain, tuple(q))
                enum = optimal_cost(chain, tuple(q))
                assert dp <= enum * (1 + 1e-9) + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_usually_equal_to_enumeration(self, seed):
        # The DP explores kernel choices beyond the per-parenthesization
        # heuristic, so it can only be equal or better; on standard and
        # mildly structured chains it coincides.
        rng = np.random.default_rng(100 + seed)
        chain = general_chain(5)
        for q in sample_instances(chain, 10, rng, low=2, high=300):
            assert dp_optimal_cost(chain, tuple(q)) == pytest.approx(
                optimal_cost(chain, tuple(q))
            )


class TestDegenerateChains:
    def test_single_matrix(self):
        chain = Chain((make_general("A").as_operand(),))
        assert dp_optimal_cost(chain, (3, 7)) == 0.0

    def test_single_inverted_matrix(self):
        chain = Chain((make_general("A", invertible=True).inv,))
        assert dp_optimal_cost(chain, (5, 5)) == 2 * 5**3

    def test_two_matrices(self):
        chain = general_chain(2)
        assert dp_optimal_cost(chain, (2, 3, 4)) == 2 * 2 * 3 * 4

    def test_validates_sizes(self):
        chain = Chain((make_lower("L").as_operand(),))
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            dp_optimal_cost(chain, (3, 4))


class TestStructuredChains:
    def test_triangular_chain_uses_cheap_kernels(self):
        # L1 L2 with equal triangularity costs m^3/3 via TRTRMM.
        chain = Chain((make_lower("L1").as_operand(), make_lower("L2").as_operand()))
        m = 9
        assert dp_optimal_cost(chain, (m, m, m)) == pytest.approx(m**3 / 3)

    def test_paper_example_cost(self):
        from conftest import make_general, make_lower

        chain = Chain(
            (
                make_lower("L1").as_operand(),
                make_general("G2", invertible=True).inv,
                make_general("G3").as_operand(),
            )
        )
        m, n = 12, 40
        # Optimum is min of the two parenthesizations' variants.
        expected = min(
            5 / 3 * m**3 + 2 * m * m * n,      # (L1 G2^-1) G3
            2 / 3 * m**3 + 2 * m * m * n + m * m * n,  # L1 (G2^-1 G3)
        )
        assert dp_optimal_cost(chain, (m, m, m, n)) == pytest.approx(expected)

"""The batched FLOP cost-matrix construction matches per-variant evaluation."""

import numpy as np
import pytest

from repro.compiler.selection import CostMatrix, all_variants, flop_cost_matrix
from repro.experiments.sampling import sample_instances, sample_shapes

from conftest import general_chain, make_general, make_lower, random_option_chain


def reference_costs(variants, instances):
    return np.stack([v.flop_cost_many(instances) for v in variants])


class TestBatchedCostMatrix:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_matches_per_variant_evaluation(self, n, rng):
        chain = general_chain(n)
        variants = all_variants(chain)
        instances = sample_instances(chain, 64, rng)
        batched = flop_cost_matrix(variants, instances)
        np.testing.assert_allclose(
            batched, reference_costs(variants, np.asarray(instances, float))
        )

    def test_matches_on_structured_chains(self, rng):
        for _ in range(5):
            chain = random_option_chain(5, rng, allow_transpose=True)
            variants = all_variants(chain)
            instances = sample_instances(chain, 40, rng)
            np.testing.assert_allclose(
                flop_cost_matrix(variants, instances),
                reference_costs(variants, np.asarray(instances, float)),
            )

    def test_small_term_blocks_chunk_correctly(self, rng):
        chain = make_general("A") * make_lower("L").inv * make_general("B")
        variants = all_variants(chain)
        instances = sample_instances(chain, 16, rng)
        full = flop_cost_matrix(variants, instances)
        chunked = flop_cost_matrix(variants, instances, term_block=2)
        np.testing.assert_allclose(full, chunked)

    def test_cost_matrix_default_uses_batched_path(self, rng):
        chain = general_chain(4)
        variants = all_variants(chain)
        instances = sample_instances(chain, 32, rng)
        matrix = CostMatrix(variants, instances)
        np.testing.assert_allclose(
            matrix.costs, reference_costs(variants, matrix.instances)
        )
        np.testing.assert_allclose(
            matrix.optimal, matrix.costs.min(axis=0)
        )

    def test_custom_evaluator_path_unchanged(self, rng):
        chain = general_chain(3)
        variants = all_variants(chain)
        instances = sample_instances(chain, 8, rng)
        matrix = CostMatrix(
            variants,
            instances,
            evaluator=lambda v, q: np.full(q.shape[0], float(len(v.steps))),
        )
        assert np.all(matrix.costs == len(variants[0].steps))

    def test_fixup_costs_included(self, rng):
        # An inverted final result carries fix-up terms; the batched path
        # must charge them identically.
        lower = make_lower("L")
        chain = lower.inv * make_lower("K").inv
        variants = all_variants(chain)
        instances = sample_instances(chain, 8, rng)
        np.testing.assert_allclose(
            flop_cost_matrix(variants, instances),
            reference_costs(variants, np.asarray(instances, float)),
        )

    def test_empty_variants(self):
        costs = flop_cost_matrix([], np.ones((5, 3)))
        assert costs.shape == (0, 5)


class TestDegenerateInputs:
    """Empty variant lists and zero-instance arrays return shaped zeros.

    Regression guard: the broadcast-and-accumulate sweep must never see a
    zero-length axis (some numpy versions refuse to broadcast a size-1
    dimension to 0), and a 1-D array must fail loudly instead of indexing
    ``shape[1]``.
    """

    def test_zero_instances_well_shaped(self):
        chain = general_chain(4)
        variants = all_variants(chain)
        costs = flop_cost_matrix(variants, np.empty((0, 5)))
        assert costs.shape == (len(variants), 0)

    def test_empty_variants_well_shaped(self, rng):
        chain = general_chain(4)
        instances = sample_instances(chain, 7, rng)
        costs = flop_cost_matrix([], instances)
        assert costs.shape == (0, 7)

    def test_both_empty_well_shaped(self):
        assert flop_cost_matrix([], np.empty((0, 5))).shape == (0, 0)

    def test_one_dimensional_input_rejected(self):
        chain = general_chain(4)
        with pytest.raises(ValueError, match="2-D"):
            flop_cost_matrix(all_variants(chain), np.empty((0,)))

    def test_zero_instance_cost_matrix_object(self):
        # The CostMatrix wrapper stays consistent on an empty instance set.
        chain = general_chain(3)
        matrix = CostMatrix(all_variants(chain), np.empty((0, 4)))
        assert matrix.num_instances == 0
        assert matrix.costs.shape == (len(matrix.variants), 0)
        assert matrix.ratios([0]).shape == (0,)


class TestTermStack:
    """The flatten-once/evaluate-many split behind the dispatcher hot path."""

    def test_small_and_blocked_paths_agree(self, rng, monkeypatch):
        from repro.compiler import selection
        from repro.compiler.selection import (
            evaluate_cost_terms,
            flatten_cost_terms,
        )

        chain = random_option_chain(6, rng)
        variants = all_variants(chain)
        instances = sample_instances(chain, 30, rng)
        stack = flatten_cost_terms(variants, chain.n + 1)
        small = evaluate_cost_terms(stack, len(variants), instances)
        # Force the masked block sweep onto the same data (threshold 0
        # disables the direct-pow path; a tiny term_block chunks it).
        monkeypatch.setattr(selection, "DIRECT_EVAL_LIMIT", 0)
        blocked = evaluate_cost_terms(
            stack, len(variants), instances, term_block=3
        )
        np.testing.assert_allclose(small, blocked)
        for i, variant in enumerate(variants):
            np.testing.assert_allclose(
                small[i], variant.flop_cost_many(instances)
            )

    def test_empty_stack_evaluates_to_zeros(self):
        from repro.compiler.selection import (
            evaluate_cost_terms,
            flatten_cost_terms,
        )

        stack = flatten_cost_terms([], 4)
        costs = evaluate_cost_terms(stack, 0, np.zeros((5, 4)))
        assert costs.shape == (0, 5)

    def test_dispatcher_caches_the_stack(self, rng):
        from repro.compiler.dispatch import Dispatcher

        chain = general_chain(4)
        dispatcher = Dispatcher(chain, all_variants(chain))
        assert dispatcher._term_stack is None
        dispatcher.select((4, 5, 6, 7, 8))
        stack = dispatcher._term_stack
        assert stack is not None
        dispatcher.select((8, 7, 6, 5, 4))
        assert dispatcher._term_stack is stack  # built once, reused

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir.chain import Chain
from repro.ir.features import Property, Structure
from repro.ir.matrix import Matrix
from repro.ir.operand import Operand, UnaryOp
from repro.experiments.sampling import (
    MATRIX_OPTIONS,
    sample_instances,
    sample_shapes,
    shape_from_options,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_general(name: str = "G", invertible: bool = False) -> Matrix:
    prop = Property.NON_SINGULAR if invertible else Property.SINGULAR
    return Matrix(name, Structure.GENERAL, prop)


def make_lower(name: str = "L", invertible: bool = True) -> Matrix:
    prop = Property.NON_SINGULAR if invertible else Property.SINGULAR
    return Matrix(name, Structure.LOWER_TRIANGULAR, prop)


def make_upper(name: str = "U", invertible: bool = True) -> Matrix:
    prop = Property.NON_SINGULAR if invertible else Property.SINGULAR
    return Matrix(name, Structure.UPPER_TRIANGULAR, prop)


def make_symmetric(name: str = "S", spd: bool = False) -> Matrix:
    prop = Property.SPD if spd else Property.NON_SINGULAR
    return Matrix(name, Structure.SYMMETRIC, prop)


def make_orthogonal(name: str = "Q") -> Matrix:
    return Matrix(name, Structure.GENERAL, Property.ORTHOGONAL)


def general_chain(n: int) -> Chain:
    """A standard matrix chain of ``n`` general matrices."""
    return Chain(
        tuple(Matrix(f"G{i + 1}").as_operand() for i in range(n))
    )


def random_option_chain(
    n: int, rng: np.random.Generator, allow_transpose: bool = False
) -> Chain:
    """Random chain from the experiment option space (optionally with ^T)."""
    chains = sample_shapes(n, 1, rng, rectangular_probability=0.4)
    chain = chains[0]
    if not allow_transpose:
        return chain
    operands = []
    for operand in chain:
        if (
            operand.op is UnaryOp.NONE
            and rng.random() < 0.3
        ):
            operands.append(Operand(operand.matrix, UnaryOp.TRANSPOSE))
        else:
            operands.append(operand)
    return Chain(tuple(operands))


def small_sizes_for(chain: Chain, rng: np.random.Generator, low=3, high=12):
    """One random small valid instance of a chain (fast numeric tests)."""
    return tuple(int(x) for x in sample_instances(chain, 1, rng, low, high)[0])

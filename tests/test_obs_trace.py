"""repro.obs.trace: span lifecycle, nesting, and cross-process identity."""

import pytest

from repro.obs import trace as obs_trace
from repro.obs.trace import Span


@pytest.fixture(autouse=True)
def clean_tracing():
    """Every test starts disabled with an empty buffer and leaks nothing."""
    obs_trace.disable()
    obs_trace.drain()
    yield
    obs_trace.disable()
    obs_trace.drain()


class TestDisabled:
    def test_span_returns_shared_null_object(self):
        first = obs_trace.span("a")
        second = obs_trace.span("b", key="value")
        assert first is second  # the module-level singleton — no allocation

    def test_null_span_is_a_noop_context_manager(self):
        with obs_trace.span("a") as item:
            item.annotate(anything="goes")
            assert obs_trace.current_span() is None
        assert obs_trace.drain() == []

    def test_current_context_is_none(self):
        with obs_trace.span("a"):
            assert obs_trace.current_context() is None

    def test_traced_decorator_passes_through(self):
        @obs_trace.traced()
        def work(x):
            return x + 1

        assert work(1) == 2
        assert obs_trace.drain() == []


class TestEnabled:
    def test_root_span_identity(self):
        obs_trace.enable()
        with obs_trace.span("root", key="k") as root:
            assert obs_trace.current_span() is root
        assert root.parent_id is None
        assert root.trace_id and root.span_id
        assert root.trace_id != root.span_id
        assert root.attributes == {"key": "k"}
        assert root.status == "ok"
        assert root.duration >= 0.0

    def test_nesting_shares_trace_id(self):
        obs_trace.enable()
        with obs_trace.span("outer") as outer:
            with obs_trace.span("inner") as inner:
                pass
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert inner.span_id != outer.span_id

    def test_sibling_roots_get_distinct_traces(self):
        obs_trace.enable()
        with obs_trace.span("a") as a:
            pass
        with obs_trace.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_finished_spans_land_in_buffer_inner_first(self):
        obs_trace.enable()
        with obs_trace.span("outer"):
            with obs_trace.span("inner"):
                pass
        names = [item.name for item in obs_trace.drain()]
        assert names == ["inner", "outer"]
        assert obs_trace.drain() == []

    def test_exception_marks_error_status(self):
        obs_trace.enable()
        with pytest.raises(RuntimeError):
            with obs_trace.span("bad") as bad:
                raise RuntimeError("kaboom")
        assert bad.status == "error"
        assert bad.attributes["error"] == "RuntimeError: kaboom"
        # the error must still propagate (asserted by pytest.raises) and
        # the span must still be emitted:
        assert [item.name for item in obs_trace.drain()] == ["bad"]

    def test_annotate_helper_targets_active_span(self):
        obs_trace.enable()
        with obs_trace.span("a") as a:
            obs_trace.annotate(depth=3)
        assert a.attributes == {"depth": 3}
        obs_trace.annotate(orphan=True)  # no active span: silently dropped

    def test_traced_decorator_uses_qualname(self):
        obs_trace.enable()

        @obs_trace.traced()
        def work():
            return obs_trace.current_span().name

        name = work()
        assert name.endswith("work")
        assert [item.name for item in obs_trace.drain()] == [name]

    def test_capture_collects_only_inner_spans(self):
        obs_trace.enable()
        with obs_trace.span("before"):
            pass
        with obs_trace.capture() as captured:
            with obs_trace.span("during"):
                pass
        with obs_trace.span("after"):
            pass
        assert [item.name for item in captured] == ["during"]


class TestCrossProcessIdentity:
    def test_current_context_round_trip(self):
        obs_trace.enable()
        with obs_trace.span("parent") as parent:
            ctx = obs_trace.current_context()
        assert ctx == {"trace_id": parent.trace_id, "span_id": parent.span_id}

    def test_continue_trace_adopts_remote_parent(self):
        obs_trace.enable()
        ctx = {"trace_id": "t-1", "span_id": "s-1"}
        with obs_trace.continue_trace(ctx):
            with obs_trace.span("child") as child:
                pass
        assert child.trace_id == "t-1"
        assert child.parent_id == "s-1"
        # the synthetic remote parent itself is never emitted:
        assert [item.name for item in obs_trace.drain()] == ["child"]

    def test_continue_trace_none_is_noop(self):
        obs_trace.enable()
        with obs_trace.continue_trace(None):
            with obs_trace.span("child") as child:
                pass
        assert child.parent_id is None

    def test_span_dict_round_trip(self):
        obs_trace.enable()
        with obs_trace.span("original", size=10) as original:
            pass
        revived = Span.from_dict(original.to_dict())
        assert revived.to_dict() == original.to_dict()

    def test_ingest_re_emits_worker_spans(self):
        obs_trace.enable()
        shipped = [
            {
                "name": "procpool.compile",
                "trace_id": "t-9",
                "span_id": "s-9",
                "parent_id": "s-8",
                "attributes": {"pid": 1234},
            }
        ]
        with obs_trace.capture() as captured:
            revived = obs_trace.ingest(shipped)
        assert len(revived) == 1
        assert captured[0].trace_id == "t-9"
        assert captured[0].parent_id == "s-8"
        assert captured[0].attributes == {"pid": 1234}


class TestIds:
    def test_ids_are_unique_and_cheap(self):
        minted = {obs_trace._new_id() for _ in range(1000)}
        assert len(minted) == 1000

    def test_sinks_survive_broken_sink(self):
        obs_trace.enable()

        def broken(_span):
            raise RuntimeError("exporter died")

        good: list[Span] = []
        obs_trace.add_sink(broken)
        obs_trace.add_sink(good.append)
        try:
            with obs_trace.span("work"):
                pass
        finally:
            obs_trace.remove_sink(broken)
            obs_trace.remove_sink(good.append)
        assert [item.name for item in good] == ["work"]

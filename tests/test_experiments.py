"""Tests for sampling, eCDFs, and the two experiment harnesses."""

import numpy as np
import pytest

from repro.ir.operand import UnaryOp
from repro.experiments.ecdf import ECDF, format_summary_table, summarize_ratios
from repro.experiments.flops_experiment import evaluate_shape, run_flops_experiment
from repro.experiments.sampling import (
    MATRIX_OPTIONS,
    RECTANGULAR_OPTION,
    count_shapes,
    enumerate_shapes,
    sample_instances,
    sample_shapes,
    shape_from_options,
)
from repro.experiments.time_experiment import run_time_experiment


class TestMatrixOptions:
    def test_exactly_ten_options(self):
        assert len(MATRIX_OPTIONS) == 10

    def test_no_transpositions(self):
        assert all(op is not UnaryOp.TRANSPOSE for _, _, op in MATRIX_OPTIONS)

    def test_only_one_rectangular_option(self):
        from repro.ir.features import features_imply_square

        rect = [
            i
            for i, (structure, prop, op) in enumerate(MATRIX_OPTIONS)
            if not features_imply_square(structure, prop) and not op.inverted
        ]
        assert rect == [RECTANGULAR_OPTION]

    def test_shape_count_formula(self):
        assert count_shapes(2) == 10**2 - 9**2
        assert count_shapes(5) == 10**5 - 9**5

    def test_enumeration_matches_formula(self):
        assert sum(1 for _ in enumerate_shapes(2)) == count_shapes(2)

    def test_enumerated_shapes_have_rectangular_matrix(self):
        for chain in enumerate_shapes(2):
            assert any(not op.is_square for op in chain)


class TestSamplers:
    def test_sample_shapes_rectangular_constraint(self):
        rng = np.random.default_rng(0)
        for chain in sample_shapes(7, 20, rng, rectangular_probability=0.5):
            assert chain.n == 7
            assert any(not op.is_square for op in chain)

    def test_sample_shapes_uniform_mode(self):
        rng = np.random.default_rng(1)
        shapes = sample_shapes(5, 10, rng, rectangular_probability=None)
        assert len(shapes) == 10

    def test_sample_instances_respects_classes(self):
        rng = np.random.default_rng(2)
        chain = shape_from_options([2, 0, 5])  # SPD, rectangular G, lower-tri
        instances = sample_instances(chain, 50, rng, low=3, high=20)
        assert instances.shape == (50, 4)
        for q in instances:
            chain.validate_sizes(q)

    def test_sample_instances_range(self):
        rng = np.random.default_rng(3)
        chain = shape_from_options([0, 0])
        instances = sample_instances(chain, 100, rng, low=5, high=9)
        assert instances.min() >= 5
        assert instances.max() <= 9


class TestECDF:
    def test_fraction_and_quantile(self):
        ecdf = ECDF.from_sample([1.0, 1.1, 1.2, 1.3, 2.0])
        assert ecdf.fraction_at_or_below(1.15) == pytest.approx(0.4)
        assert ecdf.fraction_at_or_below(2.0) == 1.0
        assert ecdf.quantile(0.5) == pytest.approx(1.2)
        assert ecdf.max == 2.0
        assert ecdf.min == 1.0

    def test_quantile_bounds(self):
        ecdf = ECDF.from_sample([1.0, 2.0])
        with pytest.raises(ValueError):
            ecdf.quantile(1.5)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            ECDF.from_sample([])

    def test_curve(self):
        ecdf = ECDF.from_sample([1.0, 1.5])
        assert ecdf.curve([1.0, 1.5]) == [(1.0, 0.5), (1.5, 1.0)]

    def test_summary_table_formatting(self):
        rows = summarize_ratios({"A": np.array([1.0, 1.4]), "B": np.array([2.0])})
        text = format_summary_table(rows)
        assert "A" in text and "B" in text and "max" in text


class TestFlopsExperiment:
    def test_single_shape_ratios(self):
        rng = np.random.default_rng(0)
        chain = shape_from_options([0, 2, 5, 0, 6])
        ratios = evaluate_shape(chain, rng, train_instances=300, val_instances=100)
        assert set(ratios) == {"Es", "Es1", "Es2", "L"}
        for values in ratios.values():
            assert (values >= 1.0 - 1e-12).all()

    def test_small_run_reproduces_paper_ordering(self):
        result = run_flops_experiment(
            n_values=(5,),
            shapes_per_n=6,
            train_instances=400,
            val_instances=100,
            seed=2,
        )
        ratios = result.ratios[5]
        # Expanded sets dominate the base set which dominates left-to-right.
        assert ratios["Es2"].mean() <= ratios["Es1"].mean() + 1e-9
        assert ratios["Es1"].mean() <= ratios["Es"].mean() + 1e-9
        assert ratios["Es"].mean() < ratios["L"].mean()
        # Theory bound: the base set is within the Lemma 2 factor everywhere.
        assert ratios["Es"].max() <= 16.0

    def test_result_helpers(self):
        result = run_flops_experiment(
            n_values=(5,), shapes_per_n=2, train_instances=100,
            val_instances=50, seed=0,
        )
        assert result.shapes_tested[5] == 2
        assert result.ecdf(5, "Es").max >= 1.0
        pooled = result.pooled()
        assert pooled["L"].size == 2 * 50
        assert "n = 5" in result.summary_table()


class TestTimeExperiment:
    def test_small_run_reproduces_paper_ordering(self):
        result = run_time_experiment(
            num_shapes=3, train_instances=300, val_instances=80, seed=4
        )
        assert set(result.ratios) == {"Es", "Es1,F", "Es1,M", "L", "Arma"}
        # The generated sets beat the references on average.
        assert result.ratios["Es"].mean() < result.ratios["L"].mean()
        assert result.ratios["L"].mean() <= result.ratios["Arma"].mean() + 1e-9
        # Every generated flavour is faster than Armadillo on average.
        for name, speedup in result.speedup_over_armadillo.items():
            assert speedup > 1.0
        assert "speedup over Armadillo" in result.summary_table()

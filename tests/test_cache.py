"""The content-addressed compilation cache: LRU, disk layer, rebinding."""

import json

import numpy as np
import pytest

from repro.codegen import serialize
from repro.compiler.cache import (
    CacheEntry,
    CompilationCache,
    DiskCache,
    compilation_key,
    rebind_variants,
)
from repro.compiler.program import CompiledProgram
from repro.compiler.pipeline import CompileOptions
from repro.compiler.selection import essential_set
from repro.experiments.sampling import sample_instances

from conftest import general_chain, make_general, make_lower


def compiled_entry(chain, count=30, seed=0):
    rng = np.random.default_rng(seed)
    train = sample_instances(chain, count, rng)
    variants = essential_set(chain, training_instances=train)
    return CacheEntry(
        chain=chain, variants=tuple(variants), training_instances=train
    )


class TestCompilationKey:
    def test_isomorphic_chains_share_keys(self):
        options = CompileOptions()
        a = make_general("A") * make_lower("L").inv
        b = make_general("X") * make_lower("Y").inv
        assert compilation_key(a, options) == compilation_key(b, options)

    def test_options_change_key(self):
        chain = general_chain(3)
        base = CompileOptions()
        assert compilation_key(chain, base) != compilation_key(
            chain, CompileOptions(expand_by=1)
        )
        assert compilation_key(chain, base) != compilation_key(
            chain, CompileOptions(seed=1)
        )
        assert compilation_key(chain, base) != compilation_key(
            chain, CompileOptions(objective="max")
        )
        assert compilation_key(chain, base) != compilation_key(
            chain, CompileOptions(training_fingerprint="abc")
        )


class TestRebinding:
    def test_rebind_to_renamed_chain(self):
        chain = make_general("A") * make_general("B") * make_general("C")
        entry = compiled_entry(chain)
        renamed = make_general("X") * make_general("Y") * make_general("Z")
        variants, train = rebind_variants(entry, renamed)
        assert [v.signature() for v in variants] == [
            v.signature() for v in entry.variants
        ]
        assert all(v.chain is renamed for v in variants)
        np.testing.assert_array_equal(train, entry.training_instances)
        # The returned training set is a defensive copy.
        train[0, 0] = -1
        assert entry.training_instances[0, 0] != -1

    def test_rebind_rejects_different_structure(self):
        entry = compiled_entry(general_chain(3))
        with pytest.raises(ValueError):
            rebind_variants(entry, general_chain(4))


class TestLRU:
    def test_hit_and_miss_counters(self):
        cache = CompilationCache(capacity=4)
        entry = compiled_entry(general_chain(3))
        key = compilation_key(entry.chain, CompileOptions())
        assert cache.get(key) is None
        cache.put(key, entry)
        assert cache.get(key) is entry
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_eviction_order_is_least_recently_used(self):
        cache = CompilationCache(capacity=2)
        entries = {}
        for n in (2, 3, 4):
            entry = compiled_entry(general_chain(n))
            key = compilation_key(entry.chain, CompileOptions())
            entries[n] = key
            cache.put(key, entry)
        # Capacity 2: the n=2 entry (least recently used) was evicted.
        assert cache.stats.evictions == 1
        assert entries[2] not in cache
        assert entries[3] in cache and entries[4] in cache

    def test_get_refreshes_recency(self):
        cache = CompilationCache(capacity=2)
        keys = []
        for n in (2, 3):
            entry = compiled_entry(general_chain(n))
            key = compilation_key(entry.chain, CompileOptions())
            keys.append(key)
            cache.put(key, entry)
        cache.get(keys[0])  # n=2 becomes most recent
        entry4 = compiled_entry(general_chain(4))
        cache.put(compilation_key(entry4.chain, CompileOptions()), entry4)
        assert keys[0] in cache and keys[1] not in cache

    def test_clear_resets_entries_and_stats(self):
        cache = CompilationCache(capacity=2)
        entry = compiled_entry(general_chain(3))
        key = compilation_key(entry.chain, CompileOptions())
        cache.put(key, entry)
        cache.get(key)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CompilationCache(capacity=0)


class TestDiskLayer:
    def test_round_trip_through_serialize(self, tmp_path):
        chain = make_general("A") * make_lower("L").inv * make_general("B")
        entry = compiled_entry(chain)
        disk = DiskCache(tmp_path)
        disk.store("k" * 64, entry)

        # The stored file is a verbatim CompiledProgram artifact whose
        # "program" object embeds the serialize.dumps format.
        payload = json.loads(disk.path_for("k" * 64).read_text())
        loaded_chain, loaded_variants = serialize.loads(
            json.dumps(payload["program"])
        )
        assert loaded_chain == chain
        assert [v.signature() for v in loaded_variants] == [
            v.signature() for v in entry.variants
        ]
        # ... and is directly loadable as a portable artifact.
        program = CompiledProgram.load(disk.path_for("k" * 64))
        assert program.key == "k" * 64
        assert program.chain == chain

        restored = disk.load("k" * 64)
        assert restored is not None
        assert restored.chain == chain
        np.testing.assert_array_equal(
            restored.training_instances, entry.training_instances
        )

    def test_load_missing_returns_none(self, tmp_path):
        assert DiskCache(tmp_path).load("absent") is None

    def test_load_rejects_corrupt_payload(self, tmp_path):
        disk = DiskCache(tmp_path)
        disk.directory.mkdir(parents=True, exist_ok=True)
        disk.path_for("bad").write_text("{not json")
        assert disk.load("bad") is None
        disk.path_for("wrongkey").write_text(
            json.dumps({"disk_format_version": 1, "key": "other"})
        )
        assert disk.load("wrongkey") is None
        # Valid JSON that is not an object is also a miss, not a crash.
        disk.path_for("nondict").write_text("null")
        assert disk.load("nondict") is None
        disk.path_for("listpayload").write_text("[1, 2]")
        assert disk.load("listpayload") is None
        # Binary garbage (non-UTF-8) is a miss too.
        disk.path_for("binary").write_bytes(b"\xff\xfe garbage \x00")
        assert disk.load("binary") is None

    def test_clear_sweeps_orphaned_tmp_files(self, tmp_path):
        disk = DiskCache(tmp_path)
        entry = compiled_entry(general_chain(3))
        disk.store("a" * 64, entry)
        orphan = tmp_path / (".deadbeef.xyz.tmp")
        orphan.write_text("interrupted writer dropping")
        assert disk.clear() == 1  # tmp sweep is not counted as an entry
        assert not orphan.exists()

    def test_stats_tolerates_vanishing_files(self, tmp_path):
        disk = DiskCache(tmp_path)
        entry = compiled_entry(general_chain(3))
        disk.store("a" * 64, entry)
        # A dangling .json symlink models a file unlinked between the
        # glob and the stat (concurrent `cache clear`).
        (tmp_path / ("b" * 64 + ".json")).symlink_to(tmp_path / "gone.json")
        stats = disk.stats()
        assert stats["entries"] == 1 and stats["total_bytes"] > 0

    def test_stats_and_clear(self, tmp_path):
        disk = DiskCache(tmp_path)
        entry = compiled_entry(general_chain(3))
        disk.store("a" * 64, entry)
        disk.store("b" * 64, entry)
        stats = disk.stats()
        assert stats["entries"] == 2 and stats["total_bytes"] > 0
        assert disk.keys() == sorted(["a" * 64, "b" * 64])
        assert disk.clear() == 2
        assert disk.stats()["entries"] == 0

    def test_unwritable_disk_layer_does_not_fail_put(self, tmp_path):
        blocker = tmp_path / "notadir"
        blocker.write_text("I am a file, not a cache directory")
        cache = CompilationCache(capacity=4, disk_dir=blocker)
        entry = compiled_entry(general_chain(3))
        key = compilation_key(entry.chain, CompileOptions())
        cache.put(key, entry)  # must not raise
        assert cache.stats.disk_errors == 1
        assert cache.stats.disk_writes == 0
        assert cache.get(key) is entry  # memory layer still serves it

    def test_memory_cache_falls_through_to_disk(self, tmp_path):
        entry = compiled_entry(general_chain(3))
        key = compilation_key(entry.chain, CompileOptions())

        writer = CompilationCache(capacity=4, disk_dir=tmp_path)
        writer.put(key, entry)
        assert writer.stats.disk_writes == 1

        # A fresh cache (cold memory) finds the entry on disk.
        reader = CompilationCache(capacity=4, disk_dir=tmp_path)
        restored = reader.get(key)
        assert restored is not None
        assert reader.stats.disk_hits == 1
        assert [v.signature() for v in restored.variants] == [
            v.signature() for v in entry.variants
        ]
        # Promoted into memory: the next get is a pure memory hit.
        reader.get(key)
        assert reader.stats.hits == 2 and reader.stats.disk_hits == 1

"""Tests for parenthesization trees, enumeration, and linearization."""

import pytest

from repro.compiler.parenthesization import (
    ParenTree,
    catalan,
    enumerate_trees,
    fanning_out_tree,
    iter_trees,
    join,
    leaf,
    left_to_right_tree,
    linearize,
    right_to_left_tree,
    rotations,
)


class TestCatalan:
    def test_values(self):
        assert [catalan(k) for k in range(8)] == [1, 1, 2, 5, 14, 42, 132, 429]

    @pytest.mark.parametrize("n", range(1, 9))
    def test_enumeration_count(self, n):
        assert len(enumerate_trees(n)) == catalan(n - 1)

    def test_enumeration_distinct(self):
        trees = enumerate_trees(6)
        assert len({str(t) for t in trees}) == len(trees)


class TestTreeStructure:
    def test_leaf(self):
        t = leaf(2)
        assert t.is_leaf
        with pytest.raises(ValueError):
            t.triplet

    def test_join_validation(self):
        with pytest.raises(ValueError):
            join(leaf(0), leaf(2))  # not adjacent

    def test_triplet(self):
        t = join(join(leaf(0), leaf(1)), leaf(2))
        assert t.triplet == (0, 2, 3)
        assert t.left.triplet == (0, 1, 2)

    def test_render(self):
        t = left_to_right_tree(3)
        assert str(t) == "((M1 M2) M3)"
        assert t.render(["A", "B", "C"]) == "((A B) C)"

    def test_right_to_left(self):
        assert str(right_to_left_tree(3)) == "(M1 (M2 M3))"


class TestFanningOut:
    def test_h_zero_is_left_to_right(self):
        assert str(fanning_out_tree(5, 0)) == str(left_to_right_tree(5))

    def test_h_n_is_right_to_left(self):
        assert str(fanning_out_tree(5, 5)) == str(right_to_left_tree(5))

    def test_middle_h(self):
        # E_2 for n = 5: prefix M1 M2 right-to-left, suffix M3 M4 M5
        # left-to-right, then combined.
        assert str(fanning_out_tree(5, 2)) == "((M1 M2) ((M3 M4) M5))"

    def test_h_out_of_range(self):
        with pytest.raises(ValueError):
            fanning_out_tree(4, 5)

    def test_duplicates_for_small_n(self):
        # For n <= 3 there are only n - 1 distinct fanning-out trees.
        keys3 = {str(fanning_out_tree(3, h)) for h in range(4)}
        assert len(keys3) == 2
        keys2 = {str(fanning_out_tree(2, h)) for h in range(3)}
        assert len(keys2) == 1

    def test_all_distinct_for_larger_n(self):
        for n in (4, 5, 6, 7):
            keys = {str(fanning_out_tree(n, h)) for h in range(n + 1)}
            assert len(keys) == n + 1


class TestLinearization:
    def test_paper_example(self):
        # ((M1 M2) M3)(M4 M5): the leftmost-first order issues (0,1,2),
        # (0,2,3), (3,4,5), (0,3,5) — exactly the paper's Section III-B.
        tree = join(
            join(join(leaf(0), leaf(1)), leaf(2)),
            join(leaf(3), leaf(4)),
        )
        order = [node.triplet for node in linearize(tree)]
        assert order == [(0, 1, 2), (0, 2, 3), (3, 4, 5), (0, 3, 5)]

    def test_left_to_right_order(self):
        order = [node.triplet for node in linearize(left_to_right_tree(4))]
        assert order == [(0, 1, 2), (0, 2, 3), (0, 3, 4)]

    def test_right_to_left_order(self):
        order = [node.triplet for node in linearize(right_to_left_tree(4))]
        assert order == [(2, 3, 4), (1, 2, 4), (0, 1, 4)]

    def test_every_tree_linearizes_completely(self):
        for tree in enumerate_trees(6):
            order = linearize(tree)
            assert len(order) == 5
            # The final association always spans the full chain.
            assert order[-1].triplet == (0, order[-1].left.hi + 1, 6)

    def test_consumed_symbol_never_reappears(self):
        # Section III-B: after association i, the middle symbol b_i does not
        # appear in any later triplet.
        for tree in enumerate_trees(7):
            order = [node.triplet for node in linearize(tree)]
            for i, (_, b, _) in enumerate(order):
                for later in order[i + 1:]:
                    assert b not in later


class TestLazyEnumeration:
    @pytest.mark.parametrize("n", range(1, 8))
    def test_matches_eager_enumeration(self, n):
        assert [str(t) for t in iter_trees(n)] == [
            str(t) for t in enumerate_trees(n)
        ]

    def test_prefix_of_long_chain_is_cheap(self):
        # Catalan(19) ~ 1.77e9 trees: materializing is impossible, but the
        # lazy iterator hands out a bounded prefix instantly.
        import itertools

        prefix = list(itertools.islice(iter_trees(20), 25))
        assert len(prefix) == 25
        assert len({str(t) for t in prefix}) == 25
        for tree in prefix:
            assert (tree.lo, tree.hi) == (0, 19)

    def test_rejects_empty_chain(self):
        with pytest.raises(ValueError):
            next(iter_trees(0))


class TestRotations:
    def test_leaf_has_no_neighbors(self):
        assert list(rotations(leaf(0))) == []

    def test_two_leaves_have_no_neighbors(self):
        assert list(rotations(join(leaf(0), leaf(1)))) == []

    def test_three_leaves_rotate_into_each_other(self):
        left = join(join(leaf(0), leaf(1)), leaf(2))
        right = join(leaf(0), join(leaf(1), leaf(2)))
        assert [str(t) for t in rotations(left)] == [str(right)]
        assert [str(t) for t in rotations(right)] == [str(left)]

    @pytest.mark.parametrize("n", (4, 5, 6, 7))
    def test_neighbors_are_valid_distinct_trees(self, n):
        for tree in enumerate_trees(n):
            neighbors = list(rotations(tree))
            assert 1 <= len(neighbors) <= 2 * (n - 2)
            for neighbor in neighbors:
                assert (neighbor.lo, neighbor.hi) == (0, n - 1)
                assert str(neighbor) != str(tree)
                # A rotation is an involution: the original is reachable back.
                assert str(tree) in {str(t) for t in rotations(neighbor)}

    def test_rotation_graph_is_connected(self):
        # Every parenthesization reaches every other through rotations
        # (the associahedron is connected) — the property that lets the
        # DP-seeded neighborhood cover trees between seeds.
        n = 6
        all_keys = {str(t) for t in enumerate_trees(n)}
        frontier = [left_to_right_tree(n)]
        seen = {str(frontier[0])}
        while frontier:
            tree = frontier.pop()
            for neighbor in rotations(tree):
                key = str(neighbor)
                if key not in seen:
                    seen.add(key)
                    frontier.append(neighbor)
        assert seen == all_keys

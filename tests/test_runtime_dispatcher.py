"""Tests for the memoizing runtime dispatcher (repro.runtime.dispatcher)."""

import numpy as np
import pytest

from repro.compiler.selection import all_variants
from repro.runtime import (
    Dispatcher,
    execute_variant,
    flop_estimator,
    naive_evaluate,
    random_instance_arrays,
)

from conftest import general_chain, random_option_chain, small_sizes_for


class TestMemoCorrectness:
    def test_warm_answers_match_cold_bit_identically(self):
        rng = np.random.default_rng(0)
        chain = random_option_chain(4, rng)
        variants = all_variants(chain)
        sizes = small_sizes_for(chain, rng)
        arrays = random_instance_arrays(chain, sizes, rng)
        warm = Dispatcher(chain, variants)
        cold_reference = execute_variant(warm.select(sizes)[0], list(arrays))
        first = warm(*arrays)
        second = warm(*arrays)  # memo hit
        np.testing.assert_array_equal(first, cold_reference)
        np.testing.assert_array_equal(second, first)
        stats = warm.memo_stats()
        assert stats["hits"] >= 1 and stats["misses"] == 1

    def test_select_is_memoized(self):
        chain = general_chain(4)
        dispatcher = Dispatcher(chain, all_variants(chain))
        q = (30, 2, 40, 3, 50)
        first = dispatcher.select(q)
        assert dispatcher.memo_stats()["misses"] == 1
        second = dispatcher.select(q)
        assert second[0] is first[0]
        assert second[1] == first[1]
        assert dispatcher.memo_stats()["hits"] == 1

    def test_tie_break_stability_through_memo(self):
        """Warm answers are the same decision, not merely an equal one."""
        chain = general_chain(3)
        variants = all_variants(chain)
        dispatcher = Dispatcher(
            chain, variants, cost_estimator=lambda v, q: 42.0
        )
        q = (4, 5, 6, 7)
        picked, cost = dispatcher.select(q)
        assert picked is variants[0] and cost == 42.0
        for _ in range(5):
            again, _ = dispatcher.select(q)
            assert again is picked

    def test_real_cost_tie_through_memo(self):
        chain = general_chain(3)
        variants = all_variants(chain)
        dispatcher = Dispatcher(chain, variants)
        q = (10, 10, 10, 10)  # (AB)C and A(BC) tie exactly
        for _ in range(3):
            picked, _ = dispatcher.select(q)
            assert picked.signature() == variants[0].signature()

    def test_sizes_inferred_exactly_once_per_call(self, monkeypatch):
        """The old path inferred sizes twice (dispatch + execute)."""
        chain = general_chain(3)
        dispatcher = Dispatcher(chain, all_variants(chain))
        rng = np.random.default_rng(2)
        arrays = random_instance_arrays(chain, (3, 4, 5, 6), rng)
        from repro.runtime.executor import SizeInferencer

        calls = []
        real = SizeInferencer.infer

        def counting(self, arrays_arg):
            calls.append(1)
            return real(self, arrays_arg)

        monkeypatch.setattr(SizeInferencer, "infer", counting)
        dispatcher(*arrays)  # cold: sweep + plan compile
        dispatcher(*arrays)  # warm: memo replay
        assert len(calls) == 2  # exactly one inference per call


class TestMemoInvalidation:
    def test_variants_reassignment_clears_the_memo(self):
        chain = general_chain(3)
        variants = all_variants(chain)
        dispatcher = Dispatcher(chain, variants)
        q = (2, 3, 2, 100)
        dispatcher.select(q)
        dispatcher.variants = [variants[0]]
        picked, cost = dispatcher.select(q)
        assert picked is variants[0]
        assert cost == pytest.approx(variants[0].flop_cost(q))
        assert dispatcher.memo_stats()["misses"] == 2  # re-swept

    def test_same_length_in_place_replacement_is_caught(self):
        """Regression: the old guard only keyed the term stack on pool
        *length*, so same-length in-place replacement silently reused the
        stale flattened cost stack (and would now also hit a stale memo)."""
        chain = general_chain(3)
        v0, v1 = all_variants(chain)
        dispatcher = Dispatcher(chain, [v0])
        q = (2, 3, 2, 100)
        _, cost_before = dispatcher.select(q)
        assert cost_before == pytest.approx(v0.flop_cost(q))
        dispatcher.variants[0] = v1  # in place, same length
        picked, cost_after = dispatcher.select(q)
        assert picked is v1
        assert cost_after == pytest.approx(v1.flop_cost(q))
        # Batched paths see the replacement too.
        matrix = dispatcher.cost_matrix([q])
        assert matrix[0, 0] == pytest.approx(v1.flop_cost(q))

    def test_in_place_growth_still_caught(self):
        chain = general_chain(3)
        variants = all_variants(chain)
        dispatcher = Dispatcher(chain, [variants[0]])
        q = (100, 2, 3, 2)
        dispatcher.select(q)
        dispatcher.variants.extend(variants[1:])
        _, cost = dispatcher.select(q)
        assert cost == pytest.approx(min(v.flop_cost(q) for v in variants))

    def test_cost_estimator_swap_clears_the_memo(self):
        chain = general_chain(3)
        variants = all_variants(chain)
        dispatcher = Dispatcher(chain, variants)
        q = (2, 3, 2, 100)
        best, _ = dispatcher.select(q)
        assert best.flop_cost(q) == pytest.approx(
            min(v.flop_cost(q) for v in variants)
        )
        dispatcher.cost_estimator = lambda v, sizes: -flop_estimator(v, sizes)
        worst, _ = dispatcher.select(q)
        assert worst.flop_cost(q) == pytest.approx(
            max(v.flop_cost(q) for v in variants)
        )
        assert worst.signature() != best.signature()


class TestMemoBounds:
    def test_capacity_is_enforced_lru(self):
        chain = general_chain(3)
        dispatcher = Dispatcher(chain, all_variants(chain), memo_capacity=2)
        for m in (2, 3, 4, 5):
            dispatcher.select((m, 3, 4, 5))
        assert dispatcher.memo_stats()["entries"] == 2
        # The most recent entries are retained.
        dispatcher.select((5, 3, 4, 5))
        assert dispatcher.memo_stats()["hits"] == 1

    def test_zero_capacity_disables_memoization(self):
        chain = general_chain(3)
        dispatcher = Dispatcher(chain, all_variants(chain), memo_capacity=0)
        q = (4, 5, 6, 7)
        dispatcher.select(q)
        dispatcher.select(q)
        stats = dispatcher.memo_stats()
        assert stats["entries"] == 0
        assert stats["hits"] == 0 and stats["misses"] == 2

    def test_negative_capacity_rejected(self):
        from repro.errors import DispatchError

        chain = general_chain(3)
        with pytest.raises(DispatchError):
            Dispatcher(chain, all_variants(chain), memo_capacity=-1)


class TestValidateFastPath:
    def test_cost_matrix_parity(self):
        chain = general_chain(4)
        dispatcher = Dispatcher(chain, all_variants(chain))
        instances = np.array(
            [[3, 4, 5, 6, 7], [10, 2, 9, 2, 10]], dtype=np.float64
        )
        np.testing.assert_array_equal(
            dispatcher.cost_matrix(instances, validate=False),
            dispatcher.cost_matrix(instances, validate=True),
        )

    def test_select_many_parity(self):
        chain = general_chain(4)
        dispatcher = Dispatcher(chain, all_variants(chain))
        instances = [(3, 4, 5, 6, 7), (10, 2, 9, 2, 10)]
        fast = dispatcher.select_many(instances, validate=False)
        slow = dispatcher.select_many(instances, validate=True)
        assert [(v.signature(), c) for v, c in fast] == [
            (v.signature(), c) for v, c in slow
        ]

    def test_fast_path_still_checks_width(self):
        from repro.errors import DispatchError

        chain = general_chain(3)
        dispatcher = Dispatcher(chain, all_variants(chain))
        with pytest.raises(DispatchError, match="expected 4"):
            dispatcher.cost_matrix(np.ones((2, 3)), validate=False)


class TestExecuteMany:
    def test_matches_per_call_execution(self):
        rng = np.random.default_rng(7)
        chain = random_option_chain(3, rng)
        dispatcher = Dispatcher(chain, all_variants(chain))
        batches = []
        for _ in range(6):
            sizes = small_sizes_for(chain, rng)
            batches.append(random_instance_arrays(chain, sizes, rng))
        batched = dispatcher.execute_many(batches)
        solo = Dispatcher(chain, dispatcher.variants)
        for arrays, got in zip(batches, batched):
            np.testing.assert_array_equal(got, solo(*arrays))

    def test_batch_warms_the_memo(self):
        rng = np.random.default_rng(8)
        chain = general_chain(3)
        dispatcher = Dispatcher(chain, all_variants(chain))
        sizes = (3, 4, 5, 6)
        batches = [
            random_instance_arrays(chain, sizes, rng) for _ in range(4)
        ]
        dispatcher.execute_many(batches)
        assert dispatcher.memo_stats()["entries"] == 1
        dispatcher(*batches[0])
        assert dispatcher.memo_stats()["hits"] >= 1

    def test_empty_batch(self):
        chain = general_chain(3)
        dispatcher = Dispatcher(chain, all_variants(chain))
        assert dispatcher.execute_many([]) == []


class TestRunOutcome:
    def test_outcome_fields(self):
        rng = np.random.default_rng(9)
        chain = general_chain(3)
        dispatcher = Dispatcher(chain, all_variants(chain))
        sizes = (3, 4, 5, 6)
        arrays = random_instance_arrays(chain, sizes, rng)
        outcome = dispatcher.run(arrays)
        assert outcome.sizes == sizes
        assert outcome.variant in dispatcher.variants
        assert outcome.cost == pytest.approx(dispatcher.select(sizes)[1])
        np.testing.assert_allclose(
            outcome.result, naive_evaluate(chain, arrays), atol=1e-8
        )


class TestProgramRuntime:
    def test_runtime_is_cached_and_to_dispatcher_is_fresh(self):
        from repro import compile_chain

        generated = compile_chain(
            "Matrix A <General, Singular>; Matrix B <General, Singular>; R := A * B;",
            use_cache=False,
        )
        program = generated.to_program()
        runtime = program.runtime()
        assert program.runtime() is runtime
        assert program.to_dispatcher() is not runtime
        # A different estimator builds (and caches) a different runtime.
        other = program.runtime(lambda v, q: 1.0)
        assert other is not runtime

    def test_program_execute_hits_the_memo(self):
        from repro import compile_chain

        generated = compile_chain(
            "Matrix A <General, Singular>; Matrix B <General, Singular>; R := A * B;",
            use_cache=False,
        )
        program = generated.to_program()
        rng = np.random.default_rng(3)
        arrays = random_instance_arrays(program.chain, (3, 4, 5), rng)
        first = program.execute(*arrays)
        second = program.execute(*arrays)
        np.testing.assert_array_equal(first, second)
        assert program.runtime().memo_stats()["hits"] >= 1

    def test_generated_code_dispatcher_is_the_program_runtime(self):
        from repro import compile_chain

        generated = compile_chain(
            "Matrix A <General, Singular>; Matrix B <General, Singular>; R := A * B;",
            use_cache=False,
        )
        assert generated.program is not None
        assert generated.dispatcher is generated.program.runtime()

    def test_loaded_artifact_shares_the_live_runtime(self, tmp_path):
        from repro import compile_chain, load_program

        generated = compile_chain(
            "Matrix A <General, Singular>; Matrix B <General, Singular>; R := A * B;",
            use_cache=False,
        )
        path = tmp_path / "prog.json"
        generated.save(path)
        loaded = load_program(path)
        assert loaded.dispatcher is loaded.program.runtime()
        rng = np.random.default_rng(4)
        arrays = random_instance_arrays(loaded.chain, (3, 4, 5), rng)
        np.testing.assert_array_equal(loaded(*arrays), loaded(*arrays))
        assert loaded.dispatcher.memo_stats()["hits"] >= 1


class TestShims:
    def test_compiler_dispatch_shim(self):
        from repro.compiler.dispatch import Dispatcher as ShimDispatcher
        from repro.compiler.dispatch import flop_estimator as shim_estimator

        assert ShimDispatcher is Dispatcher
        assert shim_estimator is flop_estimator

    def test_compiler_executor_shim(self):
        from repro.compiler import executor as shim
        from repro.runtime import executor as real

        for name in (
            "KernelCallConfig",
            "execute_variant",
            "expected_stored_shapes",
            "infer_sizes",
            "naive_evaluate",
            "random_instance_arrays",
            "random_matrix",
        ):
            assert getattr(shim, name) is getattr(real, name)


class TestServeWarmMemo:
    SOURCE = "Matrix A <General, Singular>; Matrix B <General, Singular>; R := A * B;"

    @staticmethod
    def _execute(service, handle, arrays):
        from repro.serve.frontend import handle_request

        response = handle_request(
            service,
            {
                "op": "execute",
                "handle": handle,
                "arrays": [a.tolist() for a in arrays],
            },
        )
        assert response["ok"], response
        return response

    def test_execute_identical_with_and_without_warm_memo(self):
        """The serve `execute` op answers bit-identically whether the
        handle's dispatch memo is cold or warm."""
        from repro.serve import CompileService
        from repro.serve.frontend import handle_request

        rng = np.random.default_rng(11)
        arrays = None
        responses = []
        for _ in range(2):  # two independent services: cold vs warmed
            with CompileService(workers=1, warm=False) as service:
                compiled = handle_request(
                    service, {"op": "compile", "source": self.SOURCE}
                )
                assert compiled["ok"], compiled
                handle = compiled["handle"]
                if arrays is None:
                    generated = service.lookup(handle)
                    arrays = random_instance_arrays(
                        generated.chain, (3, 4, 5), rng
                    )
                cold = self._execute(service, handle, arrays)
                warm = self._execute(service, handle, arrays)  # memo hit
                assert warm["result"] == cold["result"]
                assert warm["variant"] == cold["variant"]
                assert warm["cost"] == cold["cost"]
                assert service.lookup(handle).dispatcher.memo_stats()[
                    "hits"
                ] >= 1
                responses.append(cold)
        # Across services (cold memo vs fresh process state): identical.
        assert responses[0]["result"] == responses[1]["result"]
        assert responses[0]["variant"] == responses[1]["variant"]

    def test_service_execute_matches_interpretive_reference(self):
        """service.execute == pre-refactor select + execute_variant."""
        from repro.ir.parser import parse_program
        from repro.serve import CompileService

        rng = np.random.default_rng(12)
        chain = parse_program(self.SOURCE).chain
        with CompileService(workers=1, warm=False) as service:
            future = service.submit(chain)
            generated = future.result(timeout=30)
            handle = future.handle
            arrays = random_instance_arrays(generated.chain, (4, 5, 6), rng)
            outcome = service.execute(handle, arrays)
            variant, cost = generated.select((4, 5, 6))
            np.testing.assert_array_equal(
                outcome.result, execute_variant(variant, list(arrays))
            )
            assert outcome.variant.signature() == variant.signature()
            assert outcome.cost == cost
            with pytest.raises(KeyError):
                service.execute("no-such-handle", arrays)

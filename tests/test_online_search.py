"""Tests for DP plan reconstruction and the online-search baseline."""

import numpy as np
import pytest

from repro.ir.chain import Chain
from repro.baselines.online import OnlineSearchEvaluator
from repro.compiler.dp import dp_optimal_cost, dp_optimal_plan
from repro.compiler.executor import naive_evaluate, random_instance_arrays
from repro.compiler.selection import all_variants, optimal_cost
from repro.experiments.sampling import sample_instances, sample_shapes

from conftest import (
    general_chain,
    make_general,
    make_lower,
    random_option_chain,
    small_sizes_for,
)


class TestPlanReconstruction:
    @pytest.mark.parametrize("seed", range(6))
    def test_plan_cost_equals_dp_cost(self, seed):
        rng = np.random.default_rng(seed)
        chain = random_option_chain(int(rng.integers(2, 7)), rng)
        for q in sample_instances(chain, 5, rng, low=2, high=400):
            q = tuple(int(x) for x in q)
            plan = dp_optimal_plan(chain, q)
            assert plan.flop_cost(q) == pytest.approx(dp_optimal_cost(chain, q))

    @pytest.mark.parametrize("seed", range(6))
    def test_plan_execution_matches_oracle(self, seed):
        rng = np.random.default_rng(100 + seed)
        chain = random_option_chain(int(rng.integers(2, 6)), rng)
        sizes = small_sizes_for(chain, rng)
        plan = dp_optimal_plan(chain, sizes)
        arrays = random_instance_arrays(chain, sizes, rng)
        expected = naive_evaluate(chain, arrays)
        from repro.compiler.executor import execute_variant

        got = execute_variant(plan, arrays)
        scale = max(1.0, float(np.abs(expected).max()))
        np.testing.assert_allclose(got / scale, expected / scale, atol=1e-7)

    def test_plan_never_worse_than_any_variant(self):
        rng = np.random.default_rng(5)
        chain = random_option_chain(5, rng)
        for q in sample_instances(chain, 10, rng, low=2, high=500):
            q = tuple(int(x) for x in q)
            plan_cost = dp_optimal_plan(chain, q).flop_cost(q)
            assert plan_cost <= optimal_cost(chain, q) * (1 + 1e-9) + 1e-9

    def test_plan_for_classic_mcp(self):
        chain = general_chain(6)
        q = (30, 35, 15, 5, 10, 20, 25)
        plan = dp_optimal_plan(chain, q)
        assert plan.flop_cost(q) == 2 * 15125
        assert plan.kernel_names == ("GEMM",) * 5
        # CLRS optimal parenthesization: ((M1 (M2 M3)) ((M4 M5) M6)).
        assert set(plan.triplets) == {
            (1, 2, 3), (0, 1, 3), (3, 4, 5), (3, 5, 6), (0, 3, 6)
        }

    def test_single_matrix_plan(self):
        chain = Chain((make_general("A", invertible=True).inv,))
        plan = dp_optimal_plan(chain, (4, 4))
        assert plan.kernel_names == ("GEINV",)


class TestOnlineSearchEvaluator:
    def test_matches_oracle_end_to_end(self):
        rng = np.random.default_rng(0)
        chain = random_option_chain(4, rng)
        online = OnlineSearchEvaluator(chain)
        sizes = small_sizes_for(chain, rng)
        arrays = random_instance_arrays(chain, sizes, rng)
        expected = naive_evaluate(chain, arrays)
        got = online(*arrays)
        scale = max(1.0, float(np.abs(expected).max()))
        np.testing.assert_allclose(got / scale, expected / scale, atol=1e-7)
        assert online.calls == 1
        assert online.searches == 1

    def test_cache_amortizes_repeated_instances(self):
        rng = np.random.default_rng(1)
        chain = general_chain(4)
        online = OnlineSearchEvaluator(chain, cache_size=8)
        arrays = random_instance_arrays(chain, (3, 4, 5, 6, 7), rng)
        for _ in range(5):
            online(*arrays)
        assert online.calls == 5
        assert online.searches == 1

    def test_cache_disabled(self):
        rng = np.random.default_rng(2)
        chain = general_chain(3)
        online = OnlineSearchEvaluator(chain, cache_size=0)
        arrays = random_instance_arrays(chain, (3, 4, 5, 6), rng)
        online(*arrays)
        online(*arrays)
        assert online.searches == 2

    def test_cache_eviction(self):
        rng = np.random.default_rng(3)
        chain = general_chain(2)
        online = OnlineSearchEvaluator(chain, cache_size=2)
        for size in (3, 4, 5, 6):
            arrays = random_instance_arrays(chain, (size, size, size), rng)
            online(*arrays)
        assert online.searches == 4
        assert len(online._cache) == 2

    def test_planned_cost_equals_dp(self):
        chain = general_chain(4)
        q = (8, 3, 9, 2, 7)
        online = OnlineSearchEvaluator(chain)
        assert online.planned_cost(q) == pytest.approx(dp_optimal_cost(chain, q))

    def test_accepts_list_argument(self):
        rng = np.random.default_rng(4)
        chain = general_chain(2)
        online = OnlineSearchEvaluator(chain)
        arrays = random_instance_arrays(chain, (3, 4, 5), rng)
        np.testing.assert_allclose(online(arrays), online(*arrays))

"""Tests for the run-time dispatcher (Fig. 1)."""

import numpy as np
import pytest

from repro.errors import DispatchError
from repro.compiler.dispatch import Dispatcher, flop_estimator
from repro.compiler.executor import naive_evaluate, random_instance_arrays
from repro.compiler.selection import all_variants, optimal_cost
from repro.experiments.sampling import sample_instances

from conftest import general_chain, random_option_chain, small_sizes_for


class TestSelection:
    def test_selects_argmin(self):
        chain = general_chain(4)
        variants = all_variants(chain)
        dispatcher = Dispatcher(chain, variants)
        q = (30, 2, 40, 3, 50)
        variant, cost = dispatcher.select(q)
        assert cost == pytest.approx(optimal_cost(chain, q))
        assert variant.flop_cost(q) == pytest.approx(cost)

    def test_selection_changes_with_sizes(self):
        chain = general_chain(3)
        variants = all_variants(chain)
        dispatcher = Dispatcher(chain, variants)
        left_first, _ = dispatcher.select((2, 3, 2, 100))
        right_first, _ = dispatcher.select((100, 2, 3, 2))
        assert left_first.signature() != right_first.signature()

    def test_equal_cost_tie_breaks_to_earliest_variant(self):
        """Documented tie-break: strict `<` keeps the first-listed variant.

        The selected-variant order is deterministic (Theorem 2 class order,
        then expansion appends), so under a cost tie the dispatcher's pick
        is stable run-to-run — the serving layer relies on this for
        reproducible dispatch answers.
        """
        chain = general_chain(3)
        variants = all_variants(chain)
        assert len(variants) >= 2

        def constant_estimator(variant, sizes):
            return 42.0  # every variant ties

        forward = Dispatcher(chain, variants, cost_estimator=constant_estimator)
        reversed_order = Dispatcher(
            chain, list(reversed(variants)), cost_estimator=constant_estimator
        )
        q = (4, 5, 6, 7)
        picked, cost = forward.select(q)
        assert cost == 42.0
        assert picked.signature() == variants[0].signature()
        # The tie-break follows the variant order, not anything hidden.
        other, _ = reversed_order.select(q)
        assert other.signature() == variants[-1].signature()
        # Stable across repeated calls.
        assert all(
            forward.select(q)[0].signature() == picked.signature()
            for _ in range(10)
        )

    def test_tie_break_under_real_cost_tie(self):
        """A symmetric instance where both parenthesizations cost the same."""
        chain = general_chain(3)
        variants = all_variants(chain)
        dispatcher = Dispatcher(chain, variants)
        q = (10, 10, 10, 10)  # square chain: (AB)C and A(BC) tie exactly
        costs = [flop_estimator(v, q) for v in variants]
        assert costs[0] == costs[1]  # the tie is real
        picked, _ = dispatcher.select(q)
        assert picked.signature() == variants[0].signature()

    def test_costs_listing(self):
        chain = general_chain(3)
        dispatcher = Dispatcher(chain, all_variants(chain))
        listing = dispatcher.costs((4, 5, 6, 7))
        assert len(listing) == 2
        for _, cost in listing:
            assert cost > 0

    def test_custom_estimator(self):
        chain = general_chain(3)
        variants = all_variants(chain)
        # An estimator that inverts preferences picks the worst variant.
        dispatcher = Dispatcher(
            chain, variants, cost_estimator=lambda v, q: -flop_estimator(v, q)
        )
        q = (2, 3, 2, 100)
        worst, _ = dispatcher.select(q)
        best = min(variants, key=lambda v: v.flop_cost(q))
        assert worst.signature() != best.signature()


class TestBatchedSelection:
    def test_select_many_matches_per_instance_select(self):
        chain = general_chain(4)
        dispatcher = Dispatcher(chain, all_variants(chain))
        rng = np.random.default_rng(3)
        instances = sample_instances(chain, 40, rng, low=2, high=500)
        batched = dispatcher.select_many(instances)
        assert len(batched) == 40
        for q, (variant, cost) in zip(instances, batched):
            q = tuple(int(x) for x in q)
            expected_cost = min(v.flop_cost(q) for v in dispatcher.variants)
            assert cost == pytest.approx(expected_cost)
            assert variant.flop_cost(q) == pytest.approx(cost)

    def test_select_many_keeps_first_minimum_tie_break(self):
        chain = general_chain(3)
        variants = all_variants(chain)
        duplicated = variants + variants  # every cost ties pairwise
        dispatcher = Dispatcher(chain, duplicated)
        picks = dispatcher.select_many([(5, 6, 7, 8), (100, 2, 3, 2)])
        for variant, _ in picks:
            # The winner is always from the first copy of the list.
            assert duplicated.index(variant) < len(variants)

    def test_cost_matrix_shape_and_values(self):
        chain = general_chain(3)
        variants = all_variants(chain)
        dispatcher = Dispatcher(chain, variants)
        rng = np.random.default_rng(5)
        instances = sample_instances(chain, 7, rng)
        matrix = dispatcher.cost_matrix(instances)
        assert matrix.shape == (len(variants), 7)
        for i, variant in enumerate(variants):
            for j, q in enumerate(instances):
                q = tuple(int(x) for x in q)
                assert matrix[i, j] == pytest.approx(variant.flop_cost(q))

    def test_single_vector_and_empty_batch(self):
        chain = general_chain(3)
        dispatcher = Dispatcher(chain, all_variants(chain))
        matrix = dispatcher.cost_matrix((4, 5, 6, 7))
        assert matrix.shape == (len(dispatcher), 1)
        assert dispatcher.select_many(np.empty((0, 4))) == []

    def test_select_many_with_custom_estimator(self):
        chain = general_chain(3)
        variants = all_variants(chain)

        def negated(variant, sizes):  # prefers the *worst* FLOP variant
            return -variant.flop_cost(sizes)

        dispatcher = Dispatcher(chain, variants, cost_estimator=negated)
        q = (2, 3, 2, 100)
        [(variant, cost)] = dispatcher.select_many([q])
        worst = max(v.flop_cost(q) for v in variants)
        assert -cost == pytest.approx(worst)
        assert variant.flop_cost(q) == pytest.approx(worst)

    def test_variant_list_changes_invalidate_the_term_stack(self):
        chain = general_chain(3)
        variants = all_variants(chain)
        dispatcher = Dispatcher(chain, variants)
        q = (2, 3, 2, 100)
        dispatcher.select(q)  # builds the cached stack
        # Reassignment resets the cache outright...
        dispatcher.variants = [variants[0]]
        picked, cost = dispatcher.select(q)
        assert picked is variants[0]
        assert cost == pytest.approx(variants[0].flop_cost(q))
        # ...and in-place growth is caught by the length guard.
        dispatcher.variants.extend(variants[1:])
        picked, cost = dispatcher.select(q)
        best = min(v.flop_cost(q) for v in variants)
        assert cost == pytest.approx(best)

    def test_validates_every_row(self):
        chain = general_chain(3)
        dispatcher = Dispatcher(chain, all_variants(chain))
        with pytest.raises(Exception):
            dispatcher.select_many([(4, 5, 6, 7), (4, 5, 6)])  # short row

    def test_rejects_bad_rank(self):
        chain = general_chain(3)
        dispatcher = Dispatcher(chain, all_variants(chain))
        with pytest.raises(DispatchError, match="2-D"):
            dispatcher.cost_matrix(np.zeros((2, 2, 2)))


class TestExecution:
    @pytest.mark.parametrize("seed", range(5))
    def test_end_to_end_matches_oracle(self, seed):
        rng = np.random.default_rng(seed)
        chain = random_option_chain(4, rng)
        dispatcher = Dispatcher(chain, all_variants(chain))
        sizes = small_sizes_for(chain, rng)
        arrays = random_instance_arrays(chain, sizes, rng)
        expected = naive_evaluate(chain, arrays)
        got = dispatcher(*arrays)
        scale = max(1.0, float(np.abs(expected).max()))
        np.testing.assert_allclose(got / scale, expected / scale, atol=1e-7)

    def test_accepts_list_argument(self):
        rng = np.random.default_rng(11)
        chain = general_chain(2)
        dispatcher = Dispatcher(chain, all_variants(chain))
        arrays = random_instance_arrays(chain, (3, 4, 5), rng)
        np.testing.assert_allclose(
            dispatcher(arrays), dispatcher(*arrays)
        )


class TestValidation:
    def test_needs_variants(self):
        with pytest.raises(DispatchError):
            Dispatcher(general_chain(3), [])

    def test_rejects_foreign_variants(self):
        chain_a, chain_b = general_chain(3), general_chain(4)
        with pytest.raises(DispatchError):
            Dispatcher(chain_a, all_variants(chain_b))

    def test_len(self):
        chain = general_chain(4)
        assert len(Dispatcher(chain, all_variants(chain))) == 5

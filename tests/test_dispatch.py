"""Tests for the run-time dispatcher (Fig. 1)."""

import numpy as np
import pytest

from repro.errors import DispatchError
from repro.compiler.dispatch import Dispatcher, flop_estimator
from repro.compiler.executor import naive_evaluate, random_instance_arrays
from repro.compiler.selection import all_variants, optimal_cost
from repro.experiments.sampling import sample_instances

from conftest import general_chain, random_option_chain, small_sizes_for


class TestSelection:
    def test_selects_argmin(self):
        chain = general_chain(4)
        variants = all_variants(chain)
        dispatcher = Dispatcher(chain, variants)
        q = (30, 2, 40, 3, 50)
        variant, cost = dispatcher.select(q)
        assert cost == pytest.approx(optimal_cost(chain, q))
        assert variant.flop_cost(q) == pytest.approx(cost)

    def test_selection_changes_with_sizes(self):
        chain = general_chain(3)
        variants = all_variants(chain)
        dispatcher = Dispatcher(chain, variants)
        left_first, _ = dispatcher.select((2, 3, 2, 100))
        right_first, _ = dispatcher.select((100, 2, 3, 2))
        assert left_first.signature() != right_first.signature()

    def test_costs_listing(self):
        chain = general_chain(3)
        dispatcher = Dispatcher(chain, all_variants(chain))
        listing = dispatcher.costs((4, 5, 6, 7))
        assert len(listing) == 2
        for _, cost in listing:
            assert cost > 0

    def test_custom_estimator(self):
        chain = general_chain(3)
        variants = all_variants(chain)
        # An estimator that inverts preferences picks the worst variant.
        dispatcher = Dispatcher(
            chain, variants, cost_estimator=lambda v, q: -flop_estimator(v, q)
        )
        q = (2, 3, 2, 100)
        worst, _ = dispatcher.select(q)
        best = min(variants, key=lambda v: v.flop_cost(q))
        assert worst.signature() != best.signature()


class TestExecution:
    @pytest.mark.parametrize("seed", range(5))
    def test_end_to_end_matches_oracle(self, seed):
        rng = np.random.default_rng(seed)
        chain = random_option_chain(4, rng)
        dispatcher = Dispatcher(chain, all_variants(chain))
        sizes = small_sizes_for(chain, rng)
        arrays = random_instance_arrays(chain, sizes, rng)
        expected = naive_evaluate(chain, arrays)
        got = dispatcher(*arrays)
        scale = max(1.0, float(np.abs(expected).max()))
        np.testing.assert_allclose(got / scale, expected / scale, atol=1e-7)

    def test_accepts_list_argument(self):
        rng = np.random.default_rng(11)
        chain = general_chain(2)
        dispatcher = Dispatcher(chain, all_variants(chain))
        arrays = random_instance_arrays(chain, (3, 4, 5), rng)
        np.testing.assert_allclose(
            dispatcher(arrays), dispatcher(*arrays)
        )


class TestValidation:
    def test_needs_variants(self):
        with pytest.raises(DispatchError):
            Dispatcher(general_chain(3), [])

    def test_rejects_foreign_variants(self):
        chain_a, chain_b = general_chain(3), general_chain(4)
        with pytest.raises(DispatchError):
            Dispatcher(chain_a, all_variants(chain_b))

    def test_len(self):
        chain = general_chain(4)
        assert len(Dispatcher(chain, all_variants(chain))) == 5

"""Tikhonov-regularization normal equations with the input language.

Tikhonov regularization (paper Section I) solves
``x = (A^T A + G^T G)^-1 A^T b``; once the regularized Gram matrix
``P := A^T A + G^T G`` has been formed it is symmetric positive-definite,
and applying the estimator to a block of right-hand sides ``B`` is the
generalized matrix chain ``P^-1 A^T B``.

This example uses the *textual* input language of the paper's Fig. 2 (the
other examples use the Python builder API) and demonstrates dispatch
crossover: for few right-hand sides the Cholesky solve dominates; for many,
the chain association order matters.

Run:  python examples/tikhonov.py
"""

import numpy as np

from repro import compile_chain, parse_program
from repro.compiler.executor import naive_evaluate

PROGRAM = """
# Tikhonov estimator applied to a block of right-hand sides.
Matrix P <Symmetric, SPD>;       # regularized Gram matrix  A^T A + G^T G
Matrix A <General, Singular>;    # design matrix (stored transposed below)
Matrix B <General, Singular>;    # right-hand sides
X := P^-1 * A^T * B;
"""


def main() -> None:
    program = parse_program(PROGRAM)
    print(f"parsed chain: {program.result_name} := {program.chain}")

    generated = compile_chain(program.chain, expand_by=1, seed=11)
    print(f"variants: {[v.name for v in generated.variants]}")
    for variant in generated.variants:
        print(f"  cost[{variant.name}] = {variant.symbolic_cost()}")

    rng = np.random.default_rng(1)
    n_features, n_samples = 60, 40
    a = rng.standard_normal((n_samples, n_features))
    g = rng.standard_normal((n_features, n_features))
    p = a.T @ a + g.T @ g  # SPD by construction

    for n_rhs in (1, 10, 1000):
        sizes = (n_features, n_features, n_samples, n_rhs)
        variant, cost = generated.select(sizes)
        print(
            f"n_rhs={n_rhs:>5}: dispatches to {variant.name} "
            f"({' -> '.join(variant.kernel_names)}), {cost:,.0f} FLOPs"
        )

    # Evaluate and verify against a dense oracle.  The second operand is
    # A^T, so the stored array is A itself (shape n_samples x n_features).
    b = rng.standard_normal((n_samples, 5))
    arrays = [p, a, b]
    x = generated(*arrays)
    expected = naive_evaluate(generated.chain, arrays)
    err = np.abs(x - expected).max() / np.abs(expected).max()
    print(f"numeric check: max rel err = {err:.2e}")

    # Cross-check against the closed-form Tikhonov solution.
    direct = np.linalg.solve(p, a.T @ b)
    err2 = np.abs(x - direct).max() / np.abs(direct).max()
    print(f"against np.linalg.solve: max rel err = {err2:.2e}")


if __name__ == "__main__":
    main()

"""Emit the full C++ artifact set for one chain (paper Fig. 1 outputs).

The paper's code generator produces C++ functions for each selected variant,
paired cost functions, and a dispatch function, compiled and linked into the
application.  This example writes both emitted files —
``generated_chain.cpp`` and ``gmc_kernels.hpp`` — into ``examples/out/``.

Run:  python examples/codegen_cpp_demo.py
"""

from pathlib import Path

from repro import Matrix, Property, Structure, compile_chain
from repro.codegen.cpp_emitter import emit_kernels_header


def main() -> None:
    G1 = Matrix("G1", Structure.GENERAL)
    L = Matrix("L", Structure.LOWER_TRIANGULAR, Property.NON_SINGULAR)
    G2 = Matrix("G2", Structure.GENERAL)
    P = Matrix("P", Structure.SYMMETRIC, Property.SPD)
    chain = G1 * L.inv * G2 * P.inv

    generated = compile_chain(chain, expand_by=2, seed=5)
    out_dir = Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)

    cpp = generated.cpp_source(function_name="evaluate_g1linv_g2_pinv")
    header = emit_kernels_header()

    (out_dir / "generated_chain.cpp").write_text(cpp)
    (out_dir / "gmc_kernels.hpp").write_text(header)

    print(f"chain: {chain}")
    print(f"emitted {len(generated)} variants")
    print(f"wrote {out_dir / 'generated_chain.cpp'} ({len(cpp.splitlines())} lines)")
    print(f"wrote {out_dir / 'gmc_kernels.hpp'} ({len(header.splitlines())} lines)")
    print()
    print("dispatch function excerpt:")
    lines = cpp.splitlines()
    start = next(i for i, l in enumerate(lines) if "// Dispatch" in l)
    print("\n".join(lines[start : start + 18]))


if __name__ == "__main__":
    main()

"""Blocked triangular inversion chain: G1 L1^-1 G2 L2^-1 (paper Section I).

The paper cites the chain ``G1 L1^-1 G2 L2^-1`` from a blocked algorithm
for inverting a triangular matrix.  Both inverses have non-singular
triangular coefficients, so every association involving them maps to cheap
TRSM solves — *if* the compiler propagates the operators well.  This
example shows the generated variants, their symbolic costs, and a
comparison against the naive strategy of explicitly inverting L1 and L2
first (what a user typing ``G1 @ inv(L1) @ G2 @ inv(L2)`` gets in NumPy).

Run:  python examples/triangular_inversion.py
"""

import numpy as np

from repro import Matrix, Property, Structure, compile_chain
from repro.compiler.executor import naive_evaluate, random_instance_arrays


def explicit_inversion_cost(sizes) -> float:
    """FLOPs of inv(L1), inv(L2) plus three left-to-right GEMMs."""
    q = sizes
    inv_cost = 2 * q[1] ** 3 + 2 * q[3] ** 3  # LAPACK getri-style on full mats
    gemms = (
        2 * q[0] * q[1] * q[2]
        + 2 * q[0] * q[2] * q[3]
        + 2 * q[0] * q[3] * q[4]
    )
    return inv_cost + gemms


def main() -> None:
    G1 = Matrix("G1", Structure.GENERAL)
    L1 = Matrix("L1", Structure.LOWER_TRIANGULAR, Property.NON_SINGULAR)
    G2 = Matrix("G2", Structure.GENERAL)
    L2 = Matrix("L2", Structure.LOWER_TRIANGULAR, Property.NON_SINGULAR)
    chain = G1 * L1.inv * G2 * L2.inv

    print(f"chain: {chain}")
    generated = compile_chain(chain, expand_by=1, seed=7)
    for variant in generated.variants:
        print()
        print(variant.describe())
        print(f"  symbolic cost: {variant.symbolic_cost()}")

    rng = np.random.default_rng(3)
    print()
    for sizes in [(500, 80, 80, 80, 80), (50, 400, 400, 400, 400)]:
        variant, cost = generated.select(sizes)
        naive = explicit_inversion_cost(sizes)
        print(
            f"q={sizes}: {variant.name} costs {cost:,.0f} FLOPs; "
            f"explicit inversion + GEMMs would cost {naive:,.0f} "
            f"({naive / cost:.1f}x more)"
        )

    sizes = (20, 8, 8, 6, 6)
    arrays = random_instance_arrays(generated.chain, sizes, rng)
    result = generated(*arrays)
    check = naive_evaluate(generated.chain, arrays)
    err = np.abs(result - check).max() / np.abs(check).max()
    print(f"\nnumeric check on q={sizes}: max rel err = {err:.2e}")


if __name__ == "__main__":
    main()

"""Multi-versioned dispatch vs. searching at run time (paper Section I).

The paper rejects the "search for an optimal sequence at run time, then
execute it" alternative (the Linnea approach) for latency reasons: the
search re-runs feature inference, operator rewrites, and kernel assignment
on every call.  This example puts numbers on that trade-off using our
substrate:

* the generated code's dispatch costs microseconds and is within a small
  factor of optimal (Theorem 2);
* the online search always finds the optimum (it can even beat the
  Section IV heuristic variants) but pays milliseconds per new instance.

Run:  python examples/online_vs_generated.py
"""

import time

import numpy as np

from repro import Matrix, Property, Structure, compile_chain
from repro.baselines.online import OnlineSearchEvaluator
from repro.experiments.sampling import sample_instances


def main() -> None:
    G1 = Matrix("G1", Structure.GENERAL)
    P = Matrix("P", Structure.SYMMETRIC, Property.SPD)
    L = Matrix("L", Structure.LOWER_TRIANGULAR, Property.NON_SINGULAR)
    G2 = Matrix("G2", Structure.GENERAL)
    G3 = Matrix("G3", Structure.GENERAL)
    chain = G1 * P.inv * G2 * L.inv * G3

    generated = compile_chain(chain, expand_by=1, seed=0)
    online = OnlineSearchEvaluator(generated.chain, cache_size=0)
    print(f"chain: {chain}")
    print(f"generated variants: {len(generated)}")

    rng = np.random.default_rng(1)
    instances = sample_instances(generated.chain, 50, rng, low=50, high=1000)

    # Latency of the two decision procedures (no numerics, planning only).
    start = time.perf_counter()
    for q in instances:
        generated.select(tuple(int(x) for x in q))
    dispatch_us = (time.perf_counter() - start) / len(instances) * 1e6

    start = time.perf_counter()
    for q in instances:
        online.plan(tuple(int(x) for x in q))
    search_us = (time.perf_counter() - start) / len(instances) * 1e6

    print(f"\ndecision latency per instance:")
    print(f"  generated dispatch : {dispatch_us:10.1f} us")
    print(f"  online DP search   : {search_us:10.1f} us "
          f"({search_us / dispatch_us:.0f}x slower)")

    # Cost quality: how far is each from the search optimum?
    ratios = []
    for q in instances:
        q = tuple(int(x) for x in q)
        _, dispatched = generated.select(q)
        optimal = online.planned_cost(q)
        ratios.append(dispatched / optimal)
    ratios = np.asarray(ratios)
    print(f"\ndispatched cost over search-optimal cost:")
    print(f"  mean {ratios.mean():.4f}, worst {ratios.max():.4f}")
    print(
        "\nconclusion: multi-versioning trades a few percent of FLOPs for a "
        f"~{search_us / dispatch_us:.0f}x faster evaluation decision."
    )


if __name__ == "__main__":
    main()

"""Diagonal (Jacobi) preconditioning chain — the diagonal extension.

The paper's input grammar leaves the structure list open
(``General | Symmetric | LowerTri | ...``); this reproduction adds a
``Diagonal`` structure with sub-cubic kernels (scaling is O(mn), not the
O(m^2 n) a triangular kernel would charge).  A natural use is Jacobi-style
preconditioning, where the two-sided scaled operator

    R := D^-1 * A * D^-1 * B

appears with a diagonal D extracted from A.  This example shows the cheap
kernels being picked, the cost gap against treating D as merely triangular,
and a numeric check.

Run:  python examples/jacobi_preconditioning.py
"""

import numpy as np

from repro import Matrix, Property, Structure, compile_chain
from repro.compiler.executor import naive_evaluate


def main() -> None:
    D = Matrix("D", Structure.DIAGONAL, Property.NON_SINGULAR)
    A = Matrix("A", Structure.SYMMETRIC, Property.SPD)
    B = Matrix("B", Structure.GENERAL)
    chain = D.inv * A * D.inv * B

    generated = compile_chain(chain, expand_by=1, seed=3)
    print(f"chain: {chain}")
    for variant in generated.variants:
        print()
        print(variant.describe())
        print(f"  symbolic cost: {variant.symbolic_cost()}")

    # Compare against the same chain with D declared lower-triangular
    # (which is technically true — a diagonal matrix is triangular — but
    # throws away the cheap scaling kernels).
    Dt = Matrix("D", Structure.LOWER_TRIANGULAR, Property.NON_SINGULAR)
    triangular_version = compile_chain(Dt.inv * A * Dt.inv * B, seed=3)

    for sizes in [(500, 500, 500, 500, 8), (200, 200, 200, 200, 600)]:
        _, cost_diag = generated.select(sizes)
        _, cost_tri = triangular_version.select(sizes)
        print(
            f"\nq={sizes}: diagonal-aware cost {cost_diag:,.0f} FLOPs, "
            f"triangular-only {cost_tri:,.0f} FLOPs "
            f"({cost_tri / cost_diag:.2f}x more)"
        )

    # Numeric check on a small instance.
    rng = np.random.default_rng(0)
    n, k = 30, 5
    a = rng.standard_normal((n, n))
    spd = a @ a.T / np.sqrt(n) + np.eye(n)
    d = np.diag(np.abs(np.diag(spd)) ** 0.5)
    b = rng.standard_normal((n, k))
    arrays = [d, spd, d, b]
    result = generated(*arrays)
    check = naive_evaluate(generated.chain, arrays)
    err = np.abs(result - check).max() / np.abs(check).max()
    print(f"\nnumeric check: max rel err = {err:.2e}")


if __name__ == "__main__":
    main()

"""Schur complement via the sum-of-chains extension.

The paper's conclusion lists "more general expressions involving addition
and subtraction" as future work; this reproduction implements the first
slice (sums of scaled chains, no common-subexpression elimination).  The
flagship use case is the Schur complement of a block SPD matrix,

    S := A - B * D^-1 * C,

which drives block factorizations, domain decomposition, and marginal
covariances of Gaussian models.  Each term is compiled with the full
multi-versioning pipeline; the subtraction is a fixed post-pass.

Run:  python examples/schur_complement.py
"""

import numpy as np

from repro import compile_expression

SOURCE = """
Matrix A <Symmetric, SPD>;      # upper-left block
Matrix B <General, Singular>;   # upper-right block
Matrix D <Symmetric, SPD>;      # lower-right block
Matrix C <General, Singular>;   # lower-left block
S := A - B * D^-1 * C;
"""


def main() -> None:
    generated = compile_expression(SOURCE, expand_by=1, seed=0)
    print(f"expression: {generated.expression}")
    print(f"compiled {len(generated)} terms")
    for term, code in zip(generated.expression, generated.term_codes):
        print(f"\nterm {term}: {len(code)} variants")
        for variant in code.variants:
            print(f"  {variant.name}: {' -> '.join(variant.kernel_names)}")

    rng = np.random.default_rng(7)
    for p, m in [(400, 50), (50, 400)]:
        x = rng.standard_normal((p + m, p + m))
        full = x @ x.T / np.sqrt(p + m) + np.eye(p + m)
        blocks = {
            "A": full[:p, :p].copy(),
            "B": full[:p, p:].copy(),
            "C": full[p:, :p].copy(),
            "D": full[p:, p:].copy(),
        }
        cost = generated.flop_cost(blocks)
        result = generated(**blocks)
        expected = blocks["A"] - blocks["B"] @ np.linalg.solve(
            blocks["D"], blocks["C"]
        )
        err = np.abs(result - expected).max() / np.abs(expected).max()
        print(
            f"\nblock sizes p={p}, m={m}: dispatched cost {cost:,.0f} FLOPs, "
            f"max rel err {err:.2e}"
        )
        # The Schur complement of an SPD matrix is SPD.
        eigenvalues = np.linalg.eigvalsh((result + result.T) / 2)
        print(f"  smallest eigenvalue of S: {eigenvalues.min():.3e} (> 0)")


if __name__ == "__main__":
    main()

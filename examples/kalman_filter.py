"""Ensemble Kalman filter chain: G1 G2 G3^T M^-1 (paper Section I).

The paper motivates GMCs with the ensemble Kalman filter, whose update
involves the chain ``G1 G2 G3^T M^-1`` where the Gs are general and ``M``
is a symmetric positive-definite innovation covariance.  The expression is
fixed, but the ensemble size, state dimension, and observation dimension
vary between deployments — exactly the symbolic-size setting.

This example compiles the chain once and then evaluates it across three
regimes (small ensembles, large ensembles, square-ish), showing how the
dispatcher picks different variants — and how much worse a single
left-to-right evaluation would have been.

Run:  python examples/kalman_filter.py
"""

import numpy as np

from repro import Matrix, Property, Structure, compile_chain, left_to_right_variant
from repro.compiler.executor import naive_evaluate, random_instance_arrays
from repro.compiler.selection import optimal_cost


def main() -> None:
    # X (state ensemble), HX (observed ensemble), HXc (centred), and the
    # SPD innovation covariance M.
    X = Matrix("X", Structure.GENERAL)
    HX = Matrix("HX", Structure.GENERAL)
    HXc = Matrix("HXc", Structure.GENERAL)
    M = Matrix("M", Structure.SYMMETRIC, Property.SPD)
    chain = X * HX * HXc.T * M.inv

    print(f"Kalman-filter chain: {chain}")
    generated = compile_chain(chain, expand_by=1, size_range=(10, 2000), seed=1)
    print(f"variants: {[v.name for v in generated.variants]}")
    ltr = left_to_right_variant(generated.chain)
    rng = np.random.default_rng(0)

    regimes = {
        # q = (state dim, ensemble, ensemble, obs dim, obs dim)
        "large state, small ensemble": (2000, 50, 50, 40, 40),
        "small state, large ensemble": (40, 1000, 1000, 30, 30),
        "balanced": (300, 300, 300, 300, 300),
    }
    for label, sizes in regimes.items():
        variant, cost = generated.select(sizes)
        opt = optimal_cost(generated.chain, sizes)
        ltr_cost = ltr.flop_cost(sizes)
        print(f"\n{label}: q = {sizes}")
        print(f"  dispatched variant : {variant.name} "
              f"({' -> '.join(variant.kernel_names)})")
        print(f"  dispatched cost    : {cost:,.0f} FLOPs "
              f"({cost / opt:.3f}x optimal)")
        print(f"  left-to-right cost : {ltr_cost:,.0f} FLOPs "
              f"({ltr_cost / opt:.2f}x optimal)")

    # Numerical spot check on a small instance.
    sizes = (50, 12, 12, 9, 9)
    arrays = random_instance_arrays(generated.chain, sizes, rng)
    result = generated(*arrays)
    check = naive_evaluate(generated.chain, arrays)
    err = np.abs(result - check).max() / np.abs(check).max()
    print(f"\nnumeric check on q={sizes}: max rel err = {err:.2e}")


if __name__ == "__main__":
    main()

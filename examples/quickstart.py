"""Quickstart: compile and evaluate a generalized matrix chain.

This is the reproduction's one-minute tour of Fig. 1:

1. describe a symbolic chain (features known, sizes unknown);
2. compile it: the code generator picks a provably-good set of variants
   (Theorem 2) and builds the dispatch function;
3. call the generated code with concrete matrices: the dispatcher sees the
   sizes, evaluates every variant's cost function, and runs the best one.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Matrix, Property, Structure, compile_chain
from repro.compiler.executor import naive_evaluate, random_instance_arrays


def main() -> None:
    # R := G1 * L^-1 * G2  — a general matrix, a triangular solve, another
    # general matrix.  Sizes are symbolic at compile time.
    G1 = Matrix("G1", Structure.GENERAL)
    L = Matrix("L", Structure.LOWER_TRIANGULAR, Property.NON_SINGULAR)
    G2 = Matrix("G2", Structure.GENERAL)
    chain = G1 * L.inv * G2

    print(f"chain: {chain}")
    generated = compile_chain(chain, expand_by=1, seed=0)
    print(f"compiled {len(generated)} variants:")
    print(generated.describe())
    print()

    rng = np.random.default_rng(42)
    for sizes in [(300, 40, 40, 10), (10, 40, 40, 300), (100, 100, 100, 100)]:
        arrays = random_instance_arrays(generated.chain, sizes, rng)
        variant, cost = generated.select(sizes)
        result = generated(*arrays)
        check = naive_evaluate(generated.chain, arrays)
        err = np.abs(result - check).max() / max(1.0, np.abs(check).max())
        print(
            f"q={sizes}: dispatched to {variant.name:>3} "
            f"({'/'.join(variant.kernel_names)}), "
            f"cost={cost:,.0f} FLOPs, max rel err={err:.2e}"
        )

    print()
    print("Generated C++ (excerpt):")
    print("\n".join(generated.cpp_source().splitlines()[:25]))


if __name__ == "__main__":
    main()

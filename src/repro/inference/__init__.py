"""Feature inference for intermediate results (paper Fig. 4, Section IV)."""

from repro.inference.rules import (
    infer_product_structure,
    infer_property,
    infer_association_features,
)

__all__ = [
    "infer_product_structure",
    "infer_property",
    "infer_association_features",
]

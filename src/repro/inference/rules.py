"""Structure and property inference lookup tables (paper Fig. 4).

The code generator must reason about the features of intermediate results so
that specialized kernels can be assigned downstream.  Following the paper,
inference considers *only* the features of the two operands — algebraic
relations between operands (e.g. ``Q`` being the Q-factor of the other
operand) are deliberately ignored, which may yield a conservative (but never
wrong) feature assignment.

Both tables are indexed by the *effective* features of the operands: the
structure after accounting for transposition, and the structure/property of
an inverted operand's inverse (inversion preserves all four structures and
all our properties: ``L^-1`` is lower-triangular, ``S^-1`` symmetric,
``P^-1`` SPD, ``Q^-1`` orthogonal).
"""

from __future__ import annotations

from repro.ir.features import Property, Structure

_G = Structure.GENERAL
_S = Structure.SYMMETRIC
_L = Structure.LOWER_TRIANGULAR
_U = Structure.UPPER_TRIANGULAR
_D = Structure.DIAGONAL


#: Fig. 4 (left): structure of ``X := op(A) op(B)`` from operand structures.
#: Rows: left operand; columns: right operand.  The diagonal rows/columns
#: extend the paper's table: diagonal scaling preserves triangularity and
#: diagonality but breaks symmetry.
_STRUCTURE_TABLE: dict[tuple[Structure, Structure], Structure] = {
    (_G, _G): _G, (_G, _S): _G, (_G, _L): _G, (_G, _U): _G,
    (_S, _G): _G, (_S, _S): _G, (_S, _L): _G, (_S, _U): _G,
    (_L, _G): _G, (_L, _S): _G, (_L, _L): _L, (_L, _U): _G,
    (_U, _G): _G, (_U, _S): _G, (_U, _L): _G, (_U, _U): _U,
    (_D, _G): _G, (_D, _S): _G, (_D, _L): _L, (_D, _U): _U, (_D, _D): _D,
    (_G, _D): _G, (_S, _D): _G, (_L, _D): _L, (_U, _D): _U,
}


def infer_product_structure(left: Structure, right: Structure) -> Structure:
    """Structure of a product of two operands with effective structures.

    Only same-triangularity products preserve triangularity; every other
    combination (including symmetric times symmetric) is general.
    Diagonal factors preserve the other operand's triangularity.
    """
    return _STRUCTURE_TABLE[(left, right)]


def infer_property(
    left_prop: Property,
    right_prop: Property,
    result_square: bool,
) -> Property:
    """Property of a product/solve result (Fig. 4, right table).

    * Orthogonality is closed under multiplication.
    * The product of two invertible (necessarily square) matrices is
      invertible; SPD-ness is *not* preserved by products (the product of
      two SPD matrices is similar to an SPD matrix but not symmetric), so
      SPD operands are demoted to plain invertibility.
    * If either operand carries no invertibility guarantee, or the result is
      not guaranteed square, the result is (possibly) singular.
    """
    if not result_square:
        return Property.SINGULAR
    if left_prop is Property.ORTHOGONAL and right_prop is Property.ORTHOGONAL:
        return Property.ORTHOGONAL
    if left_prop.is_invertible and right_prop.is_invertible:
        return Property.NON_SINGULAR
    return Property.SINGULAR


def infer_association_features(
    left_structure: Structure,
    left_prop: Property,
    right_structure: Structure,
    right_prop: Property,
    result_square: bool,
) -> tuple[Structure, Property]:
    """Features of an association's result (structure, property).

    The same tables cover both products and solves: the effective structure
    and property of an inverted operand equal those of the operand itself
    (inversion preserves all features we track), so ``A^-1 B`` is inferred
    exactly like ``A B``.
    """
    structure = infer_product_structure(left_structure, right_structure)
    prop = infer_property(left_prop, right_prop, result_square)
    if prop is Property.SPD and structure is not Structure.SYMMETRIC:
        prop = Property.NON_SINGULAR
    return structure, prop

"""The run-time dispatch function (paper Fig. 1).

At run time, the application calls the dispatch function with concrete
matrices.  The dispatcher evaluates the cost function of every generated
variant on the observed sizes and passes control to the cheapest one.

The cost function is pluggable: by default it is the FLOP cost; the
execution-time experiment plugs in performance-model estimates instead
(Section VII-B).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import DispatchError
from repro.ir.chain import Chain
from repro.compiler.executor import execute_variant, infer_sizes
from repro.compiler.variant import Variant

#: Maps (variant, sizes) to an estimated cost; lower is better.
CostEstimator = Callable[[Variant, Sequence[int]], float]


def flop_estimator(variant: Variant, sizes: Sequence[int]) -> float:
    """The default cost estimator: analytic FLOP count."""
    return variant.flop_cost(sizes)


class Dispatcher:
    """Multi-versioned evaluator for one chain shape.

    This object plays the role of the generated dispatch function: it owns
    the ``k`` generated variants (with their cost functions) and, per call,
    selects and executes the best variant for the observed matrix sizes.
    """

    def __init__(
        self,
        chain: Chain,
        variants: Sequence[Variant],
        cost_estimator: CostEstimator = flop_estimator,
    ):
        if not variants:
            raise DispatchError("a dispatcher needs at least one variant")
        for variant in variants:
            if variant.chain is not chain and variant.chain != chain:
                raise DispatchError(
                    f"variant {variant.name!r} was built for a different chain"
                )
        self.chain = chain
        self.variants = list(variants)  # via the setter: resets the stack
        self.cost_estimator = cost_estimator

    @property
    def variants(self) -> list["Variant"]:
        return self._variants

    @variants.setter
    def variants(self, value: Sequence["Variant"]) -> None:
        # Flattened cost-term stack of the variant set, built lazily on the
        # first FLOP-estimated dispatch and reused for every later call —
        # the per-call hot path pays only the broadcast evaluation sweep.
        # Reassigning the variant list invalidates it (a length change from
        # in-place mutation is caught at evaluation time too).
        self._variants = list(value)
        self._term_stack = None

    def cost_matrix(self, instances) -> np.ndarray:
        """Estimated costs of every variant on every instance, batched.

        ``instances`` is one size vector or an ``(count, n+1)`` array; the
        result has shape ``(num_variants, count)``.  Every row is validated
        against the chain.  Under the default FLOP estimator, the whole
        matrix is computed with the :func:`~repro.compiler.selection.
        flop_cost_matrix` broadcast sweep (one numpy pass over all variants
        and instances, no per-variant Python loop); a custom estimator
        falls back to per-pair evaluation.
        """
        instances = np.asarray(instances)
        if instances.ndim == 1:
            instances = instances[None, :]
        if instances.ndim != 2:
            raise DispatchError(
                f"instances must be a size vector or a 2-D (count, n+1) "
                f"array, got shape {instances.shape}"
            )
        validated = np.array(
            [
                self.chain.validate_sizes([int(x) for x in row])
                for row in instances
            ],
            dtype=np.float64,
        ).reshape(instances.shape[0], self.chain.n + 1)
        if self.cost_estimator is flop_estimator:
            from repro.compiler.selection import (
                evaluate_cost_terms,
                flatten_cost_terms,
            )

            variants = self._variants
            if self._term_stack is None or self._term_stack[1] != len(variants):
                self._term_stack = (
                    flatten_cost_terms(variants, self.chain.n + 1),
                    len(variants),
                )
            return evaluate_cost_terms(
                self._term_stack[0], len(variants), validated
            )
        return np.array(
            [
                [
                    float(self.cost_estimator(v, tuple(int(x) for x in row)))
                    for row in validated
                ]
                for v in self.variants
            ],
            dtype=np.float64,
        ).reshape(len(self.variants), validated.shape[0])

    def select_many(
        self, instances
    ) -> list[tuple[Variant, float]]:
        """Batched dispatch: the winning (variant, cost) per instance.

        One broadcast cost sweep covers all instances; ``argmin`` keeps the
        documented tie-break (first occurrence of the minimum, i.e. the
        earliest variant in ``self.variants`` order).
        """
        costs = self.cost_matrix(instances)
        winners = costs.argmin(axis=0)
        return [
            (self.variants[v], float(costs[v, i]))
            for i, v in enumerate(winners)
        ]

    def select(self, sizes: Sequence[int]) -> tuple[Variant, float]:
        """The best variant and its estimated cost for an instance.

        Tie-break: when several variants share the minimum estimated cost,
        the *earliest* in ``self.variants`` order wins (``argmin`` returns
        the first occurrence of the minimum).  That order is itself
        deterministic — Theorem 2 emits representatives in equivalence-
        class order, and Algorithm 1 appends expansion picks after them —
        so dispatch is stable run-to-run and process-to-process, which the
        serving layer relies on for reproducible answers.
        """
        [(variant, cost)] = self.select_many([sizes])
        return variant, cost

    def costs(self, sizes: Sequence[int]) -> list[tuple[str, float]]:
        """Estimated cost of every variant (for inspection/debugging)."""
        matrix = self.cost_matrix([sizes])
        return [
            (v.name or str(i), float(matrix[i, 0]))
            for i, v in enumerate(self.variants)
        ]

    def __call__(self, *arrays: np.ndarray) -> np.ndarray:
        """Evaluate the chain: infer sizes, pick the best variant, run it."""
        if len(arrays) == 1 and isinstance(arrays[0], (list, tuple)):
            arrays = tuple(arrays[0])
        sizes = infer_sizes(self.chain, [np.asarray(a) for a in arrays])
        variant, _ = self.select(sizes)
        return execute_variant(variant, list(arrays))

    def __len__(self) -> int:
        return len(self.variants)

"""Compatibility shim: the dispatcher now lives in :mod:`repro.runtime`.

The run-time dispatch function (paper Fig. 1) moved into
:mod:`repro.runtime.dispatcher`, where it gained a size-keyed memo and
compiled :class:`~repro.runtime.plan.ExecutionPlan` replay.  This module
re-exports the public names so existing
``from repro.compiler.dispatch import ...`` imports keep working.
"""

from __future__ import annotations

from repro.runtime.dispatcher import (  # noqa: F401
    DEFAULT_MEMO_CAPACITY,
    CostEstimator,
    DispatchOutcome,
    Dispatcher,
    flop_estimator,
)

__all__ = [
    "DEFAULT_MEMO_CAPACITY",
    "CostEstimator",
    "DispatchOutcome",
    "Dispatcher",
    "flop_estimator",
]

"""The run-time dispatch function (paper Fig. 1).

At run time, the application calls the dispatch function with concrete
matrices.  The dispatcher evaluates the cost function of every generated
variant on the observed sizes and passes control to the cheapest one.

The cost function is pluggable: by default it is the FLOP cost; the
execution-time experiment plugs in performance-model estimates instead
(Section VII-B).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import DispatchError
from repro.ir.chain import Chain
from repro.compiler.executor import execute_variant, infer_sizes
from repro.compiler.variant import Variant

#: Maps (variant, sizes) to an estimated cost; lower is better.
CostEstimator = Callable[[Variant, Sequence[int]], float]


def flop_estimator(variant: Variant, sizes: Sequence[int]) -> float:
    """The default cost estimator: analytic FLOP count."""
    return variant.flop_cost(sizes)


class Dispatcher:
    """Multi-versioned evaluator for one chain shape.

    This object plays the role of the generated dispatch function: it owns
    the ``k`` generated variants (with their cost functions) and, per call,
    selects and executes the best variant for the observed matrix sizes.
    """

    def __init__(
        self,
        chain: Chain,
        variants: Sequence[Variant],
        cost_estimator: CostEstimator = flop_estimator,
    ):
        if not variants:
            raise DispatchError("a dispatcher needs at least one variant")
        for variant in variants:
            if variant.chain is not chain and variant.chain != chain:
                raise DispatchError(
                    f"variant {variant.name!r} was built for a different chain"
                )
        self.chain = chain
        self.variants = list(variants)
        self.cost_estimator = cost_estimator

    def select(self, sizes: Sequence[int]) -> tuple[Variant, float]:
        """The best variant and its estimated cost for an instance.

        Tie-break: when several variants share the minimum estimated cost,
        the *earliest* in ``self.variants`` order wins (strict ``<``
        comparison never replaces an incumbent).  That order is itself
        deterministic — Theorem 2 emits representatives in equivalence-
        class order, and Algorithm 1 appends expansion picks after them —
        so dispatch is stable run-to-run and process-to-process, which the
        serving layer relies on for reproducible answers.
        """
        q = self.chain.validate_sizes(sizes)
        best: Optional[Variant] = None
        best_cost = float("inf")
        for variant in self.variants:
            cost = self.cost_estimator(variant, q)
            if cost < best_cost:
                best, best_cost = variant, cost
        assert best is not None
        return best, best_cost

    def costs(self, sizes: Sequence[int]) -> list[tuple[str, float]]:
        """Estimated cost of every variant (for inspection/debugging)."""
        q = self.chain.validate_sizes(sizes)
        return [(v.name or str(i), self.cost_estimator(v, q))
                for i, v in enumerate(self.variants)]

    def __call__(self, *arrays: np.ndarray) -> np.ndarray:
        """Evaluate the chain: infer sizes, pick the best variant, run it."""
        if len(arrays) == 1 and isinstance(arrays[0], (list, tuple)):
            arrays = tuple(arrays[0])
        sizes = infer_sizes(self.chain, [np.asarray(a) for a in arrays])
        variant, _ = self.select(sizes)
        return execute_variant(variant, list(arrays))

    def __len__(self) -> int:
        return len(self.variants)

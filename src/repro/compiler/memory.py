"""Buffer planning for generated variants.

The paper notes that executing a kernel sequence must "manage memory
accordingly": every association produces an intermediate, and naive code
would allocate one buffer per step.  This module implements the standard
compiler treatment:

* **lifetime analysis** — an intermediate is born at its producing step and
  dies after its last use (a later step's operand, or the final fix-ups);
* **buffer assignment** — greedy linear-scan reuse: a step's result goes
  into any free buffer large enough, else a new buffer is opened;
* **peak-memory accounting** — bytes of live intermediates per step, used
  to compare variants (parenthesizations differ not only in FLOPs but in
  workspace).

The plan is advisory for the NumPy executor (which relies on garbage
collection) but is emitted into the generated C++ as the buffer schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.compiler.variant import Variant

BYTES_PER_ELEMENT = 8  # double precision


@dataclass(frozen=True)
class BufferAssignment:
    """Where one step's result lives."""

    step_index: int
    buffer_id: int
    rows: int
    cols: int
    #: Step index after which the value is dead (inclusive of fix-ups:
    #: ``len(steps)`` means it survives to the end of the variant).
    last_use: int

    @property
    def bytes(self) -> int:
        return self.rows * self.cols * BYTES_PER_ELEMENT


@dataclass(frozen=True)
class MemoryPlan:
    """A variant's buffer schedule on one instance."""

    assignments: tuple[BufferAssignment, ...]
    buffer_sizes: tuple[int, ...]  # bytes per physical buffer
    peak_bytes: int
    naive_bytes: int  # one buffer per step, no reuse

    @property
    def num_buffers(self) -> int:
        return len(self.buffer_sizes)

    @property
    def reuse_savings(self) -> float:
        """Fraction of naive workspace saved by reuse (0 when nothing to save)."""
        if self.naive_bytes == 0:
            return 0.0
        return 1.0 - sum(self.buffer_sizes) / self.naive_bytes

    def describe(self) -> str:
        lines = [
            f"{self.num_buffers} buffers, "
            f"{sum(self.buffer_sizes):,} bytes total "
            f"(naive {self.naive_bytes:,}), peak live {self.peak_bytes:,}"
        ]
        for a in self.assignments:
            lines.append(
                f"  X{a.step_index} -> buffer {a.buffer_id} "
                f"({a.rows}x{a.cols}, dies after step {a.last_use})"
            )
        return "\n".join(lines)


def step_result_dims(variant: Variant, sizes: Sequence[int]) -> list[tuple[int, int]]:
    """Concrete (rows, cols) of each step's *stored* result."""
    q = variant.chain.validate_sizes(sizes)
    dims = []
    for step in variant.steps:
        state = step.result_state
        rows, cols = q[state.rows], q[state.cols]
        if state.transposed:  # stored base is the transpose of the logical value
            rows, cols = cols, rows
        dims.append((rows, cols))
    return dims


def last_uses(variant: Variant) -> list[int]:
    """For each step, the index of the last step consuming its result.

    The final step's result (and any step feeding only the fix-ups) lives
    until ``len(steps)``.
    """
    n = len(variant.steps)
    last = [n if i == n - 1 else i for i in range(n)]
    for step in variant.steps:
        for ref in (step.left_ref, step.right_ref):
            kind, index = ref
            if kind == "step":
                last[index] = max(last[index], step.index)
    if variant.steps:
        last[variant.steps[-1].index] = n
    return last


def plan_memory(variant: Variant, sizes: Sequence[int]) -> MemoryPlan:
    """Compute the buffer schedule for a variant on an instance."""
    dims = step_result_dims(variant, sizes)
    deaths = last_uses(variant)
    naive_bytes = sum(r * c for r, c in dims) * BYTES_PER_ELEMENT

    # Greedy linear scan: free list of (capacity_bytes, buffer_id).
    free: list[tuple[int, int]] = []
    buffer_capacity: dict[int, int] = {}
    active: list[tuple[int, int]] = []  # (death step, buffer_id)
    assignments: list[BufferAssignment] = []
    live_bytes = 0
    peak_bytes = 0

    for i, step in enumerate(variant.steps):
        # Release buffers whose values died strictly before this step.
        still_active = []
        for death, buffer_id in active:
            if death < i:
                free.append((buffer_capacity[buffer_id], buffer_id))
                live_bytes -= buffer_capacity[buffer_id]
            else:
                still_active.append((death, buffer_id))
        active = still_active

        rows, cols = dims[i]
        need = rows * cols * BYTES_PER_ELEMENT
        # Smallest free buffer that fits (best-fit keeps big ones for later).
        free.sort()
        chosen = None
        for idx, (capacity, buffer_id) in enumerate(free):
            if capacity >= need:
                chosen = buffer_id
                del free[idx]
                break
        if chosen is None:
            chosen = len(buffer_capacity)
            buffer_capacity[chosen] = need
        live_bytes += buffer_capacity[chosen]
        peak_bytes = max(peak_bytes, live_bytes)
        active.append((deaths[i], chosen))
        assignments.append(
            BufferAssignment(
                step_index=i,
                buffer_id=chosen,
                rows=rows,
                cols=cols,
                last_use=deaths[i],
            )
        )

    return MemoryPlan(
        assignments=tuple(assignments),
        buffer_sizes=tuple(
            buffer_capacity[b] for b in sorted(buffer_capacity)
        ),
        peak_bytes=peak_bytes,
        naive_bytes=naive_bytes,
    )


def peak_workspace_bytes(variant: Variant, sizes: Sequence[int]) -> int:
    """Peak bytes of live intermediates (convenience wrapper)."""
    return plan_memory(variant, sizes).peak_bytes

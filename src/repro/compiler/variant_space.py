"""Pluggable candidate-variant generation (the compiler's scaling layer).

The pipeline's ``enumerate`` stage used to mean one thing: build *every*
parenthesization variant — Catalan-many, intractable past n ≈ 12.  This
module makes candidate generation a first-class strategy:

* :class:`ExhaustiveSpace` — the full set ``A`` of the paper.  Ground truth
  for small chains, and the space every selection guarantee (Theorem 2,
  Algorithm 1) is stated over.
* :class:`DPSeededSpace` — a *sparse* subset of ``A`` for long chains:
  the fanning-out variants ``E_h`` (which Theorem 2 selection requires),
  plus the DP-optimal parenthesizations of sampled training instances
  (:func:`repro.compiler.dp.dp_seed_trees`), plus a bounded rotation
  neighborhood around those seeds.  "On the Parenthesisations of Matrix
  Chains" (López/Karlsson/Bientinesi) observes that only a tiny essential
  subset of parenthesizations is ever instance-optimal; the DP seeds are
  exactly the members of that subset witnessed by the training set, and the
  neighborhood covers instances between seeds.  Compile cost drops from
  ``O(Catalan(n - 1))`` variants to roughly ``O(seeds · n^3)`` DP work plus
  a few hundred candidate builds.

Within a generated pool, penalties keep their paper semantics — they are
measured against the pool minimum, which for :class:`ExhaustiveSpace` is the
true optimum over ``A`` and for :class:`DPSeededSpace` a tight upper bound
anchored at the sampled instances.  Both spaces guarantee the fanning-out
variants are present (and are never evicted by ``max_variants``), so the
essential-set pass always finds its candidates in the cost matrix.

Strategy choice is a :class:`~repro.compiler.pipeline.CompileOptions` knob
(``variant_space`` = ``"auto"`` | ``"exhaustive"`` | ``"dp"`` |
``"dp-adaptive"``, plus ``max_variants``) and therefore part of the
compilation-cache key; ``auto`` picks exhaustive up to
:data:`AUTO_EXHAUSTIVE_MAX_N` matrices and DP-seeded beyond, and
``dp-adaptive`` grows the DP seeding until the held-out penalty plateaus.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import CompilationError
from repro.ir.chain import Chain
from repro.compiler.dp import dp_seed_trees
from repro.compiler.parenthesization import (
    ParenTree,
    catalan,
    iter_trees,
    rotations,
)
from repro.compiler.selection import (
    _tree_key,
    all_variants,
    distinct_fanning_trees,
)
from repro.compiler.variant import Variant, build_variant

#: Longest chain ``variant_space="auto"`` still enumerates exhaustively.
#: Catalan(9) = 4862 variants is the practical knee of the cost curve;
#: beyond it, auto switches to the DP-seeded space.
AUTO_EXHAUSTIVE_MAX_N = 10

#: Hard ceiling on eager Catalan enumeration: an explicit
#: ``variant_space="exhaustive"`` without ``max_variants`` refuses chains
#: with more parenthesizations than this (n >= 15) instead of hanging.
EXHAUSTIVE_VARIANT_LIMIT = 1_000_000

#: The recognised ``CompileOptions.variant_space`` values.
SPACE_NAMES = ("auto", "exhaustive", "dp", "dp-adaptive")


class VariantSpace:
    """One candidate-generation strategy for the ``enumerate`` stage.

    Subclasses set ``name`` and implement :meth:`generate`.  A space must
    return variants of the per-parenthesization family ``A`` *including*
    every distinct fanning-out variant ``E_h`` — the essential-set pass
    resolves its candidates against the pool by signature.
    """

    name: str = "<space>"

    #: Instrumentation of the most recent :meth:`generate` call (pool size,
    #: dedup hits, seed count, ...).  Every ``generate`` rebinds it on the
    #: instance; the enumerate pass copies it into
    #: ``PassContext.diagnostics["variant_pool"]`` for ``--timings`` and
    #: the serve ``stats`` response.  (Class-level fallback for spaces that
    #: have not generated yet.)
    diagnostics: dict = {}

    def generate(
        self, chain: Chain, training_instances: Optional[np.ndarray]
    ) -> list[Variant]:  # pragma: no cover - interface
        raise NotImplementedError

    def cache_token(self) -> tuple:
        """Hashable configuration, folded into the pipeline fingerprint
        when a space instance is attached to an ``EnumeratePass`` directly
        (options-driven spaces are keyed through ``CompileOptions``)."""
        return ()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} {self.cache_token()}>"


def fanning_trees(chain: Chain) -> list[ParenTree]:
    """The distinct fanning-out trees ``E_h``, smallest ``h`` first."""
    return list(distinct_fanning_trees(chain).values())


def _build_pool(chain: Chain, trees: list[ParenTree]) -> list[Variant]:
    """Variants for a deduplicated tree list, named by pool position."""
    return [
        build_variant(chain, tree, name=f"P{i}")
        for i, tree in enumerate(trees)
    ]


class ExhaustiveSpace(VariantSpace):
    """Today's ``all_variants``: every parenthesization, eagerly.

    With ``max_variants`` set, enumeration goes through the lazy
    :func:`~repro.compiler.parenthesization.iter_trees` iterator and stops
    at the cap — the fanning-out trees are force-included (appended if the
    truncated prefix missed them) so selection still works.  Without a cap,
    chains beyond :data:`EXHAUSTIVE_VARIANT_LIMIT` parenthesizations are
    rejected up front rather than enumerated for hours.
    """

    name = "exhaustive"

    def __init__(self, max_variants: Optional[int] = None):
        if max_variants is not None and max_variants < 1:
            raise CompilationError("max_variants must be >= 1")
        self.max_variants = max_variants

    def generate(
        self, chain: Chain, training_instances: Optional[np.ndarray]
    ) -> list[Variant]:
        total = catalan(chain.n - 1)
        if self.max_variants is None:
            if total > EXHAUSTIVE_VARIANT_LIMIT:
                raise CompilationError(
                    f"chain of {chain.n} matrices has {total} parenthesizations"
                    f" (> {EXHAUSTIVE_VARIANT_LIMIT}); use variant_space='dp'"
                    " (or 'auto'), or bound enumeration with max_variants"
                )
            pool = all_variants(chain)
            self.diagnostics = self._diagnostics(len(pool), capped=False)
            return pool
        if total <= self.max_variants:
            # The cap admits the full set: the caller explicitly sized the
            # enumeration, so the blowup guard does not apply.
            pool = all_variants(chain)
            self.diagnostics = self._diagnostics(len(pool), capped=False)
            return pool
        trees: list[ParenTree] = []
        seen: set = set()
        for tree in iter_trees(chain.n):
            if len(trees) >= self.max_variants:
                break
            trees.append(tree)
            seen.add(_tree_key(tree))
        forced = 0
        for tree in fanning_trees(chain):
            if _tree_key(tree) not in seen:
                trees.append(tree)
                forced += 1
        self.diagnostics = self._diagnostics(
            len(trees), capped=True, forced_fanning=forced
        )
        return _build_pool(chain, trees)

    def _diagnostics(
        self, pool_size: int, *, capped: bool, forced_fanning: int = 0
    ) -> dict:
        return {
            "strategy": self.name,
            "pool_size": pool_size,
            "dedup_hits": 0,  # Catalan enumeration yields distinct trees
            "seed_count": 0,  # exhaustive pools are not seeded
            "capped": capped,
            "forced_fanning": forced_fanning,
        }

    def cache_token(self) -> tuple:
        return (self.max_variants,)


class DPSeededSpace(VariantSpace):
    """DP-seeded sparse candidate pool for long chains.

    The pool is, in priority order (earlier entries survive the
    ``max_variants`` cap):

    1. the distinct fanning-out trees ``E_h`` (never dropped — the
       essential-set pass needs all of them in the cost matrix);
    2. one DP-optimal tree per sampled training instance
       (``num_seeds`` instances, evenly spaced over the training set);
    3. ``neighborhood`` rounds of rotation perturbations around the seeds,
       covering instances whose optimum falls between two seeds.

    Everything is deduplicated by tree key, so the pool size is at most
    ``max_variants`` but typically far smaller — long general chains often
    have just a handful of distinct DP-optimal shapes.

    With ``adaptive=True`` (``variant_space="dp-adaptive"``), the seeding
    effort is *sized by measurement* instead of fixed knobs: the training
    set is split, pools of growing ``num_seeds``/``neighborhood`` are
    generated from the larger part, and each round's pool is scored by its
    mean held-out cost minimum (under ``estimator`` — e.g. a calibrated
    cost model — or analytic FLOPs).  Growth stops when the held-out
    penalty improves by less than ``plateau_rtol``, or after
    ``max_rounds`` doublings — "few parenthesisations are essential"
    (López et al.) says the plateau comes early, so the common case pays
    one extra round.
    """

    name = "dp"

    #: Pool bound applied when ``CompileOptions.max_variants`` is unset.
    DEFAULT_MAX_VARIANTS = 512
    #: How many training rows to run the per-instance DP on.
    DEFAULT_NUM_SEEDS = 32
    #: Adaptive mode: growth rounds after the first pool.
    DEFAULT_MAX_ROUNDS = 3
    #: Adaptive mode: relative held-out improvement that counts as progress.
    DEFAULT_PLATEAU_RTOL = 0.01
    #: Adaptive mode: every k-th training row is held out for scoring.
    HOLDOUT_STRIDE = 4

    def __init__(
        self,
        max_variants: Optional[int] = None,
        num_seeds: int = DEFAULT_NUM_SEEDS,
        neighborhood: int = 1,
        adaptive: bool = False,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        plateau_rtol: float = DEFAULT_PLATEAU_RTOL,
        estimator=None,
    ):
        if max_variants is not None and max_variants < 1:
            raise CompilationError("max_variants must be >= 1")
        if num_seeds < 1:
            raise CompilationError("num_seeds must be >= 1")
        if neighborhood < 0:
            raise CompilationError("neighborhood must be >= 0")
        if max_rounds < 0:
            raise CompilationError("max_rounds must be >= 0")
        if plateau_rtol < 0:
            raise CompilationError("plateau_rtol must be >= 0")
        self.max_variants = (
            max_variants if max_variants is not None else self.DEFAULT_MAX_VARIANTS
        )
        self.num_seeds = num_seeds
        self.neighborhood = neighborhood
        self.adaptive = adaptive
        self.max_rounds = max_rounds
        self.plateau_rtol = plateau_rtol
        self.estimator = estimator
        if adaptive:
            self.name = "dp-adaptive"  # instance attr shadows the class's

    def generate(
        self, chain: Chain, training_instances: Optional[np.ndarray]
    ) -> list[Variant]:
        if training_instances is None:
            raise CompilationError(
                "the DP-seeded variant space needs training instances; run "
                "the sample pass (or supply training_instances) first"
            )
        if not self.adaptive:
            return self._generate_once(
                chain, training_instances, self.num_seeds, self.neighborhood
            )
        return self._generate_adaptive(chain, np.asarray(training_instances))

    def _generate_once(
        self,
        chain: Chain,
        training_instances: np.ndarray,
        num_seeds: int,
        neighborhood: int,
    ) -> list[Variant]:
        """One pool at explicit seeding parameters (rebinds diagnostics)."""
        trees = fanning_trees(chain)
        seen = {_tree_key(tree) for tree in trees}
        budget = max(self.max_variants, len(trees))
        dedup_hits = 0

        def admit(tree: ParenTree) -> bool:
            nonlocal dedup_hits
            key = _tree_key(tree)
            if key in seen:
                dedup_hits += 1
                return False
            seen.add(key)
            trees.append(tree)
            return True

        def finish(truncated: bool) -> list[Variant]:
            self.diagnostics = {
                "strategy": self.name,
                "pool_size": len(trees),
                "fanning": fanning,
                "seed_count": seed_count,
                "num_seeds": num_seeds,
                "neighborhood": neighborhood,
                "dedup_hits": dedup_hits,
                "capped": truncated,
            }
            return _build_pool(chain, trees)

        fanning = len(trees)
        seeds = dp_seed_trees(chain, training_instances, num_seeds)
        seed_count = len(seeds)
        frontier = [tree for tree in seeds if len(trees) < budget and admit(tree)]
        for _ in range(neighborhood):
            next_frontier: list[ParenTree] = []
            for tree in frontier:
                for neighbor in rotations(tree):
                    if len(trees) >= budget:
                        return finish(True)
                    if admit(neighbor):
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return finish(False)

    def _generate_adaptive(
        self, chain: Chain, training_instances: np.ndarray
    ) -> list[Variant]:
        """Grow the seeding effort until the held-out penalty plateaus."""
        if training_instances.shape[0] > self.HOLDOUT_STRIDE:
            mask = np.arange(training_instances.shape[0]) % self.HOLDOUT_STRIDE == 0
            holdout, train = training_instances[mask], training_instances[~mask]
        else:
            # Too few rows to split: score on what we have.
            holdout = train = training_instances
        num_seeds, neighborhood = self.num_seeds, self.neighborhood
        history: list[dict] = []
        pool = self._generate_once(chain, train, num_seeds, neighborhood)
        penalty = self._holdout_penalty(chain, pool, holdout)
        history.append(
            {"num_seeds": num_seeds, "neighborhood": neighborhood,
             "pool_size": len(pool), "holdout_penalty": penalty}
        )
        for _ in range(self.max_rounds):
            if len(pool) >= self.max_variants:
                break  # the cap is binding; more seeds cannot widen the pool
            grown_seeds = min(num_seeds * 2, train.shape[0] or num_seeds * 2)
            grown_hood = neighborhood + 1
            if grown_seeds == num_seeds and grown_hood == neighborhood:
                break
            candidate = self._generate_once(chain, train, grown_seeds, grown_hood)
            candidate_penalty = self._holdout_penalty(chain, candidate, holdout)
            history.append(
                {"num_seeds": grown_seeds, "neighborhood": grown_hood,
                 "pool_size": len(candidate), "holdout_penalty": candidate_penalty}
            )
            improved = (
                penalty > 0
                and (penalty - candidate_penalty) / penalty >= self.plateau_rtol
            )
            # The grown pool is a superset-quality candidate: keep it even
            # on the plateau round (it is never worse on the holdout).
            if candidate_penalty <= penalty:
                pool, penalty = candidate, candidate_penalty
                num_seeds, neighborhood = grown_seeds, grown_hood
            if not improved:
                break
        self.diagnostics = dict(self.diagnostics)
        self.diagnostics.update(
            {
                "strategy": self.name,
                "adaptive_rounds": len(history),
                "adaptive_history": history,
                "num_seeds": num_seeds,
                "neighborhood": neighborhood,
                "holdout_penalty": penalty,
                "pool_size": len(pool),
            }
        )
        return pool

    def _holdout_penalty(
        self, chain: Chain, pool: list[Variant], holdout: np.ndarray
    ) -> float:
        """Mean per-instance pool-minimum cost on the held-out rows.

        Scored under the configured ``estimator`` when it supports the
        batched ``cost_many`` protocol (the calibrated cost model), else
        under the analytic FLOP broadcast sweep.
        """
        instances = np.asarray(holdout, dtype=np.float64)
        cost_many = getattr(self.estimator, "cost_many", None)
        if cost_many is not None:
            costs = np.stack(
                [
                    np.asarray(cost_many(v, instances), dtype=np.float64)
                    for v in pool
                ]
            )
        else:
            from repro.compiler.selection import (
                evaluate_cost_terms,
                flatten_cost_terms,
            )

            stack = flatten_cost_terms(tuple(pool), chain.n + 1)
            costs = evaluate_cost_terms(stack, len(pool), instances)
        return float(costs.min(axis=0).mean())

    def cache_token(self) -> tuple:
        token: tuple = (self.max_variants, self.num_seeds, self.neighborhood)
        if self.adaptive:
            token += ("adaptive", self.max_rounds, self.plateau_rtol)
        return token


def make_space(name: str, max_variants: Optional[int] = None) -> VariantSpace:
    """Instantiate a concrete (non-``auto``) space by its options name."""
    if name == "exhaustive":
        return ExhaustiveSpace(max_variants=max_variants)
    if name == "dp":
        return DPSeededSpace(max_variants=max_variants)
    if name == "dp-adaptive":
        return DPSeededSpace(max_variants=max_variants, adaptive=True)
    raise CompilationError(
        f"unknown variant space {name!r}; expected one of {SPACE_NAMES}"
    )


def resolve_space(options, chain: Chain) -> VariantSpace:
    """The space a chain compiles under, resolving ``"auto"`` by length.

    ``auto`` stays exhaustive up to :data:`AUTO_EXHAUSTIVE_MAX_N` matrices
    — where the full set *is* tractable and is the paper's ground truth —
    and switches to the DP-seeded space beyond.  The raw option strings
    (not the resolution) are what the compilation-cache key records; that
    is still sound because the chain's structural key, which fixes ``n``,
    is part of the same key.
    """
    name = options.variant_space
    if name == "auto":
        name = "exhaustive" if chain.n <= AUTO_EXHAUSTIVE_MAX_N else "dp"
    return make_space(name, max_variants=options.max_variants)

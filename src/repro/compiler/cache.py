"""Content-addressed compilation cache (memory LRU + optional disk layer).

Compilation is deterministic but expensive (Catalan-many variants scored on
a training set), and it depends only on the chain's *structure* — features,
operators, and the size-sharing pattern — plus the
:class:`~repro.compiler.pipeline.CompileOptions`.  The cache keys entries by
the SHA-256 of that pair (:mod:`repro.ir.structural`), so structurally
identical chains compile once; a hit under a renamed-but-isomorphic chain
rebinds the cached variants to the new chain, which is sound because variant
steps reference operands by position, never by name.

Two layers:

* an in-memory LRU (``capacity`` entries, thread-safe) for the hot path;
* an optional on-disk layer (one JSON file per key under ``disk_dir``,
  written atomically) whose entries are verbatim
  :class:`~repro.compiler.program.CompiledProgram` artifacts — portable
  across processes and hosts, loadable by ``repro run`` directly, the moral
  equivalent of a shared build cache for the generated C++.

The entry type *is* the artifact: :data:`CacheEntry` aliases
:class:`~repro.compiler.program.CompiledProgram` (the historical
``chain``/``variants``/``training_instances`` triple, now carrying
provenance too), so everything the cache stores can cross the wire.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.backends import CacheBackend

import numpy as np

from repro.ir.chain import Chain
from repro.ir.structural import structural_key
from repro.compiler.pipeline import CompileOptions
from repro.compiler.program import ArtifactError, CompiledProgram
from repro.compiler.variant import Variant


@dataclass
class CacheStats:
    """Counters exposed through ``CompilerSession.cache_stats()``."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_writes: int = 0
    disk_errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
            "disk_errors": self.disk_errors,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __str__(self) -> str:
        text = (
            f"hits={self.hits} misses={self.misses} evictions={self.evictions} "
            f"disk_hits={self.disk_hits} disk_writes={self.disk_writes} "
            f"hit_rate={self.hit_rate:.1%}"
        )
        if self.disk_errors:
            text += f" disk_errors={self.disk_errors}"
        return text


#: One compiled structure.  The entry type is the compilation artifact
#: itself — construct it with the historical keyword triple
#: (``chain``/``variants``/``training_instances``) or via
#: :meth:`CompiledProgram.from_artifacts` for full provenance.
CacheEntry = CompiledProgram


def compilation_key(
    chain: Chain, options: CompileOptions, pipeline_fingerprint: str = ""
) -> str:
    """Content address of one (structure, options, pipeline) compilation."""
    token = (structural_key(chain), options.cache_token(), pipeline_fingerprint)
    return hashlib.sha256(repr(token).encode()).hexdigest()


def rebind_variants(
    entry: CacheEntry, chain: Chain
) -> tuple[list[Variant], np.ndarray]:
    """Re-target cached variants at an isomorphic chain.

    Steps and fix-ups reference operands positionally, so only the ``chain``
    field changes; fresh :class:`Variant` objects keep cache entries immune
    to caller-side mutation.  The training instances are copied for the
    same reason.
    """
    if structural_key(entry.chain) != structural_key(chain):
        raise ValueError(
            "cache entry is for a structurally different chain "
            f"({entry.chain} vs {chain})"
        )
    variants = [dataclasses.replace(v, chain=chain) for v in entry.variants]
    return variants, np.array(entry.training_instances, copy=True)


# ---------------------------------------------------------------------------
# Disk layer.
# ---------------------------------------------------------------------------


class DiskCache:
    """One-artifact-file-per-key persistent layer under ``directory``.

    Entry files hold the :class:`CompiledProgram` wire format verbatim
    (``<key>.json`` = ``entry.dumps()``), so a cache directory is a
    collection of portable artifacts: another process or host can load an
    entry, and ``repro run <cache-dir>/<key>.json`` works on it directly.
    Entries written by earlier layouts fail artifact validation and read as
    misses (the compilation simply reruns and overwrites them).
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> Optional[CacheEntry]:
        path = self.path_for(key)
        try:
            text = path.read_text()
        except (OSError, ValueError):
            # ValueError covers the UnicodeDecodeError a binary-garbage
            # entry raises from read_text().
            return None
        try:
            program = CompiledProgram.loads(text)
        except ArtifactError:
            return None
        if program.key != key:
            return None
        return program

    def store(self, key: str, entry: CacheEntry) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        if entry.key != key:
            # Stamp the content address so the stored file is self-describing
            # (and so load() can reject misfiled or renamed entries).
            entry = dataclasses.replace(entry, key=key)
        # Atomic publish: concurrent writers of the same key both produce
        # equivalent content, so last-rename-wins is safe.
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=f".{key[:16]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(entry.dumps())
            os.replace(tmp_name, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def keys(self) -> list[str]:
        if not self.directory.is_dir():
            return []
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed.

        Also sweeps ``*.tmp`` droppings left by writers that were killed
        between ``mkstemp`` and the atomic rename (not counted).
        """
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self.directory.glob("*.tmp"):
            try:
                path.unlink()
            except OSError:
                pass
        return removed

    def stats(self) -> dict[str, object]:
        entries = 0
        total_bytes = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                # A concurrent `cache clear` (or eviction) may unlink files
                # between glob and stat; skip the ones that vanished.
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        return {
            "directory": str(self.directory),
            "entries": entries,
            "total_bytes": total_bytes,
        }


def keys_by_recency(backend) -> list[str]:
    """Backend keys, most recently used first.

    Uses the backend's own ``keys_by_recency`` when it has one (the
    :mod:`repro.serve.backends` implementations all do) and falls back to
    ``keys()`` order otherwise; cache warm-up uses this to fill the LRU
    with the hottest entries first.
    """
    probe = getattr(backend, "keys_by_recency", None)
    if callable(probe):
        return list(probe())
    return list(backend.keys())


# ---------------------------------------------------------------------------
# Two-layer cache.
# ---------------------------------------------------------------------------


class CompilationCache:
    """Thread-safe LRU over :class:`CacheEntry`, with backend fall-through.

    ``get`` consults memory first, then the second-layer *backend*
    (promoting backend hits into memory); ``put`` writes both layers.  All
    counters live in :class:`CacheStats`.

    The second layer is pluggable: pass any
    :class:`repro.serve.backends.CacheBackend` (a shared in-memory tier, a
    bounded disk tier, a tiered composition, or your own remote store) as
    ``backend``.  ``disk_dir`` is the PR-1 shorthand for a
    :class:`~repro.serve.backends.DiskBackend` on that directory; for
    backward compatibility the backend is also reachable as ``self.disk``,
    and the ``disk_*`` stats counters cover whatever backend is installed.
    """

    def __init__(
        self,
        capacity: int = 128,
        disk_dir: Optional[str | os.PathLike] = None,
        backend: Optional["CacheBackend"] = None,
    ):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if backend is None and disk_dir is not None:
            # Imported lazily: repro.serve.backends imports this module.
            from repro.serve.backends import DiskBackend

            backend = DiskBackend(disk_dir)
        self.capacity = capacity
        self.disk = backend
        self.stats = CacheStats()
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._lock = threading.Lock()

    @property
    def backend(self) -> Optional["CacheBackend"]:
        """The second-layer storage backend (``None`` when memory-only)."""
        return self.disk

    def key(
        self,
        chain: Chain,
        options: CompileOptions,
        pipeline_fingerprint: str = "",
    ) -> str:
        return compilation_key(chain, options, pipeline_fingerprint)

    def get(self, key: str) -> Optional[CacheEntry]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry
        if self.disk is not None:
            entry = self.disk.load(key)
            if entry is not None:
                with self._lock:
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                    self._insert(key, entry)
                return entry
        with self._lock:
            self.stats.misses += 1
        return None

    def put(self, key: str, entry: CacheEntry) -> None:
        with self._lock:
            self._insert(key, entry)
        if self.disk is not None:
            # A broken disk layer (unwritable path, --cache-dir pointing at
            # a file, full disk, an unserializable custom variant) must not
            # fail the compilation it caches.
            try:
                self.disk.store(key, entry)
            except Exception:
                with self._lock:
                    self.stats.disk_errors += 1
            else:
                with self._lock:
                    self.stats.disk_writes += 1

    def _insert(self, key: str, entry: CacheEntry) -> None:
        # Caller holds the lock.
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def warm(self, limit: Optional[int] = None) -> int:
        """Preload backend entries into the in-memory LRU, hottest first.

        Returns the number of entries loaded.  Warm-up only fills *free*
        LRU capacity and inserts below the live entries (each warmed entry
        is marked less recent than everything already in memory), so
        re-warming a busy service can never evict its hot working set in
        favour of disk-resident cold entries.  ``limit`` caps the count
        further; entries that fail to load (corrupt, version-mismatched,
        concurrently pruned) are skipped and counted in
        ``stats.disk_errors``.  Warm-up does not touch the hit/miss
        counters — it is provisioning, not traffic.
        """
        if self.disk is None:
            return 0
        with self._lock:
            budget = self.capacity - len(self._entries)
        if limit is not None:
            budget = min(limit, budget)
        if budget <= 0:
            return 0
        warmed = 0
        # Hottest-first iteration + insert-at-the-cold-end means the
        # hottest warmed entry sits closest to (but still below) the live
        # set, and recency among warmed entries matches the backend's.
        for key in keys_by_recency(self.disk):
            if warmed >= budget:
                break
            with self._lock:
                if key in self._entries:
                    continue
            entry = self.disk.load(key)
            if entry is None:
                with self._lock:
                    self.stats.disk_errors += 1
                continue
            with self._lock:
                if key in self._entries:  # raced with a concurrent put
                    continue
                if len(self._entries) >= self.capacity:
                    break  # concurrent traffic used up the free slots
                self._entries[key] = entry
                self._entries.move_to_end(key, last=False)
            warmed += 1
        return warmed

    def clear(self, disk: bool = False) -> None:
        """Drop the memory layer (and the backend layer when ``disk=True``)."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()
        if disk and self.disk is not None:
            self.disk.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

"""The compiler session: pipeline + cache + batch API behind one facade.

A :class:`CompilerSession` owns a pass :class:`~repro.compiler.pipeline.Pipeline`
and a :class:`~repro.compiler.cache.CompilationCache`, and exposes

* :meth:`CompilerSession.compile` — one chain through the pipeline, with a
  structural cache lookup between simplification and enumeration;
* :meth:`CompilerSession.compile_many` — batch compilation with thread-pool
  fan-out over the *structurally distinct* chains (duplicates compile once);
* :meth:`CompilerSession.cache_stats` / :meth:`CompilerSession.clear_cache`.

:func:`repro.api.compile_chain` is a thin wrapper over a module-level
default session, so every entry point shares one warm cache.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.backends import CacheBackend

import numpy as np

from repro.ir.chain import Chain
from repro.obs import trace as obs_trace
from repro.compiler.cache import CacheEntry, CacheStats, CompilationCache, rebind_variants
from repro.compiler.dispatch import CostEstimator, flop_estimator
from repro.compiler.pipeline import (
    CompileOptions,
    PassContext,
    Pipeline,
    default_pipeline,
    fingerprint_instances,
)


class CompilerSession:
    """A long-lived compilation context (the unit a server would hold).

    Parameters
    ----------
    pipeline:
        The pass pipeline; defaults to the Fig. 1 sequence.
    cache:
        A pre-built :class:`CompilationCache`; overrides ``cache_capacity``
        and ``cache_dir``.
    cache_capacity:
        In-memory LRU size (number of compiled structures).
    cache_dir:
        When set, compilations also persist to this directory and survive
        process restarts.
    cache_backend:
        A :class:`repro.serve.backends.CacheBackend` to use as the cache's
        second layer (e.g. a shared :class:`~repro.serve.backends.InMemoryBackend`,
        a bounded :class:`~repro.serve.backends.DiskBackend`, or a
        :class:`~repro.serve.backends.TieredBackend`); overrides ``cache_dir``.
    cost_estimator:
        Default dispatcher cost estimator for compiles in this session.
    options:
        Session-wide defaults for the per-compile knobs (``expand_by``,
        ``objective``, ...); per-call keyword overrides win.
    """

    def __init__(
        self,
        *,
        pipeline: Optional[Pipeline] = None,
        cache: Optional[CompilationCache] = None,
        cache_capacity: int = 128,
        cache_dir: Optional[str | os.PathLike] = None,
        cache_backend: Optional["CacheBackend"] = None,
        cost_estimator: CostEstimator = flop_estimator,
        options: Optional[CompileOptions] = None,
    ):
        self.cache = (
            cache
            if cache is not None
            else CompilationCache(
                capacity=cache_capacity,
                disk_dir=cache_dir,
                backend=cache_backend,
            )
        )
        self.cost_estimator = cost_estimator
        self.options = options if options is not None else CompileOptions()
        self._lock = threading.Lock()
        #: The context of the most recent :meth:`compile` (instrumentation).
        self.last_context: Optional[PassContext] = None
        self.pipeline = pipeline if pipeline is not None else default_pipeline()

    @property
    def pipeline(self) -> Pipeline:
        return self._pipeline

    @pipeline.setter
    def pipeline(self, pipeline: Pipeline) -> None:
        # The front/back split and the cache fingerprint are derived state;
        # recompute them together so reassigning the pipeline (e.g.
        # session.pipeline = session.pipeline.without("expand")) can never
        # leave stale passes or serve entries keyed to the old pipeline.
        self._pipeline = pipeline
        self._front, self._back = self._split_pipeline(pipeline)
        self._pipeline_fingerprint = pipeline.fingerprint()

    @staticmethod
    def _split_pipeline(pipeline: Pipeline) -> tuple[Pipeline, Pipeline]:
        """Split at the first cacheable pass: front always runs, back is
        what a cache hit (partially) skips."""
        passes = pipeline.passes
        cut = next(
            (i for i, p in enumerate(passes) if p.cacheable), len(passes)
        )
        observer = pipeline.observer
        return (
            Pipeline(passes[:cut], observer),
            Pipeline(passes[cut:], observer),
        )

    # -- options ------------------------------------------------------------

    #: The per-compile keyword knobs (CompileOptions minus internal fields).
    OPTION_FIELDS = frozenset(
        f.name for f in dataclasses.fields(CompileOptions)
    ) - {"training_fingerprint"}

    def _resolve_options(
        self,
        training_instances: Optional[np.ndarray],
        overrides: dict,
    ) -> CompileOptions:
        from repro.errors import CompilationError

        # None means "use the session default" for every knob (no option
        # field has a meaningful None value), matching compile_chain's
        # optional keyword arguments.
        overrides = {k: v for k, v in overrides.items() if v is not None}
        unknown = set(overrides) - self.OPTION_FIELDS
        if unknown:
            raise CompilationError(
                f"unknown compile option(s) {sorted(unknown)}; valid options "
                f"are {sorted(self.OPTION_FIELDS)}"
            )
        options = self.options
        if overrides:
            options = dataclasses.replace(options, **overrides)
        fingerprint = (
            fingerprint_instances(training_instances)
            if training_instances is not None
            else None
        )
        if fingerprint != options.training_fingerprint:
            options = dataclasses.replace(
                options, training_fingerprint=fingerprint
            )
        return options

    # -- single compilation -------------------------------------------------

    def compile(
        self,
        chain,
        *,
        training_instances: Optional[np.ndarray] = None,
        cost_estimator: Optional[CostEstimator] = None,
        use_cache: bool = True,
        **overrides,
    ):
        """Compile one chain (or program source) to a ``GeneratedCode``.

        Keyword overrides are the fields of :class:`CompileOptions`
        (``expand_by``, ``num_training_instances``, ``size_range``,
        ``objective``, ``seed``, ``simplify``, ``variant_space``,
        ``max_variants``).
        """
        with obs_trace.span("compile") as compile_span:
            ctx, key = self._prepare(
                chain, training_instances, cost_estimator, overrides
            )
            compile_span.annotate(cache_key=key)
            result = self._finish(ctx, key, use_cache)
            compile_span.annotate(cache_hit=ctx.cache_hit)
            return result

    def prepare(
        self,
        chain,
        *,
        training_instances: Optional[np.ndarray] = None,
        cost_estimator: Optional[CostEstimator] = None,
        **overrides,
    ) -> tuple[PassContext, str]:
        """Front half of :meth:`compile`: parse + simplify + cache key.

        The serving layer (:class:`repro.serve.service.CompileService`)
        runs this cheap half inline on the caller thread to learn the
        request's structural identity — the coalescing key — before
        queueing the expensive half for :meth:`finish` on a worker.
        """
        return self._prepare(chain, training_instances, cost_estimator, overrides)

    def finish(
        self,
        ctx: PassContext,
        key: str,
        *,
        use_cache: bool = True,
        entry: Optional[CacheEntry] = None,
    ):
        """Back half of :meth:`compile` for a :meth:`prepare`-d context.

        With ``entry`` set, the compilation is served by rebinding that
        entry's variants instead of a cache lookup (how the service hands
        a coalesced follower its leader's result).
        """
        return self._finish(ctx, key, use_cache, entry=entry)

    def _prepare(
        self,
        chain,
        training_instances: Optional[np.ndarray],
        cost_estimator: Optional[CostEstimator],
        overrides: dict,
        options: Optional[CompileOptions] = None,
    ) -> tuple[PassContext, str]:
        """Run the always-on front passes and compute the cache key.

        ``options`` short-circuits option resolution with an already
        resolved instance (the batch API resolves once per batch so the
        shared training array is fingerprinted once, not per chain).
        """
        if options is None:
            options = self._resolve_options(training_instances, overrides)
        ctx = PassContext(
            source=chain,
            options=options,
            cost_estimator=cost_estimator or self.cost_estimator,
        )
        if training_instances is not None:
            ctx.training_instances = np.asarray(training_instances)
        self._front.run(ctx)
        assert ctx.chain is not None  # ParsePass ran
        key = self.cache.key(ctx.chain, options, self._pipeline_fingerprint)
        ctx.cache_key = key  # stamped into the produced CompiledProgram
        return ctx, key

    def _finish(
        self,
        ctx: PassContext,
        key: str,
        use_cache: bool,
        entry: Optional[CacheEntry] = None,
    ):
        """Run (or cache-skip) the expensive back passes; build the result.

        ``entry`` short-circuits the cache lookup with an already-known
        compilation (the batch API serves duplicates from their
        representative's result this way, immune to LRU eviction).
        """
        from repro.api import GeneratedCode

        if entry is None and use_cache:
            entry = self.cache.get(key)
        if entry is not None:
            variants, training = rebind_variants(entry, ctx.chain)
            ctx.selected = variants
            ctx.training_instances = training
            ctx.cache_hit = True
            self._back.run(ctx, skip=self.pipeline.cacheable_names())
        else:
            self._back.run(ctx)
            if use_cache:
                assert ctx.selected is not None and ctx.training_instances is not None
                # The dispatch pass already packaged the compilation as a
                # portable CompiledProgram; cache the artifact itself.  A
                # custom pipeline without the dispatch pass still caches a
                # bare artifact built from the selection products.
                # A shallow field copy: the context's program carries the
                # live runtime (its dispatcher/memo) for the caller, which
                # the long-lived cache entry must not pin — cache hits
                # rebuild their own program from the fields anyway.
                entry = (
                    dataclasses.replace(ctx.program)
                    if ctx.program is not None
                    else None
                )
                if entry is None:
                    entry = CacheEntry.from_artifacts(
                        ctx.chain,
                        tuple(ctx.selected),
                        ctx.training_instances,
                        key=key,
                        options=ctx.options,
                        timings=ctx.timings,
                        diagnostics=ctx.diagnostics,
                    )
                self.cache.put(key, entry)

        self._record_context(ctx)
        return GeneratedCode(
            chain=ctx.chain,
            variants=list(ctx.selected or ()),
            dispatcher=ctx.dispatcher,
            training_instances=np.asarray(ctx.training_instances),
            program=ctx.program,
        )

    def _record_context(self, ctx: PassContext) -> None:
        """Keep only the instrumentation slice of a finished context.

        Retaining the full context would pin the enumerated variant list
        and the (variants x instances) cost matrix of the *last* compile —
        hundreds of MB for long chains — on a long-lived session.
        """
        slim = PassContext(
            source=ctx.source,
            options=ctx.options,
            cost_estimator=ctx.cost_estimator,
        )
        slim.chain = ctx.chain
        slim.cache_key = ctx.cache_key
        slim.executed = ctx.executed
        slim.skipped = ctx.skipped
        slim.timings = ctx.timings
        slim.diagnostics = ctx.diagnostics
        with self._lock:
            self.last_context = slim

    # -- batch compilation ---------------------------------------------------

    def compile_many(
        self,
        chains: Sequence,
        *,
        max_workers: Optional[int] = None,
        training_instances: Optional[np.ndarray] = None,
        cost_estimator: Optional[CostEstimator] = None,
        use_cache: bool = True,
        **overrides,
    ) -> list:
        """Compile a batch of chains; results match the input order.

        Structurally distinct chains fan out over a thread pool;
        structurally identical ones (after simplification) compile once and
        the duplicates are served from the cache with their variants
        rebound to each chain's own matrix names.  ``training_instances``
        (one shared ``(count, n+1)`` array) is only meaningful when every
        chain has the same length.
        """
        chains = list(chains)
        if not chains:
            return []

        # Front passes (parse + simplify) run once per chain, up front; the
        # prepared contexts carry both the cache key and the state the
        # finish step needs, so nothing is re-parsed later.  Options (and
        # the training-set fingerprint) resolve once for the whole batch.
        options = self._resolve_options(training_instances, overrides)
        prepared = [
            self._prepare(
                chain, training_instances, cost_estimator, {}, options=options
            )
            for chain in chains
        ]
        workers = max_workers or min(32, (os.cpu_count() or 4) + 4, len(chains))

        if not use_cache:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(
                    pool.map(lambda p: self._finish(p[0], p[1], False), prepared)
                )

        # Round 1: compile one representative per structural key in parallel.
        representatives: dict[str, int] = {}
        for index, (_, key) in enumerate(prepared):
            representatives.setdefault(key, index)
        unique = [prepared[i] for i in representatives.values()]
        with ThreadPoolExecutor(max_workers=min(workers, len(unique))) as pool:
            compiled = list(
                pool.map(lambda p: self._finish(p[0], p[1], True), unique)
            )

        # Round 2: duplicates rebind their representative's result directly
        # (not via a cache lookup, which could have been LRU-evicted when
        # the batch holds more structures than the cache capacity).
        entry_by_key = {
            key: generated.to_program()
            for key, generated in zip(representatives, compiled)
        }
        results: list = [None] * len(chains)
        for index, generated in zip(representatives.values(), compiled):
            results[index] = generated
        for index, (ctx, key) in enumerate(prepared):
            if results[index] is None:
                results[index] = self._finish(
                    ctx, key, True, entry=entry_by_key[key]
                )
        return results

    # -- expressions ---------------------------------------------------------

    def compile_expression(
        self,
        expression,
        *,
        training_instances: Optional[np.ndarray] = None,
        cost_estimator: Optional[CostEstimator] = None,
        use_cache: bool = True,
        **overrides,
    ):
        """Compile a sum of chains, sharing this session's cache per term."""
        from repro.api import GeneratedExpression
        from repro.errors import CompilationError
        from repro.ir.expression import ChainSum, ChainTerm
        from repro.ir.parser import parse_expression

        if isinstance(expression, str):
            expression = parse_expression(expression)
        if isinstance(expression, Chain):
            expression = ChainSum((ChainTerm(1.0, expression),))
        if not isinstance(expression, ChainSum):
            raise CompilationError(
                f"expected a ChainSum or program source, got "
                f"{type(expression).__name__}"
            )
        # Each term's context is held locally (not read back from
        # last_context, which a concurrent compile on this session could
        # overwrite between statements).
        term_codes = []
        term_contexts = []
        options = self._resolve_options(training_instances, overrides)
        for term in expression.terms:
            ctx, key = self._prepare(
                term.chain, training_instances, cost_estimator, {},
                options=options,
            )
            term_codes.append(self._finish(ctx, key, use_cache))
            term_contexts.append(ctx)

        # Merge per-term contexts so last_context (hence `repro compile
        # --timings`) reflects the whole expression, not just the last term.
        merged = PassContext(
            source=expression, options=term_contexts[-1].options
        )
        for ctx in term_contexts:
            for name, seconds in ctx.timings.items():
                merged.timings[name] = merged.timings.get(name, 0.0) + seconds
            merged.executed.extend(ctx.executed)
            merged.skipped.extend(ctx.skipped)
        with self._lock:
            self.last_context = merged
        return GeneratedExpression(expression=expression, term_codes=term_codes)

    # -- cache management ----------------------------------------------------

    def cache_stats(self) -> CacheStats:
        """A snapshot of the cache counters."""
        return dataclasses.replace(self.cache.stats)

    def warm(self, limit: Optional[int] = None) -> int:
        """Preload cache-backend entries into the in-memory LRU.

        Returns the number of entries loaded (0 without a backend).  A
        serving process calls this on startup so the first wave of traffic
        hits memory instead of paying per-request disk deserialization;
        ``repro cache warm`` and ``repro serve`` expose it.
        """
        return self.cache.warm(limit)

    def clear_cache(self, disk: bool = False) -> None:
        self.cache.clear(disk=disk)


# ---------------------------------------------------------------------------
# The shared default session behind repro.api.compile_chain.
# ---------------------------------------------------------------------------

_default_session: Optional[CompilerSession] = None
_default_lock = threading.Lock()


def get_default_session() -> CompilerSession:
    """The process-wide session used by the ``compile_chain`` wrapper.

    Lazy creation is guarded by a lock, so concurrent first calls (e.g. a
    serving front end fanning requests over ``compile_chain``) observe
    exactly one session and one cache.  The common post-creation path reads
    the already-published session without taking the lock.
    """
    global _default_session
    session = _default_session
    if session is not None:
        return session
    with _default_lock:
        if _default_session is None:
            _default_session = CompilerSession(cache_capacity=256)
        return _default_session


def set_default_session(session: Optional[CompilerSession]) -> None:
    """Replace (or with ``None``, reset) the process-wide default session."""
    global _default_session
    with _default_lock:
        _default_session = session

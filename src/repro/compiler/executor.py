"""Compatibility shim: the executor now lives in :mod:`repro.runtime`.

The run-time half of the system (variant execution, size inference,
execution plans, the dispatcher) moved into the :mod:`repro.runtime`
package; this module re-exports the executor's public names so existing
``from repro.compiler.executor import ...`` imports keep working.
"""

from __future__ import annotations

from repro.runtime.executor import (  # noqa: F401
    KernelCallConfig,
    execute_variant,
    expected_stored_shapes,
    infer_sizes,
    naive_evaluate,
    random_instance_arrays,
    random_matrix,
)

__all__ = [
    "KernelCallConfig",
    "execute_variant",
    "expected_stored_shapes",
    "infer_sizes",
    "naive_evaluate",
    "random_instance_arrays",
    "random_matrix",
]

"""Pass-based compilation pipeline (the staged generator of Fig. 1).

The generator runs a fixed conceptual sequence — parse, simplify, sample a
training set, generate the candidate variant pool (through a pluggable
:mod:`~repro.compiler.variant_space` strategy: exhaustive Catalan
enumeration for small chains, DP-seeded sparse generation for long ones),
build the cost matrix, select the essential set per Theorem 2, greedily
expand per Algorithm 1, build the dispatcher.  This module makes each stage an explicit, named
:class:`CompilerPass` over a shared :class:`PassContext`, so stages can be
skipped, swapped, or instrumented, and so the compilation cache can bypass
exactly the expensive middle of the pipeline (everything between
simplification and dispatch) on a structural hit.

Passes marked ``cacheable = True`` produce artifacts that depend only on the
chain *structure* and the :class:`CompileOptions`; those are the passes a
cache hit skips.  Parsing, simplification, and dispatcher construction are
name- or estimator-dependent and always run.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

import numpy as np

from repro.errors import CompilationError
from repro.ir.chain import Chain
from repro.obs import get_registry
from repro.obs import trace as obs_trace
from repro.compiler.dispatch import CostEstimator, Dispatcher, flop_estimator
from repro.compiler.expansion import AveragePenalty, MaxPenalty, expand_set
from repro.compiler.program import CompiledProgram
from repro.compiler.selection import CostMatrix, essential_set
from repro.compiler.variant import Variant

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.compiler.variant_space import VariantSpace

#: Dispatcher cost models selectable through :attr:`CompileOptions.cost_model`.
COST_MODEL_NAMES = ("flops", "calibrated")


@dataclass(frozen=True)
class CompileOptions:
    """Structure-independent knobs of one compilation.

    Everything here (plus the chain's structural key) determines the
    selected variants, so the tuple doubles as the options half of the
    compilation-cache key.  The run-time ``cost_estimator`` is *not* an
    option: it only parameterizes the dispatcher, which is rebuilt on every
    compile (cache hit or miss).
    """

    expand_by: int = 0
    num_training_instances: int = 1000
    size_range: tuple[int, int] = (2, 1000)
    objective: str = "avg"
    seed: int = 0
    simplify: bool = True
    #: Candidate-generation strategy of the ``enumerate`` stage:
    #: ``"exhaustive"`` (all Catalan-many parenthesizations, the paper's
    #: set ``A``), ``"dp"`` (DP-seeded sparse pool for long chains), or
    #: ``"auto"`` (exhaustive up to
    #: :data:`~repro.compiler.variant_space.AUTO_EXHAUSTIVE_MAX_N`
    #: matrices, DP-seeded beyond).  See :mod:`repro.compiler.variant_space`.
    variant_space: str = "auto"
    #: Bound on the candidate pool (``None`` = the space's own default:
    #: unbounded for exhaustive, 512 for DP-seeded).  Fanning-out variants
    #: are never evicted by the bound.
    max_variants: Optional[int] = None
    #: Execution-backend strategy for the built dispatcher:
    #: ``"reference"``, ``"blas"``, ``"c"`` (code-generated native step
    #: loops, falling back to blas without a toolchain), or ``"auto"``
    #: (measured pick per memo entry).  See
    #: :mod:`repro.runtime.backends`.  A *runtime* knob: it
    #: never influences which variants are selected, so it is excluded
    #: from :meth:`cache_token` — compilations differing only in backend
    #: share one cache entry and diverge in the dispatch pass.
    backend: str = "reference"
    #: Cost model of the built dispatcher: ``"flops"`` (the paper's
    #: analytic FLOP count) or ``"calibrated"`` (the feedback-directed
    #: :class:`~repro.perfmodel.feedback.CalibratedEstimator`, seeded to
    #: rank like FLOPs and updated online from measured kernel timings).
    #: Like ``backend``, a *runtime* knob excluded from
    #: :meth:`cache_token`: it never changes which variants are selected,
    #: only how the dispatcher prices them per call.
    cost_model: str = "flops"
    #: Digest of an explicitly supplied training set (None when sampled).
    training_fingerprint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.objective not in ("avg", "max"):
            raise CompilationError(
                f"objective must be 'avg' or 'max', got {self.objective!r}"
            )
        from repro.compiler.variant_space import SPACE_NAMES

        if self.variant_space not in SPACE_NAMES:
            raise CompilationError(
                f"variant_space must be one of {SPACE_NAMES}, "
                f"got {self.variant_space!r}"
            )
        if self.max_variants is not None and self.max_variants < 1:
            raise CompilationError(
                f"max_variants must be >= 1, got {self.max_variants!r}"
            )
        if self.num_training_instances < 1:
            raise CompilationError(
                "num_training_instances must be >= 1, got "
                f"{self.num_training_instances!r} (selection needs at least "
                "one instance to score against)"
            )
        from repro.runtime.backends import BACKEND_NAMES

        if self.backend not in BACKEND_NAMES:
            raise CompilationError(
                f"backend must be one of {BACKEND_NAMES}, "
                f"got {self.backend!r}"
            )
        if self.cost_model not in COST_MODEL_NAMES:
            raise CompilationError(
                f"cost_model must be one of {COST_MODEL_NAMES}, "
                f"got {self.cost_model!r}"
            )

    def cache_token(self) -> tuple:
        """The hashable options component of the compilation-cache key.

        With an explicit training set (``training_fingerprint`` set), the
        sampling knobs (``num_training_instances``, ``size_range``,
        ``seed``) never reach the pipeline, so they are excluded — the same
        data under a different seed must still hit.
        """
        if self.training_fingerprint is not None:
            sampling: tuple = ()
        else:
            sampling = (
                self.num_training_instances,
                tuple(self.size_range),
                self.seed,
            )
        return (
            self.expand_by,
            self.objective,
            self.simplify,
            self.training_fingerprint,
            sampling,
            # The variant-space knobs shape the candidate pool and hence
            # the selected set: sessions differing only here must not
            # share entries.  The raw strings are keyed (``"auto"`` is not
            # resolved); the structural key fixes the chain length, so one
            # token can never cover two different resolutions.
            self.variant_space,
            self.max_variants,
        )


def fingerprint_instances(instances: np.ndarray) -> str:
    """Content digest of an explicit training-instance array."""
    array = np.ascontiguousarray(np.asarray(instances, dtype=np.float64))
    digest = hashlib.sha256(array.tobytes())
    digest.update(str(array.shape).encode())
    return digest.hexdigest()


@dataclass
class PassContext:
    """Mutable state threaded through the pipeline.

    ``source`` is the user input (a chain or program text); each pass reads
    the artifacts of its predecessors and writes its own.  ``executed`` and
    ``timings`` record which passes actually ran and for how long — the
    cache tests assert on them, and ``repro compile --timings`` prints them.
    """

    source: object
    options: CompileOptions = field(default_factory=CompileOptions)
    cost_estimator: CostEstimator = flop_estimator

    # -- artifacts, in pipeline order ---------------------------------------
    chain: Optional[Chain] = None
    training_instances: Optional[np.ndarray] = None
    variants: Optional[list[Variant]] = None
    cost_matrix: Optional[CostMatrix] = None
    selected: Optional[list[Variant]] = None
    program: Optional[CompiledProgram] = None
    dispatcher: Optional[Dispatcher] = None

    #: Content address of this compilation (set by the session once the
    #: front passes have run); stamped into the produced artifact.
    cache_key: str = ""

    # -- instrumentation ----------------------------------------------------
    executed: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)
    #: Structured per-pass instrumentation (e.g. ``variant_pool`` from the
    #: enumerate stage), reported by ``repro compile --timings`` and the
    #: serve ``stats`` response, and carried on the artifact.
    diagnostics: dict[str, object] = field(default_factory=dict)
    #: True while the back pipeline runs on a cache hit.  A custom
    #: non-cacheable pass spliced among the cacheable stages must branch on
    #: this: the skipped stages' intermediates (``variants``,
    #: ``cost_matrix``) are absent on a hit — only ``selected`` and
    #: ``training_instances`` are restored from the cache.
    cache_hit: bool = False

    def require(self, attribute: str) -> object:
        value = getattr(self, attribute)
        if value is None:
            hint = (
                " (this compile was served from the cache, which restores "
                "only 'selected' and 'training_instances'; guard custom "
                "passes with `if ctx.cache_hit`)"
                if self.cache_hit
                else " (did an earlier pass get skipped?)"
            )
            raise CompilationError(
                f"pipeline artifact {attribute!r} missing{hint}"
            )
        return value


class CompilerPass:
    """One named stage of the pipeline.

    Subclasses set ``name`` and implement :meth:`run`.  ``cacheable`` marks
    passes whose artifacts a compilation-cache hit replaces.
    """

    name: str = "<pass>"
    cacheable: bool = False

    def run(self, ctx: PassContext) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def cache_token(self) -> tuple:
        """Hashable configuration of this pass instance.

        Folded into :meth:`Pipeline.fingerprint`.  A parameterized pass
        (e.g. a top-k selection strategy) must override this to return its
        parameters, otherwise two differently-configured instances of the
        same class would share compilation-cache entries.
        """
        return ()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class ParsePass(CompilerPass):
    """Turn program text into a :class:`Chain`; validate chain inputs."""

    name = "parse"

    def run(self, ctx: PassContext) -> None:
        from repro.ir.parser import parse_chain

        source = ctx.source
        if isinstance(source, str):
            source = parse_chain(source)
        if not isinstance(source, Chain):
            raise CompilationError(
                f"expected a Chain or program source, got {type(source).__name__}"
            )
        ctx.chain = source


class SimplifyPass(CompilerPass):
    """Apply the Section III-A rewrites (no-op when options.simplify=False)."""

    name = "simplify"

    def run(self, ctx: PassContext) -> None:
        from repro.ir.rewrites import simplify_chain

        chain = ctx.require("chain")
        if ctx.options.simplify:
            ctx.chain = simplify_chain(chain)


class TrainingSamplePass(CompilerPass):
    """Sample the training instances Q (skipped when supplied explicitly)."""

    name = "sample"
    cacheable = True

    def run(self, ctx: PassContext) -> None:
        from repro.experiments.sampling import sample_instances

        if ctx.training_instances is not None:
            ctx.training_instances = np.asarray(ctx.training_instances)
            if ctx.training_instances.shape[0] == 0:
                # A well-shaped empty array would flow through the cost
                # matrix only to make every selection objective undefined
                # (means/maxima over zero instances); fail here with the
                # cause instead.
                raise CompilationError(
                    "training_instances must contain at least one instance"
                )
            return
        chain = ctx.require("chain")
        rng = np.random.default_rng(ctx.options.seed)
        low, high = ctx.options.size_range
        ctx.training_instances = sample_instances(
            chain, ctx.options.num_training_instances, rng, low=low, high=high
        )


class EnumeratePass(CompilerPass):
    """Generate the candidate variant pool through a variant space.

    The strategy comes from ``options.variant_space`` (resolved per chain —
    ``"auto"`` switches from exhaustive to DP-seeded on long chains), or
    from an explicit :class:`~repro.compiler.variant_space.VariantSpace`
    instance pinned at pass construction, which wins over the options and
    is keyed into the pipeline fingerprint instead.
    """

    name = "enumerate"
    cacheable = True

    def __init__(self, space: Optional["VariantSpace"] = None):
        self.space = space
        # A pinned space instance is shared by every compile through this
        # pass; its per-generate diagnostics attribute must not be read
        # while another thread's generate() is rebinding it.
        self._space_lock = threading.Lock() if space is not None else None

    def run(self, ctx: PassContext) -> None:
        from repro.compiler.variant_space import resolve_space

        chain = ctx.require("chain")
        if chain.n == 1:
            ctx.variants = [_single_variant(chain)]
            ctx.diagnostics["variant_pool"] = {
                "strategy": "single",
                "requested": ctx.options.variant_space,
                "pool_size": 1,
            }
            return
        if self.space is not None:
            with self._space_lock:
                ctx.variants = self.space.generate(
                    chain, ctx.training_instances
                )
                info: dict = dict(self.space.diagnostics or {})
            space_name = self.space.name
        else:
            space = resolve_space(ctx.options, chain)  # fresh per compile
            ctx.variants = space.generate(chain, ctx.training_instances)
            info = dict(space.diagnostics or {})
            space_name = space.name
        # The pool diagnostics (strategy resolved by ``auto``, dedup hits,
        # seed count, ...) flow to --timings and the serve stats response.
        info.setdefault("strategy", space_name)
        info["requested"] = ctx.options.variant_space
        info["pool_size"] = len(ctx.variants)
        ctx.diagnostics["variant_pool"] = info

    def cache_token(self) -> tuple:
        if self.space is None:
            return ()  # options-driven: keyed via CompileOptions.cache_token
        return (type(self.space).__qualname__, self.space.cache_token())


class CostMatrixPass(CompilerPass):
    """Pre-evaluate every pool variant on every training instance (batched).

    The matrix's per-instance minimum is the penalty baseline: the true
    optimum over ``A`` under the exhaustive space, a DP-anchored upper
    bound under sparse spaces.
    """

    name = "cost-matrix"
    cacheable = True

    def run(self, ctx: PassContext) -> None:
        chain = ctx.require("chain")
        if chain.n == 1:
            return  # nothing to score: the single variant is forced
        ctx.cost_matrix = CostMatrix(
            ctx.require("variants"), ctx.require("training_instances")
        )


class EssentialSetPass(CompilerPass):
    """Theorem 2: one fanning-out representative per equivalence class.

    Works on whatever pool the variant space generated — every space
    guarantees the fanning-out candidates are present in the cost matrix.
    """

    name = "select"
    cacheable = True

    def run(self, ctx: PassContext) -> None:
        chain = ctx.require("chain")
        if chain.n == 1:
            ctx.selected = list(ctx.require("variants"))
            return
        ctx.selected = essential_set(
            chain,
            cost_matrix=ctx.require("cost_matrix"),
            objective=ctx.options.objective,
        )


class ExpansionPass(CompilerPass):
    """Algorithm 1: greedily grow the set by ``expand_by`` variants."""

    name = "expand"
    cacheable = True

    def run(self, ctx: PassContext) -> None:
        chain = ctx.require("chain")
        selected = ctx.require("selected")
        if ctx.options.expand_by <= 0 or chain.n == 1:
            return
        scorer = AveragePenalty if ctx.options.objective == "avg" else MaxPenalty
        ctx.selected = expand_set(
            ctx.require("cost_matrix"),
            selected,
            max_size=len(selected) + ctx.options.expand_by,
            objective=lambda m, idx: scorer(m, idx),
        )


class DispatchPass(CompilerPass):
    """Produce the compilation artifact and its run-time dispatcher.

    The pass's primary product is a :class:`CompiledProgram` — the
    versioned, serializable bundle the cache stores and the wire ships —
    and the dispatcher is *reconstructed from the artifact*, so in-process
    and loaded-from-the-wire compilations go through the identical path.
    """

    name = "dispatch"

    def run(self, ctx: PassContext) -> None:
        ctx.program = CompiledProgram.from_artifacts(
            ctx.require("chain"),
            ctx.require("selected"),
            ctx.training_instances,
            key=ctx.cache_key,
            options=ctx.options,
            timings=ctx.timings,
            diagnostics=ctx.diagnostics,
            # On a cache hit the context's training array is already this
            # request's private copy (rebind copies per request), and the
            # artifact never becomes the cache entry — skip the extra copy
            # on the serving hot path.  A fresh compilation's artifact IS
            # the future cache entry and takes its own copy.
            copy_training=not ctx.cache_hit,
        )
        # The dispatcher is the artifact's *live runtime* (shared memo and
        # term stack), so every consumer holding this compilation — the
        # GeneratedCode facade, the serve registry, repeated execute()
        # calls — amortizes dispatch state in one place.  The default
        # estimator lets the program resolve its own (options.cost_model,
        # shipped calibration); an explicitly injected estimator wins.
        ctx.dispatcher = ctx.program.runtime(
            None if ctx.cost_estimator is flop_estimator else ctx.cost_estimator
        )


def _single_variant(chain: Chain) -> Variant:
    """The (only) variant of a one-matrix chain: unary fix-ups."""
    from repro.compiler.parenthesization import leaf
    from repro.compiler.variant import build_variant

    return build_variant(chain, leaf(0), name="single")


#: Observer signature: (pass, context, elapsed seconds or None when skipped).
PassObserver = Callable[[CompilerPass, PassContext, Optional[float]], None]


class Pipeline:
    """An ordered sequence of named passes.

    The default pipeline mirrors Fig. 1.  ``without``/``replaced``/``extended``
    derive modified pipelines non-destructively, so callers can drop the
    expansion stage, swap the selection strategy, or splice in an
    instrumentation pass without touching this module.
    """

    def __init__(
        self,
        passes: Optional[Sequence[CompilerPass]] = None,
        observer: Optional[PassObserver] = None,
    ):
        self.passes: list[CompilerPass] = list(
            default_passes() if passes is None else passes
        )
        self.observer = observer
        names = [p.name for p in self.passes]
        if len(set(names)) != len(names):
            raise CompilationError(f"duplicate pass names in pipeline: {names}")

    # -- derivation ---------------------------------------------------------

    def without(self, *names: str) -> "Pipeline":
        """A pipeline with the named passes removed."""
        missing = set(names) - {p.name for p in self.passes}
        if missing:
            raise CompilationError(f"unknown passes: {sorted(missing)}")
        return Pipeline(
            [p for p in self.passes if p.name not in names], self.observer
        )

    def replaced(self, name: str, new_pass: CompilerPass) -> "Pipeline":
        """A pipeline with one pass swapped for another (same position)."""
        if name not in {p.name for p in self.passes}:
            raise CompilationError(f"unknown pass: {name!r}")
        return Pipeline(
            [new_pass if p.name == name else p for p in self.passes],
            self.observer,
        )

    def extended(self, new_pass: CompilerPass, after: Optional[str] = None) -> "Pipeline":
        """A pipeline with a pass appended (or inserted after ``after``)."""
        passes = list(self.passes)
        if after is None:
            passes.append(new_pass)
        else:
            index = next(
                (i for i, p in enumerate(passes) if p.name == after), None
            )
            if index is None:
                raise CompilationError(f"unknown pass: {after!r}")
            passes.insert(index + 1, new_pass)
        return Pipeline(passes, self.observer)

    # -- execution ----------------------------------------------------------

    def run(
        self, ctx: PassContext, skip: Iterable[str] = ()
    ) -> PassContext:
        """Run the passes in order, skipping any whose name is in ``skip``.

        The cache layer passes ``skip={cacheable pass names}`` on a hit,
        having pre-populated the skipped passes' artifacts on the context.
        """
        skip = set(skip)
        registry = get_registry()
        for compiler_pass in self.passes:
            if compiler_pass.name in skip:
                ctx.skipped.append(compiler_pass.name)
                if self.observer is not None:
                    self.observer(compiler_pass, ctx, None)
                continue
            with obs_trace.span(f"compile.pass.{compiler_pass.name}") as pass_span:
                start = time.perf_counter()
                compiler_pass.run(ctx)
                elapsed = time.perf_counter() - start
                pass_span.annotate(elapsed=elapsed)
            ctx.executed.append(compiler_pass.name)
            ctx.timings[compiler_pass.name] = (
                ctx.timings.get(compiler_pass.name, 0.0) + elapsed
            )
            registry.histogram(
                "compiler.pass_seconds", stage=compiler_pass.name
            ).observe(elapsed)
            if self.observer is not None:
                self.observer(compiler_pass, ctx, elapsed)
        pool = ctx.diagnostics.get("variant_pool")
        if pool:
            # The variant-pool diagnostics double as registry state so one
            # ``stats`` call sees what the enumerate stage decided.
            strategy = str(pool.get("strategy", "unknown"))
            registry.counter("compiler.variant_pools", strategy=strategy).inc()
            registry.histogram("compiler.pool_size", strategy=strategy).observe(
                pool.get("pool_size", 0)
            )
        return ctx

    def cacheable_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.passes if p.cacheable)

    def fingerprint(self) -> str:
        """Identity of the pass sequence, for the compilation-cache key.

        Two sessions sharing a disk cache but running different pipelines
        (a swapped selection pass, an extra stage, a reconfigured pass) must
        not serve each other's entries; the fingerprint keys on the pass
        classes plus each pass's :meth:`CompilerPass.cache_token`.
        """
        token = tuple(
            (
                type(p).__module__,
                type(p).__qualname__,
                p.name,
                p.cacheable,
                p.cache_token(),
            )
            for p in self.passes
        )
        return hashlib.sha256(repr(token).encode()).hexdigest()[:16]

    def __iter__(self):
        return iter(self.passes)

    def __len__(self) -> int:
        return len(self.passes)

    def __repr__(self) -> str:
        return "Pipeline(" + " -> ".join(p.name for p in self.passes) + ")"


def default_passes() -> tuple[CompilerPass, ...]:
    """The Fig. 1 generator as a pass sequence."""
    return (
        ParsePass(),
        SimplifyPass(),
        TrainingSamplePass(),
        EnumeratePass(),
        CostMatrixPass(),
        EssentialSetPass(),
        ExpansionPass(),
        DispatchPass(),
    )


def default_pipeline(observer: Optional[PassObserver] = None) -> Pipeline:
    return Pipeline(default_passes(), observer)

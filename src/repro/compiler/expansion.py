"""Empirical expansion of variant sets (paper Section VI, Algorithm 1).

Given the full set of variants ``A`` for a shape, a set of sampled instances
``Q``, an objective function ``F`` (lower is better), a cardinality budget
``K``, and an initial set ``Z_0``, ``ExpandSet`` greedily adds the variant
that most improves ``F`` until the budget is exhausted or no variant
improves the objective.

The objective functions of the paper are provided: the *average penalty*
``F_avg`` and the *maximum penalty* ``F_max`` over the sampled instances.
Objectives are pluggable: anything that maps a set of variant indices within
a :class:`~repro.compiler.selection.CostMatrix` to a score works, which is
how the execution-time experiment swaps FLOP costs for performance-model
estimates.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.compiler.selection import CostMatrix
from repro.compiler.variant import Variant

#: An objective maps (cost_matrix, subset_indices) to a score (lower=better).
Objective = Callable[[CostMatrix, Sequence[int]], float]


def AveragePenalty(matrix: CostMatrix, indices: Sequence[int]) -> float:
    """``F_avg``: mean per-instance penalty of the best-in-set variant."""
    return matrix.average_penalty(indices)


def MaxPenalty(matrix: CostMatrix, indices: Sequence[int]) -> float:
    """``F_max``: worst per-instance penalty of the best-in-set variant."""
    return matrix.max_penalty(indices)


def expand_set(
    cost_matrix: CostMatrix,
    initial: Sequence[Variant],
    max_size: int,
    objective: Objective = AveragePenalty,
) -> list[Variant]:
    """Algorithm 1 (``ExpandSet``) of the paper.

    ``cost_matrix`` holds the costs of *all* variants ``A`` on the sampled
    instances ``Q``; ``initial`` is ``Z_0`` (its members must appear in the
    matrix); ``max_size`` is ``K``.  Returns the expanded set ``Z`` with
    ``|Z| <= K``.  The greedy loop stops early as soon as no candidate
    improves the objective, exactly as the algorithm's early return.
    """
    sig_to_idx = {v.signature(): i for i, v in enumerate(cost_matrix.variants)}
    selected_idx: list[int] = []
    for variant in initial:
        idx = sig_to_idx.get(variant.signature())
        if idx is None:
            raise ValueError(
                f"initial variant {variant.name!r} is not in the cost matrix"
            )
        if idx not in selected_idx:
            selected_idx.append(idx)

    # Line 2: the incumbent value (infinity for an empty initial set).
    v_min = objective(cost_matrix, selected_idx) if selected_idx else float("inf")

    while len(selected_idx) < max_size:
        best_candidate: Optional[int] = None
        best_value = float("inf")
        for candidate in range(len(cost_matrix.variants)):
            if candidate in selected_idx:
                continue
            value = objective(cost_matrix, selected_idx + [candidate])
            if value < best_value:
                best_value = value
                best_candidate = candidate
        if best_candidate is None or best_value >= v_min:
            break  # line 13-15: no improvement
        selected_idx.append(best_candidate)
        v_min = best_value

    return [cost_matrix.variants[i] for i in selected_idx]

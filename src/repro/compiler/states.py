"""Symbolic operand states and the association procedure (paper Section IV).

An :class:`OperandState` describes one operand of an association at
compile time: its *logical* features (structure with transposition already
accounted for, property), how its stored base value relates to the logical
value (``inverted`` / ``transposed`` flags), and the size-symbol indices of
its logical dimensions.

:func:`associate` is the single source of truth for turning one association
into a kernel call.  It implements the paper's four steps:

1. *Propagation of inversion* — rewrites like
   ``M1^-1 M2^-1 = (M2 M1)^-1`` and ``L G^-1 = (G L^-1)^-1`` that trade
   expensive solves for cheap ones, leaving a pending inversion on the
   result.
2. *Kernel assignment* — the Fig. 3 lookup tables.
3. *Propagation of transposition* — when the assigned kernel does not
   support an operand's transposition pattern, rewrite
   ``X Y = (Y^T X^T)^T`` and leave a pending transposition on the result.
4. *Inference of features and sizes* — the Fig. 4 lookup tables.

The same procedure drives the variant builder, the dynamic-programming
optimizer, and the executor metadata, so all of them agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.errors import CompilationError
from repro.ir.chain import Chain
from repro.ir.features import Property, Structure
from repro.kernels.cost import CostFunction
from repro.kernels.spec import KernelSpec
from repro.kernels.tables import lookup_product_kernel, lookup_solve_kernel
from repro.inference.rules import infer_association_features

#: Reference to an operand's base value: ("matrix", i) for input matrix
#: ``M_{i+1}`` or ("step", j) for the result of the j-th association.
SourceRef = tuple[str, int]


@dataclass(frozen=True)
class OperandState:
    """Compile-time description of one association operand."""

    structure: Structure  #: logical structure (transposition accounted for)
    prop: Property
    inverted: bool  #: logical value is the inverse of the stored base
    transposed: bool  #: stored base must be read transposed
    rows: int  #: size-symbol index of the logical row dimension
    cols: int  #: size-symbol index of the logical column dimension
    square: bool  #: logical value is necessarily square
    source: SourceRef

    @property
    def stored_structure(self) -> Structure:
        """Structure of the stored base array (undo the logical transpose)."""
        return self.structure.transposed if self.transposed else self.structure

    def toggled_inverse(self) -> "OperandState":
        """State of this operand's logical inverse.

        Inversion preserves all tracked structures and properties and swaps
        the (necessarily equal-valued) logical dimensions.
        """
        if not self.inverted and not self.prop.is_invertible:
            raise CompilationError(
                f"cannot take the inverse of a possibly-singular operand "
                f"({self.structure.value}, {self.prop.value})"
            )
        return replace(
            self, inverted=not self.inverted, rows=self.cols, cols=self.rows
        )

    def toggled_transpose(self) -> "OperandState":
        """State of this operand's logical transpose."""
        return replace(
            self,
            transposed=not self.transposed,
            structure=self.structure.transposed,
            rows=self.cols,
            cols=self.rows,
        )

    def simplified(self) -> "OperandState":
        """Apply the operator simplifications of Section III-A at state level.

        * An inverted orthogonal operand becomes a transposed one
          (``Q^-1 = Q^T``).
        * A transposed symmetric operand drops the transposition
          (``S^T = S``); note the logical value and dims are unchanged.
        """
        state = self
        if state.inverted and state.prop is Property.ORTHOGONAL:
            # Q^-1 = Q^T: same logical value, so logical dims stay put, but
            # the stored base is now read transposed instead of inverted.
            state = replace(state, inverted=False, transposed=not state.transposed)
        if state.transposed and state.structure in (
            Structure.SYMMETRIC,
            Structure.DIAGONAL,
        ):
            state = replace(state, transposed=False)
        return state


def initial_states(chain: Chain) -> list[OperandState]:
    """Operand states for the chain's input matrices."""
    states = []
    for i, operand in enumerate(chain):
        state = OperandState(
            structure=operand.structure,  # already transposition-effective
            prop=operand.matrix.prop,
            inverted=operand.inverted,
            transposed=operand.transposed,
            rows=i,
            cols=i + 1,
            square=operand.is_square,
            source=("matrix", i),
        ).simplified()
        states.append(state)
    return states


@dataclass(frozen=True)
class AssociationResult:
    """Everything the compiler needs to know about one resolved association."""

    kernel: KernelSpec
    #: Side of the structured/coefficient operand ("left"/"right").
    side: str
    #: Whether the favourable cost case applies (triangularity-dependent).
    cheap: bool
    #: The operands as the kernel consumes them (post-rewrite order).
    left: OperandState
    right: OperandState
    #: Size-symbol indices (m, k, n) of the actual kernel call.
    call_dims: tuple[int, int, int]
    cost: CostFunction
    #: Pending operators propagated to the result.
    pending_inverse: bool
    pending_transpose: bool
    result: OperandState


def _is_cheap_inverse_target(state: OperandState) -> bool:
    """Operands that make solving cheap: orthogonal, non-singular triangular,
    or (extension) non-singular diagonal."""
    if state.inverted:
        return False
    if state.prop is Property.ORTHOGONAL:
        return True
    cheap_structure = (
        state.structure.is_triangular or state.structure is Structure.DIAGONAL
    )
    return cheap_structure and state.prop.is_invertible


def _propagate_inversion(
    left: OperandState, right: OperandState
) -> tuple[OperandState, OperandState, bool]:
    """Step 1: rewrite the association, possibly propagating an inversion.

    Both rewrite cases reduce to the same transformation
    ``X Y -> (Y^-1 X^-1)^-1``: swap the operands and toggle both inversion
    flags, leaving a pending inversion on the result.
    """
    both = left.inverted and right.inverted
    left_case = (
        left.inverted
        and not right.inverted
        and left.structure in (Structure.GENERAL, Structure.SYMMETRIC)
        and _is_cheap_inverse_target(right)
    )
    right_case = (
        right.inverted
        and not left.inverted
        and right.structure in (Structure.GENERAL, Structure.SYMMETRIC)
        and _is_cheap_inverse_target(left)
    )
    if both or left_case or right_case:
        return right.toggled_inverse(), left.toggled_inverse(), True
    return left, right, False


def _structured_roles(
    kernel: KernelSpec, left: OperandState, right: OperandState, side: str
) -> tuple[bool, bool]:
    """Transposability of (left, right) under the assigned kernel."""
    if kernel.kind == "solve":
        if side == "left":
            return kernel.structured_transposable, kernel.other_transposable
        return kernel.other_transposable, kernel.structured_transposable
    # Products: the non-general operand plays the structured role; with two
    # general (GEMM) or two equally-structured operands (SYSYMM, TRTRMM) both
    # play the structured role.
    left_general = left.structure is Structure.GENERAL
    right_general = right.structure is Structure.GENERAL
    if left_general and not right_general:
        return kernel.other_transposable, kernel.structured_transposable
    if right_general and not left_general:
        return kernel.structured_transposable, kernel.other_transposable
    return kernel.structured_transposable, kernel.structured_transposable


def _assign_kernel(
    left: OperandState, right: OperandState
) -> tuple[KernelSpec, str]:
    """Step 2: Fig. 3 lookup.  Returns (kernel, structured/coefficient side)."""
    if left.inverted and right.inverted:
        raise CompilationError(
            "internal error: two inverted operands reached kernel assignment"
        )
    if left.inverted or right.inverted:
        coeff, rhs, side = (
            (left, right, "left") if left.inverted else (right, left, "right")
        )
        kernel = lookup_solve_kernel(coeff.structure, coeff.prop, rhs.structure)
        return kernel, side
    kernel = lookup_product_kernel(left.structure, right.structure)
    left_general = left.structure is Structure.GENERAL
    right_general = right.structure is Structure.GENERAL
    if left_general and not right_general:
        side = "right"
    else:
        side = "left"
    return kernel, side


def _cheap_case(
    kernel: KernelSpec, side: str, left: OperandState, right: OperandState
) -> bool:
    """Which cost regime applies for kernels with two cost cases."""
    if kernel.name == "TRTRMM":
        return left.structure == right.structure
    if kernel.name == "TRTRSV":
        coeff, rhs = (left, right) if side == "left" else (right, left)
        if rhs.structure is Structure.DIAGONAL:
            return True  # a diagonal RHS has both triangularities
        return coeff.structure == rhs.structure
    if kernel.name in ("GETRSV", "POTRSV"):
        rhs = right if side == "left" else left
        if rhs.structure is Structure.DIAGONAL:
            return True
        if side == "left":
            return rhs.structure is Structure.LOWER_TRIANGULAR
        return rhs.structure is Structure.UPPER_TRIANGULAR
    return True


def associate(
    left: OperandState,
    right: OperandState,
    same_class: Callable[[int, int], bool],
    step_index: int,
) -> AssociationResult:
    """Resolve one association through the four-step procedure of Section IV.

    ``same_class(i, j)`` reports whether size symbols ``q_i`` and ``q_j``
    are bound by equality (needed for squareness of the result);
    ``step_index`` labels the result's source reference.
    """
    logical_rows, logical_cols = left.rows, right.cols
    result_square = same_class(logical_rows, logical_cols)

    # Step 1: propagation of inversion (then re-simplify the operands,
    # because toggling may have created e.g. an inverted orthogonal operand).
    left, right, pending_inverse = _propagate_inversion(left, right)
    left, right = left.simplified(), right.simplified()

    # Step 2: kernel assignment.
    kernel, side = _assign_kernel(left, right)

    # Step 3: propagation of transposition.  If an operand is transposed and
    # the kernel cannot consume it transposed, rewrite X Y = (Y^T X^T)^T.
    pending_transpose = False
    left_ok, right_ok = _structured_roles(kernel, left, right, side)
    if (left.transposed and not left_ok) or (right.transposed and not right_ok):
        left, right = right.toggled_transpose(), left.toggled_transpose()
        left, right = left.simplified(), right.simplified()
        pending_transpose = True
        kernel, side = _assign_kernel(left, right)
        left_ok, right_ok = _structured_roles(kernel, left, right, side)
        if (left.transposed and not left_ok) or (right.transposed and not right_ok):
            raise CompilationError(
                f"transposition pattern not supported by {kernel.name} even "
                f"after rewriting: {left} x {right}"
            )

    # Cost resolution.
    cheap = _cheap_case(kernel, side, left, right)
    cost = kernel.cost(side=side, cheap=cheap)
    call_dims = (left.rows, left.cols, right.cols)

    # Step 4: inference of features and sizes.  The tables are applied to the
    # *computed* base value Z; pending operators then wrap it logically.
    base_structure, base_prop = infer_association_features(
        left.structure, left.prop, right.structure, right.prop, result_square
    )
    result_structure = (
        base_structure.transposed if pending_transpose else base_structure
    )
    result = OperandState(
        structure=result_structure,
        prop=base_prop,
        inverted=pending_inverse,
        transposed=pending_transpose,
        rows=logical_rows,
        cols=logical_cols,
        square=result_square,
        source=("step", step_index),
    )
    return AssociationResult(
        kernel=kernel,
        side=side,
        cheap=cheap,
        left=left,
        right=right,
        call_dims=call_dims,
        cost=cost,
        pending_inverse=pending_inverse,
        pending_transpose=pending_transpose,
        result=result,
    )

"""Code variants: sequences of kernel calls with cost functions (§III-C, §IV).

A :class:`Variant` is the compile-time artifact generated for one
parenthesization: an ordered sequence of :class:`Step` kernel calls (plus
possible unary fix-up steps when an inversion or transposition is propagated
all the way to the end result).  Each variant carries a FLOP cost function
``T(A, q)`` over instances ``q`` — both as fast numeric evaluation and as a
sympy expression.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Sequence

import numpy as np

from repro.errors import CompilationError
from repro.ir.chain import Chain
from repro.ir.features import Structure
from repro.kernels.cost import CostFunction
from repro.kernels.spec import COPY, TRANSPOSE, KernelSpec
from repro.kernels.tables import lookup_inversion_kernel
from repro.compiler.parenthesization import ParenTree, linearize
from repro.compiler.states import (
    AssociationResult,
    OperandState,
    SourceRef,
    associate,
    initial_states,
)


@dataclass(frozen=True)
class Step:
    """One resolved kernel call inside a variant."""

    index: int
    kernel: KernelSpec
    side: str
    cheap: bool
    #: Base-value references of the operands in kernel-call order.
    left_ref: SourceRef
    right_ref: SourceRef
    #: Full operand states in kernel-call order (flags for the executor).
    left_state: OperandState
    right_state: OperandState
    #: Canonical association triplet (a, b, c) of the original association.
    triplet: tuple[int, int, int]
    #: Size-symbol indices (m, k, n) of the actual kernel call.
    call_dims: tuple[int, int, int]
    cost: CostFunction
    result_state: OperandState

    def describe(self) -> str:
        a, b, c = self.triplet
        return (
            f"X{self.index} := {self.kernel.name}"
            f"[{self.side}{',cheap' if not self.cheap else ''}]"
            f"(q{a}, q{b}, q{c})"
        )


@dataclass(frozen=True)
class FixupStep:
    """A unary fix-up applied to the final result (explicit inv/transpose)."""

    kernel: KernelSpec
    #: Size-symbol index the cost is charged on (square dimension).
    dim: int
    cost: CostFunction


@dataclass(frozen=True)
class Variant:
    """A generated code variant for one parenthesization of a chain."""

    chain: Chain
    tree: Optional[ParenTree]
    steps: tuple[Step, ...]
    fixups: tuple[FixupStep, ...]
    final_state: OperandState
    name: str = ""

    # -- cost evaluation ------------------------------------------------------

    @cached_property
    def _flat_terms(self) -> tuple[tuple[float, tuple[tuple[int, int], ...]], ...]:
        """Cost flattened to (coefficient, ((symbol index, exponent), ...))."""
        flat: list[tuple[float, tuple[tuple[int, int], ...]]] = []
        for step in self.steps:
            m, k, n = step.call_dims
            for term in step.cost.terms:
                powers: dict[int, int] = {}
                for sym, exp in ((m, term.em), (k, term.ek), (n, term.en)):
                    if exp:
                        powers[sym] = powers.get(sym, 0) + exp
                flat.append((float(term.coeff), tuple(sorted(powers.items()))))
        for fix in self.fixups:
            for term in fix.cost.terms:
                degree = term.em + term.ek + term.en
                if degree:
                    flat.append((float(term.coeff), ((fix.dim, degree),)))
        return tuple(flat)

    def flop_cost(self, sizes: Sequence[int]) -> float:
        """Numeric FLOP cost ``T(A, q)`` on a concrete instance ``q``."""
        total = 0.0
        for coeff, powers in self._flat_terms:
            value = coeff
            for sym, exp in powers:
                value *= sizes[sym] ** exp
            total += value
        return total

    def flop_cost_many(self, instances: np.ndarray) -> np.ndarray:
        """Vectorized cost over an ``(num_instances, n+1)`` size array."""
        instances = np.asarray(instances, dtype=np.float64)
        total = np.zeros(instances.shape[0])
        for coeff, powers in self._flat_terms:
            value = np.full(instances.shape[0], coeff)
            for sym, exp in powers:
                value *= instances[:, sym] ** exp
            total += value
        return total

    def symbolic_cost(self):
        """Exact symbolic FLOP cost as a sympy expression in ``q0 .. qn``."""
        import sympy

        symbols = sympy.symbols(
            [f"q{i}" for i in range(self.chain.n + 1)], positive=True
        )
        total = sympy.Integer(0)
        for step in self.steps:
            m, k, n = (symbols[d] for d in step.call_dims)
            total += step.cost.to_sympy(m, k, n)
        for fix in self.fixups:
            d = symbols[fix.dim]
            total += fix.cost.to_sympy(d, d, d)
        return sympy.expand(total)

    # -- presentation ----------------------------------------------------------

    @property
    def triplets(self) -> tuple[tuple[int, int, int], ...]:
        """The association triplets ``(a_i, b_i, c_i)`` in issue order."""
        return tuple(step.triplet for step in self.steps)

    @property
    def kernel_names(self) -> tuple[str, ...]:
        return tuple(step.kernel.name for step in self.steps) + tuple(
            fix.kernel.name for fix in self.fixups
        )

    def signature(self) -> tuple:
        """Hashable identity: the (kernel, triplet) sequence plus fix-ups."""
        return (
            tuple((s.kernel.name, s.side, s.triplet) for s in self.steps),
            tuple((f.kernel.name, f.dim) for f in self.fixups),
        )

    def describe(self) -> str:
        """Multi-line human-readable listing of the kernel call sequence."""
        lines = [f"variant {self.name or '<anonymous>'} for chain {self.chain}"]
        if self.tree is not None:
            labels = [str(op) for op in self.chain]
            lines.append(f"  parenthesization: {self.tree.render(labels)}")
        for step in self.steps:
            lines.append("  " + step.describe())
        for fix in self.fixups:
            lines.append(f"  finalize: {fix.kernel.name}(q{fix.dim})")
        return "\n".join(lines)

    def __str__(self) -> str:
        if self.tree is not None:
            return self.tree.render([str(op) for op in self.chain])
        return self.name or "<variant>"


def _make_same_class(chain: Chain):
    classes = chain.equivalence_classes()
    rep = {}
    for cls in classes:
        for member in cls:
            rep[member] = cls[0]
    return lambda i, j: rep[i] == rep[j]


def _build_fixups(state: OperandState, chain: Chain) -> tuple[FixupStep, ...]:
    """Explicit fix-ups when operators propagate to the end result (§IV)."""
    fixups: list[FixupStep] = []
    if state.inverted:
        if not state.square:
            raise CompilationError("cannot invert a non-square final result")
        kernel = lookup_inversion_kernel(state.stored_structure, state.prop)
        fixups.append(
            FixupStep(kernel=kernel, dim=state.rows, cost=kernel.cost())
        )
    if state.transposed:
        fixups.append(
            FixupStep(kernel=TRANSPOSE, dim=state.rows, cost=TRANSPOSE.cost())
        )
    return tuple(fixups)


def build_variant(chain: Chain, tree: ParenTree, name: str = "") -> Variant:
    """Construct the unique variant for a parenthesization (Section IV).

    The parenthesization's partial order is extended to a total order by
    issuing the leftmost available association first; each association is
    then resolved through the four-step procedure of
    :func:`repro.compiler.states.associate`.
    """
    if tree.lo != 0 or tree.hi != chain.n - 1:
        raise CompilationError(
            f"tree spans matrices {tree.lo}..{tree.hi} but the chain has "
            f"{chain.n} matrices"
        )
    same_class = _make_same_class(chain)
    states = initial_states(chain)

    if chain.n == 1:
        return _single_matrix_variant(chain, states[0], name)

    # Map from a node span to the state holding its computed value.
    span_state: dict[tuple[int, int], OperandState] = {
        (i, i): states[i] for i in range(chain.n)
    }
    steps: list[Step] = []
    for index, node in enumerate(linearize(tree)):
        assert node.left is not None and node.right is not None
        left_state = span_state[(node.left.lo, node.left.hi)]
        right_state = span_state[(node.right.lo, node.right.hi)]
        result = associate(left_state, right_state, same_class, index)
        steps.append(
            Step(
                index=index,
                kernel=result.kernel,
                side=result.side,
                cheap=result.cheap,
                left_ref=result.left.source,
                right_ref=result.right.source,
                left_state=result.left,
                right_state=result.right,
                triplet=node.triplet,
                call_dims=result.call_dims,
                cost=result.cost,
                result_state=result.result,
            )
        )
        span_state[(node.lo, node.hi)] = result.result

    final_state = span_state[(0, chain.n - 1)]
    fixups = _build_fixups(final_state, chain)
    return Variant(
        chain=chain,
        tree=tree,
        steps=tuple(steps),
        fixups=fixups,
        final_state=final_state,
        name=name,
    )


def _single_matrix_variant(chain: Chain, state: OperandState, name: str) -> Variant:
    """Degenerate chain of one matrix: resolve its unary operators directly."""
    fixups: list[FixupStep] = list(_build_fixups(state, chain))
    if not fixups:
        fixups.append(FixupStep(kernel=COPY, dim=state.rows, cost=COPY.cost()))
    resolved = OperandState(
        structure=state.structure,
        prop=state.prop,
        inverted=False,
        transposed=False,
        rows=state.rows,
        cols=state.cols,
        square=state.square,
        source=("step", 0),
    )
    return Variant(
        chain=chain,
        tree=None,
        steps=(),
        fixups=tuple(fixups),
        final_state=resolved,
        name=name or "single",
    )

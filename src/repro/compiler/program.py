"""The first-class compilation artifact: a serializable ``CompiledProgram``.

The paper's model (Fig. 1) is compile-once / dispatch-at-runtime: the
compiler's *product* is a generated artifact — ``k`` variants plus a
cost-driven dispatch function — that lives independently of the compilation
process, like the generated C++ object files it stands in for.  This module
makes that product a first-class value:

* :class:`CompiledProgram` bundles the chain, the selected variants, the
  training instances the selection was scored on, and provenance (content
  address, pass timings, producer identity, option snapshot, variant-pool
  diagnostics);
* :meth:`CompiledProgram.dumps` / :meth:`CompiledProgram.loads` extend the
  :mod:`repro.codegen.serialize` format into a **versioned wire format**
  (``artifact_version``), so artifacts cross process and host boundaries:
  the compilation cache's disk entries, the process-pool workers of
  :mod:`repro.serve`, and ``repro compile --output`` / ``repro run`` all
  speak it;
* :meth:`CompiledProgram.to_dispatcher` reconstructs a working
  :class:`~repro.compiler.dispatch.Dispatcher` anywhere the artifact lands.

The artifact doubles as the compilation-cache entry type
(:data:`repro.compiler.cache.CacheEntry` is an alias), which is what makes
cache backends portable rather than merely restartable: any backend byte
stream is a complete, loadable program.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import socket
import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.codegen.serialize import FORMAT_VERSION, SerializationError
from repro.ir.chain import Chain
from repro.compiler.dispatch import CostEstimator, Dispatcher, flop_estimator
from repro.compiler.variant import Variant

#: Bump when the artifact wire layout changes incompatibly.
#: v2 added the optional ``calibration`` section (learned per-kernel
#: FLOP/s shipped with a warmed deployment); v1 payloads still load,
#: with an empty calibration.
ARTIFACT_VERSION = 2

#: Versions :meth:`CompiledProgram.loads` accepts.
SUPPORTED_ARTIFACT_VERSIONS = (1, 2)


class ArtifactError(SerializationError):
    """The payload is not a valid serialized compilation artifact."""


def _empty_training(chain: Chain) -> np.ndarray:
    return np.empty((0, chain.n + 1))


def options_metadata(options: Any) -> dict[str, Any]:
    """A JSON-clean snapshot of a :class:`CompileOptions` for provenance."""
    payload = dataclasses.asdict(options)
    if payload.get("size_range") is not None:
        payload["size_range"] = list(payload["size_range"])
    return payload


@lru_cache(maxsize=1)
def _hostname() -> str:
    try:
        return socket.gethostname()
    except OSError:  # pragma: no cover - platform-dependent
        return ""


def producer_metadata() -> dict[str, Any]:
    """Identity of the compiling process (for provenance, best-effort).

    The hostname is memoized: this runs on the per-compile hot path
    (every dispatch pass builds an artifact) and must not pay a syscall
    each time.
    """
    return {
        "pid": os.getpid(),
        "host": _hostname(),
        "python": platform.python_version(),
    }


@dataclass(frozen=True)
class CompiledProgram:
    """One compiled chain shape, complete enough to dispatch anywhere.

    The first three fields are the compilation's substance (and the
    historical ``CacheEntry`` triple); the rest are provenance carried on
    the wire but irrelevant to dispatch behaviour.
    """

    chain: Chain
    variants: tuple[Variant, ...]
    training_instances: np.ndarray
    #: Content address of the compilation (structure + options + pipeline);
    #: empty for artifacts built outside a session.
    key: str = ""
    #: ``time.time()`` at artifact construction (0.0 when unknown).
    created_unix: float = 0.0
    #: Producer identity (pid/host/python), see :func:`producer_metadata`.
    producer: Mapping[str, Any] = field(default_factory=dict)
    #: Per-pass wall times of the producing compilation, in seconds.
    timings: Mapping[str, float] = field(default_factory=dict)
    #: Snapshot of the :class:`CompileOptions` the program was built under.
    options: Mapping[str, Any] = field(default_factory=dict)
    #: Instrumentation recorded by the pipeline (e.g. ``variant_pool``).
    diagnostics: Mapping[str, Any] = field(default_factory=dict)
    #: Learned calibration shipped with the artifact (a
    #: :meth:`~repro.perfmodel.feedback.CalibratedEstimator.snapshot`
    #: payload); empty when nothing was learned.  Serialization prefers
    #: the *live* runtime's estimator state over this static field, so a
    #: trafficked program saves what it actually learned.
    calibration: Mapping[str, Any] = field(default_factory=dict)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_artifacts(
        cls,
        chain: Chain,
        variants: Sequence[Variant],
        training_instances: Optional[np.ndarray],
        *,
        key: str = "",
        options: Any = None,
        timings: Optional[Mapping[str, float]] = None,
        diagnostics: Optional[Mapping[str, Any]] = None,
        calibration: Optional[Mapping[str, Any]] = None,
        copy_training: bool = True,
    ) -> "CompiledProgram":
        """Build (and timestamp) an artifact from pipeline products.

        With ``copy_training`` (the default) the training instances are
        copied so the artifact is immune to caller-side mutation — it may
        be cached and rebound many times.  Producers whose array is
        already a private copy (the cache-hit rebind path, which copies
        per request anyway) pass ``False`` to keep artifact construction
        off the per-request allocation path.
        """
        if training_instances is None:
            training = _empty_training(chain)
        elif copy_training:
            training = np.array(training_instances, dtype=np.float64, copy=True)
        else:
            training = np.asarray(training_instances, dtype=np.float64)
        return cls(
            chain=chain,
            variants=tuple(variants),
            training_instances=training,
            key=key,
            created_unix=time.time(),
            producer=producer_metadata(),
            timings=dict(timings or {}),
            options=options_metadata(options) if options is not None else {},
            diagnostics=dict(diagnostics or {}),
            calibration=dict(calibration or {}),
        )

    # -- wire format ---------------------------------------------------------

    def _live_calibration(self) -> dict[str, Any]:
        """What the ``calibration`` section should say *right now*.

        A program that served traffic through a calibrated runtime has
        learned rates the static field predates — prefer the live
        estimator's snapshot, falling back to the field (an artifact
        loaded and re-saved without traffic keeps its shipped table).
        """
        runtime = getattr(self, "_runtime", None)
        if runtime is not None:
            estimator = runtime.cost_estimator
            if getattr(estimator, "calibrated", False):
                snapshot = getattr(estimator, "snapshot", None)
                if callable(snapshot):
                    live = snapshot()
                    if live:
                        return live
        return dict(self.calibration) if self.calibration else {}

    def dumps(self, indent: int | None = None) -> str:
        """Serialize to the versioned artifact wire format (JSON text).

        The optional ``calibration`` section is emitted only when there is
        learned state to ship (see :meth:`_live_calibration`), so
        untrafficked artifacts stay byte-identical in shape to v1 apart
        from the version stamp.
        """
        from repro.codegen import serialize

        payload = {
            "artifact_version": ARTIFACT_VERSION,
            "program": json.loads(
                serialize.dumps(self.chain, list(self.variants))
            ),
            "training_instances": np.asarray(self.training_instances).tolist(),
            "meta": {
                "key": self.key,
                "created_unix": self.created_unix,
                "producer": dict(self.producer),
                "timings": dict(self.timings),
                "options": dict(self.options),
                "diagnostics": dict(self.diagnostics),
            },
        }
        calibration = self._live_calibration()
        if calibration:
            payload["calibration"] = calibration
        return json.dumps(payload, indent=indent)

    @classmethod
    def loads(cls, text: str) -> "CompiledProgram":
        """Parse an artifact produced by :meth:`dumps`.

        Raises :class:`ArtifactError` on malformed or version-incompatible
        input (including payloads in the bare :mod:`~repro.codegen.serialize`
        format, which lack the artifact envelope).
        """
        from repro.codegen import serialize

        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ArtifactError(f"invalid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ArtifactError("artifact payload must be a JSON object")
        version = payload.get("artifact_version")
        if version not in SUPPORTED_ARTIFACT_VERSIONS:
            raise ArtifactError(
                f"unsupported artifact version {version!r} "
                f"(expected one of {SUPPORTED_ARTIFACT_VERSIONS})"
            )
        program = payload.get("program")
        if not isinstance(program, dict):
            raise ArtifactError("artifact is missing the 'program' object")
        try:
            chain, variants = serialize.loads(json.dumps(program))
        except SerializationError as exc:
            raise ArtifactError(f"malformed program payload: {exc}") from exc
        try:
            training = np.asarray(
                payload.get("training_instances", []), dtype=np.float64
            )
        except (TypeError, ValueError) as exc:
            # Ragged or non-numeric rows: a corrupt entry must surface as
            # ArtifactError (cache backends turn that into a miss).
            raise ArtifactError(f"malformed training instances: {exc}") from exc
        if training.size == 0:
            training = _empty_training(chain)
        elif training.ndim != 2 or training.shape[1] != chain.n + 1:
            raise ArtifactError(
                f"training instances have shape {training.shape}, expected "
                f"(count, {chain.n + 1})"
            )
        meta = payload.get("meta") or {}
        if not isinstance(meta, dict):
            raise ArtifactError("artifact 'meta' must be an object")
        # v1 artifacts have no calibration section; tolerate any
        # non-object value the same way (no learned state).
        calibration = payload.get("calibration")
        if not isinstance(calibration, dict):
            calibration = {}
        return cls(
            chain=chain,
            variants=tuple(variants),
            training_instances=training,
            key=str(meta.get("key", "") or ""),
            created_unix=float(meta.get("created_unix", 0.0) or 0.0),
            producer=dict(meta.get("producer") or {}),
            timings=dict(meta.get("timings") or {}),
            options=dict(meta.get("options") or {}),
            diagnostics=dict(meta.get("diagnostics") or {}),
            calibration=calibration,
        )

    def save(self, path: str | os.PathLike, indent: int | None = 2) -> None:
        """Write the artifact to a file (the ``repro compile --output`` path)."""
        from pathlib import Path

        Path(path).write_text(self.dumps(indent=indent) + "\n")

    @classmethod
    def load(cls, path: str | os.PathLike) -> "CompiledProgram":
        """Read an artifact file written by :meth:`save` (or a cache entry)."""
        from pathlib import Path

        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ArtifactError(f"cannot read artifact {path}: {exc}") from exc
        return cls.loads(text)

    # -- reconstruction ------------------------------------------------------

    def _resolve_backend(self, backend: Optional[str]) -> str:
        """An explicit backend request, else the compile-time snapshot."""
        if backend is not None:
            return backend
        return str(self.options.get("backend") or "reference")

    def _calibrated_estimator(self) -> CostEstimator:
        """The program's calibrated estimator, built once per artifact.

        With a shipped ``calibration`` section, a *private* estimator is
        rebuilt from it — a fresh process dispatches with the learned
        rates immediately, no warm-up — and keeps refreshing from local
        traffic.  Without one, the process-wide shared estimator is used,
        so every freshly-compiled calibrated program learns from (and
        contributes to) the same table.
        """
        cached = getattr(self, "_calibrated", None)
        if cached is None:
            from repro.perfmodel.feedback import (
                CalibratedEstimator,
                get_default_estimator,
            )

            if self.calibration:
                cached = CalibratedEstimator.from_snapshot(self.calibration)
            else:
                cached = get_default_estimator()
            object.__setattr__(self, "_calibrated", cached)
        return cached

    def _resolve_estimator(
        self,
        cost_estimator: Optional[CostEstimator],
        cost_model: Optional[str] = None,
    ) -> CostEstimator:
        """An explicit estimator request, else the artifact's own.

        Resolution order: an explicit ``cost_estimator`` wins; then an
        explicit ``cost_model`` name (the ``repro run --cost-model``
        override); then a *shipped* ``calibration`` section — the table
        only exists because a warmed deployment saved it to be used, and
        it must beat the compile-time options snapshot, which records the
        ``"flops"`` default whether or not anyone chose it; finally the
        options snapshot itself.
        """
        if cost_estimator is not None:
            return cost_estimator
        model = cost_model
        if model is None:
            if self.calibration:
                return self._calibrated_estimator()
            model = self.options.get("cost_model")
        if model == "calibrated":
            return self._calibrated_estimator()
        return flop_estimator

    def to_dispatcher(
        self,
        cost_estimator: Optional[CostEstimator] = None,
        backend: Optional[str] = None,
        cost_model: Optional[str] = None,
    ) -> Dispatcher:
        """A *fresh* run-time dispatcher over the artifact's variants.

        Each call builds a new dispatcher (empty memo, cold term stack);
        use :meth:`runtime` for the shared per-artifact instance that
        amortizes dispatch state across calls.  ``backend`` and the cost
        estimator default to the artifact's own snapshot — options,
        shipped calibration — (``reference``/FLOPs for artifacts predating
        those sections); see :meth:`_resolve_estimator`.
        """
        return Dispatcher(
            self.chain,
            list(self.variants),
            cost_estimator=self._resolve_estimator(cost_estimator, cost_model),
            backend=self._resolve_backend(backend),
        )

    def runtime(
        self,
        cost_estimator: Optional[CostEstimator] = None,
        backend: Optional[str] = None,
        cost_model: Optional[str] = None,
    ) -> Dispatcher:
        """The artifact's live runtime: one memoizing dispatcher, reused.

        Built lazily on first use and kept on the artifact, so repeated
        :meth:`execute` calls (and every consumer holding this program)
        share one dispatch memo and one flattened cost-term stack instead
        of rebuilding them per request.  Asking for a different
        ``cost_estimator``, ``cost_model``, or ``backend`` than the cached
        runtime's builds a fresh one.
        """
        resolved = self._resolve_backend(backend)
        estimator = self._resolve_estimator(cost_estimator, cost_model)
        cached: Optional[Dispatcher] = getattr(self, "_runtime", None)
        if (
            cached is not None
            and cached.cost_estimator is estimator
            and cached.backend == resolved
        ):
            return cached
        dispatcher = self.to_dispatcher(estimator, backend=resolved)
        # Frozen dataclass: the runtime is a derived cache, not wire state.
        object.__setattr__(self, "_runtime", dispatcher)
        return dispatcher

    def to_generated_code(
        self,
        cost_estimator: Optional[CostEstimator] = None,
        backend: Optional[str] = None,
    ):
        """The :class:`~repro.api.GeneratedCode` facade over this artifact."""
        from repro.api import GeneratedCode

        return GeneratedCode(
            chain=self.chain,
            variants=list(self.variants),
            # The artifact's live runtime, not a fresh dispatcher: every
            # facade over this program shares one dispatch memo.
            dispatcher=self.runtime(cost_estimator, backend=backend),
            training_instances=np.asarray(self.training_instances),
            program=self,
        )

    def execute(self, *arrays) -> np.ndarray:
        """Dispatch and evaluate one instance (convenience for ``repro run``).

        Goes through :meth:`runtime`, so repeated same-size executions hit
        the dispatch memo instead of re-sweeping the cost matrix.
        """
        return self.runtime()(*arrays)

    # -- presentation --------------------------------------------------------

    def describe(self) -> str:
        lines = [
            f"compiled program for chain {self.chain} "
            f"({len(self.variants)} variant(s))"
        ]
        if self.key:
            lines.append(f"  key: {self.key}")
        if self.created_unix:
            stamp = time.strftime(
                "%Y-%m-%d %H:%M:%S", time.gmtime(self.created_unix)
            )
            lines.append(f"  compiled: {stamp} UTC")
        producer = dict(self.producer)
        if producer:
            lines.append(
                "  producer: "
                + " ".join(f"{k}={v}" for k, v in sorted(producer.items()))
            )
        pool = dict(self.diagnostics).get("variant_pool")
        if pool:
            lines.append(
                "  variant pool: "
                + " ".join(f"{k}={v}" for k, v in sorted(pool.items()))
            )
        for variant in self.variants:
            lines.append(f"  variant {variant.name or '<anonymous>'}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.variants)


# Re-exported for callers that only deal with the envelope.
__all__ = [
    "ARTIFACT_VERSION",
    "SUPPORTED_ARTIFACT_VERSIONS",
    "FORMAT_VERSION",
    "ArtifactError",
    "CompiledProgram",
    "options_metadata",
    "producer_metadata",
]

"""Variant selection theory (paper Section V).

Implements:

* enumeration of all variants (one per parenthesization, via the
  deterministic construction of Section IV);
* the fanning-out variants ``E_h`` and the full fanning-out set ``E``
  (``n - 1`` distinct members for ``n <= 3``, ``n + 1`` otherwise);
* the essential set ``E_s`` of Theorem 2: one fanning-out variant per
  size-symbol equivalence class, with representatives chosen greedily to
  minimize an objective over a training set of instances;
* penalties ``P(Z, q)`` and empirical total penalties over instance sets;
* the left-to-right reference variant ``L``.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.ir.chain import Chain
from repro.compiler.parenthesization import (
    enumerate_trees,
    fanning_out_tree,
    left_to_right_tree,
)
from repro.compiler.variant import Variant, build_variant

#: Worst-case bound on the constant of Lemma 2 (``alpha-hat <= 8``), hence
#: ``T(E_m, q) < 16 T_opt`` and the total penalty of E is at most 15.
LEMMA2_FACTOR = 16.0
TOTAL_PENALTY_BOUND = 15.0


def all_variants(chain: Chain) -> list[Variant]:
    """One variant per parenthesization: the paper's full set ``A``."""
    return [
        build_variant(chain, tree, name=f"P{i}")
        for i, tree in enumerate(enumerate_trees(chain.n))
    ]


def left_to_right_variant(chain: Chain) -> Variant:
    """The in-house left-to-right reference ``L`` (equals ``E_0``)."""
    return build_variant(chain, left_to_right_tree(chain.n), name="L")


def distinct_fanning_trees(chain: Chain) -> dict[int, "ParenTree"]:
    """The distinct fanning-out trees ``E_h`` keyed by ``h``.

    Duplicate parenthesizations (which occur for ``n <= 3``) are dropped,
    keeping the smallest ``h``; the result has ``n - 1`` members for
    ``n <= 3`` and ``n + 1`` members otherwise.  The single source of the
    collapse rule — both the variant construction below and the variant
    spaces build their fanning candidates from it.
    """
    trees: dict[int, "ParenTree"] = {}
    seen: set = set()
    for h in range(chain.n + 1):
        tree = fanning_out_tree(chain.n, h)
        key = _tree_key(tree)
        if key in seen:
            continue
        seen.add(key)
        trees[h] = tree
    return trees


def fanning_out_variants(chain: Chain) -> dict[int, Variant]:
    """The distinct fanning-out variants ``E_h`` keyed by ``h``
    (see :func:`distinct_fanning_trees` for the dedupe rule)."""
    return {
        h: build_variant(chain, tree, name=f"E{h}")
        for h, tree in distinct_fanning_trees(chain).items()
    }


def _tree_key(tree) -> object:
    if tree.is_leaf:
        return tree.lo
    return (_tree_key(tree.left), _tree_key(tree.right))


# ---------------------------------------------------------------------------
# Penalties.
# ---------------------------------------------------------------------------

def optimal_cost(chain: Chain, sizes: Sequence[int]) -> float:
    """``min_{A in A} T(A, q)``: optimum over all parenthesizations."""
    return min(v.flop_cost(sizes) for v in all_variants(chain))


def penalty(
    selected: Sequence[Variant], chain: Chain, sizes: Sequence[int]
) -> float:
    """Penalty ``P(Z, q)`` of eq. (2): relative cost increase over optimal."""
    if not selected:
        return float("inf")
    best_selected = min(v.flop_cost(sizes) for v in selected)
    return best_selected / optimal_cost(chain, sizes) - 1.0


#: Largest ``terms x instances`` working set the evaluation sweep handles
#: with direct element-wise powers; beyond it, the unique-exponent masked
#: block sweep wins (np.unique overhead amortizes, powers collapse into
#: repeated multiplies).
DIRECT_EVAL_LIMIT = 65536

#: Flattened cost terms of a variant pool: ``(coefficients (T,),
#: exponents (T, n+1), owner variant index (T,))``.  Built once per pool
#: by :func:`flatten_cost_terms`; evaluated on any instance batch by
#: :func:`evaluate_cost_terms`.  The dispatcher caches one per selected
#: set, so per-call dispatch pays only the evaluation sweep.
TermStack = tuple[np.ndarray, np.ndarray, np.ndarray]


def flatten_cost_terms(
    variants: Sequence[Variant], num_symbols: int
) -> TermStack:
    """Stack every variant's monomial cost terms into one exponent matrix.

    Every variant's cost is a sum of monomial terms
    ``coeff * prod_s q_s^e_s``; stacking the terms of *all* variants into
    one ``(terms, n+1)`` exponent matrix lets whole cost matrices be
    evaluated with a handful of numpy broadcasts (one per distinct
    ``(symbol, exponent)`` pair — kernel costs are cubic, so at most
    ``3 (n+1)``) instead of a Python loop per variant.
    """
    coeffs: list[float] = []
    exponents: list[np.ndarray] = []
    owner: list[int] = []
    for v, variant in enumerate(variants):
        for coeff, powers in variant._flat_terms:
            row = np.zeros(num_symbols, dtype=np.int64)
            for sym, exp in powers:
                row[sym] = exp
            coeffs.append(coeff)
            exponents.append(row)
            owner.append(v)
    if not coeffs:
        return (
            np.zeros(0),
            np.zeros((0, num_symbols), dtype=np.int64),
            np.zeros(0, dtype=np.intp),
        )
    return np.asarray(coeffs), np.stack(exponents), np.asarray(owner, dtype=np.intp)


def evaluate_cost_terms(
    stack: TermStack,
    num_variants: int,
    instances: np.ndarray,
    term_block: int = 4096,
) -> np.ndarray:
    """Evaluate a term stack on instances: ``(num_variants, count)`` costs.

    ``term_block`` bounds the ``(terms, instances)`` working set for long
    chains, whose Catalan-many variants contribute tens of thousands of
    terms.
    """
    coeff_arr, exp_arr, owner_arr = stack
    instances = np.asarray(instances, dtype=np.float64)
    num_instances = instances.shape[0]
    num_symbols = instances.shape[1] if instances.ndim == 2 else 0
    costs = np.zeros((num_variants, num_instances))
    if num_instances == 0 or coeff_arr.size == 0:
        # Degenerate inputs short-circuit to a well-shaped empty/zero
        # matrix: the sweep below assumes at least one column to broadcast
        # against and at least one owner row.
        return costs

    if coeff_arr.shape[0] * num_instances <= DIRECT_EVAL_LIMIT:
        # Small working sets (per-call dispatch over a selected set, small
        # batches): direct element-wise powers beat the unique-exponent
        # masking below, whose np.unique calls dominate at this scale.
        block = np.broadcast_to(
            coeff_arr[:, None], (coeff_arr.shape[0], num_instances)
        ).copy()
        for sym in range(num_symbols):
            exps = exp_arr[:, sym]
            if not exps.any():
                continue
            block *= instances[:, sym][None, :] ** exps[:, None]
        np.add.at(costs, owner_arr, block)
        return costs

    for start in range(0, coeff_arr.shape[0], term_block):
        stop = min(start + term_block, coeff_arr.shape[0])
        block = np.broadcast_to(
            coeff_arr[start:stop, None], (stop - start, num_instances)
        ).copy()
        for sym in range(num_symbols):
            column = instances[:, sym]
            for exp in np.unique(exp_arr[start:stop, sym]):
                if exp == 0:
                    continue
                mask = exp_arr[start:stop, sym] == exp
                block[mask] *= column[None, :] ** int(exp)
        np.add.at(costs, owner_arr[start:stop], block)
    return costs


def flop_cost_matrix(
    variants: Sequence[Variant],
    instances: np.ndarray,
    term_block: int = 4096,
) -> np.ndarray:
    """Batched FLOP costs: ``(num_variants, num_instances)`` in one sweep.

    One-shot composition of :func:`flatten_cost_terms` and
    :func:`evaluate_cost_terms`; callers that evaluate the same pool
    repeatedly (the dispatcher) flatten once and keep the stack.
    """
    instances = np.asarray(instances, dtype=np.float64)
    if instances.ndim != 2:
        raise ValueError(
            f"instances must be a 2-D (count, n+1) array, got shape "
            f"{instances.shape}"
        )
    if instances.shape[0] == 0 or not len(variants):
        return np.zeros((len(variants), instances.shape[0]))
    stack = flatten_cost_terms(variants, instances.shape[1])
    return evaluate_cost_terms(stack, len(variants), instances, term_block)


class CostMatrix:
    """Pre-evaluated costs of many variants on many instances.

    The expansion procedure and the experiments repeatedly need
    ``min_{Z in S} T(Z, q_i)`` for varying subsets ``S``; precomputing the
    full ``(num_variants, num_instances)`` cost matrix makes each subset
    evaluation a cheap row-wise minimum.
    """

    def __init__(
        self,
        variants: Sequence[Variant],
        instances: np.ndarray,
        evaluator: Optional[Callable[[Variant, np.ndarray], np.ndarray]] = None,
    ):
        """``evaluator(variant, instances) -> per-instance costs``.

        Defaults to the FLOP cost; the execution-time experiment passes the
        simulated machine's or the performance models' time estimates.
        """
        self.variants = list(variants)
        self.instances = np.asarray(instances, dtype=np.float64)
        if self.instances.ndim != 2:
            raise ValueError("instances must be a 2-D (count, n+1) array")
        if evaluator is None:
            self.costs = flop_cost_matrix(self.variants, self.instances)
        else:
            self.costs = np.stack(
                [evaluator(v, self.instances) for v in self.variants]
            )
        self.optimal = self.costs.min(axis=0)

    @property
    def num_instances(self) -> int:
        return self.instances.shape[0]

    def ratios(self, indices: Sequence[int]) -> np.ndarray:
        """Per-instance ratio over optimal of the best variant in the subset."""
        if len(indices) == 0:
            return np.full(self.num_instances, np.inf)
        subset = self.costs[np.asarray(indices, dtype=np.intp)]
        return subset.min(axis=0) / self.optimal

    def penalties(self, indices: Sequence[int]) -> np.ndarray:
        return self.ratios(indices) - 1.0

    def average_penalty(self, indices: Sequence[int]) -> float:
        return float(self.penalties(indices).mean())

    def max_penalty(self, indices: Sequence[int]) -> float:
        return float(self.penalties(indices).max())


def essential_set(
    chain: Chain,
    training_instances: Optional[np.ndarray] = None,
    cost_matrix: Optional[CostMatrix] = None,
    objective: str = "avg",
) -> list[Variant]:
    """Construct the Theorem 2 set ``E_s``: one ``E_h`` per equivalence class.

    For each size-symbol equivalence class a representative ``q_h`` must be
    picked; the theorem guarantees a finite total penalty for *any* choice,
    so we pick greedily: classes are visited in order and, for each, the
    candidate fanning-out variant that minimizes the objective (average or
    maximum penalty) over the training set joins the set.  Classes whose
    candidates coincide with an already-selected parenthesization (duplicate
    fanning-out trees collapse) are skipped, which is why ``|E_s|`` can be
    smaller than the number of classes.

    ``cost_matrix`` must cover every fanning-out variant of the chain (any
    :mod:`~repro.compiler.variant_space` pool qualifies; the exhaustive set
    ``A`` additionally makes the penalties exact, measured against the true
    optimum).  If omitted, it is built over ``A`` from
    ``training_instances``.
    """
    if cost_matrix is None:
        if training_instances is None:
            raise ValueError("provide training_instances or a cost_matrix")
        cost_matrix = CostMatrix(all_variants(chain), training_instances)
    sig_to_idx = {v.signature(): i for i, v in enumerate(cost_matrix.variants)}

    candidates_by_h = {
        h: build_variant(chain, fanning_out_tree(chain.n, h), name=f"E{h}")
        for h in range(chain.n + 1)
    }
    missing = sorted(
        h
        for h, candidate in candidates_by_h.items()
        if candidate.signature() not in sig_to_idx
    )
    if missing:
        raise ValueError(
            f"cost matrix is missing the fanning-out variants E_h for "
            f"h in {missing}; every variant space must include them"
        )
    score = (
        cost_matrix.average_penalty if objective == "avg" else cost_matrix.max_penalty
    )

    selected: list[Variant] = []
    selected_idx: list[int] = []
    selected_sigs: set = set()
    for cls in chain.equivalence_classes():
        if any(candidates_by_h[h].signature() in selected_sigs for h in cls):
            continue  # class already represented by a coinciding tree
        best, best_value = None, float("inf")
        for h in cls:
            variant = candidates_by_h[h]
            trial = selected_idx + [sig_to_idx[variant.signature()]]
            value = score(trial)
            if value < best_value:
                best, best_value = variant, value
        assert best is not None
        selected.append(best)
        selected_idx.append(sig_to_idx[best.signature()])
        selected_sigs.add(best.signature())
    return selected

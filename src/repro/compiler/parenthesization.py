"""Parenthesizations as expression trees (paper Section III-B).

A chain of ``n`` matrices admits ``C_{n-1}`` parenthesizations (``C`` the
Catalan numbers), each a full binary tree whose leaves are the matrices in
order.  A parenthesization only *partially* orders the ``n - 1``
associations; the code generator extends it to a total order by always
issuing the leftmost available association first.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass(frozen=True)
class ParenTree:
    """A parenthesization subtree spanning matrices ``lo .. hi`` (0-based).

    A leaf has ``lo == hi`` and no children.  An internal node splits its
    span into ``left = [lo .. split]`` and ``right = [split + 1 .. hi]``.
    """

    lo: int
    hi: int
    left: Optional["ParenTree"] = None
    right: Optional["ParenTree"] = None

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"invalid span [{self.lo}, {self.hi}]")
        if (self.left is None) != (self.right is None):
            raise ValueError("internal nodes need both children")
        if self.left is not None and self.right is not None:
            if self.left.lo != self.lo or self.right.hi != self.hi:
                raise ValueError("children must tile the parent span")
            if self.left.hi + 1 != self.right.lo:
                raise ValueError("children must be adjacent")

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def triplet(self) -> tuple[int, int, int]:
        """The association triplet ``(a, b, c)`` of this internal node.

        The node combines an operand of size ``q_a x q_b`` with one of size
        ``q_b x q_c`` where ``a = lo``, ``b = left.hi + 1``, ``c = hi + 1``.
        """
        if self.is_leaf:
            raise ValueError("leaves have no association triplet")
        assert self.left is not None
        return (self.lo, self.left.hi + 1, self.hi + 1)

    def internal_nodes(self) -> Iterator["ParenTree"]:
        """All internal nodes (associations), in post-order."""
        if self.is_leaf:
            return
        assert self.left is not None and self.right is not None
        yield from self.left.internal_nodes()
        yield from self.right.internal_nodes()
        yield self

    def render(self, labels: Optional[list[str]] = None) -> str:
        """Pretty parenthesized string, e.g. ``((M1 M2) M3)``."""
        if self.is_leaf:
            return labels[self.lo] if labels else f"M{self.lo + 1}"
        assert self.left is not None and self.right is not None
        return f"({self.left.render(labels)} {self.right.render(labels)})"

    def __str__(self) -> str:
        return self.render()


def leaf(i: int) -> ParenTree:
    return ParenTree(i, i)


def join(left: ParenTree, right: ParenTree) -> ParenTree:
    return ParenTree(left.lo, right.hi, left, right)


@functools.lru_cache(maxsize=None)
def _enumerate_span(lo: int, hi: int) -> tuple[ParenTree, ...]:
    if lo == hi:
        return (leaf(lo),)
    trees = []
    for split in range(lo, hi):
        for left in _enumerate_span(lo, split):
            for right in _enumerate_span(split + 1, hi):
                trees.append(join(left, right))
    return tuple(trees)


def enumerate_trees(n: int) -> tuple[ParenTree, ...]:
    """All ``C_{n-1}`` parenthesizations of a chain of ``n`` matrices."""
    if n < 1:
        raise ValueError("a chain needs at least one matrix")
    return _enumerate_span(0, n - 1)


def _iter_span(lo: int, hi: int) -> Iterator[ParenTree]:
    if lo == hi:
        yield leaf(lo)
        return
    for split in range(lo, hi):
        for left in _iter_span(lo, split):
            for right in _iter_span(split + 1, hi):
                yield join(left, right)


def iter_trees(n: int) -> Iterator[ParenTree]:
    """Lazily yield the ``C_{n-1}`` parenthesizations, one at a time.

    Unlike :func:`enumerate_trees`, nothing is memoized or materialized, so
    taking the first ``k`` trees of a long chain costs ``O(k n)`` rather
    than Catalan-many allocations — the enabler for bounded enumeration in
    :class:`repro.compiler.variant_space.ExhaustiveSpace`.  The yield order
    matches :func:`enumerate_trees` (splits in increasing order).
    """
    if n < 1:
        raise ValueError("a chain needs at least one matrix")
    yield from _iter_span(0, n - 1)


def rotations(tree: ParenTree) -> Iterator[ParenTree]:
    """All trees one rotation away from ``tree`` (its split neighborhood).

    A rotation at an internal node moves that node's split point to the
    split of one of its internal children — the minimal structural
    perturbation under which the set of parenthesizations is connected (any
    tree reaches any other through rotations).  A tree over ``n`` leaves has
    at most ``2 (n - 2)`` rotation neighbors; duplicates are not filtered
    (callers deduplicate by tree key).
    """
    if tree.is_leaf:
        return
    assert tree.left is not None and tree.right is not None
    # Rotate at the root: (A B) C -> A (B C)  and  A (B C) -> (A B) C.
    if not tree.left.is_leaf:
        yield join(tree.left.left, join(tree.left.right, tree.right))
    if not tree.right.is_leaf:
        yield join(join(tree.left, tree.right.left), tree.right.right)
    # Recurse: a rotation anywhere in a subtree, other subtree unchanged.
    for rotated in rotations(tree.left):
        yield join(rotated, tree.right)
    for rotated in rotations(tree.right):
        yield join(tree.left, rotated)


def catalan(k: int) -> int:
    """The k-th Catalan number ``(2k)! / (k! (k+1)!)``."""
    result = 1
    for i in range(k):
        result = result * 2 * (2 * i + 1) // (i + 2)
    return result


def left_to_right_tree(n: int) -> ParenTree:
    """``((M1 M2) M3) ... Mn`` — the order MATLAB and friends use."""
    tree = leaf(0)
    for i in range(1, n):
        tree = join(tree, leaf(i))
    return tree


def right_to_left_tree(n: int) -> ParenTree:
    """``M1 (M2 (... (M_{n-1} Mn)))``."""
    tree = leaf(n - 1)
    for i in range(n - 2, -1, -1):
        tree = join(leaf(i), tree)
    return tree


def _right_to_left_span(lo: int, hi: int) -> ParenTree:
    tree = leaf(hi)
    for i in range(hi - 1, lo - 1, -1):
        tree = join(leaf(i), tree)
    return tree


def _left_to_right_span(lo: int, hi: int) -> ParenTree:
    tree = leaf(lo)
    for i in range(lo + 1, hi + 1):
        tree = join(tree, leaf(i))
    return tree


def fanning_out_tree(n: int, h: int) -> ParenTree:
    """The fanning-out parenthesization ``E_h`` (paper eq. (4)).

    The prefix ``M1 .. Mh`` is computed right-to-left, the suffix
    ``M_{h+1} .. Mn`` left-to-right, and finally the two partial results are
    associated.  For ``h in {0, n}`` the whole chain is a single suffix or
    prefix.
    """
    if not 0 <= h <= n:
        raise ValueError(f"h must be in 0..{n}, got {h}")
    if h == 0:
        return _left_to_right_span(0, n - 1)
    if h == n:
        return _right_to_left_span(0, n - 1)
    prefix = _right_to_left_span(0, h - 1)
    suffix = _left_to_right_span(h, n - 1)
    return join(prefix, suffix)


def linearize(tree: ParenTree) -> list[ParenTree]:
    """Total order of associations: leftmost available first (Section IV).

    Repeatedly pick, among internal nodes whose children have both been
    computed, the one with the smallest left index.  Two simultaneously
    available associations can never share their left index (they would
    overlap and hence be nested), so the order is well defined.
    """
    nodes = list(tree.internal_nodes())
    done: set[tuple[int, int]] = set()
    order: list[ParenTree] = []

    def ready(node: ParenTree) -> bool:
        assert node.left is not None and node.right is not None
        left_ok = node.left.is_leaf or (node.left.lo, node.left.hi) in done
        right_ok = node.right.is_leaf or (node.right.lo, node.right.hi) in done
        return left_ok and right_ok

    remaining = set(range(len(nodes)))
    while remaining:
        candidates = [i for i in remaining if ready(nodes[i])]
        chosen = min(candidates, key=lambda i: nodes[i].lo)
        order.append(nodes[chosen])
        done.add((nodes[chosen].lo, nodes[chosen].hi))
        remaining.discard(chosen)
    return order

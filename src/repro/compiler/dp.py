"""Generalized matrix chain dynamic programming for concrete sizes.

This is the Barthels-et-al.-style optimizer (the algorithm behind Linnea)
that the paper's run-time-search alternative would use: given a chain *with
known sizes*, find the cheapest evaluation.  It serves three roles in the
reproduction:

* an independent cross-check of the variant enumeration (its optimum can
  never exceed the minimum over the per-parenthesization variants, and the
  two coincide whenever the Section IV heuristics are optimal for the
  instance);
* the baseline "search at run time" strategy whose cost/latency trade-off
  motivates multi-versioning in the first place (see
  :class:`repro.baselines.online.OnlineSearchEvaluator`); and
* :func:`dp_optimal_plan` reconstructs the winning evaluation as an
  executable :class:`~repro.compiler.variant.Variant`.

Because intermediate *features* depend on how a subchain was computed,
a plain scalar DP over intervals is not sound: a slightly more expensive
subchain result with better features (e.g. still triangular) can win
globally.  The table therefore keeps, per interval, the set of
Pareto-optimal (cost, operand state) pairs, with provenance for plan
reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.ir.chain import Chain
from repro.compiler.parenthesization import ParenTree, join, leaf
from repro.compiler.states import OperandState, associate, initial_states
from repro.compiler.variant import (
    Step,
    Variant,
    _build_fixups,
    _make_same_class,
    build_variant,
)


@dataclass(frozen=True)
class _Entry:
    cost: float
    state: OperandState
    #: Provenance for reconstruction: (split index, left key, right key);
    #: ``None`` for single-matrix leaves.
    back: Optional[tuple[int, tuple, tuple]] = None


def _state_key(state: OperandState) -> tuple:
    """Feature signature relevant for downstream kernel choices."""
    return (state.structure, state.prop, state.inverted, state.transposed)


def _pareto_insert(
    entries: dict[tuple, _Entry],
    cost: float,
    state: OperandState,
    back: Optional[tuple[int, tuple, tuple]],
) -> None:
    key = _state_key(state)
    existing = entries.get(key)
    if existing is None or cost < existing.cost:
        entries[key] = _Entry(cost, state, back)


def _dp_table(
    chain: Chain, q: Sequence[int]
) -> dict[tuple[int, int], dict[tuple, _Entry]]:
    same_class = _make_same_class(chain)
    n = chain.n
    states = initial_states(chain)

    table: dict[tuple[int, int], dict[tuple, _Entry]] = {}
    for i in range(n):
        table[(i, i)] = {_state_key(states[i]): _Entry(0.0, states[i])}

    for span in range(2, n + 1):
        for i in range(0, n - span + 1):
            j = i + span - 1
            entries: dict[tuple, _Entry] = {}
            for split in range(i, j):
                for left_key, left_entry in table[(i, split)].items():
                    for right_key, right_entry in table[(split + 1, j)].items():
                        result = associate(
                            left_entry.state, right_entry.state, same_class, 0
                        )
                        m, k, nn = result.call_dims
                        step_cost = result.cost.evaluate(q[m], q[k], q[nn])
                        total = left_entry.cost + right_entry.cost + step_cost
                        _pareto_insert(
                            entries,
                            total,
                            result.result,
                            (split, left_key, right_key),
                        )
            table[(i, j)] = entries
    return table


def _fixup_cost(state: OperandState, q: Sequence[int]) -> float:
    """Cost of the explicit fix-ups a final state would require."""
    total = 0.0
    for fix in _build_fixups(state, None):
        d = q[fix.dim]
        total += fix.cost.evaluate(d, d, d)
    return total


def _best_final_key(
    table: dict[tuple[int, int], dict[tuple, _Entry]],
    chain: Chain,
    q: Sequence[int],
) -> tuple:
    """The state key of the cheapest root entry, fix-ups included."""
    final_entries = table[(0, chain.n - 1)]
    return min(
        final_entries,
        key=lambda key: final_entries[key].cost
        + _fixup_cost(final_entries[key].state, q),
    )


def dp_optimal_cost(chain: Chain, sizes: Sequence[int]) -> float:
    """Minimum FLOP cost to evaluate ``chain`` on the concrete ``sizes``.

    Runs the interval dynamic program with Pareto state sets, using the same
    association machinery (kernel tables, rewrites, cost functions) as the
    variant builder, so costs are directly comparable with
    :meth:`Variant.flop_cost`.
    """
    q = chain.validate_sizes(sizes)
    states = initial_states(chain)
    if chain.n == 1:
        return _fixup_cost(states[0], q)
    table = _dp_table(chain, q)
    best = float("inf")
    for entry in table[(0, chain.n - 1)].values():
        best = min(best, entry.cost + _fixup_cost(entry.state, q))
    return best


def dp_optimal_plan(chain: Chain, sizes: Sequence[int]) -> Variant:
    """The cheapest evaluation for an instance, as an executable variant.

    Reconstructs the dynamic program's winning decisions into a
    :class:`Variant` (kernel steps + fix-ups) whose ``flop_cost`` equals
    :func:`dp_optimal_cost` on these sizes.  Note the plan may differ from
    every per-parenthesization variant of Section IV: the DP explores all
    feature trade-offs, not just the deterministic heuristic.
    """
    q = chain.validate_sizes(sizes)
    same_class = _make_same_class(chain)
    states = initial_states(chain)

    if chain.n == 1:
        return build_variant(chain, leaf(0), name="DP")

    table = _dp_table(chain, q)
    best_key = _best_final_key(table, chain, q)

    steps: list[Step] = []

    def reconstruct(i: int, j: int, key: tuple) -> OperandState:
        entry = table[(i, j)][key]
        if entry.back is None:
            return entry.state
        split, left_key, right_key = entry.back
        left_state = reconstruct(i, split, left_key)
        right_state = reconstruct(split + 1, j, right_key)
        index = len(steps)
        result = associate(left_state, right_state, same_class, index)
        steps.append(
            Step(
                index=index,
                kernel=result.kernel,
                side=result.side,
                cheap=result.cheap,
                left_ref=result.left.source,
                right_ref=result.right.source,
                left_state=result.left,
                right_state=result.right,
                triplet=(i, split + 1, j + 1),
                call_dims=result.call_dims,
                cost=result.cost,
                result_state=result.result,
            )
        )
        return result.result

    final_state = reconstruct(0, chain.n - 1, best_key)
    fixups = _build_fixups(final_state, chain)
    return Variant(
        chain=chain,
        tree=None,
        steps=tuple(steps),
        fixups=fixups,
        final_state=final_state,
        name="DP",
    )


def dp_optimal_tree(chain: Chain, sizes: Sequence[int]) -> ParenTree:
    """The parenthesization underlying the DP-optimal plan for an instance.

    Reconstructs only the *split structure* of the winning plan — the
    :class:`ParenTree` whose Section IV variant approximates (and often
    matches) the DP optimum on these sizes.  This is the extraction the
    DP-seeded variant space uses: a tree can join the ordinary variant pool
    (built, perturbed, deduplicated, cached) whereas the raw DP plan cannot
    leave the per-parenthesization space ``A`` the selection theory is
    stated over.
    """
    q = chain.validate_sizes(sizes)
    if chain.n == 1:
        return leaf(0)
    table = _dp_table(chain, q)

    def rebuild(i: int, j: int, key: tuple) -> ParenTree:
        entry = table[(i, j)][key]
        if entry.back is None:
            return leaf(i)
        split, left_key, right_key = entry.back
        return join(
            rebuild(i, split, left_key), rebuild(split + 1, j, right_key)
        )

    return rebuild(0, chain.n - 1, _best_final_key(table, chain, q))


def dp_seed_trees(
    chain: Chain, instances: np.ndarray, max_seeds: Optional[int] = None
) -> list[ParenTree]:
    """Distinct DP-optimal parenthesizations over a set of instances.

    Runs :func:`dp_optimal_tree` on up to ``max_seeds`` rows of
    ``instances`` (evenly spaced, so the seeds span the sampled size
    distribution deterministically) and deduplicates the resulting trees.
    The order is first-appearance, so earlier (more representative) seeds
    survive a downstream candidate cap.
    """
    from repro.compiler.selection import _tree_key

    instances = np.asarray(instances)
    count = instances.shape[0]
    if count == 0:
        return []
    if max_seeds is not None and 0 < max_seeds < count:
        rows = np.unique(np.linspace(0, count - 1, max_seeds).astype(int))
    else:
        rows = np.arange(count)
    trees: list[ParenTree] = []
    seen: set = set()
    for row in rows:
        tree = dp_optimal_tree(chain, [int(s) for s in instances[row]])
        key = _tree_key(tree)
        if key not in seen:
            seen.add(key)
            trees.append(tree)
    return trees


def dp_plan_variants(
    chain: Chain, instances: np.ndarray, max_plans: Optional[int] = None
) -> list[Variant]:
    """Per-sample DP plan extraction as ordinary variants (named ``D0..``).

    One Section IV variant per *distinct* DP-optimal parenthesization over
    the instance rows; see :func:`dp_seed_trees` for the sampling and
    deduplication rules.
    """
    return [
        build_variant(chain, tree, name=f"D{i}")
        for i, tree in enumerate(dp_seed_trees(chain, instances, max_plans))
    ]

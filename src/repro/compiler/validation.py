"""Static verification of compiled variants (an IR checker).

A :class:`~repro.compiler.variant.Variant` is trusted by the executor, the
cost model, and the code emitters; this module re-checks the invariants
they rely on, independently of how the variant was produced (the Section IV
builder, the DP reconstruction, or JSON deserialization):

* **reference sanity** — steps only consume input matrices or earlier step
  results, and every intermediate (except the final one) is consumed
  exactly once (chains have no sharing without CSE);
* **dimension chaining** — each step's operands agree on the contracted
  size symbol and the result spans (left rows, right cols);
* **kernel compatibility** — the assigned kernel supports the operands'
  structures/inversion pattern per the Fig. 3 tables, and the recorded
  transposition flags are within the kernel's supported patterns;
* **triplet structure** — the association triplets form a valid
  parenthesization evaluation order (each middle symbol is consumed once
  and never reappears, per Section III-B).

:func:`verify_variant` raises :class:`VariantVerificationError` with a
precise message on the first violation; :func:`verify_or_report` collects
all of them.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.ir.features import Structure
from repro.compiler.variant import Variant


class VariantVerificationError(ReproError):
    """A compiled variant violates an internal invariant."""


def _check(condition: bool, message: str, errors: list[str]) -> None:
    if not condition:
        errors.append(message)


def _collect_errors(variant: Variant) -> list[str]:
    errors: list[str] = []
    chain = variant.chain
    n = chain.n

    if not variant.steps:
        _check(
            n == 1,
            f"variant has no steps but the chain has {n} matrices",
            errors,
        )
        return errors

    _check(
        len(variant.steps) == n - 1,
        f"expected {n - 1} steps for {n} matrices, found {len(variant.steps)}",
        errors,
    )

    consumed: dict[tuple[str, int], int] = {}
    for step in variant.steps:
        _check(
            step.index == len([s for s in variant.steps if s.index < step.index]),
            f"step indices must be dense and ordered (step {step.index})",
            errors,
        )
        for ref in (step.left_ref, step.right_ref):
            kind, index = ref
            if kind == "matrix":
                _check(
                    0 <= index < n,
                    f"step {step.index} references matrix {index} out of range",
                    errors,
                )
            elif kind == "step":
                _check(
                    index < step.index,
                    f"step {step.index} consumes a later/own result X{index}",
                    errors,
                )
            else:
                errors.append(f"step {step.index} has unknown ref kind {kind!r}")
            consumed[ref] = consumed.get(ref, 0) + 1

        # Dimension chaining of the actual kernel call.
        _check(
            step.left_state.cols == step.right_state.rows,
            f"step {step.index}: contracted symbols disagree "
            f"(q{step.left_state.cols} vs q{step.right_state.rows})",
            errors,
        )
        _check(
            step.call_dims
            == (step.left_state.rows, step.left_state.cols, step.right_state.cols),
            f"step {step.index}: call dims {step.call_dims} do not match "
            f"operand states",
            errors,
        )

        # Kernel compatibility.
        left, right = step.left_state, step.right_state
        _check(
            not (left.inverted and right.inverted),
            f"step {step.index}: two inverted operands reached a kernel call",
            errors,
        )
        if step.kernel.kind == "solve":
            coeff = left if step.side == "left" else right
            rhs = right if step.side == "left" else left
            _check(
                coeff.inverted,
                f"step {step.index}: solve kernel {step.kernel.name} whose "
                f"{step.side} operand is not inverted",
                errors,
            )
            _check(
                not rhs.inverted,
                f"step {step.index}: solve RHS is inverted",
                errors,
            )
            _check(
                coeff.prop.is_invertible,
                f"step {step.index}: solving with a possibly singular "
                f"coefficient",
                errors,
            )
        elif step.kernel.kind == "product":
            _check(
                not left.inverted and not right.inverted,
                f"step {step.index}: product kernel {step.kernel.name} with "
                f"an inverted operand",
                errors,
            )

        # Transposition support (Section IV step 3 guarantees this).
        from repro.compiler.states import _structured_roles

        left_ok, right_ok = _structured_roles(step.kernel, left, right, step.side)
        _check(
            (not left.transposed) or left_ok,
            f"step {step.index}: {step.kernel.name} cannot consume its left "
            f"operand transposed",
            errors,
        )
        _check(
            (not right.transposed) or right_ok,
            f"step {step.index}: {step.kernel.name} cannot consume its right "
            f"operand transposed",
            errors,
        )

    # Consumption discipline: every intermediate except the last is used
    # exactly once; the last step's result feeds the fix-ups/output.
    last_index = variant.steps[-1].index
    for step in variant.steps[:-1]:
        uses = consumed.get(("step", step.index), 0)
        _check(
            uses == 1,
            f"intermediate X{step.index} consumed {uses} times (expected 1)",
            errors,
        )
    _check(
        ("step", last_index) not in consumed,
        f"final result X{last_index} must not be consumed by another step",
        errors,
    )

    # Triplet discipline: middle symbols vanish after their association.
    seen_middles: set[int] = set()
    for step in variant.steps:
        a, b, c = step.triplet
        _check(a < b < c, f"step {step.index}: malformed triplet {step.triplet}", errors)
        _check(
            b not in seen_middles,
            f"step {step.index}: middle symbol q{b} already consumed",
            errors,
        )
        for middle in seen_middles:
            _check(
                middle not in (a, c),
                f"step {step.index}: consumed symbol q{middle} reappears",
                errors,
            )
        seen_middles.add(b)
    final = variant.steps[-1].triplet
    _check(
        final[0] == 0 and final[2] == n,
        f"final association {final} does not span the whole chain",
        errors,
    )

    return errors


def verify_or_report(variant: Variant) -> list[str]:
    """All invariant violations of a variant (empty list when clean)."""
    return _collect_errors(variant)


def verify_variant(variant: Variant) -> None:
    """Raise :class:`VariantVerificationError` if the variant is malformed."""
    errors = _collect_errors(variant)
    if errors:
        raise VariantVerificationError(
            f"variant {variant.name or '<anonymous>'} failed verification:\n  "
            + "\n  ".join(errors)
        )

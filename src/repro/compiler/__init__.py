"""The code generator core: the paper's primary contribution.

Modules:

* :mod:`repro.compiler.parenthesization` — expression trees, Catalan
  enumeration, fanning-out trees, leftmost-first linearization (§III-B).
* :mod:`repro.compiler.states` — symbolic operand states and the
  four-step association procedure (§IV).
* :mod:`repro.compiler.variant` — variants (sequences of kernel calls) and
  their FLOP cost functions (§III-C, §IV).
* :mod:`repro.compiler.selection` — fanning-out variants, equivalence
  classes, the essential set of Theorem 2, and penalties (§V).
* :mod:`repro.compiler.expansion` — the greedy ExpandSet procedure
  (Algorithm 1, §VI).
* :mod:`repro.compiler.dp` — the generalized matrix chain dynamic program
  for concrete sizes (the Linnea-style optimal search used as baseline,
  and the seed generator of the DP-seeded variant space).
* :mod:`repro.compiler.variant_space` — pluggable candidate generation:
  exhaustive Catalan enumeration for small chains, lazy DP-seeded pools
  that scale compilation to long chains (§III-B beyond n ≈ 12).
* :mod:`repro.compiler.dispatch` / :mod:`repro.compiler.executor` —
  import shims for the run-time half, which lives in :mod:`repro.runtime`
  (the memoizing dispatcher, compiled execution plans, and the variant
  executor).
* :mod:`repro.compiler.pipeline` — the staged pass pipeline (parse,
  simplify, sample, enumerate, cost-matrix, select, expand, dispatch).
* :mod:`repro.compiler.cache` — the content-addressed compilation cache
  (in-memory LRU + optional disk layer).
* :mod:`repro.compiler.session` — the :class:`CompilerSession` facade with
  cached single and batch (``compile_many``) compilation.
"""

from repro.compiler.parenthesization import (
    ParenTree,
    enumerate_trees,
    iter_trees,
    left_to_right_tree,
    right_to_left_tree,
    fanning_out_tree,
    linearize,
    rotations,
)
from repro.compiler.variant import Variant, build_variant
from repro.compiler.selection import (
    all_variants,
    fanning_out_variants,
    essential_set,
    left_to_right_variant,
    optimal_cost,
    penalty,
)
from repro.compiler.expansion import expand_set, AveragePenalty, MaxPenalty
from repro.runtime import Dispatcher, execute_variant, random_instance_arrays
from repro.compiler.dp import (
    dp_optimal_cost,
    dp_optimal_plan,
    dp_optimal_tree,
    dp_plan_variants,
    dp_seed_trees,
)
from repro.compiler.variant_space import (
    AUTO_EXHAUSTIVE_MAX_N,
    DPSeededSpace,
    ExhaustiveSpace,
    VariantSpace,
    make_space,
    resolve_space,
)
from repro.compiler.memory import MemoryPlan, peak_workspace_bytes, plan_memory
from repro.compiler.validation import (
    VariantVerificationError,
    verify_or_report,
    verify_variant,
)
from repro.compiler.program import (
    ARTIFACT_VERSION,
    ArtifactError,
    CompiledProgram,
)
from repro.compiler.pipeline import (
    CompileOptions,
    CompilerPass,
    PassContext,
    Pipeline,
    default_pipeline,
)
from repro.compiler.cache import CacheStats, CompilationCache, DiskCache
from repro.compiler.session import (
    CompilerSession,
    get_default_session,
    set_default_session,
)

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactError",
    "CompiledProgram",
    "CompileOptions",
    "CompilerPass",
    "PassContext",
    "Pipeline",
    "default_pipeline",
    "CacheStats",
    "CompilationCache",
    "DiskCache",
    "CompilerSession",
    "get_default_session",
    "set_default_session",
    "ParenTree",
    "enumerate_trees",
    "iter_trees",
    "left_to_right_tree",
    "right_to_left_tree",
    "fanning_out_tree",
    "linearize",
    "rotations",
    "Variant",
    "build_variant",
    "all_variants",
    "fanning_out_variants",
    "essential_set",
    "left_to_right_variant",
    "optimal_cost",
    "penalty",
    "expand_set",
    "AveragePenalty",
    "MaxPenalty",
    "Dispatcher",
    "execute_variant",
    "random_instance_arrays",
    "dp_optimal_cost",
    "dp_optimal_plan",
    "dp_optimal_tree",
    "dp_plan_variants",
    "dp_seed_trees",
    "AUTO_EXHAUSTIVE_MAX_N",
    "DPSeededSpace",
    "ExhaustiveSpace",
    "VariantSpace",
    "make_space",
    "resolve_space",
    "MemoryPlan",
    "peak_workspace_bytes",
    "plan_memory",
    "VariantVerificationError",
    "verify_or_report",
    "verify_variant",
]

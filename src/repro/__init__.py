"""repro — Compilation of Generalized Matrix Chains with Symbolic Sizes.

A full reproduction of the CGO 2026 paper by López, Karlsson, and
Bientinesi: a multi-versioning code generator for generalized matrix chains
(GMCs) whose matrix sizes are unknown at compile time.

Quickstart::

    from repro import Matrix, Structure, Property, compile_chain

    G = Matrix("G", Structure.GENERAL)
    L = Matrix("L", Structure.LOWER_TRIANGULAR, Property.NON_SINGULAR)
    generated = compile_chain(G * L.inv * G.T)
    result = generated(g_array, l_array, g_array)   # dispatches + executes

See ``examples/`` for end-to-end scenarios and ``DESIGN.md`` for the system
inventory.
"""

from repro.errors import (
    ReproError,
    ParseError,
    InvalidFeaturesError,
    ShapeError,
    CompilationError,
    ExecutionError,
    DispatchError,
    ServiceError,
    ServiceOverloadedError,
    ServiceClosedError,
)
from repro.ir import (
    Structure,
    Property,
    Matrix,
    UnaryOp,
    Operand,
    Chain,
    Instance,
    ChainSum,
    ChainTerm,
    parse_program,
    parse_chain,
    parse_expression,
    simplify_chain,
)
from repro.compiler import (
    Variant,
    build_variant,
    all_variants,
    fanning_out_variants,
    essential_set,
    left_to_right_variant,
    expand_set,
    dp_optimal_cost,
    CompiledProgram,
    CompilerSession,
)
from repro.runtime import (
    Dispatcher,
    DispatchOutcome,
    ExecutionPlan,
    compile_plan,
    execute_variant,
)
from repro.api import (
    GeneratedCode,
    GeneratedExpression,
    compile_chain,
    compile_expression,
    compile_many,
    get_default_session,
    load_program,
    set_default_session,
)
from repro.serve import CompileService

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ParseError",
    "InvalidFeaturesError",
    "ShapeError",
    "CompilationError",
    "ExecutionError",
    "DispatchError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "Structure",
    "Property",
    "Matrix",
    "UnaryOp",
    "Operand",
    "Chain",
    "Instance",
    "ChainSum",
    "ChainTerm",
    "parse_program",
    "parse_chain",
    "parse_expression",
    "simplify_chain",
    "Variant",
    "build_variant",
    "all_variants",
    "fanning_out_variants",
    "essential_set",
    "left_to_right_variant",
    "expand_set",
    "Dispatcher",
    "DispatchOutcome",
    "ExecutionPlan",
    "compile_plan",
    "execute_variant",
    "dp_optimal_cost",
    "compile_chain",
    "compile_expression",
    "compile_many",
    "load_program",
    "CompiledProgram",
    "CompilerSession",
    "CompileService",
    "GeneratedCode",
    "GeneratedExpression",
    "get_default_session",
    "set_default_session",
    "__version__",
]

"""Symbolic and empirical analysis of variant spaces.

Companions to the paper's Section V theory:

* :mod:`repro.analysis.crossover` — exact symbolic analysis of where one
  variant overtakes another along a parametric family of instances (the
  "different sequences are best in different regions" phenomenon that
  motivates multi-versioning).
* :mod:`repro.analysis.usefulness` — empirical studies in the spirit of
  López et al.'s "all parenthesizations are useful, few are essential":
  per-variant win frequencies, dominated variants, and a greedy empirical
  essential-subset probe.
* :mod:`repro.analysis.report` — a markdown report generator summarizing a
  chain's compilation: variants, costs, selection, and dispatch behaviour.
"""

from repro.analysis.crossover import (
    SizeFamily,
    cost_along_family,
    crossover_points,
    best_variant_regions,
)
from repro.analysis.usefulness import (
    win_frequencies,
    useful_variants,
    dominated_variants,
    empirical_essential_subset,
)
from repro.analysis.report import chain_report

__all__ = [
    "SizeFamily",
    "cost_along_family",
    "crossover_points",
    "best_variant_regions",
    "win_frequencies",
    "useful_variants",
    "dominated_variants",
    "empirical_essential_subset",
    "chain_report",
]

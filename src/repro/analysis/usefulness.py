"""Empirical variant-usefulness studies.

The paper builds on López et al.'s result that for matrix chains *all*
parenthesizations are useful (each is strictly best somewhere) while *few*
are essential (only ``n + 1`` are needed for bounded penalty).  These
helpers quantify both notions empirically for generalized chains:

* :func:`win_frequencies` — how often each variant is (near-)optimal;
* :func:`useful_variants` — variants that win on at least one sampled
  instance;
* :func:`dominated_variants` — variants that are never strictly better
  than every other variant (empirically superfluous on the sample);
* :func:`empirical_essential_subset` — a greedy probe for a minimal
  subset whose maximum penalty on the sample stays below a bound.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.compiler.selection import CostMatrix
from repro.compiler.variant import Variant


def win_frequencies(
    matrix: CostMatrix, tolerance: float = 1e-9
) -> dict[int, float]:
    """Fraction of instances on which each variant is within tolerance of
    the optimum.  Keys are variant indices in the cost matrix."""
    wins = matrix.costs <= matrix.optimal * (1.0 + tolerance)
    return {
        i: float(wins[i].mean()) for i in range(len(matrix.variants))
    }


def useful_variants(
    matrix: CostMatrix, tolerance: float = 1e-9
) -> list[Variant]:
    """Variants that are optimal on at least one sampled instance."""
    frequencies = win_frequencies(matrix, tolerance)
    return [
        matrix.variants[i]
        for i, frequency in frequencies.items()
        if frequency > 0.0
    ]


def dominated_variants(
    matrix: CostMatrix, tolerance: float = 1e-9
) -> list[Variant]:
    """Variants never strictly optimal on the sample (complement of useful)."""
    frequencies = win_frequencies(matrix, tolerance)
    return [
        matrix.variants[i]
        for i, frequency in frequencies.items()
        if frequency == 0.0
    ]


def empirical_essential_subset(
    matrix: CostMatrix,
    initial: Sequence[Variant],
    penalty_bound: float = 15.0,
) -> list[Variant]:
    """Greedily shrink a variant set while its max penalty stays bounded.

    Starting from ``initial`` (typically the fanning-out set), repeatedly
    try removing the member whose removal increases the maximum penalty on
    the sample the least; stop when any removal would push the penalty
    above ``penalty_bound``.  This is an *empirical* probe — true
    essentiality is a statement over all infinitely many instances — but on
    dense samples it recovers the per-equivalence-class structure of
    Theorem 2.
    """
    sig_to_idx = {v.signature(): i for i, v in enumerate(matrix.variants)}
    current = [sig_to_idx[v.signature()] for v in initial]
    if not current:
        return []
    while len(current) > 1:
        best_removal = None
        best_penalty = float("inf")
        for candidate in current:
            remaining = [i for i in current if i != candidate]
            worst = matrix.max_penalty(remaining)
            if worst < best_penalty:
                best_penalty = worst
                best_removal = candidate
        if best_removal is None or best_penalty > penalty_bound:
            break
        current = [i for i in current if i != best_removal]
    return [matrix.variants[i] for i in current]

"""Symbolic crossover analysis along parametric instance families.

With symbolic sizes, no single variant is optimal everywhere; the *regions*
where each variant wins are delimited by crossover points.  This module
computes those points exactly with sympy: an instance family assigns each
size symbol a polynomial in one parameter ``t`` (e.g. ``q = (1, t, 1, t)``
from the paper's Section V example), so variant costs become univariate
polynomials whose intersections are algebraic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import sympy

from repro.errors import ShapeError
from repro.ir.chain import Chain
from repro.compiler.variant import Variant

#: The family parameter.
T = sympy.Symbol("t", positive=True)


@dataclass(frozen=True)
class SizeFamily:
    """A one-parameter family of instances ``q_i = f_i(t)``.

    ``exprs`` maps each size symbol to a sympy expression in :data:`T`
    (plain integers are accepted).  The family must respect the chain's
    squareness constraints for all ``t`` in the domain: bound symbols must
    be given identical expressions.
    """

    chain: Chain
    exprs: tuple

    def __post_init__(self) -> None:
        if len(self.exprs) != self.chain.n + 1:
            raise ShapeError(
                f"family needs {self.chain.n + 1} size expressions, "
                f"got {len(self.exprs)}"
            )
        sympified = tuple(sympy.sympify(e) for e in self.exprs)
        object.__setattr__(self, "exprs", sympified)
        for cls in self.chain.equivalence_classes():
            first = self.exprs[cls[0]]
            for idx in cls[1:]:
                if sympy.simplify(self.exprs[idx] - first) != 0:
                    raise ShapeError(
                        f"size symbols q{cls[0]} and q{idx} are bound by "
                        f"squareness but the family assigns different "
                        f"expressions ({first} vs {self.exprs[idx]})"
                    )

    def instance(self, t_value) -> tuple[int, ...]:
        """Concrete instance at a parameter value (rounded to ints >= 1)."""
        values = tuple(
            max(1, int(sympy.Integer(round(float(e.subs(T, t_value))))))
            for e in self.exprs
        )
        return self.chain.validate_sizes(values)


def cost_along_family(variant: Variant, family: SizeFamily):
    """The variant's FLOP cost as a sympy expression in ``t``."""
    symbols = sympy.symbols(
        [f"q{i}" for i in range(family.chain.n + 1)], positive=True
    )
    cost = variant.symbolic_cost()
    substitutions = dict(zip(symbols, family.exprs))
    return sympy.expand(cost.subs(substitutions))


def crossover_points(
    first: Variant,
    second: Variant,
    family: SizeFamily,
    domain: tuple[float, float] = (1.0, 10.0**6),
) -> list[float]:
    """Parameter values in ``domain`` where the two costs are equal.

    Returns the sorted real roots of the cost difference inside the open
    interval.  An empty list means one variant dominates the other (or the
    costs coincide) throughout the domain.
    """
    difference = sympy.expand(
        cost_along_family(first, family) - cost_along_family(second, family)
    )
    if difference == 0:
        return []
    lo, hi = domain
    points: list[float] = []
    for root in sympy.real_roots(sympy.Poly(difference, T)):
        value = float(root)
        if lo < value < hi:
            points.append(value)
    return sorted(set(points))


def best_variant_regions(
    variants: Sequence[Variant],
    family: SizeFamily,
    domain: tuple[float, float] = (1.0, 10.0**6),
) -> list[tuple[float, float, Variant]]:
    """Partition the domain into intervals with a constant best variant.

    All pairwise crossover points split the domain; within each cell the
    ordering of the (continuous) cost functions is constant, so the best
    variant is determined by evaluating at the cell midpoint.  Adjacent
    cells with the same winner are merged.
    """
    if not variants:
        raise ValueError("need at least one variant")
    lo, hi = domain
    cuts = {lo, hi}
    for i, first in enumerate(variants):
        for second in variants[i + 1:]:
            cuts.update(crossover_points(first, second, family, domain))
    ordered = sorted(cuts)

    costs = [cost_along_family(v, family) for v in variants]
    regions: list[tuple[float, float, Variant]] = []
    for left, right in zip(ordered, ordered[1:]):
        midpoint = (left + right) / 2.0
        values = [float(c.subs(T, midpoint)) for c in costs]
        winner = variants[min(range(len(variants)), key=values.__getitem__)]
        if regions and regions[-1][2] is winner:
            regions[-1] = (regions[-1][0], right, winner)
        else:
            regions.append((left, right, winner))
    return regions

"""Markdown compilation reports for a chain.

:func:`chain_report` gathers everything a user would want to inspect about
a shape in one document: the chain's features and size-symbol equivalence
classes, the selected variants with kernel sequences and symbolic costs,
empirical win frequencies over a sampled instance space, and a dispatch
preview on representative instances.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ir.chain import Chain
from repro.compiler.selection import CostMatrix, all_variants, essential_set
from repro.compiler.variant import Variant
from repro.analysis.usefulness import win_frequencies
from repro.experiments.sampling import sample_instances


def _variant_row(variant: Variant) -> str:
    kernels = " -> ".join(variant.kernel_names)
    return f"| {variant.name or '?'} | `{variant}` | {kernels} | `{variant.symbolic_cost()}` |"


def chain_report(
    chain: Chain,
    selected: Optional[Sequence[Variant]] = None,
    num_instances: int = 500,
    seed: int = 0,
    preview_instances: int = 3,
) -> str:
    """Produce a markdown report summarizing the chain's compilation."""
    rng = np.random.default_rng(seed)
    instances = sample_instances(chain, num_instances, rng, low=2, high=1000)
    variants = all_variants(chain)
    matrix = CostMatrix(variants, instances)
    if selected is None:
        selected = essential_set(chain, cost_matrix=matrix)
    selected_sigs = {v.signature() for v in selected}
    frequencies = win_frequencies(matrix)

    lines: list[str] = []
    out = lines.append
    out(f"# Compilation report: `{chain}`")
    out("")
    out("## Shape")
    out("")
    out("| matrix | structure | property | operator | square |")
    out("|---|---|---|---|---|")
    for operand in chain:
        out(
            f"| {operand.matrix.name} | {operand.matrix.structure.value} "
            f"| {operand.matrix.prop.value} | {operand.op.name} "
            f"| {'yes' if operand.is_square else 'no'} |"
        )
    out("")
    classes = ", ".join(
        "{" + ", ".join(f"q{i}" for i in cls) + "}"
        for cls in chain.equivalence_classes()
    )
    out(f"Size-symbol equivalence classes: {classes}")
    out(f"Parenthesizations: {len(variants)}; selected variants: {len(selected)}")
    out("")
    out("## Selected variants (Theorem 2 base set)")
    out("")
    out("| name | parenthesization | kernels | symbolic FLOP cost |")
    out("|---|---|---|---|")
    for variant in selected:
        out(_variant_row(variant))
    out("")
    out("## Empirical win frequencies")
    out("")
    out(
        f"Over {num_instances} instances with sizes in [2, 1000] "
        f"(fraction of instances on which each variant is optimal):"
    )
    out("")
    out("| variant | wins | in selected set |")
    out("|---|---|---|")
    ranked = sorted(frequencies.items(), key=lambda kv: -kv[1])
    for index, frequency in ranked:
        if frequency == 0.0:
            continue
        variant = matrix.variants[index]
        mark = "yes" if variant.signature() in selected_sigs else ""
        out(f"| {variant.name or index} `{variant}` | {100 * frequency:.1f}% | {mark} |")
    out("")
    out("## Dispatch preview")
    out("")
    out("| instance q | best selected variant | cost (FLOPs) | ratio over optimal |")
    out("|---|---|---|---|")
    sig_to_idx = {v.signature(): i for i, v in enumerate(matrix.variants)}
    selected_idx = [sig_to_idx[v.signature()] for v in selected]
    for row in range(min(preview_instances, instances.shape[0])):
        q = instances[row]
        column = matrix.costs[:, row]
        sub = [(i, column[i]) for i in selected_idx]
        best_i, best_cost = min(sub, key=lambda pair: pair[1])
        ratio = best_cost / matrix.optimal[row]
        out(
            f"| {list(int(x) for x in q)} | {matrix.variants[best_i].name or best_i} "
            f"| {best_cost:,.0f} | {ratio:.3f} |"
        )
    out("")
    return "\n".join(lines)

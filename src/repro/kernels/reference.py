"""Executable reference implementations of every kernel in Table I.

These NumPy/SciPy implementations form the runnable BLAS/LAPACK substrate of
the reproduction.  They are correctness-oriented: symmetric and triangular
matrices are stored as full dense arrays (with the redundant half present /
zeroed) so that results can be compared directly against naive dense
evaluation in the test suite.  The *cost* of a kernel is always taken from
its cost function in :mod:`repro.kernels.spec` — never measured from these
implementations — exactly as in the paper, where FLOP counts are analytic.

Conventions
-----------
* Every binary kernel associates a left operand with a right operand; the
  ``side`` argument of solve kernels says whether the *coefficient* (the
  inverted operand) is the left ("left": compute ``op(A)^-1 B``) or the
  right ("right": compute ``B op(A)^-1``) factor of the product.
* ``trans_*`` flags mean "the logical operand is the transpose of the array
  passed in"; transposition is applied lazily through NumPy views.
* ``lower_*`` flags give the *logical* triangularity where relevant.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.errors import ExecutionError

__all__ = [
    "gemm", "symm", "trmm", "sysymm", "trsymm", "trtrmm",
    "gegesv", "gesysv", "getrsv",
    "sygesv", "sysysv", "sytrsv",
    "pogesv", "posysv", "potrsv",
    "trsm", "trsysv", "trtrsv",
    "dimm", "didimm", "digesv", "disysv", "ditrsv", "didisv",
    "geinv", "syinv", "poinv", "trinv", "diinv",
    "explicit_transpose", "copy",
    "KERNEL_IMPLS", "PRODUCT_KERNELS", "SOLVER_BY_KERNEL", "specialize_kernel",
]


def _op(a: np.ndarray, trans: bool) -> np.ndarray:
    return a.T if trans else a


def _check_product_dims(a: np.ndarray, b: np.ndarray, kernel: str) -> None:
    if a.ndim != 2 or b.ndim != 2:
        raise ExecutionError(f"{kernel}: operands must be 2-D arrays")
    if a.shape[1] != b.shape[0]:
        raise ExecutionError(
            f"{kernel}: inner dimensions do not match: {a.shape} x {b.shape}"
        )


def _solve_general(coeff: np.ndarray, rhs: np.ndarray, side: str) -> np.ndarray:
    """``coeff^-1 rhs`` (side='left') or ``rhs coeff^-1`` (side='right')."""
    try:
        if side == "left":
            return np.linalg.solve(coeff, rhs)
        return np.linalg.solve(coeff.T, rhs.T).T
    except np.linalg.LinAlgError as exc:
        raise ExecutionError(f"general solve failed: {exc}") from exc


def _solve_symmetric(coeff: np.ndarray, rhs: np.ndarray, side: str) -> np.ndarray:
    try:
        if side == "left":
            return scipy.linalg.solve(coeff, rhs, assume_a="sym")
        return scipy.linalg.solve(coeff, rhs.T, assume_a="sym").T
    except (scipy.linalg.LinAlgError, ValueError) as exc:
        raise ExecutionError(f"symmetric solve failed: {exc}") from exc


def _solve_spd(coeff: np.ndarray, rhs: np.ndarray, side: str) -> np.ndarray:
    try:
        factor = scipy.linalg.cho_factor(coeff)
        if side == "left":
            return scipy.linalg.cho_solve(factor, rhs)
        return scipy.linalg.cho_solve(factor, rhs.T).T
    except (scipy.linalg.LinAlgError, ValueError) as exc:
        raise ExecutionError(f"SPD solve failed: {exc}") from exc


def _solve_diagonal(coeff: np.ndarray, rhs: np.ndarray, side: str) -> np.ndarray:
    diag = np.diag(coeff)
    if np.any(diag == 0.0):
        raise ExecutionError("diagonal solve failed: zero diagonal entry")
    if side == "left":
        return rhs / diag[:, None]
    return rhs / diag[None, :]


def _solve_triangular(
    coeff: np.ndarray, rhs: np.ndarray, side: str, lower: bool
) -> np.ndarray:
    try:
        if side == "left":
            return scipy.linalg.solve_triangular(coeff, rhs, lower=lower)
        # X A = B  <=>  A^T X^T = B^T; transposing flips triangularity.
        return scipy.linalg.solve_triangular(coeff.T, rhs.T, lower=not lower).T
    except (scipy.linalg.LinAlgError, ValueError) as exc:
        raise ExecutionError(f"triangular solve failed: {exc}") from exc


# ---------------------------------------------------------------------------
# Product kernels.
# ---------------------------------------------------------------------------

def gemm(a, b, trans_a=False, trans_b=False, alpha=1.0):
    """``alpha * op(A) op(B)`` — general x general product (2mkn FLOPs)."""
    oa, ob = _op(np.asarray(a), trans_a), _op(np.asarray(b), trans_b)
    _check_product_dims(oa, ob, "GEMM")
    return alpha * (oa @ ob)


def symm(s, g, side="left", alpha=1.0):
    """``alpha * S G`` or ``alpha * G S`` with S symmetric (2m^2n / 2mn^2)."""
    s, g = np.asarray(s), np.asarray(g)
    if side == "left":
        _check_product_dims(s, g, "SYMM")
        return alpha * (s @ g)
    _check_product_dims(g, s, "SYMM")
    return alpha * (g @ s)


def trmm(t, g, side="left", trans_t=False, alpha=1.0):
    """``alpha * op(T) G`` or ``alpha * G op(T)`` with T triangular (m^2n / mn^2)."""
    ot, g = _op(np.asarray(t), trans_t), np.asarray(g)
    if side == "left":
        _check_product_dims(ot, g, "TRMM")
        return alpha * (ot @ g)
    _check_product_dims(g, ot, "TRMM")
    return alpha * (g @ ot)


def sysymm(s1, s2, alpha=1.0):
    """``alpha * S1 S2`` with both operands symmetric (2m^3 FLOPs)."""
    s1, s2 = np.asarray(s1), np.asarray(s2)
    _check_product_dims(s1, s2, "SYSYMM")
    return alpha * (s1 @ s2)


def trsymm(t, s, side="left", trans_t=False, alpha=1.0):
    """``alpha * op(T) S`` or ``alpha * S op(T)``, T triangular, S symmetric (m^3)."""
    ot, s = _op(np.asarray(t), trans_t), np.asarray(s)
    if side == "left":
        _check_product_dims(ot, s, "TRSYMM")
        return alpha * (ot @ s)
    _check_product_dims(s, ot, "TRSYMM")
    return alpha * (s @ ot)


def trtrmm(t1, t2, trans_a=False, trans_b=False, alpha=1.0):
    """``alpha * op(T1) op(T2)`` with both operands triangular (m^3/3 or 2m^3/3)."""
    o1, o2 = _op(np.asarray(t1), trans_a), _op(np.asarray(t2), trans_b)
    _check_product_dims(o1, o2, "TRTRMM")
    return alpha * (o1 @ o2)


# ---------------------------------------------------------------------------
# Solve kernels.  ``coeff`` is the matrix whose inverse appears in the
# association; ``side`` says on which side of the product it stands.
# ---------------------------------------------------------------------------

def gegesv(coeff, rhs, side="left", trans_coeff=False):
    """Solve ``op(A) X = B`` / ``X op(A) = B``, A and B general."""
    return _solve_general(_op(np.asarray(coeff), trans_coeff), np.asarray(rhs), side)


def gesysv(coeff, rhs, side="left", trans_coeff=False):
    """Solve with general coefficient and symmetric right-hand side."""
    return _solve_general(_op(np.asarray(coeff), trans_coeff), np.asarray(rhs), side)


def getrsv(coeff, rhs, side="left", trans_coeff=False):
    """Solve with general coefficient and triangular right-hand side."""
    return _solve_general(_op(np.asarray(coeff), trans_coeff), np.asarray(rhs), side)


def sygesv(coeff, rhs, side="left"):
    """Solve ``A X = B`` / ``X A = B`` with symmetric indefinite A."""
    return _solve_symmetric(np.asarray(coeff), np.asarray(rhs), side)


def sysysv(coeff, rhs, side="left"):
    """Solve with symmetric coefficient and symmetric right-hand side."""
    return _solve_symmetric(np.asarray(coeff), np.asarray(rhs), side)


def sytrsv(coeff, rhs, side="left"):
    """Solve with symmetric coefficient and triangular right-hand side."""
    return _solve_symmetric(np.asarray(coeff), np.asarray(rhs), side)


def pogesv(coeff, rhs, side="left"):
    """Solve ``A X = B`` / ``X A = B`` with SPD A (Cholesky-based)."""
    return _solve_spd(np.asarray(coeff), np.asarray(rhs), side)


def posysv(coeff, rhs, side="left"):
    """Solve with SPD coefficient and symmetric right-hand side."""
    return _solve_spd(np.asarray(coeff), np.asarray(rhs), side)


def potrsv(coeff, rhs, side="left"):
    """Solve with SPD coefficient and triangular right-hand side."""
    return _solve_spd(np.asarray(coeff), np.asarray(rhs), side)


def trsm(coeff, rhs, side="left", trans_coeff=False, lower=True, alpha=1.0):
    """Solve ``op(A) X = alpha B`` / ``X op(A) = alpha B`` with triangular A."""
    logical = _op(np.asarray(coeff), trans_coeff)
    logical_lower = lower != trans_coeff  # transposition flips triangularity
    return _solve_triangular(logical, alpha * np.asarray(rhs), side, logical_lower)


def trsysv(coeff, rhs, side="left", trans_coeff=False, lower=True):
    """Solve with triangular coefficient and symmetric right-hand side."""
    return trsm(coeff, rhs, side=side, trans_coeff=trans_coeff, lower=lower)


def trtrsv(coeff, rhs, side="left", trans_coeff=False, lower=True):
    """Solve with triangular coefficient and triangular right-hand side."""
    return trsm(coeff, rhs, side=side, trans_coeff=trans_coeff, lower=lower)


# ---------------------------------------------------------------------------
# Diagonal extension kernels (beyond Table I).
# ---------------------------------------------------------------------------

def dimm(d, b, side="left", alpha=1.0):
    """``alpha * D B`` (row scaling) or ``alpha * B D`` (column scaling)."""
    diag = np.diag(np.asarray(d))
    b = np.asarray(b)
    if side == "left":
        return alpha * (diag[:, None] * b)
    return alpha * (b * diag[None, :])


def didimm(d1, d2, alpha=1.0):
    """``alpha * D1 D2`` with both operands diagonal (element-wise)."""
    return alpha * np.diag(np.diag(np.asarray(d1)) * np.diag(np.asarray(d2)))


def digesv(coeff, rhs, side="left"):
    """Solve ``D X = B`` / ``X D = B`` with diagonal D (element division)."""
    return _solve_diagonal(np.asarray(coeff), np.asarray(rhs), side)


def disysv(coeff, rhs, side="left"):
    """Diagonal solve with a symmetric right-hand side."""
    return _solve_diagonal(np.asarray(coeff), np.asarray(rhs), side)


def ditrsv(coeff, rhs, side="left"):
    """Diagonal solve with a triangular right-hand side."""
    return _solve_diagonal(np.asarray(coeff), np.asarray(rhs), side)


def didisv(coeff, rhs, side="left"):
    """Solve with diagonal coefficient and diagonal right-hand side."""
    return _solve_diagonal(np.asarray(coeff), np.asarray(rhs), side)


def diinv(a):
    """Explicit inversion of a diagonal matrix (element reciprocals)."""
    diag = np.diag(np.asarray(a))
    if np.any(diag == 0.0):
        raise ExecutionError("diagonal inversion failed: zero diagonal entry")
    return np.diag(1.0 / diag)


# ---------------------------------------------------------------------------
# Unary fix-up kernels.
# ---------------------------------------------------------------------------

def geinv(a):
    """Explicit inversion of a general matrix (2m^3 FLOPs)."""
    try:
        return np.linalg.inv(np.asarray(a))
    except np.linalg.LinAlgError as exc:
        raise ExecutionError(f"explicit inversion failed: {exc}") from exc


def syinv(a):
    """Explicit inversion of a symmetric indefinite matrix."""
    return geinv(a)


def poinv(a):
    """Explicit inversion of an SPD matrix via Cholesky (m^3 FLOPs)."""
    a = np.asarray(a)
    identity = np.eye(a.shape[0], dtype=a.dtype)
    return _solve_spd(a, identity, "left")


def trinv(a, lower=True):
    """Explicit inversion of a triangular matrix (m^3/3 FLOPs)."""
    a = np.asarray(a)
    identity = np.eye(a.shape[0], dtype=a.dtype)
    return _solve_triangular(a, identity, "left", lower)


def explicit_transpose(a):
    """Out-of-place transposition (0 FLOPs)."""
    return np.ascontiguousarray(np.asarray(a).T)


def copy(a):
    """Out-of-place copy (0 FLOPs)."""
    return np.array(a, copy=True)


# ---------------------------------------------------------------------------
# Uniform dispatch for the variant executor.  Each entry takes the stored
# left/right arrays plus the resolved call configuration and returns the
# computed (base) result.
# ---------------------------------------------------------------------------

def _impl_product(a, b, cfg):
    return gemm(a, b, trans_a=cfg.left_trans, trans_b=cfg.right_trans)


def _impl_solve(solver):
    def run(a, b, cfg):
        if cfg.side == "left":
            coeff, rhs = a, b
            trans = cfg.left_trans
            lower = cfg.left_lower
        else:
            coeff, rhs = b, a
            trans = cfg.right_trans
            lower = cfg.right_lower
        logical = _op(np.asarray(coeff), trans)
        rhs = _op(np.asarray(rhs), cfg.right_trans if cfg.side == "left" else cfg.left_trans)
        if solver is _solve_triangular:
            logical_lower = lower != trans
            return _solve_triangular(logical, rhs, cfg.side, logical_lower)
        return solver(logical, rhs, cfg.side)

    return run


#: Kernels whose execution is a dense matmul over the full storage.
PRODUCT_KERNELS = frozenset(
    {"GEMM", "SYMM", "TRMM", "SYSYMM", "TRSYMM", "TRTRMM", "DIMM", "DIDIMM"}
)

#: Solve kernels mapped to the structured solver of their coefficient family.
SOLVER_BY_KERNEL = {
    "GEGESV": _solve_general,
    "GESYSV": _solve_general,
    "GETRSV": _solve_general,
    "SYGESV": _solve_symmetric,
    "SYSYSV": _solve_symmetric,
    "SYTRSV": _solve_symmetric,
    "POGESV": _solve_spd,
    "POSYSV": _solve_spd,
    "POTRSV": _solve_spd,
    "TRSM": _solve_triangular,
    "TRSYSV": _solve_triangular,
    "TRTRSV": _solve_triangular,
    "DIGESV": _solve_diagonal,
    "DISYSV": _solve_diagonal,
    "DITRSV": _solve_diagonal,
    "DIDISV": _solve_diagonal,
}


def specialize_kernel(name, cfg):
    """A direct ``(left, right) -> result`` callable for one frozen config.

    Execution plans (:mod:`repro.runtime.plan`) call each kernel with the
    same :class:`call config <repro.runtime.executor.KernelCallConfig>`
    every time, so the per-call branching of the generic entry points —
    transpose resolution, side selection, operand re-coercion, dimension
    checks — can be resolved once here.  The returned callable trusts its
    inputs: 2-D float64 arrays whose shapes were validated when the plan
    was compiled (dimension mismatches surface as numpy errors, not
    :class:`ExecutionError`).

    Bit-compatible with :data:`KERNEL_IMPLS`: products lower to the same
    ``op(L) @ op(R)`` matmul, solves to the same family solver with the
    transpose/triangularity algebra pre-applied.
    """
    if name in PRODUCT_KERNELS:
        if cfg.left_trans and cfg.right_trans:
            return lambda left, right: left.T @ right.T
        if cfg.left_trans:
            return lambda left, right: left.T @ right
        if cfg.right_trans:
            return lambda left, right: left @ right.T
        return lambda left, right: left @ right
    solver = SOLVER_BY_KERNEL.get(name)
    if solver is None:
        raise ExecutionError(f"no implementation for kernel {name}")
    left_side = cfg.side == "left"
    if left_side:
        coeff_trans, rhs_trans, lower = (
            cfg.left_trans, cfg.right_trans, cfg.left_lower,
        )
    else:
        coeff_trans, rhs_trans, lower = (
            cfg.right_trans, cfg.left_trans, cfg.right_lower,
        )
    side = cfg.side
    if solver is _solve_triangular:
        # Stored-to-logical triangularity flips under transposition,
        # exactly as in the generic path (_impl_solve).
        logical_lower = bool(lower) != coeff_trans

        def run(left, right):
            coeff, rhs = (left, right) if left_side else (right, left)
            if coeff_trans:
                coeff = coeff.T
            if rhs_trans:
                rhs = rhs.T
            return _solve_triangular(coeff, rhs, side, logical_lower)

        return run

    def run(left, right):
        coeff, rhs = (left, right) if left_side else (right, left)
        if coeff_trans:
            coeff = coeff.T
        if rhs_trans:
            rhs = rhs.T
        return solver(coeff, rhs, side)

    return run


def specialize_kernel_out(name, cfg):
    """An out-parameter variant of :func:`specialize_kernel`, or ``None``.

    Product kernels lower to ``np.matmul(..., out=out)`` — the same BLAS
    dgemm as the allocating form, writing into a caller-owned buffer (an
    arena slot or the final ``out=``) instead of a fresh array.  ``out``
    must not alias either operand (numpy leaves overlapping ``matmul``
    outputs undefined); plan arenas guarantee that by construction.
    Solve kernels answer ``None`` — their scipy solvers allocate
    internally, so an out buffer would only add a copy.
    """
    if name not in PRODUCT_KERNELS:
        return None
    if cfg.left_trans and cfg.right_trans:
        return lambda left, right, out: np.matmul(left.T, right.T, out=out)
    if cfg.left_trans:
        return lambda left, right, out: np.matmul(left.T, right, out=out)
    if cfg.right_trans:
        return lambda left, right, out: np.matmul(left, right.T, out=out)
    return lambda left, right, out: np.matmul(left, right, out=out)


#: name -> callable(stored_left, stored_right, call_config) -> result array.
#: Derived from PRODUCT_KERNELS / SOLVER_BY_KERNEL so the generic path and
#: plan-time specialization (specialize_kernel) share one family table:
#: product kernels all reduce to a (possibly transposed) matmul on the full
#: dense storage; solve kernels pick the structured solver of their family.
KERNEL_IMPLS = {name: _impl_product for name in sorted(PRODUCT_KERNELS)}
KERNEL_IMPLS.update(
    (name, _impl_solve(solver)) for name, solver in SOLVER_BY_KERNEL.items()
)

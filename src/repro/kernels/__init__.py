"""The kernel substrate: Table I of the paper.

This subpackage defines the full set of BLAS-, LAPACK-, and paper-custom
kernels that the code generator targets, together with:

* exact FLOP cost functions (``repro.kernels.cost``),
* kernel descriptors with operand-support metadata (``repro.kernels.spec``),
* the association-to-kernel lookup tables of Fig. 3
  (``repro.kernels.tables``), and
* executable NumPy/SciPy reference implementations
  (``repro.kernels.reference``).
"""

from repro.kernels.cost import CostFunction, CostType, Monomial
from repro.kernels.spec import (
    KernelSpec,
    KERNELS,
    PRODUCT_KERNELS,
    SOLVE_KERNELS,
    DIAGONAL_KERNELS,
    UNARY_KERNELS,
    get_kernel,
)
from repro.kernels.tables import (
    lookup_product_kernel,
    lookup_solve_kernel,
    lookup_inversion_kernel,
)

__all__ = [
    "CostFunction",
    "CostType",
    "Monomial",
    "KernelSpec",
    "KERNELS",
    "PRODUCT_KERNELS",
    "SOLVE_KERNELS",
    "DIAGONAL_KERNELS",
    "UNARY_KERNELS",
    "get_kernel",
    "lookup_product_kernel",
    "lookup_solve_kernel",
    "lookup_inversion_kernel",
]

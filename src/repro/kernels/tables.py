"""Association-to-kernel lookup tables (paper Fig. 3).

Two tables map an association to its best-fitting (most specialized) kernel:
the *product* table, used when neither operand is inverted, and the *solve*
table, used when exactly one operand is inverted (two inverted operands are
impossible at kernel-assignment time thanks to the inversion-propagation
rewrites of Section IV, step 1).

The tables are indexed by *effective structures*: the structure of the
operand after accounting for transposition (a transposed lower-triangular
operand is upper-triangular).  For the solve table, the row is selected by
the coefficient matrix's structure *and* property, because symmetric
positive-definite coefficients get the cheaper ``PO*`` kernels.
"""

from __future__ import annotations

from repro.errors import CompilationError
from repro.ir.features import Property, Structure
from repro.kernels import spec
from repro.kernels.spec import KernelSpec


def _structure_class(structure: Structure) -> str:
    """Collapse the two triangular structures into one table index."""
    if structure is Structure.GENERAL:
        return "G"
    if structure is Structure.SYMMETRIC:
        return "S"
    if structure is Structure.DIAGONAL:
        return "D"
    return "L"  # lower or upper triangular


#: Product table of Fig. 3 (left): (left class, right class) -> kernel.
_PRODUCT_TABLE: dict[tuple[str, str], KernelSpec] = {
    ("G", "G"): spec.GEMM,
    ("S", "G"): spec.SYMM,
    ("G", "S"): spec.SYMM,
    ("L", "G"): spec.TRMM,
    ("G", "L"): spec.TRMM,
    ("S", "S"): spec.SYSYMM,
    ("L", "S"): spec.TRSYMM,
    ("S", "L"): spec.TRSYMM,
    ("L", "L"): spec.TRTRMM,
    # Diagonal extension: a diagonal operand turns any product into a
    # scaling, and two diagonals combine element-wise.
    ("D", "G"): spec.DIMM,
    ("G", "D"): spec.DIMM,
    ("D", "S"): spec.DIMM,
    ("S", "D"): spec.DIMM,
    ("D", "L"): spec.DIMM,
    ("L", "D"): spec.DIMM,
    ("D", "D"): spec.DIDIMM,
}

#: Solve table of Fig. 3 (right): (coefficient row, rhs class) -> kernel.
#: Rows: "G" general, "S" symmetric indefinite, "P" SPD, "L" triangular.
_SOLVE_TABLE: dict[tuple[str, str], KernelSpec] = {
    ("G", "G"): spec.GEGESV,
    ("G", "S"): spec.GESYSV,
    ("G", "L"): spec.GETRSV,
    ("S", "G"): spec.SYGESV,
    ("S", "S"): spec.SYSYSV,
    ("S", "L"): spec.SYTRSV,
    ("P", "G"): spec.POGESV,
    ("P", "S"): spec.POSYSV,
    ("P", "L"): spec.POTRSV,
    ("L", "G"): spec.TRSM,
    ("L", "S"): spec.TRSYSV,
    ("L", "L"): spec.TRTRSV,
    # Diagonal extension: diagonal coefficients divide element-wise; a
    # diagonal right-hand side is consumed by the triangular-RHS kernels
    # of the coefficient's row (a diagonal matrix is triangular), except
    # that a diagonal coefficient gets the dedicated DIDISV.
    ("D", "G"): spec.DIGESV,
    ("D", "S"): spec.DISYSV,
    ("D", "L"): spec.DITRSV,
    ("D", "D"): spec.DIDISV,
    ("G", "D"): spec.GETRSV,
    ("S", "D"): spec.SYTRSV,
    ("P", "D"): spec.POTRSV,
    ("L", "D"): spec.TRTRSV,
}


def lookup_product_kernel(left: Structure, right: Structure) -> KernelSpec:
    """Kernel for a product association with the given effective structures."""
    return _PRODUCT_TABLE[(_structure_class(left), _structure_class(right))]


def _coefficient_row(structure: Structure, prop: Property) -> str:
    if not prop.is_invertible:
        raise CompilationError(
            f"cannot solve with a coefficient whose property is {prop.value!r}"
        )
    if structure is Structure.DIAGONAL:
        return "D"
    if structure.is_triangular:
        return "L"
    if structure is Structure.SYMMETRIC:
        return "P" if prop is Property.SPD else "S"
    return "G"


def lookup_solve_kernel(
    coeff_structure: Structure,
    coeff_prop: Property,
    rhs_structure: Structure,
) -> KernelSpec:
    """Kernel for a solve association.

    ``coeff_structure``/``coeff_prop`` describe the inverted operand (the
    coefficient matrix of the linear system); ``rhs_structure`` is the
    effective structure of the other operand.
    """
    row = _coefficient_row(coeff_structure, coeff_prop)
    return _SOLVE_TABLE[(row, _structure_class(rhs_structure))]


def lookup_inversion_kernel(structure: Structure, prop: Property) -> KernelSpec:
    """Explicit-inversion fix-up kernel for a matrix with given features."""
    if not prop.is_invertible:
        raise CompilationError(
            f"cannot explicitly invert a matrix with property {prop.value!r}"
        )
    if structure is Structure.DIAGONAL:
        return spec.DIINV
    if structure.is_triangular:
        return spec.TRINV
    if structure is Structure.SYMMETRIC:
        return spec.POINV if prop is Property.SPD else spec.SYINV
    return spec.GEINV

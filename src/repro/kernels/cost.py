"""Kernel FLOP cost functions (paper Section III-C, Section V, Table I).

A kernel invocation associates an ``m x k`` operand with a ``k x n`` operand.
Its FLOP cost is a sum of monomials in ``(m, k, n)``; every cost function in
Table I fits this form exactly (lower-order terms are dropped, as in the
paper).  The theory of Section V classifies each cost function as:

* **Type I**: ``phi(a, b, c) = beta * a * b * c`` (a single trilinear
  monomial; on square operands this includes all the ``beta * m^3`` costs),
* **Type IIa**: ``phi(a, b, c) = beta1 * a^3 + beta2 * a^2 * c``, or
* **Type IIb**: ``phi(a, b, c) = beta1 * c^3 + beta2 * c^2 * a``.

Only kernels that solve a linear system with a *non-triangular* coefficient
and a *general rectangular* right-hand side are Type II; everything else is
Type I.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence


class CostType(enum.Enum):
    """Cost-function classification used by the theory of Section V."""

    TYPE_I = "I"
    TYPE_IIA = "IIa"
    TYPE_IIB = "IIb"
    UNARY = "unary"  # explicit inversion/transposition fix-ups (not in Table I)
    EXTENSION = "ext"  # sub-cubic extension kernels (diagonal scaling/solve)


@dataclass(frozen=True)
class Monomial:
    """``coeff * m^em * k^ek * n^en`` where (m, k, n) are the call dims."""

    coeff: Fraction
    em: int
    ek: int
    en: int

    def evaluate(self, m: int, k: int, n: int) -> float:
        return float(self.coeff) * m**self.em * k**self.ek * n**self.en

    def to_sympy(self, m, k, n):
        """Build the sympy expression of this monomial over given symbols."""
        import sympy

        return sympy.Rational(self.coeff.numerator, self.coeff.denominator) * (
            m**self.em * k**self.ek * n**self.en
        )

    def __str__(self) -> str:
        parts = []
        for base, exp in (("m", self.em), ("k", self.ek), ("n", self.en)):
            if exp == 1:
                parts.append(base)
            elif exp > 1:
                parts.append(f"{base}^{exp}")
        body = "*".join(parts) if parts else "1"
        return f"{self.coeff}*{body}"


def _mono(coeff, em: int, ek: int, en: int) -> Monomial:
    return Monomial(Fraction(coeff), em, ek, en)


@dataclass(frozen=True)
class CostFunction:
    """A FLOP cost: a sum of monomials plus its Section-V classification."""

    terms: tuple[Monomial, ...]
    cost_type: CostType

    def evaluate(self, m: int, k: int, n: int) -> float:
        """Numeric FLOP count of a call on an ``m x k`` by ``k x n`` pair."""
        return sum(t.evaluate(m, k, n) for t in self.terms)

    def to_sympy(self, m, k, n):
        """Symbolic FLOP count over sympy symbols ``m``, ``k``, ``n``."""
        import sympy

        return sympy.Add(*[t.to_sympy(m, k, n) for t in self.terms])

    @property
    def degree(self) -> int:
        return max((t.em + t.ek + t.en) for t in self.terms)

    def __str__(self) -> str:
        return " + ".join(str(t) for t in self.terms)


def trilinear(coeff) -> CostFunction:
    """``coeff * m * k * n`` — Type I (e.g. GEMM's ``2mkn``)."""
    return CostFunction((_mono(coeff, 1, 1, 1),), CostType.TYPE_I)


def cubed_left(coeff) -> CostFunction:
    """``coeff * m^3`` — Type I on necessarily-square calls."""
    return CostFunction((_mono(coeff, 3, 0, 0),), CostType.TYPE_I)


def square_left_times_n(coeff) -> CostFunction:
    """``coeff * m^2 * n`` — Type I (structured operand on the left)."""
    return CostFunction((_mono(coeff, 2, 0, 1),), CostType.TYPE_I)


def square_right_times_m(coeff) -> CostFunction:
    """``coeff * m * n^2`` — Type I (structured operand on the right)."""
    return CostFunction((_mono(coeff, 1, 0, 2),), CostType.TYPE_I)


def solve_left(c3, c2) -> CostFunction:
    """``c3 * m^3 + c2 * m^2 * n`` — Type IIa (coefficient on the left)."""
    return CostFunction(
        (_mono(c3, 3, 0, 0), _mono(c2, 2, 0, 1)),
        CostType.TYPE_IIA,
    )


def solve_right(c3, c2) -> CostFunction:
    """``c3 * n^3 + c2 * n^2 * m`` — Type IIb (coefficient on the right)."""
    return CostFunction(
        (_mono(c3, 0, 0, 3), _mono(c2, 1, 0, 2)),
        CostType.TYPE_IIB,
    )


def unary_cubed(coeff) -> CostFunction:
    """``coeff * m^3`` for explicit inversion fix-up kernels."""
    return CostFunction((_mono(coeff, 3, 0, 0),), CostType.UNARY)


def scaling(coeff) -> CostFunction:
    """``coeff * m * n`` — diagonal scaling/solve extension kernels."""
    return CostFunction((_mono(coeff, 1, 0, 1),), CostType.EXTENSION)


def linear(coeff) -> CostFunction:
    """``coeff * m`` — diagonal-times-diagonal extension kernels."""
    return CostFunction((_mono(coeff, 1, 0, 0),), CostType.EXTENSION)


ZERO_COST = CostFunction((), CostType.UNARY)


def evaluate_terms(
    terms: Sequence[Monomial], m: int, k: int, n: int
) -> float:
    """Evaluate a bare monomial sequence (hot path helper)."""
    return sum(t.evaluate(m, k, n) for t in terms)

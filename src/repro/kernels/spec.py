"""Kernel descriptors: the full kernel set of Table I plus fix-up kernels.

Each :class:`KernelSpec` records:

* the *kind* of kernel (matrix product, linear-system solve, or unary
  fix-up),
* which operand roles support implicit transposition (``op(X) = X, X^T`` in
  the paper's notation) — this drives the transposition-propagation rewrites
  of Section IV step 3,
* the FLOP cost function, resolved per call site because several kernels
  have side- or triangularity-dependent costs (e.g. ``TRTRMM`` costs
  ``m^3/3`` when both operands have the same triangularity and ``2m^3/3``
  otherwise), and
* whether the kernel exists in standard BLAS/LAPACK or is one of the
  paper's custom kernels (the gray rows of Table I).

Naming convention (Appendix B): four-letter names associate a general matrix
with a matrix of the structure named by the first two letters; six-letter
names associate two non-general matrices.  For solves, the first two letters
name the coefficient and the next two the right-hand side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.kernels.cost import (
    CostFunction,
    ZERO_COST,
    cubed_left,
    linear,
    scaling,
    solve_left,
    solve_right,
    square_left_times_n,
    square_right_times_m,
    trilinear,
    unary_cubed,
)

PRODUCT = "product"
SOLVE = "solve"
UNARY = "unary"


@dataclass(frozen=True)
class KernelSpec:
    """Static description of one kernel."""

    name: str
    kind: str  # PRODUCT, SOLVE, or UNARY
    description: str
    #: Whether the structured operand (product) / coefficient (solve) can be
    #: consumed transposed without a rewrite.
    structured_transposable: bool
    #: Whether the other operand (general/right-hand side) can be consumed
    #: transposed without a rewrite.
    other_transposable: bool
    #: Resolve the FLOP cost given the call configuration.  ``side`` is the
    #: side of the structured/coefficient operand; ``cheap`` selects the
    #: favourable cost case for kernels with two cost regimes.
    cost_resolver: Callable[[str, bool], CostFunction]
    #: True for standard BLAS/LAPACK functionality (white rows of Table I).
    in_blas: bool = False

    def cost(self, side: str = "left", cheap: bool = True) -> CostFunction:
        """FLOP cost function for a call with the given configuration."""
        if side not in ("left", "right"):
            raise ValueError(f"side must be 'left' or 'right', got {side!r}")
        return self.cost_resolver(side, cheap)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def _fixed(cost: CostFunction) -> Callable[[str, bool], CostFunction]:
    return lambda side, cheap: cost


def _sided(left: CostFunction, right: CostFunction) -> Callable[[str, bool], CostFunction]:
    return lambda side, cheap: left if side == "left" else right


def _cheap(cheap_cost: CostFunction, expensive: CostFunction) -> Callable[[str, bool], CostFunction]:
    return lambda side, cheap: cheap_cost if cheap else expensive


# ---------------------------------------------------------------------------
# Product kernels (left table of Fig. 3).
# ---------------------------------------------------------------------------

GEMM = KernelSpec(
    name="GEMM",
    kind=PRODUCT,
    description="C := alpha*op(A)*op(B) + beta*C (general * general)",
    structured_transposable=True,
    other_transposable=True,
    cost_resolver=_fixed(trilinear(2)),
    in_blas=True,
)

SYMM = KernelSpec(
    name="SYMM",
    kind=PRODUCT,
    description="C := alpha*A*B + beta*C with A symmetric (either side)",
    structured_transposable=False,  # irrelevant: S^T = S is rewritten away
    other_transposable=False,  # BLAS symm has no transpose flag on B
    cost_resolver=_sided(square_left_times_n(2), square_right_times_m(2)),
    in_blas=True,
)

TRMM = KernelSpec(
    name="TRMM",
    kind=PRODUCT,
    description="B := alpha*op(A)*B or B*op(A) with A triangular",
    structured_transposable=True,
    other_transposable=False,  # BLAS trmm has no transpose flag on B
    cost_resolver=_sided(square_left_times_n(1), square_right_times_m(1)),
    in_blas=True,
)

SYSYMM = KernelSpec(
    name="SYSYMM",
    kind=PRODUCT,
    description="C := alpha*A*B + beta*C with A, B symmetric (custom)",
    structured_transposable=False,
    other_transposable=False,
    cost_resolver=_fixed(cubed_left(2)),
)

TRSYMM = KernelSpec(
    name="TRSYMM",
    kind=PRODUCT,
    description="B := alpha*op(A)*B or B*op(A), A triangular, B symmetric (custom)",
    structured_transposable=True,
    other_transposable=False,
    cost_resolver=_fixed(cubed_left(1)),
)

TRTRMM = KernelSpec(
    name="TRTRMM",
    kind=PRODUCT,
    description="C := alpha*op(A)*op(B) with A, B triangular (custom)",
    structured_transposable=True,
    other_transposable=True,
    cost_resolver=_cheap(cubed_left("1/3"), cubed_left("2/3")),
)

# ---------------------------------------------------------------------------
# Solve kernels (right table of Fig. 3).  The first two letters name the
# coefficient matrix, the following letters the right-hand side.
# ---------------------------------------------------------------------------

GEGESV = KernelSpec(
    name="GEGESV",
    kind=SOLVE,
    description="Solve op(A)X = B or X op(A) = B, A and B general (custom)",
    structured_transposable=True,
    other_transposable=False,
    cost_resolver=_sided(solve_left("2/3", 2), solve_right("2/3", 2)),
)

GESYSV = KernelSpec(
    name="GESYSV",
    kind=SOLVE,
    description="Solve op(A)X = B or X op(A) = B, A general, B symmetric (custom)",
    structured_transposable=True,
    other_transposable=False,
    cost_resolver=_fixed(cubed_left("8/3")),
)

GETRSV = KernelSpec(
    name="GETRSV",
    kind=SOLVE,
    description="Solve op(A)X = B or X op(A) = B, A general, B triangular (custom)",
    structured_transposable=True,
    other_transposable=False,
    cost_resolver=_cheap(cubed_left(2), cubed_left("8/3")),
)

SYGESV = KernelSpec(
    name="SYGESV",
    kind=SOLVE,
    description="Solve AX = B or XA = B, A symmetric, B general (custom)",
    structured_transposable=False,
    other_transposable=False,
    cost_resolver=_sided(solve_left("1/3", 2), solve_right("1/3", 2)),
)

SYSYSV = KernelSpec(
    name="SYSYSV",
    kind=SOLVE,
    description="Solve AX = B or XA = B, A and B symmetric (custom)",
    structured_transposable=False,
    other_transposable=False,
    cost_resolver=_fixed(cubed_left("7/3")),
)

SYTRSV = KernelSpec(
    name="SYTRSV",
    kind=SOLVE,
    description="Solve AX = B or XA = B, A symmetric, B triangular (custom)",
    structured_transposable=False,
    other_transposable=False,
    cost_resolver=_fixed(cubed_left("7/3")),
)

POGESV = KernelSpec(
    name="POGESV",
    kind=SOLVE,
    description="Solve AX = B or XA = B, A SPD, B general (custom)",
    structured_transposable=False,
    other_transposable=False,
    cost_resolver=_sided(solve_left("1/3", 2), solve_right("1/3", 2)),
)

POSYSV = KernelSpec(
    name="POSYSV",
    kind=SOLVE,
    description="Solve AX = B or XA = B, A SPD, B symmetric (custom)",
    structured_transposable=False,
    other_transposable=False,
    cost_resolver=_fixed(cubed_left("7/3")),
)

POTRSV = KernelSpec(
    name="POTRSV",
    kind=SOLVE,
    description="Solve AX = B or XA = B, A SPD, B triangular (custom)",
    structured_transposable=False,
    other_transposable=False,
    cost_resolver=_cheap(cubed_left("5/3"), cubed_left("7/3")),
)

TRSM = KernelSpec(
    name="TRSM",
    kind=SOLVE,
    description="Solve op(A)X = alpha*B or X op(A) = alpha*B, A triangular, B general",
    structured_transposable=True,
    other_transposable=False,
    cost_resolver=_sided(square_left_times_n(1), square_right_times_m(1)),
    in_blas=True,
)

TRSYSV = KernelSpec(
    name="TRSYSV",
    kind=SOLVE,
    description="Solve op(A)X = B or X op(A) = B, A triangular, B symmetric (custom)",
    structured_transposable=True,
    other_transposable=False,
    cost_resolver=_fixed(cubed_left(1)),
)

TRTRSV = KernelSpec(
    name="TRTRSV",
    kind=SOLVE,
    description="Solve op(A)X = alpha*B or X op(A) = alpha*B, A and B triangular (custom)",
    structured_transposable=True,
    other_transposable=False,
    cost_resolver=_cheap(cubed_left("1/3"), cubed_left(1)),
)

# ---------------------------------------------------------------------------
# Diagonal extension kernels (beyond Table I).  The paper's grammar leaves
# the structure list open ("General | Symmetric | LowerTri | ...");  these
# kernels give diagonal operands their natural sub-cubic costs: scaling a
# dense operand is O(mn) and combining two diagonals is O(m).
# ---------------------------------------------------------------------------

DIMM = KernelSpec(
    name="DIMM",
    kind=PRODUCT,
    description="B := alpha*D*B or B*D with D diagonal (row/column scaling)",
    structured_transposable=True,
    other_transposable=True,
    cost_resolver=_fixed(scaling(1)),
)

DIDIMM = KernelSpec(
    name="DIDIMM",
    kind=PRODUCT,
    description="C := alpha*D1*D2 with both operands diagonal",
    structured_transposable=True,
    other_transposable=True,
    cost_resolver=_fixed(linear(1)),
)

DIGESV = KernelSpec(
    name="DIGESV",
    kind=SOLVE,
    description="Solve D X = B or X D = B, D diagonal, B general",
    structured_transposable=True,
    other_transposable=True,
    cost_resolver=_fixed(scaling(1)),
)

DISYSV = KernelSpec(
    name="DISYSV",
    kind=SOLVE,
    description="Solve D X = B or X D = B, D diagonal, B symmetric",
    structured_transposable=True,
    other_transposable=True,
    cost_resolver=_fixed(scaling(1)),
)

DITRSV = KernelSpec(
    name="DITRSV",
    kind=SOLVE,
    description="Solve D X = B or X D = B, D diagonal, B triangular",
    structured_transposable=True,
    other_transposable=True,
    cost_resolver=_fixed(scaling(1)),
)

DIDISV = KernelSpec(
    name="DIDISV",
    kind=SOLVE,
    description="Solve D1 X = D2 or X D1 = D2 with both operands diagonal",
    structured_transposable=True,
    other_transposable=True,
    cost_resolver=_fixed(linear(1)),
)

DIAGONAL_KERNELS: tuple[KernelSpec, ...] = (
    DIMM, DIDIMM, DIGESV, DISYSV, DITRSV, DIDISV,
)

# ---------------------------------------------------------------------------
# Unary fix-up kernels.  These are not part of Table I: they are used only in
# the rare events where an inversion or transposition is propagated all the
# way to the end result (Section IV), and for single-matrix chains.
# ---------------------------------------------------------------------------

GEINV = KernelSpec(
    name="GEINV",
    kind=UNARY,
    description="Explicit inversion of a general matrix (GETRF + GETRI)",
    structured_transposable=True,
    other_transposable=False,
    cost_resolver=_fixed(unary_cubed(2)),
)

SYINV = KernelSpec(
    name="SYINV",
    kind=UNARY,
    description="Explicit inversion of a symmetric indefinite matrix (SYTRF + SYTRI)",
    structured_transposable=False,
    other_transposable=False,
    cost_resolver=_fixed(unary_cubed(2)),
)

POINV = KernelSpec(
    name="POINV",
    kind=UNARY,
    description="Explicit inversion of an SPD matrix (POTRF + POTRI)",
    structured_transposable=False,
    other_transposable=False,
    cost_resolver=_fixed(unary_cubed(1)),
)

TRINV = KernelSpec(
    name="TRINV",
    kind=UNARY,
    description="Explicit inversion of a triangular matrix (TRTRI)",
    structured_transposable=True,
    other_transposable=False,
    cost_resolver=_fixed(unary_cubed("1/3")),
)

TRANSPOSE = KernelSpec(
    name="TRANSPOSE",
    kind=UNARY,
    description="Explicit out-of-place transposition (0 FLOPs, pure data movement)",
    structured_transposable=False,
    other_transposable=False,
    cost_resolver=_fixed(ZERO_COST),
)

COPY = KernelSpec(
    name="COPY",
    kind=UNARY,
    description="Out-of-place copy (0 FLOPs; used for single-matrix chains)",
    structured_transposable=False,
    other_transposable=False,
    cost_resolver=_fixed(ZERO_COST),
)


PRODUCT_KERNELS: tuple[KernelSpec, ...] = (GEMM, SYMM, TRMM, SYSYMM, TRSYMM, TRTRMM)
SOLVE_KERNELS: tuple[KernelSpec, ...] = (
    GEGESV, GESYSV, GETRSV,
    SYGESV, SYSYSV, SYTRSV,
    POGESV, POSYSV, POTRSV,
    TRSM, TRSYSV, TRTRSV,
)
DIINV = KernelSpec(
    name="DIINV",
    kind=UNARY,
    description="Explicit inversion of a diagonal matrix (element reciprocal)",
    structured_transposable=True,
    other_transposable=False,
    cost_resolver=_fixed(linear(1)),
)

UNARY_KERNELS: tuple[KernelSpec, ...] = (
    GEINV, SYINV, POINV, TRINV, DIINV, TRANSPOSE, COPY,
)

KERNELS: dict[str, KernelSpec] = {
    spec.name: spec
    for spec in (
        *PRODUCT_KERNELS,
        *SOLVE_KERNELS,
        *DIAGONAL_KERNELS,
        *UNARY_KERNELS,
    )
}


def get_kernel(name: str) -> KernelSpec:
    """Look a kernel up by name, raising ``KeyError`` with suggestions."""
    try:
        return KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {', '.join(sorted(KERNELS))}"
        ) from None

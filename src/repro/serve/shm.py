"""Zero-copy shared-memory operand transport for same-host clients.

Base64 ``.npy`` payloads move every operand through four copies (array ->
npy bytes -> base64 -> JSON line -> parse) — ~15 MB of JSON per 1024x1024
double.  For a client on the same host, the array bytes never need to
touch the socket at all: the client copies its operand into a
:mod:`multiprocessing.shared_memory` segment once and ships only the
segment *name* plus the dtype/shape header::

    {"encoding": "shm", "name": "psm_...", "shape": [1024, 1024],
     "dtype": "<f8"}

The server maps the segment and executes **directly on the view** (no
copy, read-only); the result travels back the same way, in a segment the
server creates and the client releases (explicitly via the ``release``
op, or by the TTL reaper if the client crashed).

Ownership protocol
------------------
* **Request segments** are created by the client.  The server only ever
  *attaches* (and closes its mapping after the request); the client
  unlinks its own segments once the response arrives.
* **Response segments** are created by the server and tracked in a
  :class:`SegmentReaper`.  A well-behaved client sends
  ``{"op": "release", "name": ...}`` after copying the result out; a
  crashed client's segments are unlinked when their TTL expires (the
  reaper runs opportunistically on every shm encode/release, so a busy
  server never accumulates orphans).

Everything degrades: :func:`shm_available` gates the whole transport, and
the serve front ends fall back to base64 npy whenever a segment cannot be
created or mapped — the payload carries its own ``encoding``, so clients
handle the fallback transparently.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

import numpy as np

__all__ = [
    "DEFAULT_TTL_SECONDS",
    "SegmentReaper",
    "create_segment_payload",
    "default_reaper",
    "open_segment",
    "read_segment_payload",
    "release_segment",
    "shm_available",
]

#: Orphaned response segments older than this are unlinked by the reaper.
DEFAULT_TTL_SECONDS = 120.0

#: Guard against absurd/hostile headers (shape products, segment sizes).
MAX_SEGMENT_BYTES = 1 << 34  # 16 GiB


def shm_available() -> bool:
    """Whether :mod:`multiprocessing.shared_memory` works on this host."""
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=1)
            probe.close()
            probe.unlink()
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


_AVAILABLE: Optional[bool] = None


def _shared_memory():
    from multiprocessing import shared_memory

    return shared_memory


def _payload_spec(payload: dict) -> tuple[str, tuple[int, ...], np.dtype]:
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError("'shm' array payload needs a string 'name'")
    shape = payload.get("shape")
    if not isinstance(shape, (list, tuple)) or not all(
        isinstance(d, int) and d >= 0 for d in shape
    ):
        raise ValueError("'shm' array payload needs an integer 'shape' list")
    try:
        dtype = np.dtype(payload.get("dtype", "<f8"))
    except TypeError as exc:
        raise ValueError(f"undecodable shm dtype: {exc}") from exc
    nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize if shape else dtype.itemsize
    if nbytes > MAX_SEGMENT_BYTES:
        raise ValueError(
            f"shm payload claims {nbytes} bytes, over the "
            f"{MAX_SEGMENT_BYTES}-byte bound"
        )
    return name, tuple(shape), dtype


def create_segment_payload(
    array: np.ndarray, *, reaper: Optional["SegmentReaper"] = None
) -> tuple[dict, "object"]:
    """Copy ``array`` into a fresh segment; returns ``(payload, segment)``.

    The one unavoidable copy of the transport (array -> segment); after it
    the bytes are never touched again until the peer maps them.  The
    caller owns the returned :class:`SharedMemory` unless a ``reaper`` is
    given, which then tracks it for TTL-based unlinking (the server's
    response-segment path).
    """
    shared_memory = _shared_memory()
    array = np.ascontiguousarray(array)
    segment = shared_memory.SharedMemory(
        create=True, size=max(1, array.nbytes)
    )
    try:
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        np.copyto(view, array)
        del view  # drop the buffer reference before any later close()
    except BaseException:
        segment.close()
        segment.unlink()
        raise
    payload = {
        "encoding": "shm",
        "name": segment.name,
        "shape": list(array.shape),
        "dtype": array.dtype.str,
    }
    if reaper is not None:
        reaper.track(segment)
    return payload, segment


def open_segment(payload: dict) -> tuple[np.ndarray, "object"]:
    """Map a segment payload; returns ``(read_only_view, segment)``.

    Zero-copy: the view aliases the shared bytes.  The caller must keep
    the segment object alive while the view is in use and ``close()`` it
    afterwards (never ``unlink()`` — the creator owns the name).
    """
    shared_memory = _shared_memory()
    name, shape, dtype = _payload_spec(payload)
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError as exc:
        raise ValueError(f"unknown shm segment {name!r}") from exc
    nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize if shape else dtype.itemsize
    if segment.size < nbytes:
        segment.close()
        raise ValueError(
            f"shm segment {name!r} holds {segment.size} bytes, "
            f"payload claims {nbytes}"
        )
    view = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
    view.flags.writeable = False
    return view, segment


def read_segment_payload(payload: dict) -> np.ndarray:
    """Copy a segment payload out into a private array and detach.

    The client-side convenience for reading a *response* segment: the
    returned array owns its memory, so the segment can be released
    immediately afterwards.
    """
    view, segment = open_segment(payload)
    try:
        return np.array(view, dtype=view.dtype, copy=True)
    finally:
        del view
        segment.close()


def release_segment(name: str) -> bool:
    """Unlink a segment by name (client freeing its own request segment)."""
    shared_memory = _shared_memory()
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - lost the race
        return False
    return True


class SegmentReaper:
    """TTL-tracked ownership of server-created response segments.

    ``track`` registers a segment with a deadline; ``release`` unlinks one
    eagerly (the ``release`` op); ``reap`` unlinks everything past its
    deadline.  ``reap`` is invoked opportunistically by the serve front
    ends on every shm encode and release, so a crashed client's segments
    survive at most one TTL beyond the next shm activity — and
    :meth:`close` unlinks everything at server shutdown.
    """

    def __init__(self, ttl: float = DEFAULT_TTL_SECONDS):
        if ttl <= 0:
            raise ValueError("ttl must be > 0 seconds")
        self.ttl = float(ttl)
        self._lock = threading.Lock()
        self._segments: dict[str, tuple[object, float]] = {}

    def track(self, segment, *, ttl: Optional[float] = None) -> None:
        deadline = time.monotonic() + (self.ttl if ttl is None else ttl)
        with self._lock:
            self._segments[segment.name] = (segment, deadline)

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)

    def release(self, name: str) -> bool:
        """Unlink one tracked segment now; False if unknown/already gone."""
        with self._lock:
            entry = self._segments.pop(name, None)
        if entry is None:
            return False
        self._unlink(entry[0])
        return True

    def reap(self, now: Optional[float] = None) -> int:
        """Unlink every segment past its deadline; returns the count."""
        now = time.monotonic() if now is None else now
        with self._lock:
            expired = [
                name
                for name, (_, deadline) in self._segments.items()
                if deadline <= now
            ]
            segments = [self._segments.pop(name)[0] for name in expired]
        for segment in segments:
            self._unlink(segment)
        return len(segments)

    def close(self) -> int:
        """Unlink everything still tracked (server shutdown)."""
        with self._lock:
            segments = [entry[0] for entry in self._segments.values()]
            self._segments.clear()
        for segment in segments:
            self._unlink(segment)
        return len(segments)

    @staticmethod
    def _unlink(segment) -> None:
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - peer beat us to it
            pass
        except Exception:  # pragma: no cover - platform quirks stay quiet
            pass


_DEFAULT_REAPER: Optional[SegmentReaper] = None
_DEFAULT_REAPER_LOCK = threading.Lock()


def default_reaper() -> SegmentReaper:
    """The process-wide reaper the serve front ends track responses in."""
    global _DEFAULT_REAPER
    with _DEFAULT_REAPER_LOCK:
        if _DEFAULT_REAPER is None:
            _DEFAULT_REAPER = SegmentReaper()
        return _DEFAULT_REAPER

"""Pluggable cache storage backends shared by sessions and the service.

PR 1's :class:`~repro.compiler.cache.CompilationCache` hard-wired its second
layer to one on-disk format.  This module extracts that storage seam into a
:class:`CacheBackend` protocol — ``load``/``store``/``keys``/``clear``/
``stats`` over :class:`~repro.compiler.cache.CacheEntry` — with three
implementations:

* :class:`InMemoryBackend` — a thread-safe LRU dict.  Handing the *same*
  instance to several sessions gives them a shared second-level cache
  (the single-process analogue of a memcached tier).
* :class:`DiskBackend` — the existing one-JSON-file-per-key layer
  (:class:`~repro.compiler.cache.DiskCache`), now cross-process safe via an
  advisory file lock around mutations and *bounded*: ``max_entries`` /
  ``max_bytes`` knobs prune least-recently-used entries (by mtime, which
  ``load`` refreshes) so a long-running service cannot grow the cache
  directory without limit.
* :class:`TieredBackend` — an ordered composition (e.g. shared memory in
  front of disk) that promotes hits into the faster tiers.

``CompilationCache(backend=...)`` accepts any of these (or your own object
satisfying the protocol) in place of its default disk layer.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Protocol, runtime_checkable

from repro.compiler.cache import CacheEntry, DiskCache, keys_by_recency
from repro.obs import get_registry

__all__ = [
    "CacheBackend",
    "DiskBackend",
    "InMemoryBackend",
    "TieredBackend",
    "default_backend",
    "keys_by_recency",
]

try:  # POSIX advisory locks; absent on some platforms (e.g. Windows).
    import fcntl
except ImportError:  # pragma: no cover - platform-dependent
    fcntl = None  # type: ignore[assignment]


@runtime_checkable
class CacheBackend(Protocol):
    """Storage contract behind :class:`CompilationCache` and the service.

    Implementations must be safe to call from multiple threads.  ``load``
    returns ``None`` on a miss (including corrupt or version-mismatched
    entries); ``store`` must be idempotent for identical content, because
    concurrent compilations of the same structure race to publish the same
    entry.
    """

    def load(self, key: str) -> Optional[CacheEntry]: ...

    def store(self, key: str, entry: CacheEntry) -> None: ...

    def keys(self) -> list[str]: ...

    def clear(self) -> int: ...

    def stats(self) -> dict[str, object]: ...


# ---------------------------------------------------------------------------
# In-memory backend.
# ---------------------------------------------------------------------------


class InMemoryBackend:
    """A thread-safe LRU mapping of key -> :class:`CacheEntry`.

    Unlike the per-session LRU inside :class:`CompilationCache`, one
    instance can be shared by any number of sessions/services in the same
    process, giving them a common second-level cache with one eviction
    policy.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("backend capacity must be >= 1")
        self.capacity = capacity
        self.evictions = 0
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._lock = threading.Lock()

    def load(self, key: str) -> Optional[CacheEntry]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        outcome = "hit" if entry is not None else "miss"
        get_registry().counter("cache.lookups", tier="memory", outcome=outcome).inc()
        return entry

    def store(self, key: str, entry: CacheEntry) -> None:
        evicted = 0
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        registry = get_registry()
        registry.counter("cache.stores", tier="memory").inc()
        if evicted:
            registry.counter("cache.evictions", tier="memory").inc(evicted)

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def keys_by_recency(self) -> list[str]:
        with self._lock:
            return list(reversed(self._entries))

    def clear(self) -> int:
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
            return removed

    def stats(self) -> dict[str, object]:
        with self._lock:
            return {
                "kind": "memory",
                "entries": len(self._entries),
                "capacity": self.capacity,
                "evictions": self.evictions,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries


# ---------------------------------------------------------------------------
# Disk backend: the PR-1 layer + inter-process locking + bounded eviction.
# ---------------------------------------------------------------------------


class DiskBackend(DiskCache):
    """Cross-process-safe, bounded variant of the on-disk cache layer.

    Mutations (``store``, ``clear``, pruning) serialize on an advisory
    ``.lock`` file in the cache directory, so concurrent writers in
    different processes cannot interleave a prune with a publish.  Reads
    stay lock-free — entry files are published with an atomic rename, so a
    reader sees either the whole entry or nothing.

    ``max_entries`` / ``max_bytes`` bound the directory; when either limit
    is exceeded after a store, least-recently-used entries (by mtime, which
    :meth:`load` refreshes on every hit) are pruned until both hold.  The
    entry just stored is never pruned, even when it alone exceeds
    ``max_bytes`` — evicting your own publish would turn the bound into a
    cache-disable switch.
    """

    LOCK_FILENAME = ".lock"

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ):
        super().__init__(directory)
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.pruned = 0

    @contextmanager
    def _interprocess_lock(self) -> Iterator[None]:
        """Advisory exclusive lock scoped to the cache directory.

        Degrades to a no-op where ``fcntl`` is unavailable; the atomic
        rename in ``store`` keeps individual entries intact there, only
        prune-vs-publish races lose precision.
        """
        if fcntl is None:  # pragma: no cover - platform-dependent
            yield
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.directory / self.LOCK_FILENAME, "a+") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def load(self, key: str) -> Optional[CacheEntry]:
        entry = super().load(key)
        if entry is not None:
            # Refresh recency for LRU-by-mtime pruning; best-effort (a
            # concurrent prune may have unlinked the file already).
            try:
                os.utime(self.path_for(key))
            except OSError:
                pass
        outcome = "hit" if entry is not None else "miss"
        get_registry().counter("cache.lookups", tier="disk", outcome=outcome).inc()
        return entry

    def store(self, key: str, entry: CacheEntry) -> None:
        with self._interprocess_lock():
            super().store(key, entry)
            pruned = self._prune(protect=key)
        registry = get_registry()
        registry.counter("cache.stores", tier="disk").inc()
        try:
            written = self.path_for(key).stat().st_size
        except OSError:
            written = 0
        if written:
            registry.counter("cache.bytes_written", tier="disk").inc(written)
        if pruned:
            registry.counter("cache.evictions", tier="disk").inc(pruned)

    def clear(self) -> int:
        with self._interprocess_lock():
            return super().clear()

    def _entries_by_age(self) -> list[tuple[float, int, Path]]:
        """(mtime, size, path) per entry, oldest first; vanished files skipped."""
        records = []
        for path in self.directory.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            records.append((stat.st_mtime, stat.st_size, path))
        records.sort(key=lambda record: record[0])
        return records

    def _prune(self, protect: Optional[str] = None) -> int:
        """Unlink oldest entries until both bounds hold (caller holds lock)."""
        if self.max_entries is None and self.max_bytes is None:
            return 0
        records = self._entries_by_age()
        total_bytes = sum(size for _, size, _ in records)
        count = len(records)
        protected = self.path_for(protect) if protect is not None else None
        removed = 0
        for _, size, path in records:
            over_entries = (
                self.max_entries is not None and count > self.max_entries
            )
            over_bytes = self.max_bytes is not None and total_bytes > self.max_bytes
            if not over_entries and not over_bytes:
                break
            if protected is not None and path == protected:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            count -= 1
            total_bytes -= size
        self.pruned += removed
        return removed

    def keys_by_recency(self) -> list[str]:
        return [path.stem for _, _, path in reversed(self._entries_by_age())]

    def stats(self) -> dict[str, object]:
        base = super().stats()
        base["kind"] = "disk"
        base["max_entries"] = self.max_entries
        base["max_bytes"] = self.max_bytes
        base["pruned"] = self.pruned
        return base


# ---------------------------------------------------------------------------
# Tiered composition.
# ---------------------------------------------------------------------------


class TieredBackend:
    """An ordered stack of backends (fastest first).

    ``load`` probes tiers in order and promotes a hit into every faster
    tier; ``store`` writes through to all tiers.  The canonical serving
    arrangement is ``TieredBackend(shared_memory, disk)`` — one process-wide
    :class:`InMemoryBackend` in front of a bounded :class:`DiskBackend`.
    """

    def __init__(self, *tiers: CacheBackend):
        if not tiers:
            raise ValueError("a tiered backend needs at least one tier")
        self.tiers: tuple[CacheBackend, ...] = tuple(tiers)

    def load(self, key: str) -> Optional[CacheEntry]:
        for level, tier in enumerate(self.tiers):
            entry = tier.load(key)
            if entry is not None:
                if level > 0:
                    get_registry().counter("cache.promotions", tier="tiered").inc()
                for faster in self.tiers[:level]:
                    faster.store(key, entry)
                return entry
        return None

    def store(self, key: str, entry: CacheEntry) -> None:
        for tier in self.tiers:
            tier.store(key, entry)

    def keys(self) -> list[str]:
        seen: dict[str, None] = {}
        for tier in self.tiers:
            seen.update(dict.fromkeys(tier.keys()))
        return list(seen)

    def keys_by_recency(self) -> list[str]:
        seen: dict[str, None] = {}
        for tier in self.tiers:
            seen.update(dict.fromkeys(keys_by_recency(tier)))
        return list(seen)

    def clear(self) -> int:
        return max(tier.clear() for tier in self.tiers)

    def stats(self) -> dict[str, object]:
        return {
            "kind": "tiered",
            "tiers": [tier.stats() for tier in self.tiers],
        }


def default_backend(
    cache_dir: Optional[str | os.PathLike] = None,
    *,
    shared_memory: Optional[InMemoryBackend] = None,
    max_entries: Optional[int] = None,
    max_bytes: Optional[int] = None,
) -> Optional[CacheBackend]:
    """The standard serving arrangement for the given knobs.

    ``None`` (no second layer) without a directory or shared memory tier; a
    bounded :class:`DiskBackend` for a bare directory; a
    :class:`TieredBackend` when a shared memory tier is supplied as well.
    """
    tiers: list[CacheBackend] = []
    if shared_memory is not None:
        tiers.append(shared_memory)
    if cache_dir is not None:
        tiers.append(
            DiskBackend(cache_dir, max_entries=max_entries, max_bytes=max_bytes)
        )
    if not tiers:
        return None
    if len(tiers) == 1:
        return tiers[0]
    return TieredBackend(*tiers)

"""Process-pool compilation workers: wire-level artifact exchange.

Compilation is CPU-bound Python, so a thread pool over *distinct*
structures is GIL-serialized.  ``CompileService(workers_mode="process")``
fans the expensive back half of compilation out to worker processes
instead; this module is the worker side of that contract.

The exchange is deliberately wire-level, not pickle-level: the parent
ships a JSON-clean request (the chain in the
:mod:`repro.codegen.serialize` dict form, the
:class:`~repro.compiler.pipeline.CompileOptions` as a plain dict, the
explicit training instances as lists when present) and the worker answers
with the :class:`~repro.compiler.program.CompiledProgram` **wire format**
(:meth:`~repro.compiler.program.CompiledProgram.dumps` text).  Nothing
that crosses the pipe is a live domain object, which keeps the protocol
identical to what a remote compile farm over sockets would speak — the
process pool is just the shortest possible wire.

Each worker process holds one long-lived
:class:`~repro.compiler.session.CompilerSession` (created lazily on first
job), so repeated structures within a worker hit its local cache.
"""

from __future__ import annotations

import os
from typing import Any, Optional

import numpy as np

_WORKER_SESSION = None


def _worker_session():
    """The per-process compilation session (lazy, reused across jobs)."""
    global _WORKER_SESSION
    if _WORKER_SESSION is None:
        from repro.compiler.session import CompilerSession

        _WORKER_SESSION = CompilerSession(cache_capacity=64)
    return _WORKER_SESSION


def encode_request(ctx, use_cache: bool = True) -> dict[str, Any]:
    """A JSON-clean compile request from a prepared :class:`PassContext`.

    The context's chain is already parsed and simplified by the front
    passes, so the request pins ``simplify=False`` — the worker replays
    exactly the back half the parent would have run, guaranteeing the
    returned artifact's chain is structurally identical to the parent's
    (a requirement for rebinding the result onto follower chains).
    """
    from repro.codegen.serialize import chain_to_dict
    from repro.compiler.program import options_metadata

    options = options_metadata(ctx.options)
    options["simplify"] = False
    payload: dict[str, Any] = {
        "chain": chain_to_dict(ctx.chain),
        "options": options,
        "use_cache": bool(use_cache),
    }
    if ctx.training_instances is not None:
        payload["training_instances"] = np.asarray(
            ctx.training_instances, dtype=np.float64
        ).tolist()
    return payload


def compile_job(request: dict[str, Any]) -> Any:
    """Run one compilation in the worker.

    Returns the artifact wire text (a plain string — the PR-4 protocol).
    When the request carries a ``"trace"`` context the parent is tracing:
    the worker compiles with tracing enabled under that remote parent, and
    the response becomes ``{"artifact": wire, "spans": [...]}`` so the
    worker-side spans (sharing the parent's trace ID) ride home for
    re-emission.  Untraced requests keep the string response unchanged.
    """
    trace_context = request.get("trace")
    if trace_context is None:
        return _compile(request)
    from repro.obs import trace as obs_trace

    was_enabled = obs_trace.enabled()
    obs_trace.enable()
    try:
        with obs_trace.capture() as spans:
            with obs_trace.continue_trace(trace_context):
                with obs_trace.span("procpool.compile", pid=os.getpid()):
                    wire = _compile(request)
    finally:
        if not was_enabled:
            obs_trace.disable()
    return {"artifact": wire, "spans": [item.to_dict() for item in spans]}


def _compile(request: dict[str, Any]) -> str:
    """The compilation itself; returns the artifact wire text."""
    from repro.codegen.serialize import chain_from_dict
    from repro.compiler.pipeline import CompileOptions

    options_payload = dict(request["options"])
    options_payload["size_range"] = tuple(options_payload["size_range"])
    # The fingerprint is recomputed from the shipped training data by the
    # session's option resolution; the parent's value rides along only as
    # provenance and must not preempt that.
    options_payload.pop("training_fingerprint", None)
    chain = chain_from_dict(request["chain"])
    training: Optional[np.ndarray] = None
    if request.get("training_instances") is not None:
        training = np.asarray(request["training_instances"], dtype=np.float64)
    session = _worker_session()
    generated = session.compile(
        chain,
        training_instances=training,
        use_cache=bool(request.get("use_cache", True)),
        **{
            name: value
            for name, value in options_payload.items()
            if name in session.OPTION_FIELDS
        },
    )
    return generated.to_program().dumps()


def initialize_worker() -> None:
    """Pool initializer: every worker imports the compiler stack at boot.

    Passed as ``ProcessPoolExecutor(initializer=...)`` so the import cost
    is paid during worker startup in *every* process — not only in
    whichever workers happen to pick up warm-up jobs.
    """
    _worker_session()


def warmup_job() -> int:
    """A no-op job; returns the worker's pid.

    ``CompileService.prestart`` submits one per pool slot purely to force
    the (lazy) spawn of all workers; the actual warm-up happens in
    :func:`initialize_worker` as each one boots.
    """
    return os.getpid()

"""Service counters: queue depth, coalesce rate, compile-latency percentiles.

The :class:`~repro.serve.service.CompileService` records one latency sample
per finished request (submit-to-result wall time) alongside monotonic
counters for the request outcomes.  Since the ``repro.obs`` layer, the
storage is a private :class:`~repro.obs.MetricsRegistry` per service —
counters, a queue-depth gauge, and a bounded latency histogram — mounted
into the process-wide registry as a ``serve`` collector scope, so the
global ``stats``/Prometheus snapshot sees every live service while this
class keeps its zero-based, per-service public API: the same attributes
(``requests``, ``coalesced``, ...), the same :meth:`snapshot` keys, and
the same ``__str__`` as before the migration.  The JSON-lines front end
(``{"op": "stats"}``), ``repro serve --stats``, and the throughput
benchmark all read the same numbers unchanged.

``percentile`` lives in :mod:`repro.obs.registry` now (with the
nearest-rank fix) and is re-exported here for compatibility.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs import MetricsRegistry, get_registry, percentile

__all__ = [
    "ServiceMetrics",
    "connection_closed",
    "connection_opened",
    "percentile",
    "record_wire",
]


# -- front-end wire accounting (process-wide registry) -----------------------
#
# Unlike the per-service counters below, wire traffic belongs to the front
# ends (stdio / tcp / async / http), which may outnumber or outlive any one
# CompileService — so these report straight into the global registry:
# ``serve.wire_bytes{direction,transport}`` counters plus a
# ``serve.connections{transport}`` gauge of currently-open connections.
# Metrics are looked up per call (a dict get under the registry lock) so the
# testing ``reset()`` hook never leaves stale cached objects behind.

def record_wire(transport: str, direction: str, nbytes: int) -> None:
    """Account ``nbytes`` of protocol traffic (``direction``: in | out)."""
    get_registry().counter(
        "serve.wire_bytes", direction=direction, transport=transport
    ).inc(int(nbytes))


def connection_opened(transport: str) -> None:
    get_registry().gauge("serve.connections", transport=transport).add(1)


def connection_closed(transport: str) -> None:
    get_registry().gauge("serve.connections", transport=transport).add(-1)


class ServiceMetrics:
    """Thread-safe counters + a sliding latency window for one service.

    Counters
    --------
    ``requests``
        Every accepted :meth:`CompileService.submit` call.
    ``compiled``
        Leader requests that actually ran the expensive back pipeline
        (pipeline executions — the number bench_serve reports).
    ``cache_hits``
        Leader requests answered by the session cache without a pipeline
        execution; ``compiled + cache_hits + coalesced + rejected +
        errors`` covers the terminal outcomes (an error on a leader counts
        only in ``errors``).
    ``coalesced``
        Requests attached to an identical in-flight compilation (served by
        a rebind of the leader's result).
    ``rejected``
        Requests refused because the bounded queue was full.
    ``errors``
        Requests whose future resolved with an exception.
    """

    #: Sliding-window size for latency percentiles.
    WINDOW = 2048

    def __init__(self, window: int = WINDOW):
        self._registry = MetricsRegistry("serve")
        self._requests = self._registry.counter("requests")
        self._compiled = self._registry.counter("compiled")
        self._cache_hits = self._registry.counter("cache_hits")
        self._coalesced = self._registry.counter("coalesced")
        self._rejected = self._registry.counter("rejected")
        self._errors = self._registry.counter("errors")
        self._latency = self._registry.histogram("latency_seconds", window=window)
        #: Callable returning the live queue depth (set by the service).
        self.queue_depth_probe: Optional[Callable[[], int]] = None
        self._registry.gauge("queue_depth", probe=self.queue_depth)
        #: Scope name this instance got in the global registry snapshot
        #: ("serve", "serve#2", ... — one per live service, weakly held).
        self.scope = get_registry().register_collector("serve", self.snapshot)

    # -- recording (called by the service) ----------------------------------

    def record_request(self) -> None:
        self._requests.inc()

    def record_compiled(self) -> None:
        self._compiled.inc()

    def record_cache_hit(self) -> None:
        self._cache_hits.inc()

    def record_coalesced(self) -> None:
        self._coalesced.inc()

    def record_rejected(self) -> None:
        self._rejected.inc()

    def record_error(self) -> None:
        self._errors.inc()

    def record_latency(self, seconds: float) -> None:
        self._latency.observe(seconds)

    # -- reading ------------------------------------------------------------

    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def compiled(self) -> int:
        return self._compiled.value

    @property
    def cache_hits(self) -> int:
        return self._cache_hits.value

    @property
    def coalesced(self) -> int:
        return self._coalesced.value

    @property
    def rejected(self) -> int:
        return self._rejected.value

    @property
    def errors(self) -> int:
        return self._errors.value

    @property
    def coalesce_rate(self) -> float:
        """Fraction of accepted requests served by coalescing."""
        accepted = self._requests.value - self._rejected.value
        return self._coalesced.value / accepted if accepted else 0.0

    def queue_depth(self) -> int:
        probe = self.queue_depth_probe
        return probe() if probe is not None else 0

    def latency_percentile(self, p: float) -> float:
        return self._latency.percentile(p)

    def snapshot(self) -> dict[str, float]:
        """One dict of every counter and derived rate (keys are stable
        across the registry migration — consumers pin them)."""
        latency = self._latency.snapshot()
        counters = {
            "requests": self.requests,
            "compiled": self.compiled,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "errors": self.errors,
        }
        counters["coalesce_rate"] = round(self.coalesce_rate, 4)
        counters["queue_depth"] = self.queue_depth()
        counters["latency_samples"] = latency["window_count"]
        counters["p50_ms"] = round(1e3 * latency["p50"], 3)
        counters["p99_ms"] = round(1e3 * latency["p99"], 3)
        return counters

    def __str__(self) -> str:
        snap = self.snapshot()
        return (
            f"requests={snap['requests']} compiled={snap['compiled']} "
            f"cache_hits={snap['cache_hits']} "
            f"coalesced={snap['coalesced']} rejected={snap['rejected']} "
            f"errors={snap['errors']} coalesce_rate={snap['coalesce_rate']:.1%} "
            f"queue_depth={snap['queue_depth']} "
            f"p50={snap['p50_ms']:.2f}ms p99={snap['p99_ms']:.2f}ms"
        )

"""Service counters: queue depth, coalesce rate, compile-latency percentiles.

The :class:`~repro.serve.service.CompileService` records one latency sample
per finished request (submit-to-result wall time) into a bounded sliding
window, alongside monotonic counters for the request outcomes.  Everything
is guarded by one lock and snapshotted as a plain dict, so the JSON-lines
front end (``{"op": "stats"}``), ``repro serve --stats``, and the
throughput benchmark all read the same numbers.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Optional


def percentile(samples: list[float], p: float) -> float:
    """Nearest-rank percentile of ``samples`` (``p`` in [0, 100]).

    Returns 0.0 for an empty sample set — the stats endpoint must answer
    before the first compilation finishes.
    """
    if not samples:
        return 0.0
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(p / 100.0 * len(ordered)) - 1))
    return ordered[rank]


class ServiceMetrics:
    """Thread-safe counters + a sliding latency window for one service.

    Counters
    --------
    ``requests``
        Every accepted :meth:`CompileService.submit` call.
    ``compiled``
        Leader requests that actually ran the expensive back pipeline
        (pipeline executions — the number bench_serve reports).
    ``cache_hits``
        Leader requests answered by the session cache without a pipeline
        execution; ``compiled + cache_hits + coalesced + rejected +
        errors`` covers the terminal outcomes (an error on a leader counts
        only in ``errors``).
    ``coalesced``
        Requests attached to an identical in-flight compilation (served by
        a rebind of the leader's result).
    ``rejected``
        Requests refused because the bounded queue was full.
    ``errors``
        Requests whose future resolved with an exception.
    """

    #: Sliding-window size for latency percentiles.
    WINDOW = 2048

    def __init__(self, window: int = WINDOW):
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=window)
        self.requests = 0
        self.compiled = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.rejected = 0
        self.errors = 0
        #: Callable returning the live queue depth (set by the service).
        self.queue_depth_probe: Optional[Callable[[], int]] = None

    # -- recording (called by the service) ----------------------------------

    def record_request(self) -> None:
        with self._lock:
            self.requests += 1

    def record_compiled(self) -> None:
        with self._lock:
            self.compiled += 1

    def record_cache_hit(self) -> None:
        with self._lock:
            self.cache_hits += 1

    def record_coalesced(self) -> None:
        with self._lock:
            self.coalesced += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(seconds)

    # -- reading ------------------------------------------------------------

    @property
    def coalesce_rate(self) -> float:
        """Fraction of accepted requests served by coalescing."""
        with self._lock:
            accepted = self.requests - self.rejected
            return self.coalesced / accepted if accepted else 0.0

    def queue_depth(self) -> int:
        probe = self.queue_depth_probe
        return probe() if probe is not None else 0

    def latency_percentile(self, p: float) -> float:
        with self._lock:
            samples = list(self._latencies)
        return percentile(samples, p)

    def snapshot(self) -> dict[str, float]:
        """One consistent dict of every counter and derived rate."""
        with self._lock:
            samples = list(self._latencies)
            counters = {
                "requests": self.requests,
                "compiled": self.compiled,
                "cache_hits": self.cache_hits,
                "coalesced": self.coalesced,
                "rejected": self.rejected,
                "errors": self.errors,
            }
            accepted = self.requests - self.rejected
            rate = self.coalesced / accepted if accepted else 0.0
        counters["coalesce_rate"] = round(rate, 4)
        counters["queue_depth"] = self.queue_depth()
        counters["latency_samples"] = len(samples)
        counters["p50_ms"] = round(1e3 * percentile(samples, 50.0), 3)
        counters["p99_ms"] = round(1e3 * percentile(samples, 99.0), 3)
        return counters

    def __str__(self) -> str:
        snap = self.snapshot()
        return (
            f"requests={snap['requests']} compiled={snap['compiled']} "
            f"cache_hits={snap['cache_hits']} "
            f"coalesced={snap['coalesced']} rejected={snap['rejected']} "
            f"errors={snap['errors']} coalesce_rate={snap['coalesce_rate']:.1%} "
            f"queue_depth={snap['queue_depth']} "
            f"p50={snap['p50_ms']:.2f}ms p99={snap['p99_ms']:.2f}ms"
        )

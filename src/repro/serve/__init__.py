"""repro.serve — the compilation service layer.

Turns the :class:`~repro.compiler.session.CompilerSession` into a
long-lived concurrent server: a bounded request queue and worker pool with
request coalescing (:mod:`repro.serve.service`), pluggable shared cache
backends (:mod:`repro.serve.backends`), service metrics
(:mod:`repro.serve.metrics`), a stdlib-only JSON-lines front end
(:mod:`repro.serve.frontend`, exposed as the ``repro serve`` CLI command),
its asyncio sibling multiplexing thousands of connections on one event
loop (:mod:`repro.serve.aserve`, ``repro serve --async`` /
``--http-port``), and a zero-copy shared-memory operand transport for
same-host clients (:mod:`repro.serve.shm`).
"""

from repro.serve.aserve import AsyncCompileServer, make_async_server
from repro.serve.backends import (
    CacheBackend,
    DiskBackend,
    InMemoryBackend,
    TieredBackend,
    default_backend,
)
from repro.serve.frontend import (
    CompileServer,
    decode_array,
    encode_array,
    handle_request,
    make_tcp_server,
    serve_stream,
)
from repro.serve.metrics import ServiceMetrics, percentile
from repro.serve.service import CompileService, default_worker_count
from repro.serve.shm import SegmentReaper, shm_available

__all__ = [
    "CacheBackend",
    "DiskBackend",
    "InMemoryBackend",
    "TieredBackend",
    "default_backend",
    "AsyncCompileServer",
    "make_async_server",
    "CompileServer",
    "decode_array",
    "encode_array",
    "handle_request",
    "make_tcp_server",
    "serve_stream",
    "ServiceMetrics",
    "percentile",
    "CompileService",
    "default_worker_count",
    "SegmentReaper",
    "shm_available",
]

"""The concurrent compilation service: queue + worker pool + coalescing.

The paper's model (Fig. 1) is a code generator invoked once per chain
*shape* with run-time dispatch per instance — exactly the shape of a
long-lived service that compiles on demand and answers many callers.
:class:`CompileService` turns a :class:`~repro.compiler.session.CompilerSession`
into that service:

* ``submit`` runs the cheap front half of compilation (parse + simplify +
  structural key, :meth:`CompilerSession.prepare`) inline on the caller
  thread and returns a :class:`~concurrent.futures.Future`;
  ``submit_many``/``compile_many`` do the same for a batch, grouping
  structurally identical requests *before* enqueueing so a batch of N
  duplicates costs one queue slot and one pipeline run;
* a **bounded** request queue feeds a pool of worker threads that run the
  expensive back half (:meth:`CompilerSession.finish`); a full queue fails
  the future with :class:`~repro.errors.ServiceOverloadedError` instead of
  buffering unboundedly (back-pressure, not latency collapse);
* with ``workers_mode="process"``, the worker threads delegate the
  CPU-bound pipeline to a process pool and receive the result as a
  serialized :class:`~repro.compiler.program.CompiledProgram` artifact
  over the pipe (:mod:`repro.serve.procpool`), sidestepping the GIL on
  workloads of *distinct* structures; coalescing, the bounded queue, and
  the session cache work identically in both modes (the artifact is
  rebound to each caller's chain in-parent, exactly like a cache hit);
* requests are **coalesced** on their compilation key (the
  :mod:`repro.ir.structural` structural key + options + pipeline
  fingerprint): while a compilation for a key is in flight, further
  requests for the same key attach to it as *followers* and are answered
  by rebinding the leader's result to their own chain — N concurrent
  requests for structurally identical chains trigger exactly one pipeline
  execution and N rebinds.

Completed compilations are kept in a bounded handle registry so the
JSON-lines front end (:mod:`repro.serve.frontend`) can answer ``dispatch``
requests (size vector -> chosen variant) without recompiling.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.errors import ServiceClosedError, ServiceOverloadedError
from repro.compiler.dispatch import CostEstimator
from repro.compiler.pipeline import PassContext
from repro.compiler.session import CompilerSession
from repro.obs import get_registry
from repro.obs import trace as obs_trace
from repro.serve.metrics import ServiceMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import GeneratedCode


def default_worker_count() -> int:
    """Worker-pool default: enough to overlap compilations, bounded."""
    return max(2, min(8, (os.cpu_count() or 2)))


@dataclass
class _Request:
    """One submitted compilation: its prepared context and its future."""

    ctx: PassContext
    future: Future
    submitted: float  # perf_counter timestamp, for latency metrics


@dataclass
class _Inflight:
    """A queued compilation: the leader plus coalesced followers."""

    key: str
    leader: _Request
    followers: list[_Request] = field(default_factory=list)
    use_cache: bool = True


_SHUTDOWN = object()


class CompileService:
    """A thread-safe compile server over one :class:`CompilerSession`.

    Parameters
    ----------
    session:
        The session to compile in (its cache, pipeline, and option
        defaults).  A fresh one is created when omitted.
    workers:
        Worker-thread count (defaults to :func:`default_worker_count`).
        In process mode this is also the process-pool size.
    workers_mode:
        ``"thread"`` (default): compilations run on the worker threads.
        ``"process"``: worker threads delegate cache-missing compilations
        to a process pool and ship the artifacts back over pipes
        (:mod:`repro.serve.procpool`) — the GIL-free mode for heavy
        fan-out over distinct structures.
    mp_context:
        Multiprocessing start method for process mode (default
        ``"spawn"``: slower startup, but safe with the service's own
        threads; see :meth:`prestart`).
    max_queue:
        Bound on *distinct* queued compilations.  Coalesced followers ride
        along with their leader and never occupy a slot, so the bound
        limits compile work, not client count.
    warm:
        Preload the session's cache backend into the in-memory LRU on
        startup (:meth:`CompilerSession.warm`); the count is reported in
        :meth:`stats` as ``warmed``.
    registry_capacity:
        How many completed compilations to keep addressable by handle for
        ``dispatch`` requests (LRU-bounded).
    """

    def __init__(
        self,
        session: Optional[CompilerSession] = None,
        *,
        workers: Optional[int] = None,
        workers_mode: str = "thread",
        mp_context: str = "spawn",
        max_queue: int = 256,
        warm: bool = True,
        registry_capacity: int = 256,
        metrics: Optional[ServiceMetrics] = None,
    ):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if registry_capacity < 1:
            raise ValueError("registry_capacity must be >= 1")
        if workers_mode not in ("thread", "process"):
            raise ValueError(
                f"workers_mode must be 'thread' or 'process', got {workers_mode!r}"
            )
        self.session = session if session is not None else CompilerSession(cache_capacity=256)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.warmed = self.session.warm() if warm else 0
        self.workers_mode = workers_mode
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self.metrics.queue_depth_probe = self._queue.qsize
        self._lock = threading.Lock()
        self._inflight: dict[str, _Inflight] = {}
        self._registry: OrderedDict[str, "GeneratedCode"] = OrderedDict()
        self._registry_capacity = registry_capacity
        self._closed = False
        count = workers if workers is not None else default_worker_count()
        if count < 1:
            raise ValueError("workers must be >= 1")
        self._pool = None
        self._pool_size = 0
        self._default_fingerprint: Optional[str] = None
        if workers_mode == "process":
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            from repro.serve import procpool

            self._pool = ProcessPoolExecutor(
                max_workers=count,
                mp_context=multiprocessing.get_context(mp_context),
                # Every worker imports the compiler stack as it boots, so
                # warm-up does not depend on which worker drains which job.
                initializer=procpool.initialize_worker,
            )
            self._pool_size = count
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(count)
        ]
        for worker in self._workers:
            worker.start()

    def prestart(self) -> None:
        """Spin the process pool's workers up before serving traffic.

        Spawn-mode workers boot lazily (interpreter + numpy + repro
        imports via the pool initializer, ~seconds); a long-lived service
        calls this once at startup so the first compilations are not
        taxed.  Submitting one trivial job per slot forces every worker
        to spawn; the imports happen in each worker's initializer
        regardless of who drains the jobs.  No-op in thread mode.
        """
        if self._pool is None:
            return
        from repro.serve import procpool

        futures = [
            self._pool.submit(procpool.warmup_job)
            for _ in range(self._pool_size)
        ]
        for future in futures:
            future.result()

    # -- client API ----------------------------------------------------------

    def submit(
        self,
        chain,
        *,
        training_instances: Optional[np.ndarray] = None,
        cost_estimator: Optional[CostEstimator] = None,
        use_cache: bool = True,
        **overrides,
    ) -> Future:
        """Queue one compilation; returns a future of ``GeneratedCode``.

        The keyword knobs match :meth:`CompilerSession.compile`.  The
        future fails with :class:`ServiceOverloadedError` when the bounded
        queue is full and with the original compilation error otherwise;
        parse/validation errors surface through the future too, so callers
        handle one failure channel.
        """
        future: Future = Future()
        self.metrics.record_request()
        if self._closed:  # fast path; the authoritative check is under _lock
            self._fail(future, ServiceClosedError("service is closed"))
            return future
        try:
            ctx, key = self.session.prepare(
                chain,
                training_instances=training_instances,
                cost_estimator=cost_estimator,
                **overrides,
            )
        except Exception as exc:
            self.metrics.record_error()
            self._fail(future, exc)
            return future
        request = _Request(ctx=ctx, future=future, submitted=time.perf_counter())
        # The registry address of this compilation, for later `dispatch`
        # requests (None for private, uncached compilations).
        future.handle = key if use_cache else None  # type: ignore[attr-defined]
        if not use_cache:
            # Uncacheable requests cannot be coalesced (each caller asked
            # for a private compilation); they still share the queue bound.
            record = _Inflight(key="", leader=request, use_cache=False)
            with self._lock:
                outcome = self._admit(record)
        else:
            with self._lock:
                # Re-check closed under the lock: close() flips the flag
                # under this same lock *before* enqueueing the worker
                # shutdown sentinels, so anything admitted here is ordered
                # ahead of the sentinels and is guaranteed to be drained —
                # no future can be parked on an unserviced queue.
                if self._closed:
                    outcome = "closed"
                else:
                    inflight = self._inflight.get(key)
                    if inflight is not None:
                        inflight.followers.append(request)
                        self.metrics.record_coalesced()
                        return future
                    record = _Inflight(key=key, leader=request)
                    outcome = self._admit(record)
                    if outcome == "ok":
                        self._inflight[key] = record
        if outcome == "closed":
            self._fail(future, ServiceClosedError("service is closed"))
        elif outcome == "full":
            self.metrics.record_rejected()
            self._fail(
                future,
                ServiceOverloadedError(
                    f"compile queue is full ({self._queue.maxsize} pending)"
                ),
            )
        return future

    def compile(self, chain, *, timeout: Optional[float] = None, **overrides):
        """Synchronous convenience: ``submit(...).result(timeout)``."""
        return self.submit(chain, **overrides).result(timeout=timeout)

    def map(self, chains: Sequence, *, timeout: Optional[float] = None, **overrides) -> list:
        """Submit a batch and wait; results match the input order."""
        futures = [self.submit(chain, **overrides) for chain in chains]
        return [future.result(timeout=timeout) for future in futures]

    def submit_many(
        self,
        chains: Sequence,
        *,
        training_instances: Optional[np.ndarray] = None,
        cost_estimator: Optional[CostEstimator] = None,
        use_cache: bool = True,
        **overrides,
    ) -> list[Future]:
        """Queue a batch, grouped by structural identity *before* enqueueing.

        All chains are prepared inline, grouped on their compilation key,
        and each group is admitted as one queue record — N structurally
        identical requests cost one queue slot and one pipeline execution,
        with the other N - 1 attached as coalesced followers up front.
        Unlike per-request :meth:`submit`, grouping holds even with
        ``use_cache=False`` (the batch is one caller's explicit unit, so
        duplicates share the private compilation) and even when a leader
        finishes before the batch is fully submitted.  Futures match the
        input order; a chain that fails to parse fails only its own future.
        """
        futures: list[Future] = [Future() for _ in chains]
        # Fast path, as in submit(): skip the per-chain front-half work when
        # already closed (the authoritative re-check runs under _lock below).
        if self._closed:
            for future in futures:
                self.metrics.record_request()
                self._fail(future, ServiceClosedError("service is closed"))
            return futures
        prepared: list[Optional[tuple[PassContext, str]]] = []
        for chain, future in zip(chains, futures):
            self.metrics.record_request()
            try:
                prepared.append(
                    self.session.prepare(
                        chain,
                        training_instances=training_instances,
                        cost_estimator=cost_estimator,
                        **overrides,
                    )
                )
            except Exception as exc:
                self.metrics.record_error()
                self._fail(future, exc)
                prepared.append(None)

        groups: dict[str, list[int]] = {}
        for index, prep in enumerate(prepared):
            if prep is not None:
                groups.setdefault(prep[1], []).append(index)

        for key, indices in groups.items():
            now = time.perf_counter()
            requests = [
                _Request(
                    ctx=prepared[i][0], future=futures[i], submitted=now
                )
                for i in indices
            ]
            for i in indices:
                futures[i].handle = key if use_cache else None  # type: ignore[attr-defined]
            outcome = "ok"
            with self._lock:
                if self._closed:
                    outcome = "closed"
                else:
                    inflight = (
                        self._inflight.get(key) if use_cache else None
                    )
                    if inflight is not None:
                        # The whole group rides an already in-flight
                        # compilation for this key: zero queue slots.
                        inflight.followers.extend(requests)
                        for _ in requests:
                            self.metrics.record_coalesced()
                        continue
                    record = _Inflight(
                        key=key if use_cache else "",
                        leader=requests[0],
                        followers=requests[1:],
                        use_cache=use_cache,
                    )
                    outcome = self._admit(record)
                    if outcome == "ok":
                        if use_cache:
                            self._inflight[key] = record
                        for _ in requests[1:]:
                            self.metrics.record_coalesced()
            if outcome == "closed":
                for request in requests:
                    self._fail(
                        request.future, ServiceClosedError("service is closed")
                    )
            elif outcome == "full":
                for request in requests:
                    self.metrics.record_rejected()
                    self._fail(
                        request.future,
                        ServiceOverloadedError(
                            f"compile queue is full ({self._queue.maxsize} pending)"
                        ),
                    )
        return futures

    def compile_many(
        self, chains: Sequence, *, timeout: Optional[float] = None, **overrides
    ) -> list:
        """Batch :meth:`compile`: coalescing-aware submission, then wait.

        ``submit_many`` groups structurally identical chains before they
        touch the bounded queue; results match the input order.
        """
        futures = self.submit_many(chains, **overrides)
        return [future.result(timeout=timeout) for future in futures]

    # -- dispatch registry ---------------------------------------------------

    def lookup(self, handle: str) -> Optional["GeneratedCode"]:
        """The completed compilation registered under ``handle``, if any."""
        with self._lock:
            generated = self._registry.get(handle)
            if generated is not None:
                self._registry.move_to_end(handle)
            return generated

    def dispatch(self, handle: str, sizes: Sequence[int]):
        """Select the best variant for an instance of a compiled handle.

        Returns ``(variant, cost)``; raises :class:`KeyError` for an
        unknown (or registry-evicted) handle.  The registry keeps one
        live :class:`~repro.runtime.Dispatcher` per handle, so repeated
        dispatches of the same sizes answer from its memo without a cost
        sweep.
        """
        generated = self._require(handle)
        return generated.select(sizes)

    def execute(self, handle: str, arrays: Sequence[np.ndarray]):
        """Dispatch *and run* one instance against a compiled handle.

        Returns a :class:`~repro.runtime.DispatchOutcome` (sizes, variant,
        cost, result).  Sizes are inferred — and shapes thereby validated —
        exactly once; a warm handle replays its memoized execution plan —
        on pooled intermediate buffers (``reuse_buffers``), so steady-state
        serving traffic skips the per-step allocations.
        Raises :class:`KeyError` for an unknown handle.
        """
        generated = self._require(handle)
        return generated.dispatcher.run(arrays, reuse_buffers=True)

    def _require(self, handle: str) -> "GeneratedCode":
        generated = self.lookup(handle)
        if generated is None:
            raise KeyError(f"unknown compilation handle {handle!r}")
        return generated

    # -- lifecycle -----------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Service metrics + session cache counters, JSON-ready.

        The ``obs`` key is the process-wide :mod:`repro.obs` registry
        snapshot — service counters (this service's scope plus any other
        live services), cache tier hit/miss, pipeline pass timings, memo
        stats, and per-kernel execution histograms — so one ``stats`` op
        answers for every layer.
        """
        with self._lock:
            registry_entries = len(self._registry)
            inflight = len(self._inflight)
            dispatchers = [
                generated.dispatcher for generated in self._registry.values()
            ]
        # Aggregate per-backend execution counts over the live registry:
        # how many instances each concrete backend actually ran (the
        # observable record of ``auto``'s measured choices), plus the most
        # recent replay wall time across all handles.
        executions: dict[str, int] = {}
        last_execute_seconds: Optional[float] = None
        last_execute_at: Optional[float] = None
        for dispatcher in dispatchers:
            memo = dispatcher.memo_stats()
            for name, count in memo["executions"].items():
                executions[name] = executions.get(name, 0) + count
            stamp = dispatcher.last_execute_at
            if stamp is not None and (
                last_execute_at is None or stamp > last_execute_at
            ):
                last_execute_at = stamp
                last_execute_seconds = memo["last_execute_seconds"]
        stats: dict[str, object] = {
            "service": self.metrics.snapshot(),
            "cache": self.session.cache_stats().as_dict(),
            "warmed": self.warmed,
            "workers": len(self._workers),
            "workers_mode": self.workers_mode,
            "inflight": inflight,
            "registry_entries": registry_entries,
            "execution": {
                "backend": self.session.options.backend,
                "executions": executions,
                "last_execute_seconds": last_execute_seconds,
            },
            "obs": get_registry().snapshot(),
        }
        last = self.session.last_context
        if last is not None and (last.timings or last.diagnostics):
            stats["last_compile"] = {
                "timings_ms": {
                    name: round(1e3 * seconds, 3)
                    for name, seconds in last.timings.items()
                },
                **(
                    {"variant_pool": last.diagnostics.get("variant_pool")}
                    if last.diagnostics.get("variant_pool")
                    else {}
                ),
            }
        return stats

    def close(self, wait: bool = True) -> None:
        """Stop accepting work; drain the queue; join the workers.

        Already-queued compilations complete (their futures resolve);
        subsequent ``submit`` calls fail with :class:`ServiceClosedError`.
        Idempotent.
        """
        with self._lock:
            if self._closed:
                workers: list[threading.Thread] = []
            else:
                # Setting the flag under the submit lock, before the
                # sentinels go in, guarantees every admitted record
                # precedes the sentinels in the queue (see submit()).
                self._closed = True
                workers = list(self._workers)
        for _ in workers:
            self._queue.put(_SHUTDOWN)  # blocks until a slot frees: workers drain
        if wait:
            for worker in workers:
                worker.join()
        if workers and self._pool is not None:
            # The pool may only shut down once every worker thread has
            # exited — already-queued compilations must complete (the
            # contract above), and they need the pool.  With wait=False
            # the sequencing happens on a reaper thread.
            pool = self._pool

            def _drain_then_shutdown() -> None:
                for worker in workers:
                    worker.join()
                pool.shutdown(wait=True)

            if wait:
                _drain_then_shutdown()  # workers already joined: no-op joins
            else:
                threading.Thread(
                    target=_drain_then_shutdown,
                    name="repro-serve-pool-reaper",
                    daemon=True,
                ).start()

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- worker internals ----------------------------------------------------

    def _admit(self, record: _Inflight) -> str:
        """Enqueue under the caller-held lock: 'ok' | 'full' | 'closed'."""
        if self._closed:
            return "closed"
        try:
            self._queue.put_nowait(record)
        except queue.Full:
            return "full"
        return "ok"

    def _worker_loop(self) -> None:
        while True:
            record = self._queue.get()
            try:
                if record is _SHUTDOWN:
                    return
                self._process(record)
            finally:
                self._queue.task_done()

    def _offload_to_pool(self) -> bool:
        """Whether this service may delegate compiles to the process pool.

        The pool workers run the *default* pass pipeline; a session whose
        pipeline was customized (passes removed/swapped/spliced, or a
        pinned variant space) must compile in-parent, otherwise the worker
        would produce a different-pipeline artifact and cache it under the
        custom pipeline's key.  Checked per compile because the session's
        pipeline can be reassigned after service construction.
        """
        if self._pool is None:
            return False
        from repro.compiler.pipeline import default_pipeline

        if self._default_fingerprint is None:
            self._default_fingerprint = default_pipeline().fingerprint()
        return self.session.pipeline.fingerprint() == self._default_fingerprint

    def _compile_leader(self, record: _Inflight) -> tuple["GeneratedCode", bool]:
        """Finish the leader's compilation; returns (result, pipeline_ran).

        Thread mode (and process mode under a customized session pipeline)
        runs the back pipeline in-place on this worker thread.  Process
        mode first consults the session cache in-parent, then delegates a
        miss to the process pool as a wire-level request and rebinds the
        returned artifact exactly as a cache hit would be — so followers,
        the registry, and custom cost estimators behave identically in
        both modes.
        """
        leader, use_cache = record.leader, record.use_cache
        if not self._offload_to_pool():
            generated = self.session.finish(
                leader.ctx, record.key, use_cache=use_cache
            )
            return generated, not leader.ctx.cache_hit
        entry = self.session.cache.get(record.key) if use_cache else None
        compiled = False
        if entry is None:
            from repro.compiler.program import CompiledProgram
            from repro.serve import procpool

            request = procpool.encode_request(leader.ctx, use_cache=use_cache)
            trace_context = obs_trace.current_context()
            if trace_context is not None:
                # Ship the trace identity across the process boundary; the
                # worker answers with its spans, re-emitted here so the
                # whole compile is one trace.
                request["trace"] = trace_context
            response = self._pool.submit(procpool.compile_job, request).result()
            if isinstance(response, dict):
                wire = response["artifact"]
                obs_trace.ingest(response.get("spans", []))
            else:  # untraced requests keep the plain wire-string protocol
                wire = response
            entry = CompiledProgram.loads(wire)
            compiled = True
            if use_cache:
                self.session.cache.put(record.key, entry)
            # Surface the worker's instrumentation on the parent context:
            # the rebind below runs as a cache hit, and without this the
            # artifact/stats would claim a pipeline-free compilation.
            leader.ctx.timings.update(entry.timings)
            leader.ctx.diagnostics.update(entry.diagnostics)
        generated = self.session.finish(
            leader.ctx, record.key, use_cache=use_cache, entry=entry
        )
        return generated, compiled

    def _process(self, record: _Inflight) -> None:
        with obs_trace.span("serve.request", key=record.key) as request_span:
            request_span.annotate(mode=self.workers_mode)
            self._process_record(record)

    def _process_record(self, record: _Inflight) -> None:
        use_cache = record.use_cache
        leader = record.leader
        try:
            generated, pipeline_ran = self._compile_leader(record)
        except Exception as exc:
            followers = self._finalize(record)
            self.metrics.record_error()
            self._fail(leader.future, exc)
            for follower in followers:
                self.metrics.record_error()
                self._fail(follower.future, exc)
            return
        # De-register *before* completing: once the future resolves, a new
        # request for the same key must start (or cache-hit) a fresh
        # compilation rather than attach to a finished record.
        followers = self._finalize(record)
        if pipeline_ran:
            self.metrics.record_compiled()
        else:
            self.metrics.record_cache_hit()
        if use_cache:
            self._register(record.key, generated)
        self._complete(leader, generated)
        if not followers:
            return
        entry = generated.to_program()
        for follower in followers:
            try:
                rebound = self.session.finish(
                    follower.ctx, record.key, entry=entry
                )
            except Exception as exc:
                self.metrics.record_error()
                self._fail(follower.future, exc)
            else:
                self._complete(follower, rebound)

    def _finalize(self, record: _Inflight) -> list[_Request]:
        """Drop the in-flight registration; returns the coalesced followers."""
        with self._lock:
            if record.key:
                self._inflight.pop(record.key, None)
            return list(record.followers)

    def _register(self, handle: str, generated: "GeneratedCode") -> None:
        with self._lock:
            self._registry[handle] = generated
            self._registry.move_to_end(handle)
            while len(self._registry) > self._registry_capacity:
                self._registry.popitem(last=False)

    def _complete(self, request: _Request, generated: "GeneratedCode") -> None:
        self.metrics.record_latency(time.perf_counter() - request.submitted)
        try:
            request.future.set_result(generated)
        except InvalidStateError:  # pragma: no cover - cancelled future
            pass

    @staticmethod
    def _fail(future: Future, exc: BaseException) -> None:
        try:
            future.set_exception(exc)
        except InvalidStateError:  # pragma: no cover - cancelled future
            pass

"""The concurrent compilation service: queue + worker pool + coalescing.

The paper's model (Fig. 1) is a code generator invoked once per chain
*shape* with run-time dispatch per instance — exactly the shape of a
long-lived service that compiles on demand and answers many callers.
:class:`CompileService` turns a :class:`~repro.compiler.session.CompilerSession`
into that service:

* ``submit`` runs the cheap front half of compilation (parse + simplify +
  structural key, :meth:`CompilerSession.prepare`) inline on the caller
  thread and returns a :class:`~concurrent.futures.Future`;
  ``submit_many``/``compile_many`` do the same for a batch, grouping
  structurally identical requests *before* enqueueing so a batch of N
  duplicates costs one queue slot and one pipeline run;
* a **bounded** request queue feeds a pool of worker threads that run the
  expensive back half (:meth:`CompilerSession.finish`); a full queue fails
  the future with :class:`~repro.errors.ServiceOverloadedError` instead of
  buffering unboundedly (back-pressure, not latency collapse);
* requests are **coalesced** on their compilation key (the
  :mod:`repro.ir.structural` structural key + options + pipeline
  fingerprint): while a compilation for a key is in flight, further
  requests for the same key attach to it as *followers* and are answered
  by rebinding the leader's result to their own chain — N concurrent
  requests for structurally identical chains trigger exactly one pipeline
  execution and N rebinds.

Completed compilations are kept in a bounded handle registry so the
JSON-lines front end (:mod:`repro.serve.frontend`) can answer ``dispatch``
requests (size vector -> chosen variant) without recompiling.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.errors import ServiceClosedError, ServiceOverloadedError
from repro.compiler.cache import CacheEntry
from repro.compiler.dispatch import CostEstimator
from repro.compiler.pipeline import PassContext
from repro.compiler.session import CompilerSession
from repro.serve.metrics import ServiceMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import GeneratedCode


def default_worker_count() -> int:
    """Worker-pool default: enough to overlap compilations, bounded."""
    return max(2, min(8, (os.cpu_count() or 2)))


@dataclass
class _Request:
    """One submitted compilation: its prepared context and its future."""

    ctx: PassContext
    future: Future
    submitted: float  # perf_counter timestamp, for latency metrics


@dataclass
class _Inflight:
    """A queued compilation: the leader plus coalesced followers."""

    key: str
    leader: _Request
    followers: list[_Request] = field(default_factory=list)
    use_cache: bool = True


_SHUTDOWN = object()


class CompileService:
    """A thread-safe compile server over one :class:`CompilerSession`.

    Parameters
    ----------
    session:
        The session to compile in (its cache, pipeline, and option
        defaults).  A fresh one is created when omitted.
    workers:
        Worker-thread count (defaults to :func:`default_worker_count`).
    max_queue:
        Bound on *distinct* queued compilations.  Coalesced followers ride
        along with their leader and never occupy a slot, so the bound
        limits compile work, not client count.
    warm:
        Preload the session's cache backend into the in-memory LRU on
        startup (:meth:`CompilerSession.warm`); the count is reported in
        :meth:`stats` as ``warmed``.
    registry_capacity:
        How many completed compilations to keep addressable by handle for
        ``dispatch`` requests (LRU-bounded).
    """

    def __init__(
        self,
        session: Optional[CompilerSession] = None,
        *,
        workers: Optional[int] = None,
        max_queue: int = 256,
        warm: bool = True,
        registry_capacity: int = 256,
        metrics: Optional[ServiceMetrics] = None,
    ):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if registry_capacity < 1:
            raise ValueError("registry_capacity must be >= 1")
        self.session = session if session is not None else CompilerSession(cache_capacity=256)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.warmed = self.session.warm() if warm else 0
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self.metrics.queue_depth_probe = self._queue.qsize
        self._lock = threading.Lock()
        self._inflight: dict[str, _Inflight] = {}
        self._registry: OrderedDict[str, "GeneratedCode"] = OrderedDict()
        self._registry_capacity = registry_capacity
        self._closed = False
        count = workers if workers is not None else default_worker_count()
        if count < 1:
            raise ValueError("workers must be >= 1")
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(count)
        ]
        for worker in self._workers:
            worker.start()

    # -- client API ----------------------------------------------------------

    def submit(
        self,
        chain,
        *,
        training_instances: Optional[np.ndarray] = None,
        cost_estimator: Optional[CostEstimator] = None,
        use_cache: bool = True,
        **overrides,
    ) -> Future:
        """Queue one compilation; returns a future of ``GeneratedCode``.

        The keyword knobs match :meth:`CompilerSession.compile`.  The
        future fails with :class:`ServiceOverloadedError` when the bounded
        queue is full and with the original compilation error otherwise;
        parse/validation errors surface through the future too, so callers
        handle one failure channel.
        """
        future: Future = Future()
        self.metrics.record_request()
        if self._closed:  # fast path; the authoritative check is under _lock
            self._fail(future, ServiceClosedError("service is closed"))
            return future
        try:
            ctx, key = self.session.prepare(
                chain,
                training_instances=training_instances,
                cost_estimator=cost_estimator,
                **overrides,
            )
        except Exception as exc:
            self.metrics.record_error()
            self._fail(future, exc)
            return future
        request = _Request(ctx=ctx, future=future, submitted=time.perf_counter())
        # The registry address of this compilation, for later `dispatch`
        # requests (None for private, uncached compilations).
        future.handle = key if use_cache else None  # type: ignore[attr-defined]
        if not use_cache:
            # Uncacheable requests cannot be coalesced (each caller asked
            # for a private compilation); they still share the queue bound.
            record = _Inflight(key="", leader=request, use_cache=False)
            with self._lock:
                outcome = self._admit(record)
        else:
            with self._lock:
                # Re-check closed under the lock: close() flips the flag
                # under this same lock *before* enqueueing the worker
                # shutdown sentinels, so anything admitted here is ordered
                # ahead of the sentinels and is guaranteed to be drained —
                # no future can be parked on an unserviced queue.
                if self._closed:
                    outcome = "closed"
                else:
                    inflight = self._inflight.get(key)
                    if inflight is not None:
                        inflight.followers.append(request)
                        self.metrics.record_coalesced()
                        return future
                    record = _Inflight(key=key, leader=request)
                    outcome = self._admit(record)
                    if outcome == "ok":
                        self._inflight[key] = record
        if outcome == "closed":
            self._fail(future, ServiceClosedError("service is closed"))
        elif outcome == "full":
            self.metrics.record_rejected()
            self._fail(
                future,
                ServiceOverloadedError(
                    f"compile queue is full ({self._queue.maxsize} pending)"
                ),
            )
        return future

    def compile(self, chain, *, timeout: Optional[float] = None, **overrides):
        """Synchronous convenience: ``submit(...).result(timeout)``."""
        return self.submit(chain, **overrides).result(timeout=timeout)

    def map(self, chains: Sequence, *, timeout: Optional[float] = None, **overrides) -> list:
        """Submit a batch and wait; results match the input order."""
        futures = [self.submit(chain, **overrides) for chain in chains]
        return [future.result(timeout=timeout) for future in futures]

    def submit_many(
        self,
        chains: Sequence,
        *,
        training_instances: Optional[np.ndarray] = None,
        cost_estimator: Optional[CostEstimator] = None,
        use_cache: bool = True,
        **overrides,
    ) -> list[Future]:
        """Queue a batch, grouped by structural identity *before* enqueueing.

        All chains are prepared inline, grouped on their compilation key,
        and each group is admitted as one queue record — N structurally
        identical requests cost one queue slot and one pipeline execution,
        with the other N - 1 attached as coalesced followers up front.
        Unlike per-request :meth:`submit`, grouping holds even with
        ``use_cache=False`` (the batch is one caller's explicit unit, so
        duplicates share the private compilation) and even when a leader
        finishes before the batch is fully submitted.  Futures match the
        input order; a chain that fails to parse fails only its own future.
        """
        futures: list[Future] = [Future() for _ in chains]
        # Fast path, as in submit(): skip the per-chain front-half work when
        # already closed (the authoritative re-check runs under _lock below).
        if self._closed:
            for future in futures:
                self.metrics.record_request()
                self._fail(future, ServiceClosedError("service is closed"))
            return futures
        prepared: list[Optional[tuple[PassContext, str]]] = []
        for chain, future in zip(chains, futures):
            self.metrics.record_request()
            try:
                prepared.append(
                    self.session.prepare(
                        chain,
                        training_instances=training_instances,
                        cost_estimator=cost_estimator,
                        **overrides,
                    )
                )
            except Exception as exc:
                self.metrics.record_error()
                self._fail(future, exc)
                prepared.append(None)

        groups: dict[str, list[int]] = {}
        for index, prep in enumerate(prepared):
            if prep is not None:
                groups.setdefault(prep[1], []).append(index)

        for key, indices in groups.items():
            now = time.perf_counter()
            requests = [
                _Request(
                    ctx=prepared[i][0], future=futures[i], submitted=now
                )
                for i in indices
            ]
            for i in indices:
                futures[i].handle = key if use_cache else None  # type: ignore[attr-defined]
            outcome = "ok"
            with self._lock:
                if self._closed:
                    outcome = "closed"
                else:
                    inflight = (
                        self._inflight.get(key) if use_cache else None
                    )
                    if inflight is not None:
                        # The whole group rides an already in-flight
                        # compilation for this key: zero queue slots.
                        inflight.followers.extend(requests)
                        for _ in requests:
                            self.metrics.record_coalesced()
                        continue
                    record = _Inflight(
                        key=key if use_cache else "",
                        leader=requests[0],
                        followers=requests[1:],
                        use_cache=use_cache,
                    )
                    outcome = self._admit(record)
                    if outcome == "ok":
                        if use_cache:
                            self._inflight[key] = record
                        for _ in requests[1:]:
                            self.metrics.record_coalesced()
            if outcome == "closed":
                for request in requests:
                    self._fail(
                        request.future, ServiceClosedError("service is closed")
                    )
            elif outcome == "full":
                for request in requests:
                    self.metrics.record_rejected()
                    self._fail(
                        request.future,
                        ServiceOverloadedError(
                            f"compile queue is full ({self._queue.maxsize} pending)"
                        ),
                    )
        return futures

    def compile_many(
        self, chains: Sequence, *, timeout: Optional[float] = None, **overrides
    ) -> list:
        """Batch :meth:`compile`: coalescing-aware submission, then wait.

        ``submit_many`` groups structurally identical chains before they
        touch the bounded queue; results match the input order.
        """
        futures = self.submit_many(chains, **overrides)
        return [future.result(timeout=timeout) for future in futures]

    # -- dispatch registry ---------------------------------------------------

    def lookup(self, handle: str) -> Optional["GeneratedCode"]:
        """The completed compilation registered under ``handle``, if any."""
        with self._lock:
            generated = self._registry.get(handle)
            if generated is not None:
                self._registry.move_to_end(handle)
            return generated

    def dispatch(self, handle: str, sizes: Sequence[int]):
        """Select the best variant for an instance of a compiled handle.

        Returns ``(variant, cost)``; raises :class:`KeyError` for an
        unknown (or registry-evicted) handle.
        """
        generated = self.lookup(handle)
        if generated is None:
            raise KeyError(f"unknown compilation handle {handle!r}")
        return generated.select(sizes)

    # -- lifecycle -----------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Service metrics + session cache counters, JSON-ready."""
        with self._lock:
            registry_entries = len(self._registry)
            inflight = len(self._inflight)
        return {
            "service": self.metrics.snapshot(),
            "cache": self.session.cache_stats().as_dict(),
            "warmed": self.warmed,
            "workers": len(self._workers),
            "inflight": inflight,
            "registry_entries": registry_entries,
        }

    def close(self, wait: bool = True) -> None:
        """Stop accepting work; drain the queue; join the workers.

        Already-queued compilations complete (their futures resolve);
        subsequent ``submit`` calls fail with :class:`ServiceClosedError`.
        Idempotent.
        """
        with self._lock:
            if self._closed:
                workers: list[threading.Thread] = []
            else:
                # Setting the flag under the submit lock, before the
                # sentinels go in, guarantees every admitted record
                # precedes the sentinels in the queue (see submit()).
                self._closed = True
                workers = list(self._workers)
        for _ in workers:
            self._queue.put(_SHUTDOWN)  # blocks until a slot frees: workers drain
        if wait:
            for worker in workers:
                worker.join()

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- worker internals ----------------------------------------------------

    def _admit(self, record: _Inflight) -> str:
        """Enqueue under the caller-held lock: 'ok' | 'full' | 'closed'."""
        if self._closed:
            return "closed"
        try:
            self._queue.put_nowait(record)
        except queue.Full:
            return "full"
        return "ok"

    def _worker_loop(self) -> None:
        while True:
            record = self._queue.get()
            try:
                if record is _SHUTDOWN:
                    return
                self._process(record)
            finally:
                self._queue.task_done()

    def _process(self, record: _Inflight) -> None:
        use_cache = record.use_cache
        leader = record.leader
        try:
            generated = self.session.finish(
                leader.ctx, record.key, use_cache=use_cache
            )
        except Exception as exc:
            followers = self._finalize(record)
            self.metrics.record_error()
            self._fail(leader.future, exc)
            for follower in followers:
                self.metrics.record_error()
                self._fail(follower.future, exc)
            return
        # De-register *before* completing: once the future resolves, a new
        # request for the same key must start (or cache-hit) a fresh
        # compilation rather than attach to a finished record.
        followers = self._finalize(record)
        if leader.ctx.cache_hit:
            self.metrics.record_cache_hit()
        else:
            self.metrics.record_compiled()
        if use_cache:
            self._register(record.key, generated)
        self._complete(leader, generated)
        if not followers:
            return
        entry = CacheEntry(
            chain=generated.chain,
            variants=tuple(generated.variants),
            training_instances=generated.training_instances,
        )
        for follower in followers:
            try:
                rebound = self.session.finish(
                    follower.ctx, record.key, entry=entry
                )
            except Exception as exc:
                self.metrics.record_error()
                self._fail(follower.future, exc)
            else:
                self._complete(follower, rebound)

    def _finalize(self, record: _Inflight) -> list[_Request]:
        """Drop the in-flight registration; returns the coalesced followers."""
        with self._lock:
            if record.key:
                self._inflight.pop(record.key, None)
            return list(record.followers)

    def _register(self, handle: str, generated: "GeneratedCode") -> None:
        with self._lock:
            self._registry[handle] = generated
            self._registry.move_to_end(handle)
            while len(self._registry) > self._registry_capacity:
                self._registry.popitem(last=False)

    def _complete(self, request: _Request, generated: "GeneratedCode") -> None:
        self.metrics.record_latency(time.perf_counter() - request.submitted)
        try:
            request.future.set_result(generated)
        except InvalidStateError:  # pragma: no cover - cancelled future
            pass

    @staticmethod
    def _fail(future: Future, exc: BaseException) -> None:
        try:
            future.set_exception(exc)
        except InvalidStateError:  # pragma: no cover - cancelled future
            pass
